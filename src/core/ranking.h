// Step 2 — Event Ranking.
//
// Different events have legitimately different raw power (a mail refresh
// costs more than a keystroke), so raw transition points between events are
// misleading.  Step 2 collects, for each event *id*, every instance's
// power across all traces and ranks them.  The per-event distributions feed
// Step 3's normalization; the ranks themselves reveal which instances sit
// unusually high within their own event's distribution.
//
// The ranking is a flat std::vector<EventPowerDistribution> indexed by the
// interned EventId (common/event_symbols.h): the per-instance hot paths of
// Steps 2-4 are array indexing, with no string hash or O(len) compare
// anywhere.  Each distribution caches its powers in sorted order, so
// percentile() is O(1) and rank_of() a binary search after the one-time
// sort; add_power() keeps a live cache live with one ordered insert, which
// is what makes repeated fleet snapshots (core/fleet_analyzer.h) cheap.
// The lazy rebuild is double-check-locked, so concurrent readers may
// trigger it safely.
#pragma once

#include <atomic>
#include <mutex>
#include <string_view>
#include <vector>

#include "common/thread_pool.h"
#include "core/analysis_types.h"

namespace edx::core {

/// Power distribution of one event across the whole collection.
class EventPowerDistribution {
 public:
  EventPowerDistribution() = default;
  explicit EventPowerDistribution(EventId id) : id_(id) {}
  EventPowerDistribution(const EventPowerDistribution& other);
  EventPowerDistribution(EventPowerDistribution&& other) noexcept;
  EventPowerDistribution& operator=(const EventPowerDistribution& other);
  EventPowerDistribution& operator=(EventPowerDistribution&& other) noexcept;

  [[nodiscard]] EventId id() const { return id_; }
  /// The event's name, resolved from the global symbol table.
  [[nodiscard]] const EventName& name() const { return event_name(id_); }
  /// Every instance's raw power, in input (trace-traversal) order.
  [[nodiscard]] const std::vector<double>& powers() const { return powers_; }
  [[nodiscard]] std::size_t instance_count() const { return powers_.size(); }

  /// Records one instance's power.  A valid sorted cache is maintained in
  /// place (one ordered insert); an invalid one stays invalid.
  void add_power(double power);
  /// Guarantees capacity for `additional` more add_power() calls without
  /// reallocation, in both the input-order list and a live sorted cache.
  /// Grows geometrically past the exact need so per-arrival reservations
  /// (core/fleet_analyzer.h) don't degenerate into one realloc per upload.
  void reserve_extra(std::size_t additional);
  /// Replaces the whole distribution; invalidates the sorted cache.
  void set_powers(std::vector<double> powers);
  /// Appends a block of powers (preserving their order); invalidates the
  /// sorted cache.  Steals the vector when the distribution is empty.
  void append_powers(std::vector<double>&& powers);

  /// The powers in ascending order, sorted once and cached.  The first
  /// rebuild after an invalidation is guarded (double-checked lock), so
  /// any number of threads may call this concurrently; mutation
  /// (add_power &c.) must still not race with readers.
  [[nodiscard]] const std::vector<double>& sorted_powers() const;

  /// Competition ranks aligned with `powers`.
  [[nodiscard]] std::vector<std::size_t> ranks() const;
  /// p-th percentile of the distribution.  Builds (or reuses) the sorted
  /// cache; the value equals the selection-path value bit for bit.
  [[nodiscard]] double percentile(double p) const;
  /// Rank (1-based) of `power` within the distribution: 1 + number of
  /// recorded instances strictly cheaper.  Binary search on the sorted
  /// cache when one exists, otherwise a mutation-free linear count.
  [[nodiscard]] std::size_t rank_of(double power) const;

 private:
  EventId id_{kInvalidEventId};
  std::vector<double> powers_;  ///< input order
  mutable std::mutex sort_mutex_;
  mutable std::vector<double> sorted_;
  mutable std::atomic<bool> sorted_valid_{false};
};

/// All per-event distributions, indexed by EventId.
class EventRanking {
 public:
  /// Builds distributions from every instance in `traces`.  With a pool,
  /// contiguous chunks of traces build partial id-indexed tables in
  /// parallel, merged in chunk order — every distribution ends up with its
  /// powers in exactly the sequential traversal order, so results are
  /// identical to the sequential build for any pool size.
  static EventRanking build(const std::vector<AnalyzedTrace>& traces,
                            common::ThreadPool* pool = nullptr);

  /// Distribution for the event with id `id`; throws AnalysisError when
  /// the event never occurs in the collection.
  [[nodiscard]] const EventPowerDistribution& distribution(EventId id) const;
  /// Convenience: resolves `name` through the global symbol table first.
  [[nodiscard]] const EventPowerDistribution& distribution(
      std::string_view name) const;

  /// Incremental entry points (core/fleet_analyzer.h): mutate the table
  /// in place instead of rebuilding it from scratch.
  ///
  /// Grows the id-indexed table to at least `id_bound` slots (new slots
  /// are empty distributions owning their id).  Never shrinks.
  void ensure_event_slots(std::size_t id_bound);
  /// Appends every instance of `trace` to its event's distribution, in
  /// the trace's own (chronological) order — appending arriving traces in
  /// arrival order therefore reproduces exactly the sequential traversal
  /// order of build() over the same traces.
  void append_trace(const AnalyzedTrace& trace);
  /// Replaces one event's whole distribution (an empty vector empties the
  /// slot).  Used when a re-uploaded trace invalidates mid-list powers.
  void set_event_powers(EventId id, std::vector<double> powers);
  /// Pre-reserves capacity for `additional` upcoming instances of event
  /// `id`, killing reallocation churn when an arriving bundle's instance
  /// counts are known up front (see EventPowerDistribution::reserve_extra).
  void reserve_event_extra(EventId id, std::size_t additional);

  [[nodiscard]] bool contains(EventId id) const;
  [[nodiscard]] bool contains(std::string_view name) const;
  /// Number of events with at least one recorded instance.
  [[nodiscard]] std::size_t event_count() const { return event_count_; }
  /// The flat id-indexed table.  Slot `id` belongs to the event with that
  /// id; slots of events absent from the collection are empty
  /// (instance_count() == 0).
  [[nodiscard]] const std::vector<EventPowerDistribution>& all() const {
    return by_id_;
  }

  /// Rank (1-based) of a given power value within event `id`'s
  /// distribution: 1 + number of recorded instances strictly cheaper.
  [[nodiscard]] std::size_t rank_of(EventId id, double power) const;
  [[nodiscard]] std::size_t rank_of(std::string_view name, double power) const;

 private:
  std::vector<EventPowerDistribution> by_id_;
  std::size_t event_count_{0};
};

}  // namespace edx::core
