// Step 2 — Event Ranking.
//
// Different events have legitimately different raw power (a mail refresh
// costs more than a keystroke), so raw transition points between events are
// misleading.  Step 2 collects, for each event *name*, every instance's
// power across all traces and ranks them.  The per-event distributions feed
// Step 3's normalization; the ranks themselves reveal which instances sit
// unusually high within their own event's distribution.
#pragma once

#include <map>
#include <vector>

#include "core/analysis_types.h"

namespace edx::core {

/// Power distribution of one event across the whole collection.
struct EventPowerDistribution {
  EventName name;
  std::vector<double> powers;  ///< every instance's raw power, input order

  /// Competition ranks aligned with `powers`.
  [[nodiscard]] std::vector<std::size_t> ranks() const;
  /// p-th percentile of the distribution.
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] std::size_t instance_count() const { return powers.size(); }
};

/// All per-event distributions, keyed by event name.
class EventRanking {
 public:
  /// Builds distributions from every instance in `traces`.
  static EventRanking build(const std::vector<AnalyzedTrace>& traces);

  /// Distribution for `name`; throws AnalysisError when the event never
  /// occurs in the collection.
  [[nodiscard]] const EventPowerDistribution& distribution(
      const EventName& name) const;

  [[nodiscard]] bool contains(const EventName& name) const;
  [[nodiscard]] std::size_t event_count() const { return by_event_.size(); }
  [[nodiscard]] const std::map<EventName, EventPowerDistribution>& all()
      const {
    return by_event_;
  }

  /// Rank (1-based) of a given power value within `name`'s distribution:
  /// 1 + number of recorded instances strictly cheaper than `power`.
  [[nodiscard]] std::size_t rank_of(const EventName& name, double power) const;

 private:
  std::map<EventName, EventPowerDistribution> by_event_;
};

}  // namespace edx::core
