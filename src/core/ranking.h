// Step 2 — Event Ranking.
//
// Different events have legitimately different raw power (a mail refresh
// costs more than a keystroke), so raw transition points between events are
// misleading.  Step 2 collects, for each event *name*, every instance's
// power across all traces and ranks them.  The per-event distributions feed
// Step 3's normalization; the ranks themselves reveal which instances sit
// unusually high within their own event's distribution.
//
// Each distribution caches its powers in sorted order (invalidated when a
// power is added), so percentile() is O(1) and rank_of() a binary search
// after the one-time sort — instead of re-copying and re-sorting the whole
// distribution on every query.  Before any cache exists both fall back to
// mutation-free O(n) selection/counting, so the pipeline never pays a full
// sort for its single base-percentile query per event.
#pragma once

#include <map>
#include <vector>

#include "common/thread_pool.h"
#include "core/analysis_types.h"

namespace edx::core {

/// Power distribution of one event across the whole collection.
class EventPowerDistribution {
 public:
  EventPowerDistribution() = default;
  explicit EventPowerDistribution(EventName name) : name_(std::move(name)) {}

  [[nodiscard]] const EventName& name() const { return name_; }
  /// Every instance's raw power, in input (trace-traversal) order.
  [[nodiscard]] const std::vector<double>& powers() const { return powers_; }
  [[nodiscard]] std::size_t instance_count() const { return powers_.size(); }

  /// Records one instance's power; invalidates the sorted cache.
  void add_power(double power);
  /// Replaces the whole distribution; invalidates the sorted cache.
  void set_powers(std::vector<double> powers);
  /// Appends a block of powers (preserving their order); invalidates the
  /// sorted cache.  Steals the vector when the distribution is empty.
  void append_powers(std::vector<double>&& powers);

  /// The powers in ascending order, sorted once and cached.  The lazy
  /// rebuild mutates the cache, so the first call after an invalidation
  /// must not race with other readers (the pipeline only queries
  /// distributions from sequential sections).
  [[nodiscard]] const std::vector<double>& sorted_powers() const;

  /// Competition ranks aligned with `powers`.
  [[nodiscard]] std::vector<std::size_t> ranks() const;
  /// p-th percentile of the distribution.  Uses the sorted cache when one
  /// exists, otherwise O(n) selection without building (or mutating) it.
  [[nodiscard]] double percentile(double p) const;
  /// Rank (1-based) of `power` within the distribution: 1 + number of
  /// recorded instances strictly cheaper.  Binary search on the sorted
  /// cache when one exists, otherwise a mutation-free linear count.
  [[nodiscard]] std::size_t rank_of(double power) const;

 private:
  EventName name_;
  std::vector<double> powers_;  ///< input order
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_{false};
};

/// All per-event distributions, keyed by event name.
class EventRanking {
 public:
  /// Builds distributions from every instance in `traces`.  With a pool,
  /// contiguous chunks of traces build partial maps in parallel, merged in
  /// chunk order — every distribution ends up with its powers in exactly
  /// the sequential traversal order, so results are identical to the
  /// sequential build for any pool size.
  static EventRanking build(const std::vector<AnalyzedTrace>& traces,
                            common::ThreadPool* pool = nullptr);

  /// Distribution for `name`; throws AnalysisError when the event never
  /// occurs in the collection.
  [[nodiscard]] const EventPowerDistribution& distribution(
      const EventName& name) const;

  [[nodiscard]] bool contains(const EventName& name) const;
  [[nodiscard]] std::size_t event_count() const { return by_event_.size(); }
  [[nodiscard]] const std::map<EventName, EventPowerDistribution>& all()
      const {
    return by_event_;
  }

  /// Rank (1-based) of a given power value within `name`'s distribution:
  /// 1 + number of recorded instances strictly cheaper than `power`.
  [[nodiscard]] std::size_t rank_of(const EventName& name, double power) const;

 private:
  std::map<EventName, EventPowerDistribution> by_event_;
};

}  // namespace edx::core
