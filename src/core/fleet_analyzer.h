// FleetAnalyzer — the incremental fleet analysis engine.
//
// The paper's deployment model is continuous: instrumented phones upload
// their trace bundles one at a time ("when the phone is charging on
// WiFi") and the server re-diagnoses the growing fleet after each
// arrival.  Re-running the batch ManifestationAnalyzer per arrival costs
// a full O(fleet) pass over Steps 1-5 every time; this engine makes an
// arrival cost O(arriving trace) plus O(Δ) — the slice of Steps 2-5 the
// arrival actually perturbed:
//
//   add_bundle   runs Step 1 (the power-join, the expensive per-trace
//                work) for the arriving bundle only and appends its
//                instances into the id-indexed EventRanking, marking the
//                touched EventIds dirty;
//   snapshot     re-runs Steps 2-5 incrementally — recomputes base
//                powers for dirty events only, then repairs the traces a
//                moved base touched at sub-trace granularity: scatter
//                renormalization rewrites only the moved events'
//                instances, amplitude repair recomputes only the monotone
//                run windows those instances perturb, and each trace's
//                amplitude quartiles are maintained in an ordered
//                multiset by remove/insert instead of a per-snapshot
//                re-sort.  New and replaced traces take the cold
//                (full-kernel) path.  See DESIGN.md §11.
//
// Equivalence contract: after any sequence of add_bundle() calls,
// snapshot() is byte-identical — rendered text and JSON reports and every
// per-instance intermediate — to ManifestationAnalyzer::run over the same
// bundles in arrival order, for any AnalysisConfig::num_threads.
// Re-adding a user (same TraceBundle::fleet_key()) replaces their earlier
// bundle in its original fleet slot, matching a batch input whose slot
// holds the latest upload; it never duplicates the user.
// See DESIGN.md §9 and §11.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.h"
#include "core/pipeline.h"
#include "trace/recorder.h"

namespace edx::core {

class FleetAnalyzer {
 public:
  explicit FleetAnalyzer(AnalysisConfig config = {});

  [[nodiscard]] const AnalysisConfig& config() const { return config_; }
  /// Number of distinct users currently in the fleet.
  [[nodiscard]] std::size_t fleet_size() const {
    return result_.traces.size();
  }
  [[nodiscard]] bool contains_user(UserId user) const {
    return index_by_user_.contains(user);
  }

  /// Ingests one upload: runs Step 1 for this bundle only and marks the
  /// events it touches dirty.  A bundle whose fleet_key() is already in
  /// the fleet replaces that user's earlier trace in place (idempotent
  /// re-upload); a new key appends a fleet slot in arrival order.
  void add_bundle(const trace::TraceBundle& bundle);
  /// Batch ingestion: Step 1 for the arriving bundles runs in parallel on
  /// the pool; the results are applied in `bundles` order, so the fleet
  /// state equals calling add_bundle() for each in order.
  void add_bundles(std::span<const trace::TraceBundle> bundles);

  /// Ingests an arrival whose Step 1 already ran elsewhere — e.g. the
  /// exact per-instance powers recovered from a durable-store snapshot
  /// (store/fleet_store.h).  `analyzed` must equal
  /// estimate_event_power(bundle) for the arriving bundle, with every
  /// event id interned in the global symbol table; the fleet state then
  /// matches add_bundle(bundle) bit for bit, at none of the power-join
  /// cost.
  void add_analyzed(AnalyzedTrace analyzed);

  /// Re-runs Steps 2-5 on the perturbed slice and returns the full
  /// result — byte-identical to a batch ManifestationAnalyzer::run over
  /// the current fleet (see the contract above).  The reference stays
  /// valid until the next add_bundle/add_bundles call.  Throws
  /// AnalysisError when the fleet is empty.
  const AnalysisResult& snapshot();

  /// Arrivals applied so far (add_bundle/add_bundles/add_analyzed calls,
  /// re-uploads included).  Identifies the arrival prefix a published
  /// SnapshotImage covers.
  [[nodiscard]] std::uint64_t arrivals() const { return arrivals_; }

  /// The immutable, self-contained publication image of one snapshot —
  /// what a long-running service hands to concurrent readers.  Unlike
  /// the AnalysisResult reference snapshot() returns (mutable
  /// accumulation state, invalidated by the next arrival), a
  /// SnapshotImage owns its report outright and never changes after
  /// publish() returns, so readers may render it lock-free for as long
  /// as they hold the shared_ptr.  See DESIGN.md §14.
  struct SnapshotImage {
    /// Arrival count this image covers: the report equals a batch run
    /// over the first `arrivals` uploads (in applied order).
    std::uint64_t arrivals{0};
    std::size_t fleet_size{0};
    std::size_t traces_with_manifestation{0};
    /// The developer-reported fraction the report was built with (the
    /// self-estimate when `self_estimate_fraction` was set).
    double reported_fraction{0.0};
    DiagnosisReport report;
  };

  /// Runs snapshot() and freezes the result into an immutable
  /// SnapshotImage.  With `self_estimate_fraction`, applies the CLI's
  /// two-pass rule: re-derive the reported fraction as
  /// traces_with_manifestation / total_traces and rebuild the (cheap)
  /// Step-5 report around it — byte-identical to the batch two-pass
  /// path over the same uploads.  Throws AnalysisError when the fleet
  /// is empty.
  [[nodiscard]] std::shared_ptr<const SnapshotImage> publish(
      bool self_estimate_fraction);

 private:
  /// Per-slot delta-repair state, index-aligned with result_.traces.
  struct TraceCache {
    /// One contiguous run of `positions` holding every instance of one
    /// event, ascending; groups sorted by event id for binary lookup.
    struct Group {
      EventId id{kInvalidEventId};
      std::uint32_t begin{0};
      std::uint32_t count{0};
    };
    /// Instance positions of the slot's trace, grouped by event.  Rebuilt
    /// whenever the slot's trace changes (new upload or replacement);
    /// lets the scatter step find exactly the instances of a moved-base
    /// event without walking the trace.
    std::vector<Group> groups;
    std::vector<std::uint32_t> positions;
    /// The trace's variation amplitudes in ascending order — the
    /// order-statistic multiset backing Q1/Q3/fence — plus the
    /// permutation behind it (sorted_order[p] = instance whose amplitude
    /// occupies rank p).  Seeded by the cold path's one argsort;
    /// maintained on the delta path by gathering the repaired lane
    /// through the stale permutation (already almost ascending) and
    /// re-inserting each displaced value at its ordered slot — an
    /// adaptive O(n + inversions) pass, with a full argsort fallback
    /// under a move budget so a pathological repair never exceeds sort
    /// cost.  The ascending order of a multiset is unique, so the array
    /// stays bitwise equal to a fresh sort of the lane (no NaNs and no
    /// -0.0 can appear; see DESIGN.md §11).  Valid after the slot's
    /// first snapshot.
    std::vector<double> sorted_amplitudes;
    std::vector<std::uint32_t> sorted_order;

    /// Rebuilds sorted_order/sorted_amplitudes from the amplitude lane
    /// with one argsort (cold path, and the delta path's fallback).
    void rebuild_amplitude_cache(const AnalyzedTrace& trace);
    /// Re-synchronizes the order-statistic cache with the (repaired)
    /// amplitude lane: gather through the stale permutation, then the
    /// budgeted adaptive insertion pass described above.
    void repair_sorted(const AnalyzedTrace& trace);

    /// Rebuilds groups/positions from the trace by sorting packed
    /// (id, position) keys in the caller-owned arena — stable in effect,
    /// no per-call allocation once the arena is warm.
    void rebuild_index(const AnalyzedTrace& trace,
                       std::vector<std::uint64_t>& key_scratch);
    [[nodiscard]] std::span<const std::uint32_t> positions_of(
        EventId id) const;
  };

  /// Commits one Step-1 result into the fleet state (append or replace).
  void apply_arrival(AnalyzedTrace analyzed);
  /// Grows every id-indexed side table to the symbol table's current size.
  void sync_id_bound();
  /// Cold path: full renormalize + detect for a new/replaced slot.
  void full_refresh(std::size_t slot);
  /// Delta path: scatter renorm + run-window amplitude repair + ordered
  /// quartile maintenance for a clean slot with moved-base events.
  void delta_refresh(std::size_t slot);

  AnalysisConfig config_;
  std::optional<common::ThreadPool> pool_storage_;
  common::ThreadPool* pool_{nullptr};  ///< null = sequential path

  /// traces (arrival order) + incrementally maintained ranking + the
  /// report of the last snapshot; handed out by snapshot() by reference.
  AnalysisResult result_;
  std::uint64_t arrivals_{0};
  std::unordered_map<UserId, std::size_t> index_by_user_;
  std::vector<TraceCache> cache_;

  /// Cached Step-3 base power per EventId (0.0 = absent), valid for every
  /// event not in dirty_events_.
  std::vector<double> bases_;
  /// EventIds whose distribution changed since the last snapshot, as a
  /// dense flag vector plus the list of set flags.
  std::vector<std::uint8_t> event_dirty_;
  std::vector<EventId> dirty_events_;
  /// Fleet slots that must take the cold path at the next snapshot (new
  /// or replaced arrivals).
  std::vector<std::uint8_t> trace_dirty_;
  /// EventId -> fleet slots whose trace contains that event, appended in
  /// arrival order.  A replacement rebuilds the lists of the events it
  /// touches; other lists may keep a stale slot (the slot's new trace no
  /// longer has the event), which the per-slot position index filters out
  /// at snapshot time.
  std::vector<std::vector<std::uint32_t>> traces_with_event_;
  /// Per-arrival scratch: one flag per EventId (id_bound-sized) used to
  /// dedupe the distinct ids of a trace without allocating per call.
  std::vector<std::uint8_t> seen_scratch_;
  /// Per-arrival scratch: the packed-key arena rebuild_index sorts in, so
  /// indexing a long arriving trace allocates nothing once warm.
  std::vector<std::uint64_t> index_key_scratch_;

  // Snapshot scratch, reused across snapshots.
  /// Events whose base moved bitwise this snapshot.
  std::vector<EventId> moved_events_;
  /// Per-slot list of moved-base events present in that slot (delta
  /// work-list payload); always left empty between snapshots.
  std::vector<std::vector<EventId>> slot_moved_events_;
  /// Slots taking the delta path / the cold path this snapshot.
  std::vector<std::uint32_t> delta_slots_;
  std::vector<std::uint32_t> cold_slots_;
};

}  // namespace edx::core
