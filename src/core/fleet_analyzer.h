// FleetAnalyzer — the incremental fleet analysis engine.
//
// The paper's deployment model is continuous: instrumented phones upload
// their trace bundles one at a time ("when the phone is charging on
// WiFi") and the server re-diagnoses the growing fleet after each
// arrival.  Re-running the batch ManifestationAnalyzer per arrival costs
// a full O(fleet) pass over Steps 1-5 every time; this engine makes an
// arrival cost O(arriving trace) plus the slice of Steps 2-5 the arrival
// actually touched:
//
//   add_bundle   runs Step 1 (the power-join, the expensive per-trace
//                work) for the arriving bundle only and appends its
//                instances into the id-indexed EventRanking, marking the
//                touched EventIds dirty;
//   snapshot     re-runs Steps 2-5 incrementally — recomputes base
//                powers for dirty events only (cached bases serve the
//                untouched ones), renormalizes and re-detects only the
//                traces whose bases (or raw powers) changed, and rebuilds
//                the cheap Step-5 report.
//
// Equivalence contract: after any sequence of add_bundle() calls,
// snapshot() is byte-identical — rendered text and JSON reports and every
// per-instance intermediate — to ManifestationAnalyzer::run over the same
// bundles in arrival order, for any AnalysisConfig::num_threads.
// Re-adding a user (same TraceBundle::fleet_key()) replaces their earlier
// bundle in its original fleet slot, matching a batch input whose slot
// holds the latest upload; it never duplicates the user.
// See DESIGN.md §9.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.h"
#include "core/pipeline.h"
#include "trace/recorder.h"

namespace edx::core {

class FleetAnalyzer {
 public:
  explicit FleetAnalyzer(AnalysisConfig config = {});

  [[nodiscard]] const AnalysisConfig& config() const { return config_; }
  /// Number of distinct users currently in the fleet.
  [[nodiscard]] std::size_t fleet_size() const {
    return result_.traces.size();
  }
  [[nodiscard]] bool contains_user(UserId user) const {
    return index_by_user_.contains(user);
  }

  /// Ingests one upload: runs Step 1 for this bundle only and marks the
  /// events it touches dirty.  A bundle whose fleet_key() is already in
  /// the fleet replaces that user's earlier trace in place (idempotent
  /// re-upload); a new key appends a fleet slot in arrival order.
  void add_bundle(const trace::TraceBundle& bundle);
  /// Batch ingestion: Step 1 for the arriving bundles runs in parallel on
  /// the pool; the results are applied in `bundles` order, so the fleet
  /// state equals calling add_bundle() for each in order.
  void add_bundles(std::span<const trace::TraceBundle> bundles);

  /// Ingests an arrival whose Step 1 already ran elsewhere — e.g. the
  /// exact per-instance powers recovered from a durable-store snapshot
  /// (store/fleet_store.h).  `analyzed` must equal
  /// estimate_event_power(bundle) for the arriving bundle, with every
  /// event id interned in the global symbol table; the fleet state then
  /// matches add_bundle(bundle) bit for bit, at none of the power-join
  /// cost.
  void add_analyzed(AnalyzedTrace analyzed);

  /// Re-runs Steps 2-5 on the dirty slice and returns the full result —
  /// byte-identical to a batch ManifestationAnalyzer::run over the
  /// current fleet (see the contract above).  The reference stays valid
  /// until the next add_bundle/add_bundles call.  Throws AnalysisError
  /// when the fleet is empty.
  const AnalysisResult& snapshot();

 private:
  /// Commits one Step-1 result into the fleet state (append or replace).
  void apply_arrival(AnalyzedTrace analyzed);
  /// Grows every id-indexed side table to the symbol table's current size.
  void sync_id_bound();

  AnalysisConfig config_;
  std::optional<common::ThreadPool> pool_storage_;
  common::ThreadPool* pool_{nullptr};  ///< null = sequential path

  /// traces (arrival order) + incrementally maintained ranking + the
  /// report of the last snapshot; handed out by snapshot() by reference.
  AnalysisResult result_;
  std::unordered_map<UserId, std::size_t> index_by_user_;

  /// Cached Step-3 base power per EventId (0.0 = absent), valid for every
  /// event not in dirty_events_.
  std::vector<double> bases_;
  /// EventIds whose distribution changed since the last snapshot, as a
  /// dense flag vector plus the list of set flags.
  std::vector<std::uint8_t> event_dirty_;
  std::vector<EventId> dirty_events_;
  /// Fleet slots that must be renormalized + re-detected at the next
  /// snapshot (new or replaced arrivals; snapshot() adds the slots of
  /// traces whose event bases changed).
  std::vector<std::uint8_t> trace_dirty_;
  /// EventId -> fleet slots whose trace contains that event, appended in
  /// arrival order.  A replacement rebuilds the lists of the events it
  /// touches; other lists may keep a stale slot (the slot's new trace no
  /// longer has the event), which only ever costs a redundant
  /// renormalization, never a missed one.
  std::vector<std::vector<std::uint32_t>> traces_with_event_;
  /// Per-arrival scratch: one flag per EventId (id_bound-sized) used to
  /// dedupe the distinct ids of a trace without allocating per call.
  std::vector<std::uint8_t> seen_scratch_;
};

}  // namespace edx::core
