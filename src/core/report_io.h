// DiagnosisReport rendering: the artifact EnergyDx hands to developers.
//
// Two formats: a human-readable text report (what the backend would mail
// to the app team) and JSON (for dashboards and the CLI).  When a CodeMap
// is supplied, each event carries the lines the developer must read and
// the report closes with the search-space summary.
#pragma once

#include <string>

#include "core/code_map.h"
#include "core/reporting.h"

namespace edx::core {

struct ReportRenderOptions {
  std::size_t max_events{10};  ///< ranked events to include
  /// Developer-reported impact, echoed into the report header; pass the
  /// value the analysis was configured with.
  double developer_reported_fraction{0.0};
  std::string app_name;
};

/// Human-readable report.
std::string report_to_text(const DiagnosisReport& report,
                           const CodeMap* code_map,
                           const ReportRenderOptions& options = {});

/// JSON document (UTF-8, no external dependencies).
std::string report_to_json(const DiagnosisReport& report,
                           const CodeMap* code_map,
                           const ReportRenderOptions& options = {});

/// Escapes a string for inclusion in a JSON document (quotes included).
std::string json_quote(const std::string& text);

}  // namespace edx::core
