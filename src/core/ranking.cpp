#include "core/ranking.h"

#include <algorithm>

#include "common/error.h"
#include "common/stats.h"

namespace edx::core {

std::vector<std::size_t> EventPowerDistribution::ranks() const {
  return stats::competition_ranks(powers);
}

double EventPowerDistribution::percentile(double p) const {
  require(!powers.empty(),
          "EventPowerDistribution::percentile: empty distribution");
  return stats::percentile(powers, p);
}

EventRanking EventRanking::build(const std::vector<AnalyzedTrace>& traces) {
  EventRanking ranking;
  for (const AnalyzedTrace& trace : traces) {
    for (const PoweredEvent& event : trace.events) {
      auto [it, inserted] = ranking.by_event_.try_emplace(event.name);
      if (inserted) it->second.name = event.name;
      it->second.powers.push_back(event.raw_power);
    }
  }
  return ranking;
}

const EventPowerDistribution& EventRanking::distribution(
    const EventName& name) const {
  const auto it = by_event_.find(name);
  if (it == by_event_.end()) {
    throw AnalysisError("EventRanking: no distribution for event '" + name +
                        "'");
  }
  return it->second;
}

bool EventRanking::contains(const EventName& name) const {
  return by_event_.contains(name);
}

std::size_t EventRanking::rank_of(const EventName& name, double power) const {
  const EventPowerDistribution& dist = distribution(name);
  return 1 + static_cast<std::size_t>(
                 std::count_if(dist.powers.begin(), dist.powers.end(),
                               [&](double p) { return p < power; }));
}

}  // namespace edx::core
