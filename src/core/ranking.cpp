#include "core/ranking.h"

#include <algorithm>
#include <utility>

#include "common/error.h"
#include "common/stats.h"

namespace edx::core {

// Copies and moves transfer the cache (under the source's lock, in case a
// concurrent reader is rebuilding it) but never the mutex itself.
EventPowerDistribution::EventPowerDistribution(
    const EventPowerDistribution& other) {
  std::lock_guard lock(other.sort_mutex_);
  id_ = other.id_;
  powers_ = other.powers_;
  sorted_ = other.sorted_;
  sorted_valid_.store(other.sorted_valid_.load(std::memory_order_acquire),
                      std::memory_order_release);
}

EventPowerDistribution::EventPowerDistribution(
    EventPowerDistribution&& other) noexcept {
  std::lock_guard lock(other.sort_mutex_);
  id_ = other.id_;
  powers_ = std::move(other.powers_);
  sorted_ = std::move(other.sorted_);
  sorted_valid_.store(other.sorted_valid_.load(std::memory_order_acquire),
                      std::memory_order_release);
}

EventPowerDistribution& EventPowerDistribution::operator=(
    const EventPowerDistribution& other) {
  if (this == &other) return *this;
  EventPowerDistribution copy(other);
  return *this = std::move(copy);
}

EventPowerDistribution& EventPowerDistribution::operator=(
    EventPowerDistribution&& other) noexcept {
  if (this == &other) return *this;
  std::scoped_lock lock(sort_mutex_, other.sort_mutex_);
  id_ = other.id_;
  powers_ = std::move(other.powers_);
  sorted_ = std::move(other.sorted_);
  sorted_valid_.store(other.sorted_valid_.load(std::memory_order_acquire),
                      std::memory_order_release);
  return *this;
}

void EventPowerDistribution::add_power(double power) {
  powers_.push_back(power);
  if (sorted_valid_.load(std::memory_order_acquire)) {
    // Keep a live cache live: one ordered insert is far cheaper than the
    // full re-sort the next percentile()/rank_of() would otherwise pay.
    // The incremental fleet engine appends a handful of powers per event
    // per arrival and reads a percentile per snapshot, so without this
    // the cache would thrash invalid on every single arrival.
    std::lock_guard lock(sort_mutex_);
    sorted_.insert(std::upper_bound(sorted_.begin(), sorted_.end(), power),
                   power);
  }
}

void EventPowerDistribution::reserve_extra(std::size_t additional) {
  const auto grow = [additional](std::vector<double>& vector) {
    const std::size_t need = vector.size() + additional;
    if (need <= vector.capacity()) return;
    // Exact-fit reserve would make the *next* arrival reallocate again;
    // keep the usual amortized growth by never reserving below 1.5x.
    vector.reserve(std::max(need, vector.size() + vector.size() / 2));
  };
  grow(powers_);
  if (sorted_valid_.load(std::memory_order_acquire)) {
    std::lock_guard lock(sort_mutex_);
    grow(sorted_);
  }
}

void EventPowerDistribution::set_powers(std::vector<double> powers) {
  powers_ = std::move(powers);
  sorted_valid_.store(false, std::memory_order_release);
}

void EventPowerDistribution::append_powers(std::vector<double>&& powers) {
  if (powers_.empty()) {
    powers_ = std::move(powers);
  } else {
    powers_.insert(powers_.end(), powers.begin(), powers.end());
  }
  sorted_valid_.store(false, std::memory_order_release);
}

const std::vector<double>& EventPowerDistribution::sorted_powers() const {
  // Double-checked locking: readers that find a valid cache share it with
  // no lock at all; the first reader after an invalidation builds it under
  // the mutex while latecomers wait, then everyone reads the same vector.
  if (!sorted_valid_.load(std::memory_order_acquire)) {
    std::lock_guard lock(sort_mutex_);
    if (!sorted_valid_.load(std::memory_order_relaxed)) {
      sorted_ = powers_;
      std::sort(sorted_.begin(), sorted_.end());
      sorted_valid_.store(true, std::memory_order_release);
    }
  }
  return sorted_;
}

std::vector<std::size_t> EventPowerDistribution::ranks() const {
  // With the sorted cache, a competition rank ("1224") is just the number
  // of strictly-smaller elements + 1 — one binary search per instance,
  // and ties share the lowest rank of their run automatically.
  const std::vector<double>& sorted = sorted_powers();
  std::vector<std::size_t> ranks;
  ranks.reserve(powers_.size());
  for (double power : powers_) {
    ranks.push_back(1 + static_cast<std::size_t>(std::lower_bound(
                            sorted.begin(), sorted.end(), power) -
                        sorted.begin()));
  }
  return ranks;
}

double EventPowerDistribution::percentile(double p) const {
  require(!powers_.empty(),
          "EventPowerDistribution::percentile: empty distribution");
  // Builds (or reuses) the sorted cache: selection would be cheaper for a
  // strictly one-off query, but every consumer of percentiles — Step 3's
  // base powers, Step 5's ranks, repeated fleet snapshots — comes back for
  // more, and add_power() keeps the cache alive once it exists.  The value
  // is identical to the selection-path value (see stats::percentile_*).
  return stats::percentile_sorted(sorted_powers(), p);
}

std::size_t EventPowerDistribution::rank_of(double power) const {
  if (!sorted_valid_.load(std::memory_order_acquire)) {
    // Mutation-free O(n) path (see percentile()).
    return 1 + static_cast<std::size_t>(
                   std::count_if(powers_.begin(), powers_.end(),
                                 [power](double x) { return x < power; }));
  }
  return 1 + static_cast<std::size_t>(
                 std::lower_bound(sorted_.begin(), sorted_.end(), power) -
                 sorted_.begin());
}

namespace {

/// Chunk-local accumulation buffer, indexed by EventId: the per-instance
/// hot path is one array index, no hashing and no string compare at all.
using PartialDistributions = std::vector<std::vector<double>>;

/// Appends every instance of traces[begin, end) to `into`, preserving the
/// sequential traversal order within the chunk.
void accumulate_chunk(const std::vector<AnalyzedTrace>& traces,
                      std::size_t begin, std::size_t end,
                      PartialDistributions& into) {
  for (std::size_t t = begin; t < end; ++t) {
    for (const PoweredEvent& event : traces[t].events) {
      into[event.id].push_back(event.raw_power);
    }
  }
}

}  // namespace

EventRanking EventRanking::build(const std::vector<AnalyzedTrace>& traces,
                                 common::ThreadPool* pool) {
  // Every id in `traces` was interned at ingestion, so the global table's
  // current size bounds them all; the table is append-only, so a
  // concurrent intern elsewhere can only add ids this collection does not
  // use.
  const std::size_t id_bound = EventSymbolTable::global().size();
  EventRanking ranking;
  // Per-thread partial id-indexed tables over contiguous chunks of traces,
  // merged in chunk order: concatenating chunk-local power lists in
  // ascending chunk order yields exactly the sequential traversal order,
  // so the result is identical to the sequential build (chunks == 1)
  // regardless of pool size or scheduling.  Chunk boundaries depend only
  // on (traces.size(), chunk count).
  const bool sequential =
      pool == nullptr || pool->size() <= 1 || traces.size() <= 1;
  const std::size_t chunks =
      sequential ? 1 : std::min(pool->size(), traces.size());
  std::vector<PartialDistributions> partials(
      chunks, PartialDistributions(id_bound));
  if (sequential) {
    accumulate_chunk(traces, 0, traces.size(), partials[0]);
  } else {
    std::vector<std::size_t> bounds(chunks + 1, 0);
    const std::size_t base = traces.size() / chunks;
    const std::size_t extra = traces.size() % chunks;
    for (std::size_t c = 0; c < chunks; ++c) {
      bounds[c + 1] = bounds[c] + base + (c < extra ? 1 : 0);
    }
    pool->parallel_for(0, chunks, [&](std::size_t c) {
      accumulate_chunk(traces, bounds[c], bounds[c + 1], partials[c]);
    });
  }
  ranking.by_id_.reserve(id_bound);
  for (EventId id = 0; id < id_bound; ++id) {
    ranking.by_id_.emplace_back(id);
  }
  for (PartialDistributions& partial : partials) {
    for (EventId id = 0; id < id_bound; ++id) {
      if (partial[id].empty()) continue;
      ranking.by_id_[id].append_powers(std::move(partial[id]));
    }
  }
  for (const EventPowerDistribution& distribution : ranking.by_id_) {
    if (distribution.instance_count() > 0) ++ranking.event_count_;
  }

  // The sorted caches stay lazy: single-query paths fall back to
  // mutation-free O(n) selection, and a concurrent first rebuild is safe
  // because sorted_powers() double-check-locks it.
  return ranking;
}

void EventRanking::ensure_event_slots(std::size_t id_bound) {
  if (by_id_.size() >= id_bound) return;
  by_id_.reserve(id_bound);
  while (by_id_.size() < id_bound) {
    by_id_.emplace_back(static_cast<EventId>(by_id_.size()));
  }
}

void EventRanking::append_trace(const AnalyzedTrace& trace) {
  ensure_event_slots(EventSymbolTable::global().size());
  for (const PoweredEvent& event : trace.events) {
    EventPowerDistribution& distribution = by_id_[event.id];
    if (distribution.instance_count() == 0) ++event_count_;
    distribution.add_power(event.raw_power);
  }
}

void EventRanking::set_event_powers(EventId id, std::vector<double> powers) {
  ensure_event_slots(static_cast<std::size_t>(id) + 1);
  EventPowerDistribution& distribution = by_id_[id];
  const bool was_live = distribution.instance_count() > 0;
  const bool now_live = !powers.empty();
  distribution.set_powers(std::move(powers));
  if (was_live && !now_live) --event_count_;
  if (!was_live && now_live) ++event_count_;
}

void EventRanking::reserve_event_extra(EventId id, std::size_t additional) {
  ensure_event_slots(static_cast<std::size_t>(id) + 1);
  by_id_[id].reserve_extra(additional);
}

const EventPowerDistribution& EventRanking::distribution(EventId id) const {
  if (id >= by_id_.size() || by_id_[id].instance_count() == 0) {
    throw AnalysisError(
        "EventRanking: no distribution for event '" +
        (id < EventSymbolTable::global().size() ? event_name(id)
                                                : "#" + std::to_string(id)) +
        "'");
  }
  return by_id_[id];
}

const EventPowerDistribution& EventRanking::distribution(
    std::string_view name) const {
  const EventId id = find_event(name);
  if (id == kInvalidEventId) {
    throw AnalysisError("EventRanking: no distribution for event '" +
                        std::string(name) + "'");
  }
  return distribution(id);
}

bool EventRanking::contains(EventId id) const {
  return id < by_id_.size() && by_id_[id].instance_count() > 0;
}

bool EventRanking::contains(std::string_view name) const {
  const EventId id = find_event(name);
  return id != kInvalidEventId && contains(id);
}

std::size_t EventRanking::rank_of(EventId id, double power) const {
  return distribution(id).rank_of(power);
}

std::size_t EventRanking::rank_of(std::string_view name, double power) const {
  return distribution(name).rank_of(power);
}

}  // namespace edx::core
