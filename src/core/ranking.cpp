#include "core/ranking.h"

#include <algorithm>
#include <unordered_map>

#include "common/error.h"
#include "common/stats.h"

namespace edx::core {

void EventPowerDistribution::add_power(double power) {
  powers_.push_back(power);
  sorted_valid_ = false;
}

void EventPowerDistribution::set_powers(std::vector<double> powers) {
  powers_ = std::move(powers);
  sorted_valid_ = false;
}

void EventPowerDistribution::append_powers(std::vector<double>&& powers) {
  if (powers_.empty()) {
    powers_ = std::move(powers);
  } else {
    powers_.insert(powers_.end(), powers.begin(), powers.end());
  }
  sorted_valid_ = false;
}

const std::vector<double>& EventPowerDistribution::sorted_powers() const {
  if (!sorted_valid_) {
    sorted_ = powers_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
  return sorted_;
}

std::vector<std::size_t> EventPowerDistribution::ranks() const {
  // With the sorted cache, a competition rank ("1224") is just the number
  // of strictly-smaller elements + 1 — one binary search per instance,
  // and ties share the lowest rank of their run automatically.
  const std::vector<double>& sorted = sorted_powers();
  std::vector<std::size_t> ranks;
  ranks.reserve(powers_.size());
  for (double power : powers_) {
    ranks.push_back(1 + static_cast<std::size_t>(std::lower_bound(
                            sorted.begin(), sorted.end(), power) -
                        sorted.begin()));
  }
  return ranks;
}

double EventPowerDistribution::percentile(double p) const {
  require(!powers_.empty(),
          "EventPowerDistribution::percentile: empty distribution");
  if (sorted_valid_) return stats::percentile_sorted(sorted_, p);
  // No cache yet: two order statistics via selection are O(n), cheaper
  // than the O(n log n) sort for a one-off query, and — unlike the lazy
  // cache build — mutate nothing, so concurrent readers are safe.  The
  // value is identical to the sorted-path value either way.
  return stats::percentile_select(powers_, p);
}

std::size_t EventPowerDistribution::rank_of(double power) const {
  if (!sorted_valid_) {
    // Mutation-free O(n) path (see percentile()).
    return 1 + static_cast<std::size_t>(
                   std::count_if(powers_.begin(), powers_.end(),
                                 [power](double x) { return x < power; }));
  }
  return 1 + static_cast<std::size_t>(
                 std::lower_bound(sorted_.begin(), sorted_.end(), power) -
                 sorted_.begin());
}

namespace {

/// Chunk-local accumulation buffer: hashed lookups are cheaper than the
/// ordered map's string comparisons on the per-instance hot path; the
/// ordered map is only built once per chunk-merge below.
using PartialDistributions =
    std::unordered_map<EventName, std::vector<double>>;

/// Appends every instance of traces[begin, end) to `into`, preserving the
/// sequential traversal order within the chunk.
void accumulate_chunk(const std::vector<AnalyzedTrace>& traces,
                      std::size_t begin, std::size_t end,
                      PartialDistributions& into) {
  for (std::size_t t = begin; t < end; ++t) {
    for (const PoweredEvent& event : traces[t].events) {
      into[event.name].push_back(event.raw_power);
    }
  }
}

}  // namespace

EventRanking EventRanking::build(const std::vector<AnalyzedTrace>& traces,
                                 common::ThreadPool* pool) {
  EventRanking ranking;
  // Per-thread partial buffers over contiguous chunks of traces, merged in
  // chunk order: concatenating chunk-local power lists in ascending chunk
  // order yields exactly the sequential traversal order, so the result is
  // identical to the sequential build (chunks == 1) regardless of pool
  // size or scheduling.  Chunk boundaries depend only on (traces.size(),
  // chunk count).  The unordered iteration order while merging does not
  // matter: appends to different names are independent, and within a name
  // the append order is the chunk order.
  const bool sequential =
      pool == nullptr || pool->size() <= 1 || traces.size() <= 1;
  const std::size_t chunks =
      sequential ? 1 : std::min(pool->size(), traces.size());
  std::vector<PartialDistributions> partials(chunks);
  if (sequential) {
    accumulate_chunk(traces, 0, traces.size(), partials[0]);
  } else {
    std::vector<std::size_t> bounds(chunks + 1, 0);
    const std::size_t base = traces.size() / chunks;
    const std::size_t extra = traces.size() % chunks;
    for (std::size_t c = 0; c < chunks; ++c) {
      bounds[c + 1] = bounds[c] + base + (c < extra ? 1 : 0);
    }
    pool->parallel_for(0, chunks, [&](std::size_t c) {
      accumulate_chunk(traces, bounds[c], bounds[c + 1], partials[c]);
    });
  }
  for (PartialDistributions& partial : partials) {
    for (auto& [name, powers] : partial) {
      auto [it, inserted] = ranking.by_event_.try_emplace(name, name);
      (void)inserted;
      it->second.append_powers(std::move(powers));
    }
  }

  // The sorted caches stay lazy: the pipeline only queries distributions
  // from sequential sections (normalization precomputes its bases before
  // fanning out), and percentile()/rank_of() fall back to mutation-free
  // O(n) selection when no cache exists, so nothing here can race.
  return ranking;
}

const EventPowerDistribution& EventRanking::distribution(
    const EventName& name) const {
  const auto it = by_event_.find(name);
  if (it == by_event_.end()) {
    throw AnalysisError("EventRanking: no distribution for event '" + name +
                        "'");
  }
  return it->second;
}

bool EventRanking::contains(const EventName& name) const {
  return by_event_.contains(name);
}

std::size_t EventRanking::rank_of(const EventName& name, double power) const {
  return distribution(name).rank_of(power);
}

}  // namespace edx::core
