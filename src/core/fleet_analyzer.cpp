#include "core/fleet_analyzer.h"

#include <algorithm>
#include <utility>

#include "common/error.h"
#include "core/detection.h"
#include "core/event_power.h"
#include "core/normalization.h"
#include "core/reporting.h"

namespace edx::core {

FleetAnalyzer::FleetAnalyzer(AnalysisConfig config) : config_(config) {
  // Mirror the batch pipeline's config validation up front, so a bad
  // config fails at construction instead of on the Nth arrival.
  require(config_.normalization.base_percentile >= 0.0 &&
              config_.normalization.base_percentile <= 100.0,
          "normalize_events: base percentile out of range");
  require(config_.normalization.min_base_power_mw > 0.0,
          "normalize_events: min base power must be positive");
  require(config_.detection.fence_iqr_multiplier >= 0.0,
          "detect_all: fence multiplier must be non-negative");
  if (common::ThreadPool::resolve_threads(config_.num_threads) > 1) {
    pool_ = &pool_storage_.emplace(config_.num_threads);
  }
}

void FleetAnalyzer::TraceCache::rebuild_index(
    const AnalyzedTrace& trace, std::vector<std::uint64_t>& key_scratch) {
  const std::size_t count = trace.events.size();
  // (id, position) packed into one word: an in-place introsort of the
  // packed keys is stable in effect (the position breaks ties), keeping
  // each event's instances ascending within its group — what
  // renormalize_instances/repair expect — without std::stable_sort's
  // per-call temporary buffer.  The caller-owned key arena is reused
  // across arrivals, so indexing a long trace allocates nothing once
  // warm.
  key_scratch.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    key_scratch[i] = (static_cast<std::uint64_t>(trace.events[i].id) << 32) |
                     static_cast<std::uint64_t>(i);
  }
  std::sort(key_scratch.begin(), key_scratch.end());
  positions.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    positions[i] = static_cast<std::uint32_t>(key_scratch[i]);
  }
  groups.clear();
  std::size_t i = 0;
  while (i < count) {
    const EventId id = static_cast<EventId>(key_scratch[i] >> 32);
    std::size_t j = i + 1;
    while (j < count && static_cast<EventId>(key_scratch[j] >> 32) == id) ++j;
    groups.push_back({id, static_cast<std::uint32_t>(i),
                      static_cast<std::uint32_t>(j - i)});
    i = j;
  }
}

void FleetAnalyzer::TraceCache::rebuild_amplitude_cache(
    const AnalyzedTrace& trace) {
  const std::size_t count = trace.variation_amplitude.size();
  const double* amp = trace.variation_amplitude.data();
  sorted_order.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    sorted_order[i] = static_cast<std::uint32_t>(i);
  }
  std::sort(sorted_order.begin(), sorted_order.end(),
            [amp](std::uint32_t a, std::uint32_t b) { return amp[a] < amp[b]; });
  sorted_amplitudes.resize(count);
  for (std::size_t p = 0; p < count; ++p) {
    sorted_amplitudes[p] = amp[sorted_order[p]];
  }
}

std::span<const std::uint32_t> FleetAnalyzer::TraceCache::positions_of(
    EventId id) const {
  const auto it = std::lower_bound(
      groups.begin(), groups.end(), id,
      [](const Group& group, EventId key) { return group.id < key; });
  if (it == groups.end() || it->id != id) return {};
  return {positions.data() + it->begin, it->count};
}

void FleetAnalyzer::sync_id_bound() {
  // Every id seen by the fleet was interned at ingestion, so the global
  // table's current size bounds them all (same sizing rule as the batch
  // EventRanking::build).  The table is append-only: existing slots never
  // move, growth only appends empty ones.
  const std::size_t id_bound = EventSymbolTable::global().size();
  if (bases_.size() >= id_bound) return;
  result_.ranking.ensure_event_slots(id_bound);
  bases_.resize(id_bound, 0.0);
  event_dirty_.resize(id_bound, 0);
  traces_with_event_.resize(id_bound);
  seen_scratch_.resize(id_bound, 0);
}

void FleetAnalyzer::add_bundle(const trace::TraceBundle& bundle) {
  apply_arrival(estimate_event_power(bundle));  // Step 1, this bundle only
}

void FleetAnalyzer::add_analyzed(AnalyzedTrace analyzed) {
  apply_arrival(std::move(analyzed));
}

void FleetAnalyzer::add_bundles(std::span<const trace::TraceBundle> bundles) {
  // Step 1 is independent per bundle: join the whole batch on the pool,
  // then commit in `bundles` order so the fleet state is exactly the
  // add_bundle()-per-arrival state.
  std::vector<AnalyzedTrace> analyzed = estimate_event_power(bundles, pool_);
  for (AnalyzedTrace& trace : analyzed) {
    apply_arrival(std::move(trace));
  }
}

void FleetAnalyzer::apply_arrival(AnalyzedTrace analyzed) {
  sync_id_bound();
  ++arrivals_;
  const auto mark_event_dirty = [this](EventId id) {
    if (event_dirty_[id] == 0) {
      event_dirty_[id] = 1;
      dirty_events_.push_back(id);
    }
  };

  const auto slot_it = index_by_user_.find(analyzed.user);
  if (slot_it == index_by_user_.end()) {
    // New user: append a fleet slot.  The arriving trace is last in
    // arrival order, so appending its instances to the per-event
    // distributions preserves the batch build's sequential traversal
    // order exactly.  The position index doubles as the distinct-id list
    // and carries per-event instance counts, which pre-size the
    // distributions so append_trace never reallocates mid-arrival.
    const std::size_t slot = result_.traces.size();
    index_by_user_.emplace(analyzed.user, slot);
    TraceCache cache;
    cache.rebuild_index(analyzed, index_key_scratch_);
    for (const TraceCache::Group& group : cache.groups) {
      traces_with_event_[group.id].push_back(static_cast<std::uint32_t>(slot));
      mark_event_dirty(group.id);
      result_.ranking.reserve_event_extra(group.id, group.count);
    }
    result_.ranking.append_trace(analyzed);
    result_.traces.push_back(std::move(analyzed));
    cache_.push_back(std::move(cache));
    trace_dirty_.push_back(1);
    slot_moved_events_.emplace_back();
    return;
  }

  // Re-upload: replace the user's trace in its original fleet slot.  The
  // replaced instances sit mid-list in their events' distributions, so
  // every event the old or new trace touches gets its power list (and its
  // slot index) rebuilt by one pass over the fleet in slot order — the
  // batch traversal order over the substituted bundle set.
  const std::size_t slot = slot_it->second;
  std::vector<EventId> affected;
  const auto collect = [&](const AnalyzedTrace& trace) {
    for (const PoweredEvent& event : trace.events) {
      if (seen_scratch_[event.id] != 0) continue;
      seen_scratch_[event.id] = 1;
      affected.push_back(event.id);
    }
  };
  collect(result_.traces[slot]);
  collect(analyzed);
  result_.traces[slot] = std::move(analyzed);
  cache_[slot].rebuild_index(result_.traces[slot], index_key_scratch_);
  trace_dirty_[slot] = 1;

  const std::size_t id_bound = bases_.size();
  std::vector<std::vector<double>> rebuilt_powers(id_bound);
  std::vector<std::vector<std::uint32_t>> rebuilt_slots(id_bound);
  for (std::size_t s = 0; s < result_.traces.size(); ++s) {
    for (const PoweredEvent& event : result_.traces[s].events) {
      if (seen_scratch_[event.id] == 0) continue;
      rebuilt_powers[event.id].push_back(event.raw_power);
      std::vector<std::uint32_t>& slots = rebuilt_slots[event.id];
      if (slots.empty() || slots.back() != s) {
        slots.push_back(static_cast<std::uint32_t>(s));
      }
    }
  }
  for (EventId id : affected) {
    seen_scratch_[id] = 0;
    result_.ranking.set_event_powers(id, std::move(rebuilt_powers[id]));
    traces_with_event_[id] = std::move(rebuilt_slots[id]);
    mark_event_dirty(id);
  }
}

void FleetAnalyzer::full_refresh(std::size_t slot) {
  // Cold path (new or replaced trace): full SoA kernels, and one argsort
  // seeds the slot's order-statistic amplitude cache — values *and*
  // permutation — for later delta snapshots.  The Step-4 scratch is
  // per-thread and reused across slots and snapshots, so long-trace
  // refreshes stop churning the allocator.
  thread_local DetectionScratch det_scratch;
  AnalyzedTrace& trace = result_.traces[slot];
  normalize_trace(trace, bases_);
  attribute_variation_amplitude(trace, config_.detection, det_scratch);
  cache_[slot].rebuild_amplitude_cache(trace);
  redetect_manifestation_points(trace, config_.detection,
                                cache_[slot].sorted_amplitudes);
}

void FleetAnalyzer::TraceCache::repair_sorted(const AnalyzedTrace& trace) {
  // Order-statistic quartile maintenance.  Gather the repaired lane
  // through the previous snapshot's permutation: repaired values land
  // near their old rank, so the gathered array is already almost
  // ascending and one adaptive insertion pass — remove each displaced
  // value, re-insert it at its ordered slot — restores order in
  // O(n + inversions) instead of the O(n log n) a per-snapshot re-sort
  // would pay (the dominant cost of dense snapshots; see
  // BENCH_pipeline.json).  Ascending order of a multiset is unique, so
  // the result is bitwise equal to a fresh sort of the lane, and Q1/Q3
  // and the fence stay bitwise identical to the batch sort-and-detect
  // path.  A move budget bounds the pathological case (repair reshuffled
  // most ranks): past it, fall back to one argsort.
  const double* amp = trace.variation_amplitude.data();
  const std::size_t count = sorted_amplitudes.size();
  double* sorted = sorted_amplitudes.data();
  std::uint32_t* order = sorted_order.data();
  for (std::size_t p = 0; p < count; ++p) sorted[p] = amp[order[p]];
  std::size_t moves = 0;
  const std::size_t budget = 2 * count + 32;
  for (std::size_t i = 1; i < count; ++i) {
    if (sorted[i - 1] <= sorted[i]) continue;
    const double value = sorted[i];
    const std::uint32_t index = order[i];
    std::size_t j = i;
    do {
      sorted[j] = sorted[j - 1];
      order[j] = order[j - 1];
      --j;
      ++moves;
    } while (j > 0 && sorted[j - 1] > value);
    sorted[j] = value;
    order[j] = index;
    if (moves > budget) {
      rebuild_amplitude_cache(trace);
      return;
    }
  }
}

void FleetAnalyzer::delta_refresh(std::size_t slot) {
  thread_local DetectionScratch det_scratch;
  AnalyzedTrace& trace = result_.traces[slot];
  TraceCache& cache = cache_[slot];
  std::vector<EventId>& moved = slot_moved_events_[slot];

  // Density cutover: when the moved bases cover a sizable share of the
  // trace's instances, the scattered machinery below (indirect
  // renormalization, changed-set merge, windowed repair) costs more than
  // the two linear kernels it exists to avoid — so re-run Steps 3+4
  // outright and keep only the permutation-maintained quartiles.  Both
  // kernels recompute every position from the same inputs with the same
  // expressions, so unchanged positions reproduce their old values
  // bitwise and the lanes match the scatter path exactly.
  std::size_t touched = 0;
  for (EventId id : moved) touched += cache.positions_of(id).size();
  if (touched * 4 >= trace.events.size()) {
    moved.clear();
    normalize_trace(trace, bases_);
    attribute_variation_amplitude(trace, config_.detection, det_scratch);
    cache.repair_sorted(trace);
    redetect_manifestation_points(trace, config_.detection,
                                  cache.sorted_amplitudes);
    return;
  }

  // Scatter renormalization: rewrite only the moved-base events'
  // instances; everything else in the trace keeps its (still-valid)
  // normalized power.  `changed` collects the instance positions whose
  // value actually moved.
  thread_local std::vector<std::uint32_t> changed;
  thread_local std::vector<AmplitudeChange> amp_changes;
  changed.clear();
  amp_changes.clear();
  const bool multiple_events = moved.size() > 1;
  for (EventId id : moved) {
    renormalize_instances(trace, cache.positions_of(id), bases_[id], changed);
  }
  moved.clear();
  if (changed.empty()) return;  // every quotient landed on the same double
  // Each event's positions arrive ascending; a multi-event scatter needs
  // one merge into global instance order for the repair's two-pointer.
  // When most of the trace moved (the dense regime), a counting pass over
  // the instance range is far cheaper than a comparison sort.
  if (multiple_events) {
    if (changed.size() * 8 >= trace.events.size()) {
      thread_local std::vector<std::uint8_t> flags;
      thread_local std::vector<std::uint32_t> merged;
      flags.assign(trace.events.size(), 0);
      for (std::uint32_t position : changed) flags[position] = 1;
      merged.clear();
      for (std::uint32_t i = 0; i < trace.events.size(); ++i) {
        if (flags[i] != 0) merged.push_back(i);
      }
      changed.swap(merged);
    } else {
      std::sort(changed.begin(), changed.end());
    }
  }

  // Local amplitude repair: only run windows containing a changed
  // instance are recomputed; each repaired amplitude reports its
  // before/after pair for the quartile cache.
  repair_variation_amplitudes(trace, changed, config_.detection, amp_changes);

  // Quartile maintenance only when some amplitude actually moved; the
  // cache stays valid otherwise.
  if (!amp_changes.empty()) cache.repair_sorted(trace);

  // Decision phase always re-runs when any normalized power moved: the
  // peak-level and sustain guards read normalized values directly, so
  // points can flip even when every amplitude kept its value.
  redetect_manifestation_points(trace, config_.detection,
                                cache.sorted_amplitudes);
}

const AnalysisResult& FleetAnalyzer::snapshot() {
  if (result_.traces.empty()) {
    throw AnalysisError("FleetAnalyzer::snapshot: no traces collected");
  }
  sync_id_bound();

  // Step 2+3 (incremental): re-derive the base power of dirty events
  // only; untouched events keep their cached base.  Only events whose
  // base actually moved bitwise create downstream work.
  moved_events_.clear();
  for (EventId id : dirty_events_) {
    event_dirty_[id] = 0;
    const double base =
        base_power_of(result_.ranking.all()[id], config_.normalization);
    if (base == bases_[id]) continue;
    bases_[id] = base;
    moved_events_.push_back(id);
  }
  dirty_events_.clear();

  // Work-list: cold slots (new or replaced traces) re-run the full
  // kernels; clean slots containing a moved-base event take the delta
  // path, each carrying its own list of moved events.  The per-slot
  // position index filters the stale entries a replacement may have left
  // in traces_with_event_.
  delta_slots_.clear();
  for (EventId id : moved_events_) {
    for (std::uint32_t slot : traces_with_event_[id]) {
      if (trace_dirty_[slot] != 0) continue;
      if (cache_[slot].positions_of(id).empty()) continue;  // stale entry
      std::vector<EventId>& moved = slot_moved_events_[slot];
      if (moved.empty()) delta_slots_.push_back(slot);
      moved.push_back(id);
    }
  }
  cold_slots_.clear();
  for (std::size_t s = 0; s < trace_dirty_.size(); ++s) {
    if (trace_dirty_[s] != 0) {
      cold_slots_.push_back(static_cast<std::uint32_t>(s));
      trace_dirty_[s] = 0;
    }
  }

  // Steps 3+4 on the perturbed slice only.  Each task owns one trace slot
  // and reads the shared base table, so the parallel path is identical to
  // the sequential one for any pool size (same argument as detect_all).
  const std::size_t cold_count = cold_slots_.size();
  const std::size_t total = cold_count + delta_slots_.size();
  const auto refresh = [this, cold_count](std::size_t i) {
    if (i < cold_count) {
      full_refresh(cold_slots_[i]);
    } else {
      delta_refresh(delta_slots_[i - cold_count]);
    }
  };
  if (pool_ == nullptr || pool_->size() <= 1 || total <= 1) {
    for (std::size_t i = 0; i < total; ++i) refresh(i);
  } else {
    pool_->parallel_for(0, total, refresh);
  }

  // Step 5 is O(manifestations), cheap enough to rebuild outright.
  result_.report =
      report_problematic_events(result_.traces, config_.reporting);
  return result_;
}

std::shared_ptr<const FleetAnalyzer::SnapshotImage> FleetAnalyzer::publish(
    bool self_estimate_fraction) {
  const AnalysisResult& result = snapshot();
  auto image = std::make_shared<SnapshotImage>();
  image->arrivals = arrivals_;
  image->fleet_size = result.traces.size();
  image->traces_with_manifestation = result.report.traces_with_manifestation;
  if (self_estimate_fraction) {
    // The CLI's two-pass rule (workload/cli.cpp render_fleet_report):
    // estimate the impacted-user fraction from the detection pass, then
    // rebuild the cheap Step-5 report around it.  Detection (Steps 1-4)
    // does not depend on the fraction, so one snapshot feeds both
    // passes and the result matches the batch two-pass byte for byte.
    const double fraction =
        result.report.total_traces == 0
            ? 0.0
            : static_cast<double>(result.report.traces_with_manifestation) /
                  static_cast<double>(result.report.total_traces);
    ReportingConfig reporting = config_.reporting;
    reporting.developer_reported_fraction = fraction;
    image->reported_fraction = fraction;
    image->report = report_problematic_events(result.traces, reporting);
  } else {
    image->reported_fraction = config_.reporting.developer_reported_fraction;
    image->report = result.report;
  }
  return image;
}

}  // namespace edx::core
