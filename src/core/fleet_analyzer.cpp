#include "core/fleet_analyzer.h"

#include <utility>

#include "common/error.h"
#include "core/detection.h"
#include "core/event_power.h"
#include "core/normalization.h"
#include "core/reporting.h"

namespace edx::core {

FleetAnalyzer::FleetAnalyzer(AnalysisConfig config) : config_(config) {
  // Mirror the batch pipeline's config validation up front, so a bad
  // config fails at construction instead of on the Nth arrival.
  require(config_.normalization.base_percentile >= 0.0 &&
              config_.normalization.base_percentile <= 100.0,
          "normalize_events: base percentile out of range");
  require(config_.normalization.min_base_power_mw > 0.0,
          "normalize_events: min base power must be positive");
  require(config_.detection.fence_iqr_multiplier >= 0.0,
          "detect_all: fence multiplier must be non-negative");
  if (common::ThreadPool::resolve_threads(config_.num_threads) > 1) {
    pool_ = &pool_storage_.emplace(config_.num_threads);
  }
}

void FleetAnalyzer::sync_id_bound() {
  // Every id seen by the fleet was interned at ingestion, so the global
  // table's current size bounds them all (same sizing rule as the batch
  // EventRanking::build).  The table is append-only: existing slots never
  // move, growth only appends empty ones.
  const std::size_t id_bound = EventSymbolTable::global().size();
  if (bases_.size() >= id_bound) return;
  result_.ranking.ensure_event_slots(id_bound);
  bases_.resize(id_bound, 0.0);
  event_dirty_.resize(id_bound, 0);
  traces_with_event_.resize(id_bound);
  seen_scratch_.resize(id_bound, 0);
}

void FleetAnalyzer::add_bundle(const trace::TraceBundle& bundle) {
  apply_arrival(estimate_event_power(bundle));  // Step 1, this bundle only
}

void FleetAnalyzer::add_analyzed(AnalyzedTrace analyzed) {
  apply_arrival(std::move(analyzed));
}

void FleetAnalyzer::add_bundles(std::span<const trace::TraceBundle> bundles) {
  // Step 1 is independent per bundle: join the whole batch on the pool,
  // then commit in `bundles` order so the fleet state is exactly the
  // add_bundle()-per-arrival state.
  std::vector<AnalyzedTrace> analyzed = estimate_event_power(bundles, pool_);
  for (AnalyzedTrace& trace : analyzed) {
    apply_arrival(std::move(trace));
  }
}

void FleetAnalyzer::apply_arrival(AnalyzedTrace analyzed) {
  sync_id_bound();
  const auto mark_event_dirty = [this](EventId id) {
    if (event_dirty_[id] == 0) {
      event_dirty_[id] = 1;
      dirty_events_.push_back(id);
    }
  };

  const auto slot_it = index_by_user_.find(analyzed.user);
  if (slot_it == index_by_user_.end()) {
    // New user: append a fleet slot.  The arriving trace is last in
    // arrival order, so appending its instances to the per-event
    // distributions preserves the batch build's sequential traversal
    // order exactly.
    const std::size_t slot = result_.traces.size();
    index_by_user_.emplace(analyzed.user, slot);
    std::vector<EventId> distinct;
    for (const PoweredEvent& event : analyzed.events) {
      if (seen_scratch_[event.id] != 0) continue;
      seen_scratch_[event.id] = 1;
      distinct.push_back(event.id);
      traces_with_event_[event.id].push_back(
          static_cast<std::uint32_t>(slot));
      mark_event_dirty(event.id);
    }
    for (EventId id : distinct) seen_scratch_[id] = 0;
    result_.ranking.append_trace(analyzed);
    result_.traces.push_back(std::move(analyzed));
    trace_dirty_.push_back(1);
    return;
  }

  // Re-upload: replace the user's trace in its original fleet slot.  The
  // replaced instances sit mid-list in their events' distributions, so
  // every event the old or new trace touches gets its power list (and its
  // slot index) rebuilt by one pass over the fleet in slot order — the
  // batch traversal order over the substituted bundle set.
  const std::size_t slot = slot_it->second;
  std::vector<EventId> affected;
  const auto collect = [&](const AnalyzedTrace& trace) {
    for (const PoweredEvent& event : trace.events) {
      if (seen_scratch_[event.id] != 0) continue;
      seen_scratch_[event.id] = 1;
      affected.push_back(event.id);
    }
  };
  collect(result_.traces[slot]);
  collect(analyzed);
  result_.traces[slot] = std::move(analyzed);
  trace_dirty_[slot] = 1;

  const std::size_t id_bound = bases_.size();
  std::vector<std::vector<double>> rebuilt_powers(id_bound);
  std::vector<std::vector<std::uint32_t>> rebuilt_slots(id_bound);
  for (std::size_t s = 0; s < result_.traces.size(); ++s) {
    for (const PoweredEvent& event : result_.traces[s].events) {
      if (seen_scratch_[event.id] == 0) continue;
      rebuilt_powers[event.id].push_back(event.raw_power);
      std::vector<std::uint32_t>& slots = rebuilt_slots[event.id];
      if (slots.empty() || slots.back() != s) {
        slots.push_back(static_cast<std::uint32_t>(s));
      }
    }
  }
  for (EventId id : affected) {
    seen_scratch_[id] = 0;
    result_.ranking.set_event_powers(id, std::move(rebuilt_powers[id]));
    traces_with_event_[id] = std::move(rebuilt_slots[id]);
    mark_event_dirty(id);
  }
}

const AnalysisResult& FleetAnalyzer::snapshot() {
  if (result_.traces.empty()) {
    throw AnalysisError("FleetAnalyzer::snapshot: no traces collected");
  }
  sync_id_bound();

  // Step 2+3 (incremental): re-derive the base power of dirty events only;
  // an event whose base actually moved dirties every trace containing it,
  // because those traces' normalized powers are stale.  Untouched events
  // keep their cached base — and their traces stay clean.
  for (EventId id : dirty_events_) {
    event_dirty_[id] = 0;
    const double base =
        base_power_of(result_.ranking.all()[id], config_.normalization);
    if (base == bases_[id]) continue;
    bases_[id] = base;
    for (std::uint32_t slot : traces_with_event_[id]) {
      trace_dirty_[slot] = 1;
    }
  }
  dirty_events_.clear();

  std::vector<std::size_t> dirty_slots;
  for (std::size_t s = 0; s < trace_dirty_.size(); ++s) {
    if (trace_dirty_[s] != 0) {
      dirty_slots.push_back(s);
      trace_dirty_[s] = 0;
    }
  }

  // Steps 3+4 on the dirty traces only.  Each task owns one trace slot
  // and reads the shared base table, so the parallel path is identical to
  // the sequential one for any pool size (same argument as detect_all).
  const auto refresh = [this](std::size_t slot) {
    AnalyzedTrace& trace = result_.traces[slot];
    normalize_trace(trace, bases_);
    detect_trace(trace, config_.detection);
  };
  if (pool_ == nullptr || pool_->size() <= 1 || dirty_slots.size() <= 1) {
    for (std::size_t slot : dirty_slots) refresh(slot);
  } else {
    pool_->parallel_for(0, dirty_slots.size(),
                        [&](std::size_t i) { refresh(dirty_slots[i]); });
  }

  // Step 5 is O(manifestations), cheap enough to rebuild outright.
  result_.report =
      report_problematic_events(result_.traces, config_.reporting);
  return result_;
}

}  // namespace edx::core
