// Step 4 — Manifestation Point Detection.
//
// Variation amplitude of the i-th instance:
//   V_i = p_norm[i+1] - p_norm[i],
// extended across monotone increases: if the normalized power keeps rising
// from i through i+n, V_i = p_norm[i+n] - p_norm[i].  The extension credits
// the *start* of a gradual ramp with the full rise — real ABDs often heat
// up over several events rather than in one jump.
//
// Manifestation points are then the Tukey outliers: instances whose
// amplitude exceeds the upper outer fence Q3 + k*IQR (the paper fixes
// k = 3) of the trace's amplitude distribution.
#pragma once

#include <vector>

#include "common/thread_pool.h"
#include "core/analysis_types.h"

namespace edx::core {

struct DetectionConfig {
  /// Fence multiplier; 3.0 is the paper's outer fence, 1.5 the inner one.
  double fence_iqr_multiplier{3.0};
  /// Extend V_i across monotone increasing runs (the paper's definition);
  /// disabling this is the single-step ablation.
  bool extend_monotone_runs{true};
  /// Tolerated strictly-decreasing steps inside a monotone run (a per-run
  /// *total*, not consecutive — a budget that reset on every up-step would
  /// let a run bridge arbitrarily far through alternating wobble).  The
  /// 500 ms sampling quantizes a power ramp into a staircase whose treads
  /// would end a strictly-increasing run; a run may bridge up to this many
  /// dipping steps as long as power stays above the run's start.  Exactly
  /// flat steps (events sharing one sample window) are free.
  /// 0 restores the (nearly) literal strict definition.
  std::size_t run_dip_tolerance{2};
  /// A bridged dip must also be *small relative to the run's rise so far*:
  /// |dip| <= run_dip_fraction * (peak - start).  Without this, alternating
  /// up/down wobble (e.g. interleaved cheap/expensive events) re-arms the
  /// dip counter at every up-step and runs bridge across the whole trace.
  double run_dip_fraction{0.35};
  /// Absolute floor on a manifestation amplitude, in normalized units
  /// (1.0 == one base-power step).  Guards the degenerate all-flat trace
  /// whose IQR collapses to ~0.  The paper tunes the equivalent
  /// "parameters of the algorithm ... through experiments".
  double min_amplitude{1.2};
  /// An ABD keeps the power high after the transition ("transits from
  /// normal (low) to abnormal (high) and keeps at a higher level", §IV-C);
  /// a one-sample spike from a concurrent radio burst does not.  When set,
  /// an outlier is accepted only if the mean normalized power of the
  /// events beginning within `sustain_window_ms` of the run's peak stays
  /// above the midpoint of the rise.  The window is time-based because a
  /// burst can blanket a whole 5-callback navigation cluster dispatched
  /// within milliseconds.
  /// The horizon matters: legitimate heavy use (a tracking session the
  /// user properly stops) stays high for a few seconds and then ends,
  /// while a real ABD persists; 20 s separates the two in practice.
  bool require_sustained{true};
  DurationMs sustain_window_ms{20'000};
  /// A manifestation must end *above* the app's typical power, not merely
  /// rise back to it: the run's peak must reach at least this normalized
  /// level.  Guards against V being inflated by a context-depressed start
  /// (e.g. the one backgrounding onPause whose sample window straddles
  /// display-off).
  double min_peak_level{2.0};
};

/// Fills `variation_amplitude` for every instance of `trace` in place.
void attribute_variation_amplitude(AnalyzedTrace& trace,
                                   const DetectionConfig& config = {});

/// Runs outlier detection on the amplitudes, filling
/// `manifestation_indices`, `amplitude_quartiles` and `outlier_fence`.
/// Requires attribute_variation_amplitude() to have run.
void detect_manifestation_points(AnalyzedTrace& trace,
                                 const DetectionConfig& config = {});

/// Both phases for one trace — the per-trace unit of work detect_all
/// shards, and the incremental entry point (core/fleet_analyzer.h): a
/// trace's detection depends only on its own normalized powers, so a
/// fleet engine re-detects exactly the traces whose normalization
/// changed.
void detect_trace(AnalyzedTrace& trace, const DetectionConfig& config = {});

/// Convenience: both phases over a whole collection.  Detection is
/// per-trace, so with a pool the traces run in parallel (one task per
/// trace slot), identical to the sequential loop for any pool size.
void detect_all(std::vector<AnalyzedTrace>& traces,
                const DetectionConfig& config = {},
                common::ThreadPool* pool = nullptr);

}  // namespace edx::core
