// Step 4 — Manifestation Point Detection.
//
// Variation amplitude of the i-th instance:
//   V_i = p_norm[i+1] - p_norm[i],
// extended across monotone increases: if the normalized power keeps rising
// from i through i+n, V_i = p_norm[i+n] - p_norm[i].  The extension credits
// the *start* of a gradual ramp with the full rise — real ABDs often heat
// up over several events rather than in one jump.
//
// Manifestation points are then the Tukey outliers: instances whose
// amplitude exceeds the upper outer fence Q3 + k*IQR (the paper fixes
// k = 3) of the trace's amplitude distribution.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/thread_pool.h"
#include "core/analysis_types.h"

namespace edx::core {

struct DetectionConfig {
  /// Fence multiplier; 3.0 is the paper's outer fence, 1.5 the inner one.
  double fence_iqr_multiplier{3.0};
  /// Extend V_i across monotone increasing runs (the paper's definition);
  /// disabling this is the single-step ablation.
  bool extend_monotone_runs{true};
  /// Tolerated strictly-decreasing steps inside a monotone run (a per-run
  /// *total*, not consecutive — a budget that reset on every up-step would
  /// let a run bridge arbitrarily far through alternating wobble).  The
  /// 500 ms sampling quantizes a power ramp into a staircase whose treads
  /// would end a strictly-increasing run; a run may bridge up to this many
  /// dipping steps as long as power stays above the run's start.  Exactly
  /// flat steps (events sharing one sample window) are free.
  /// 0 restores the (nearly) literal strict definition.
  std::size_t run_dip_tolerance{2};
  /// A bridged dip must also be *small relative to the run's rise so far*:
  /// |dip| <= run_dip_fraction * (peak - start).  Without this, alternating
  /// up/down wobble (e.g. interleaved cheap/expensive events) re-arms the
  /// dip counter at every up-step and runs bridge across the whole trace.
  double run_dip_fraction{0.35};
  /// Absolute floor on a manifestation amplitude, in normalized units
  /// (1.0 == one base-power step).  Guards the degenerate all-flat trace
  /// whose IQR collapses to ~0.  The paper tunes the equivalent
  /// "parameters of the algorithm ... through experiments".
  double min_amplitude{1.2};
  /// An ABD keeps the power high after the transition ("transits from
  /// normal (low) to abnormal (high) and keeps at a higher level", §IV-C);
  /// a one-sample spike from a concurrent radio burst does not.  When set,
  /// an outlier is accepted only if the mean normalized power of the
  /// events beginning within `sustain_window_ms` of the run's peak stays
  /// above the midpoint of the rise.  The window is time-based because a
  /// burst can blanket a whole 5-callback navigation cluster dispatched
  /// within milliseconds.
  /// The horizon matters: legitimate heavy use (a tracking session the
  /// user properly stops) stays high for a few seconds and then ends,
  /// while a real ABD persists; 20 s separates the two in practice.
  bool require_sustained{true};
  DurationMs sustain_window_ms{20'000};
  /// A manifestation must end *above* the app's typical power, not merely
  /// rise back to it: the run's peak must reach at least this normalized
  /// level.  Guards against V being inflated by a context-depressed start
  /// (e.g. the one backgrounding onPause whose sample window straddles
  /// display-off).
  double min_peak_level{2.0};
};

/// Reusable working memory for the Step-4 amplitude scan: the shared-run
/// segment lanes.  Callers that process many traces hoist one instance
/// (or one per thread) so long-trace passes stop churning the allocator;
/// the convenience overloads below fall back to a thread_local one.
struct DetectionScratch {
  /// One strictly-decreasing step m -> m+1 of the normalized lane —
  /// every decision point of every monotone run.  `plateau` is the first
  /// position of the maximal constant stretch ending at `pos`: the
  /// first-attainment peak index of a non-decreasing segment whose
  /// maximum sits at `pos`.
  struct DownStep {
    std::uint32_t pos;
    std::uint32_t plateau;
  };
  /// The down-steps of the scan's current overlap cluster, ascending by
  /// position, discovered lazily by a monotone frontier (DESIGN.md §12.1).
  /// Sparse on purpose: runs consume *consecutive* entries, so this list
  /// replaces two dense per-position lanes (and their extra pass over the
  /// trace), and a run start past the frontier resets it, keeping it
  /// cache-resident.
  std::vector<DownStep> downs;
};

/// Fills the `variation_amplitude`, `run_peak_index`, `run_dep_end` and
/// `run_peak_power` lanes (and the dense `begin_ms` timestamp lane) for
/// every instance of `trace` in one O(n * (run_dip_tolerance + 1)) pass —
/// O(n) for any fixed config; see the scan in detection.cpp and DESIGN.md
/// §12.  Bitwise identical, lane for lane, to running
/// detail::amplitude_at_reference at every index.  Requires Step 3's
/// `normalized_power` lane (throws AnalysisError otherwise).
void attribute_variation_amplitude(AnalyzedTrace& trace,
                                   const DetectionConfig& config = {});
/// Same, reusing caller-owned scratch across traces.
void attribute_variation_amplitude(AnalyzedTrace& trace,
                                   const DetectionConfig& config,
                                   DetectionScratch& scratch);

/// One amplitude whose value moved during an incremental repair: the
/// before/after pair an order-statistic quartile cache needs to stay in
/// sync by remove/insert (core/fleet_analyzer.h).
struct AmplitudeChange {
  std::uint32_t index{0};
  double old_amplitude{0.0};
  double new_amplitude{0.0};
};

/// Incremental Step 4 (core/fleet_analyzer.h): repairs the amplitude
/// lanes after the normalized powers at `changed` (ascending, deduplicated
/// instance positions) were rewritten in place.  V_j depends only on the
/// normalized powers in [j, run_dep_end[j]], so only amplitudes whose run
/// window contains a changed position are recomputed — bit-identical to a
/// full attribute_variation_amplitude() pass, at O(windows) cost.  A step
/// budget guards the degenerate regime (long monotone ramps, where every
/// window reaches the ramp's end and O(windows) turns quadratic): past
/// ~4n walked steps the repair falls back to the one-pass O(n) rescan,
/// diffing against the pre-change values inline.
/// Appends one record per amplitude whose value moved to `amp_changes`
/// (not cleared).  Lanes must hold the pre-change state produced by a
/// prior full pass or repair.
void repair_variation_amplitudes(AnalyzedTrace& trace,
                                 std::span<const std::uint32_t> changed,
                                 const DetectionConfig& config,
                                 std::vector<AmplitudeChange>& amp_changes);

/// Runs outlier detection on the amplitudes, filling
/// `manifestation_indices`, `amplitude_quartiles` and `outlier_fence`.
/// Requires attribute_variation_amplitude() to have run.  The quartiles
/// come from selection (stats::quartiles_select) rather than a full sort,
/// so the whole decision phase is O(n) — and bitwise identical to the
/// sorted path, because order statistics are multiset values.
void detect_manifestation_points(AnalyzedTrace& trace,
                                 const DetectionConfig& config = {});
/// Same, but fully sorts the amplitudes into `sorted_scratch` — for a
/// caller that keeps the sorted copy as a live order-statistic quartile
/// cache and maintains it by remove/insert afterwards
/// (core/fleet_analyzer.h, tests).  On return `sorted_scratch` holds the
/// amplitude multiset ascending.
void detect_manifestation_points(AnalyzedTrace& trace,
                                 const DetectionConfig& config,
                                 std::vector<double>& sorted_scratch);

/// Incremental Step 4, decision phase: quartiles, fence and the outlier
/// scan from an already-sorted amplitude multiset (the caller maintained
/// it by remove/insert after repair_variation_amplitudes).  Because the
/// ascending order of a multiset is unique, the quartiles — and therefore
/// the fence and the detected points — are bitwise identical to the full
/// sort-and-detect path.
void redetect_manifestation_points(AnalyzedTrace& trace,
                                   const DetectionConfig& config,
                                   std::span<const double> sorted_amplitudes);

/// Both phases for one trace — the per-trace unit of work detect_all
/// shards, and the incremental entry point (core/fleet_analyzer.h): a
/// trace's detection depends only on its own normalized powers, so a
/// fleet engine re-detects exactly the traces whose normalization
/// changed.
void detect_trace(AnalyzedTrace& trace, const DetectionConfig& config = {});
/// Same, with caller-owned scratch (see detect_manifestation_points).
void detect_trace(AnalyzedTrace& trace, const DetectionConfig& config,
                  DetectionScratch& scratch);
/// Same, with a caller-owned sort buffer that ends up holding the sorted
/// amplitude multiset (see detect_manifestation_points).
void detect_trace(AnalyzedTrace& trace, const DetectionConfig& config,
                  std::vector<double>& sorted_scratch);

/// Convenience: both phases over a whole collection.  Detection is
/// per-trace, so with a pool the traces run in parallel (one task per
/// trace slot), identical to the sequential loop for any pool size.
void detect_all(std::vector<AnalyzedTrace>& traces,
                const DetectionConfig& config = {},
                common::ThreadPool* pool = nullptr);

namespace detail {

/// The original per-index forward walk over the dip-tolerance bridging
/// rules: recomputes instance `i`'s amplitude/peak/dep/peak-power from
/// the normalized lane in O(run window).  This is the *semantic
/// definition* of the four lanes: the one-pass shared-run scan behind
/// attribute_variation_amplitude must (and does) reproduce it bit for
/// bit, which the randomized property suite
/// (tests/core/amplitude_scan_property_test.cpp) pins at every index.
/// Production uses it only for the incremental repair's windowed
/// recomputation, where a handful of short windows beats a full rescan.
void amplitude_at_reference(const double* norm, std::size_t count,
                            std::size_t i, const DetectionConfig& config,
                            double* amp, std::uint32_t* peak,
                            std::uint32_t* dep, double* peak_power);

}  // namespace detail

}  // namespace edx::core
