#include "core/pipeline.h"

#include "common/error.h"

namespace edx::core {

ManifestationAnalyzer::ManifestationAnalyzer(AnalysisConfig config)
    : config_(config) {}

AnalysisResult ManifestationAnalyzer::run(
    const std::vector<trace::TraceBundle>& bundles) const {
  if (bundles.empty()) {
    throw AnalysisError("ManifestationAnalyzer::run: no traces collected");
  }

  AnalysisResult result;
  result.traces = estimate_event_power(bundles);              // Step 1
  result.ranking = EventRanking::build(result.traces);        // Step 2
  normalize_events(result.traces, result.ranking,             // Step 3
                   config_.normalization);
  detect_all(result.traces, config_.detection);               // Step 4
  result.report =
      report_problematic_events(result.traces, config_.reporting);  // Step 5
  return result;
}

}  // namespace edx::core
