#include "core/pipeline.h"

#include <memory>
#include <optional>

#include "common/error.h"
#include "common/thread_pool.h"

namespace edx::core {

ManifestationAnalyzer::ManifestationAnalyzer(AnalysisConfig config)
    : config_(config) {}

AnalysisResult ManifestationAnalyzer::run(
    std::span<const trace::TraceBundle> bundles) const {
  if (bundles.empty()) {
    throw AnalysisError("ManifestationAnalyzer::run: no traces collected");
  }

  // num_threads == 1 (or a single-core host with num_threads == 0) keeps
  // the plain sequential loops — no pool is spawned at all.
  std::optional<common::ThreadPool> pool_storage;
  common::ThreadPool* pool = nullptr;
  if (common::ThreadPool::resolve_threads(config_.num_threads) > 1) {
    pool = &pool_storage.emplace(config_.num_threads);
  }

  AnalysisResult result;
  result.traces = estimate_event_power(bundles, pool);        // Step 1
  result.ranking = EventRanking::build(result.traces, pool);  // Step 2
  normalize_events(result.traces, result.ranking,             // Step 3
                   config_.normalization, pool);
  detect_all(result.traces, config_.detection, pool);         // Step 4
  result.report =
      report_problematic_events(result.traces, config_.reporting);  // Step 5
  return result;
}

}  // namespace edx::core
