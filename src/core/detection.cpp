#include "core/detection.h"

#include <algorithm>
#include <cstring>

#include "common/error.h"
#include "common/stats.h"

namespace edx::core {

namespace detail {

void amplitude_at_reference(const double* norm, std::size_t count,
                            std::size_t i, const DetectionConfig& config,
                            double* amp, std::uint32_t* peak,
                            std::uint32_t* dep, double* peak_power) {
  if (i + 1 >= count) {
    amp[i] = 0.0;
    peak[i] = static_cast<std::uint32_t>(i);
    dep[i] = static_cast<std::uint32_t>(i);
    peak_power[i] = norm[i];
    return;
  }
  const double single_step = norm[i + 1] - norm[i];
  if (!config.extend_monotone_runs || single_step <= 0.0) {
    // "If the normalized power keeps increasing from the i-th instance":
    // the run must rise from instance i itself, otherwise V_i is the
    // plain single-step difference.
    amp[i] = single_step;
    peak[i] = static_cast<std::uint32_t>(i + 1);
    dep[i] = static_cast<std::uint32_t>(i + 1);
    peak_power[i] = norm[i + 1];
    return;
  }
  // Walk forward while normalized power keeps increasing, bridging at
  // most `run_dip_tolerance` flat/dipping steps (sampling staircase),
  // provided power stays at or above the run's start.  The amplitude is
  // measured to the highest point of the run.
  const double start = norm[i];
  std::size_t end = i + 1;
  double run_peak = norm[end];
  std::size_t peak_index = end;
  std::size_t dips = 0;
  while (end + 1 < count) {
    const double current = norm[end];
    const double next = norm[end + 1];
    if (next > current) {
      ++end;
      if (next > run_peak) {
        run_peak = next;
        peak_index = end;
      }
    } else if (next == current) {
      // Events in the same sample window read identical power; bridging
      // them costs nothing.
      ++end;
    } else if (dips < config.run_dip_tolerance && next >= start &&
               current - next <= config.run_dip_fraction * (run_peak - start)) {
      ++end;
      ++dips;
    } else {
      break;
    }
  }
  amp[i] = run_peak - start;
  peak[i] = static_cast<std::uint32_t>(peak_index);
  // The scan inspected normalized powers up to norm[end + 1] (the value
  // that ended the run), capped at the last instance when the run ran off
  // the trace edge.
  dep[i] = static_cast<std::uint32_t>(std::min(end + 1, count - 1));
  peak_power[i] = run_peak;
}

}  // namespace detail

namespace {

/// Step-4 attribution: fills all four amplitude lanes (and the dense
/// begin_ms timestamp lane) for every instance, in O(n) total.
///
/// The per-index reference walk (detail::amplitude_at_reference) costs
/// O(run window) per instance.  On real traces windows are short — the
/// normalized lane wobbles, runs end within a step or two — so the walk
/// is effectively linear, with the leanest loop body possible (a
/// handful of compares per position).  It only turns quadratic when
/// long runs overlap: a monotone ramp, where every window stretches to
/// the ramp's end.  So the pass *meters* the walk — every inner step
/// spends one unit of a ~4n budget — and on exhaustion (provably inside
/// the quadratic regime) hands every remaining index to the
/// shared-structure scan below, which costs O(n) outright.  Walked
/// steps are capped at the budget and the scan is linear, so the whole
/// pass is O(n) for any input; on the common short-window shape the
/// budget never trips and the pass *is* the lean walk.
///
/// The scan's structural fact:
/// up-steps and exactly-flat steps are accepted *unconditionally*, so a
/// run only ever decides anything at strictly-decreasing steps.  Between
/// two consecutive down-steps the normalized lane is non-decreasing, and
/// a run consumes the whole segment in O(1):
///   - the segment's running maximum is its last element norm[m],
///   - the reference's first-attainment peak index is the start of the
///     final plateau of the segment (the DownStep's plateau field; a
///     segment begins right after a strict decrease or a strict
///     increase, so the plateau never reaches back past the segment),
///   - the next decision point is the next down-step — the *next entry*
///     of the sparse, position-ordered down-step list, because every
///     segment ends at a down-step (or the trace edge, the list's
///     sentinel).
/// Each bridged down-step spends one unit of the per-run dip budget and
/// each run terminates at its first unbridgeable down-step, so a run
/// visits at most run_dip_tolerance + 2 consecutive list entries.  The
/// list is discovered *lazily*: a monotone frontier examines each step
/// once, on demand, appending down-steps as it meets them, and every
/// run peeks at consecutive entries from a forward-only cursor.  When
/// runs overlap (a long ramp — exactly the walk's quadratic case) later
/// runs reuse the entries the first run discovered; when they don't, a
/// run start past the frontier resets the list, so it only ever holds
/// the current overlap cluster and stays cache-resident.  Each position
/// is examined by the frontier at most once and each entry is skipped
/// by the cursor at most once, so the pass is
/// O(n * (run_dip_tolerance + 1)) — O(n) for any fixed config — with
/// the same touch pattern as the plain walk on short-run traces (no
/// separate sweep pass over the trace).  Every
/// bridge decision evaluates the reference's exact expressions on the
/// exact same doubles, so all lanes are bitwise identical to the
/// reference (pinned by tests/core/amplitude_scan_property_test.cpp).
///
/// With kDiffs, appends one AmplitudeChange per amplitude whose value
/// moved relative to the lane's previous contents (the repair fallback
/// path; lanes must then be sized and hold the pre-change state).  The
/// hot full-recompute path instantiates kDiffs = false, so its emit is
/// four unconditional stores — no per-index diff test.
template <bool kDiffs>
void scan_amplitudes(AnalyzedTrace& trace, const DetectionConfig& config,
                     DetectionScratch& scratch,
                     std::vector<AmplitudeChange>* diffs) {
  const std::size_t count = trace.events.size();
  trace.variation_amplitude.resize(count);
  trace.run_peak_index.resize(count);
  trace.run_dep_end.resize(count);
  trace.run_peak_power.resize(count);
  trace.begin_ms.resize(count);
  if (count == 0) return;
  const PoweredEvent* events = trace.events.data();
  TimestampMs* begin = trace.begin_ms.data();

  const double* norm = trace.normalized_power.data();
  double* amp = trace.variation_amplitude.data();
  std::uint32_t* peak = trace.run_peak_index.data();
  std::uint32_t* dep = trace.run_dep_end.data();
  double* peak_power = trace.run_peak_power.data();

  const auto emit = [&](std::size_t i, double value, std::size_t peak_index,
                        std::size_t dep_end, double peak_value) {
    if constexpr (kDiffs) {
      if (value != amp[i]) {
        diffs->push_back({static_cast<std::uint32_t>(i), amp[i], value});
      }
    }
    amp[i] = value;
    peak[i] = static_cast<std::uint32_t>(peak_index);
    dep[i] = static_cast<std::uint32_t>(dep_end);
    peak_power[i] = peak_value;
  };

  const std::size_t last = count - 1;
  emit(last, 0.0, last, last, norm[last]);
  if (!config.extend_monotone_runs) {
    for (std::size_t i = 0; i < count; ++i) {
      begin[i] = events[i].interval.begin;
    }
    for (std::size_t i = 0; i < last; ++i) {
      emit(i, norm[i + 1] - norm[i], i + 1, i + 1, norm[i + 1]);
    }
    return;
  }

  const std::size_t tolerance = config.run_dip_tolerance;
  const double fraction = config.run_dip_fraction;

  // Metered reference walk (the fast path; see the function comment).
  // The loop body restates detail::amplitude_at_reference's exact
  // expressions — the property suite pins the equality at every index.
  std::size_t i = 0;
  {
    std::size_t budget = 4 * count + 16;
    for (; i < last; ++i) {
      begin[i] = events[i].interval.begin;
      const double single_step = norm[i + 1] - norm[i];
      if (single_step <= 0.0) {
        emit(i, single_step, i + 1, i + 1, norm[i + 1]);
        continue;
      }
      const double start = norm[i];
      std::size_t end = i + 1;
      double run_peak = norm[end];
      std::size_t peak_index = end;
      std::size_t dips = 0;
      while (end + 1 < count) {
        const double current = norm[end];
        const double next = norm[end + 1];
        if (next > current) {
          ++end;
          if (next > run_peak) {
            run_peak = next;
            peak_index = end;
          }
        } else if (next == current) {
          ++end;
        } else if (dips < tolerance && next >= start &&
                   current - next <= fraction * (run_peak - start)) {
          ++end;
          ++dips;
        } else {
          break;
        }
      }
      emit(i, run_peak - start, peak_index, std::min(end + 1, count - 1),
           run_peak);
      const std::size_t walked = end - i;
      if (walked >= budget) {
        ++i;  // this index is done; the scan takes over from the next
        break;
      }
      budget -= walked;
    }
  }

  // Lazily discovered down-step list.  Invariants: every step p -> p+1
  // with frontier0 <= p < frontier has been examined exactly once and
  // its down-steps (in ascending pos order) appended; fplateau is the
  // first position of the plateau ending at `frontier`.  A run start
  // past the frontier resets the list — everything in it is behind
  // every future query.
  std::vector<DetectionScratch::DownStep>& downs = scratch.downs;
  downs.clear();
  std::size_t frontier = i;
  std::size_t fplateau = i;
  const auto advance_frontier = [&] {  // requires frontier < last
    const double a = norm[frontier];
    const double b = norm[frontier + 1];
    if (b < a) {
      downs.push_back({static_cast<std::uint32_t>(frontier),
                       static_cast<std::uint32_t>(fplateau)});
    }
    ++frontier;
    if (b != a) fplateau = frontier;
  };

  std::size_t cursor = 0;  // first list entry not yet behind a run start
  for (; i < last; ++i) {
    begin[i] = events[i].interval.begin;
    const double single_step = norm[i + 1] - norm[i];
    if (single_step <= 0.0) {
      emit(i, single_step, i + 1, i + 1, norm[i + 1]);
      continue;
    }
    // The run's first decision point is the first down-step at or past
    // i + 1 (i itself steps up).  If discovery never reached i + 1, the
    // stale entries can simply be dropped, and the plateau ending at
    // i + 1 starts there (norm[i + 1] > norm[i]).
    if (frontier < i + 1) {
      frontier = i + 1;
      fplateau = i + 1;
      downs.clear();
      cursor = 0;
    } else {
      while (cursor < downs.size() && downs[cursor].pos < i + 1) ++cursor;
    }
    const double start = norm[i];
    double run_peak = norm[i + 1];
    std::size_t peak_index = i + 1;
    std::size_t dips = 0;
    std::size_t k = cursor;
    for (;;) {
      while (k >= downs.size() && frontier < last) advance_frontier();
      if (k >= downs.size()) {
        // Non-decreasing through the trace edge (the frontier examined
        // every step and found no further down): the run ends on the
        // last instance, its peak on the final plateau.
        if (norm[last] > run_peak) {
          run_peak = norm[last];
          peak_index = fplateau;
        }
        emit(i, run_peak - start, peak_index, last, run_peak);
        break;
      }
      const std::uint32_t m = downs[k].pos;
      // The segment ending at m is non-decreasing: its maximum is
      // norm[m], first attained at the plateau's start.  A strict update
      // mirrors the reference's first-attainment rule when an earlier
      // segment already reached the same level.
      if (norm[m] > run_peak) {
        run_peak = norm[m];
        peak_index = downs[k].plateau;
      }
      // The down-step m -> m+1 is the run's next decision, judged by the
      // reference's exact expressions on the exact same values (run_peak
      // here equals the reference's running peak at this step: both are
      // max(norm[i+1 .. m])).  Bridging it lands the run in the next
      // segment, whose end is simply the next list entry.
      if (dips < tolerance && norm[m + 1] >= start &&
          norm[m] - norm[m + 1] <= fraction * (run_peak - start)) {
        ++dips;
        ++k;
        continue;
      }
      emit(i, run_peak - start, peak_index, m + 1, run_peak);
      break;
    }
  }
  begin[last] = events[last].interval.begin;
}

/// The fence decision loop over the dense Step-4 lanes.  Fence and
/// quartiles must already sit on the trace.  The pre-filter reads two
/// contiguous double lanes — run_peak_power mirrors norm[peak[i]]
/// densely, so there is no gather — and short-circuits: a fence worth
/// its name rejects nearly every instance at the first compare, which
/// makes that branch nearly-always-false and perfectly predicted, so
/// the second lane is rarely even loaded.  The strided time-window
/// sustain walk runs only on the fence survivors.  (Two "optimized"
/// variants measured slower here and were dropped: a branch-free `&`
/// predicate — pointless against a predictable branch, and it forces
/// the second lane's load on every instance — and staging the predicate
/// through a byte lane, which GCC 12 refuses to vectorize at -O2/-O3,
/// leaving pure extra traffic.  DESIGN.md §12.)
void decide_outliers(AnalyzedTrace& trace, const DetectionConfig& config) {
  const std::size_t count = trace.events.size();
  const double* norm = trace.normalized_power.data();
  const double* amp = trace.variation_amplitude.data();
  const std::uint32_t* peak = trace.run_peak_index.data();
  const double* peak_power = trace.run_peak_power.data();
  const TimestampMs* begin = trace.begin_ms.data();

  const auto is_sustained = [&](std::size_t i) {
    if (!config.require_sustained) return true;
    const std::size_t peak_index = peak[i];
    if (peak_index + 1 >= count) {
      // The run peaks on the final instance: collection stopped at (or
      // clipped) the manifestation — the upload happened mid-anomaly —
      // so no post-transition observation exists to confirm or refute
      // that power stayed high.  The sustain guard exists to reject
      // spikes that demonstrably fall back; a truncated trace
      // demonstrates nothing, so the point is kept
      // (DetectionGuardsTest.RunPeakingOnFinalInstanceIsSustained pins
      // both sides of this edge).
      return true;
    }
    const double midpoint = norm[i] + 0.5 * amp[i];
    const TimestampMs window_end = begin[peak_index] + config.sustain_window_ms;
    double total = 0.0;
    std::size_t counted = 0;
    for (std::size_t j = peak_index; j < count; ++j) {
      if (begin[j] > window_end) break;
      total += norm[j];
      ++counted;
    }
    if (counted <= 1) {
      // Nothing else begins inside the window (the app went quiet).
      // Judge by the next recorded observation alone — averaging it with
      // the peak would always land exactly on the midpoint and never
      // reject.
      return norm[peak_index + 1] >= midpoint;
    }
    return total / static_cast<double>(counted) >= midpoint;
  };

  const double fence = trace.outlier_fence;
  const double min_peak = config.min_peak_level;
  std::vector<std::size_t>& out = trace.manifestation_indices;
  out.clear();
  for (std::size_t i = 0; i < count; ++i) {
    if (amp[i] > fence && peak_power[i] >= min_peak && is_sustained(i)) {
      out.push_back(i);
    }
  }
}

/// Fence from quartiles, then the decision loop.
void detect_with_quartiles(AnalyzedTrace& trace, const DetectionConfig& config,
                           const stats::Quartiles& quartiles) {
  trace.amplitude_quartiles = quartiles;
  const double iqr_fence =
      trace.amplitude_quartiles.q3 +
      config.fence_iqr_multiplier * trace.amplitude_quartiles.iqr();
  trace.outlier_fence = std::max(iqr_fence, config.min_amplitude);
  decide_outliers(trace, config);
}

void require_normalized(const AnalyzedTrace& trace, const char* who) {
  if (trace.normalized_power.size() != trace.events.size()) {
    throw AnalysisError(std::string(who) +
                        ": normalized_power lane not filled (run Step 3 "
                        "before Step 4)");
  }
}

bool clear_if_empty(AnalyzedTrace& trace, const DetectionConfig& config) {
  if (!trace.events.empty()) return false;
  trace.manifestation_indices.clear();
  trace.amplitude_quartiles = {};
  trace.outlier_fence = config.min_amplitude;
  return true;
}

DetectionScratch& local_scratch() {
  thread_local DetectionScratch scratch;
  return scratch;
}

}  // namespace

void attribute_variation_amplitude(AnalyzedTrace& trace,
                                   const DetectionConfig& config) {
  attribute_variation_amplitude(trace, config, local_scratch());
}

void attribute_variation_amplitude(AnalyzedTrace& trace,
                                   const DetectionConfig& config,
                                   DetectionScratch& scratch) {
  require_normalized(trace, "attribute_variation_amplitude");
  scan_amplitudes<false>(trace, config, scratch, nullptr);
}

void repair_variation_amplitudes(AnalyzedTrace& trace,
                                 std::span<const std::uint32_t> changed,
                                 const DetectionConfig& config,
                                 std::vector<AmplitudeChange>& amp_changes) {
  if (changed.empty()) return;
  require_normalized(trace, "repair_variation_amplitudes");
  const std::size_t count = trace.events.size();
  const double* norm = trace.normalized_power.data();
  double* amp = trace.variation_amplitude.data();
  std::uint32_t* peak = trace.run_peak_index.data();
  std::uint32_t* dep = trace.run_dep_end.data();
  double* peak_power = trace.run_peak_power.data();

  // V_j depends exactly on norm[j .. run_dep_end[j]]: the scan that
  // produced it inspected those values and no others, and it is
  // deterministic in them.  So V_j can only have moved when some changed
  // position lands inside that window — walk j upward with a two-pointer
  // over the ascending changed list and recompute exactly those
  // amplitudes.  A recomputed V_j also refreshes its own window, keeping
  // the invariant for the next snapshot.  Positions after the last
  // changed index can never be affected (their windows start after it).
  //
  // A step budget bounds the degenerate regime: on a long monotone ramp
  // every window reaches the ramp's end and the per-window walks turn
  // O(n^2) — exactly what the one-pass scan exists to avoid.  Past the
  // budget, rescan the whole lane in O(n), diffing against the pre-change
  // values inline: indices this loop already repaired reproduce their
  // repaired values bitwise and diff to nothing, indices past the last
  // changed position are provably unchanged, so amp_changes picks up
  // exactly the remaining movements.
  const std::uint32_t last_changed = changed.back();
  std::size_t next_changed = 0;
  std::size_t walked = 0;
  const std::size_t budget = 4 * count + 64;
  for (std::uint32_t j = 0; j <= last_changed; ++j) {
    while (changed[next_changed] < j) ++next_changed;
    if (changed[next_changed] > dep[j]) continue;  // window unperturbed
    if (walked > budget) {
      scan_amplitudes<true>(trace, config, local_scratch(), &amp_changes);
      return;
    }
    const double old_amp = amp[j];
    detail::amplitude_at_reference(norm, count, j, config, amp, peak, dep,
                                   peak_power);
    walked += dep[j] - j;
    if (amp[j] != old_amp) {
      amp_changes.push_back({j, old_amp, amp[j]});
    }
  }
}

void detect_manifestation_points(AnalyzedTrace& trace,
                                 const DetectionConfig& config) {
  if (clear_if_empty(trace, config)) return;
  // Quartiles by selection straight off the amplitude lane: O(n), no
  // copy, no full sort, bitwise equal to the sorted path (order
  // statistics are multiset values).
  detect_with_quartiles(trace, config,
                        stats::quartiles_select(trace.variation_amplitude));
}

void detect_manifestation_points(AnalyzedTrace& trace,
                                 const DetectionConfig& config,
                                 std::vector<double>& sorted_scratch) {
  if (clear_if_empty(trace, config)) {
    sorted_scratch.clear();
    return;
  }
  // The fully sorted copy costs O(n log n) but is part of this overload's
  // contract: the caller may keep it as an order-statistic cache
  // (core/fleet_analyzer.h) and maintain it by remove/insert afterwards.
  sorted_scratch.resize(trace.variation_amplitude.size());
  std::memcpy(sorted_scratch.data(), trace.variation_amplitude.data(),
              trace.variation_amplitude.size() * sizeof(double));
  std::sort(sorted_scratch.begin(), sorted_scratch.end());
  detect_with_quartiles(trace, config, stats::quartiles_sorted(sorted_scratch));
}

void redetect_manifestation_points(AnalyzedTrace& trace,
                                   const DetectionConfig& config,
                                   std::span<const double> sorted_amplitudes) {
  if (clear_if_empty(trace, config)) return;
  detect_with_quartiles(trace, config,
                        stats::quartiles_sorted(sorted_amplitudes));
}

void detect_trace(AnalyzedTrace& trace, const DetectionConfig& config) {
  detect_trace(trace, config, local_scratch());
}

void detect_trace(AnalyzedTrace& trace, const DetectionConfig& config,
                  DetectionScratch& scratch) {
  attribute_variation_amplitude(trace, config, scratch);
  detect_manifestation_points(trace, config);
}

void detect_trace(AnalyzedTrace& trace, const DetectionConfig& config,
                  std::vector<double>& sorted_scratch) {
  attribute_variation_amplitude(trace, config);
  detect_manifestation_points(trace, config, sorted_scratch);
}

void detect_all(std::vector<AnalyzedTrace>& traces,
                const DetectionConfig& config,
                common::ThreadPool* pool) {
  require(config.fence_iqr_multiplier >= 0.0,
          "detect_all: fence multiplier must be non-negative");
  if (pool == nullptr || pool->size() <= 1 || traces.size() <= 1) {
    // One scratch hoisted across the whole fleet: no per-trace allocation
    // and no per-trace thread_local lookup (the latter cost ~7% of
    // BM_Step4Detection on small traces; see BENCH_pipeline.json).
    DetectionScratch scratch;
    for (AnalyzedTrace& trace : traces) detect_trace(trace, config, scratch);
  } else {
    pool->parallel_for(0, traces.size(),
                       [&](std::size_t i) { detect_trace(traces[i], config); });
  }
}

}  // namespace edx::core
