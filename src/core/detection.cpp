#include "core/detection.h"

#include <algorithm>

#include "common/error.h"
#include "common/stats.h"

namespace edx::core {

void attribute_variation_amplitude(AnalyzedTrace& trace,
                                   const DetectionConfig& config) {
  const std::size_t count = trace.events.size();
  for (std::size_t i = 0; i < count; ++i) {
    PoweredEvent& event = trace.events[i];
    event.run_peak_index = i;
    if (i + 1 >= count) {
      event.variation_amplitude = 0.0;
      continue;
    }
    const double single_step =
        trace.events[i + 1].normalized_power - event.normalized_power;
    event.run_peak_index = i + 1;
    if (!config.extend_monotone_runs || single_step <= 0.0) {
      // "If the normalized power keeps increasing from the i-th instance":
      // the run must rise from instance i itself, otherwise V_i is the
      // plain single-step difference.
      event.variation_amplitude = single_step;
      continue;
    }
    // Walk forward while normalized power keeps increasing, bridging at
    // most `run_dip_tolerance` consecutive flat/dipping steps (sampling
    // staircase), provided power stays at or above the run's start.  The
    // amplitude is measured to the highest point of the run.
    const double start = event.normalized_power;
    std::size_t end = i + 1;
    double peak = trace.events[end].normalized_power;
    std::size_t peak_index = end;
    std::size_t dips = 0;
    while (end + 1 < count) {
      const double current = trace.events[end].normalized_power;
      const double next = trace.events[end + 1].normalized_power;
      if (next > current) {
        ++end;
        if (next > peak) {
          peak = next;
          peak_index = end;
        }
      } else if (next == current) {
        // Events in the same sample window read identical power; bridging
        // them costs nothing.
        ++end;
      } else if (dips < config.run_dip_tolerance && next >= start &&
                 current - next <=
                     config.run_dip_fraction * (peak - start)) {
        ++end;
        ++dips;
      } else {
        break;
      }
    }
    event.variation_amplitude = peak - start;
    event.run_peak_index = peak_index;
  }
}

void detect_manifestation_points(AnalyzedTrace& trace,
                                 const DetectionConfig& config) {
  trace.manifestation_indices.clear();
  if (trace.events.empty()) {
    trace.amplitude_quartiles = {};
    trace.outlier_fence = config.min_amplitude;
    return;
  }

  // The scratch copy exists only for the quartiles; sorting it in place
  // avoids a second copy inside stats::quartiles().  The detection loop
  // below reads the amplitudes from the events, which stay in order.
  // thread_local so re-detecting a whole fleet (snapshot refresh, batch
  // Step 4) allocates once per worker, not once per trace.
  thread_local std::vector<double> amplitudes;
  amplitudes.clear();
  amplitudes.reserve(trace.events.size());
  for (const PoweredEvent& event : trace.events) {
    amplitudes.push_back(event.variation_amplitude);
  }
  std::sort(amplitudes.begin(), amplitudes.end());
  trace.amplitude_quartiles = stats::quartiles_sorted(amplitudes);
  const double iqr_fence =
      trace.amplitude_quartiles.q3 +
      config.fence_iqr_multiplier * trace.amplitude_quartiles.iqr();
  trace.outlier_fence = std::max(iqr_fence, config.min_amplitude);

  const auto is_sustained = [&](std::size_t i) {
    if (!config.require_sustained) return true;
    const PoweredEvent& event = trace.events[i];
    const double start = event.normalized_power;
    const double midpoint = start + 0.5 * event.variation_amplitude;
    const std::size_t peak = event.run_peak_index;
    const TimestampMs window_end =
        trace.events[peak].interval.begin + config.sustain_window_ms;
    double total = 0.0;
    std::size_t counted = 0;
    for (std::size_t j = peak; j < trace.events.size(); ++j) {
      if (trace.events[j].interval.begin > window_end) break;
      total += trace.events[j].normalized_power;
      ++counted;
    }
    if (counted <= 1) {
      // Nothing else begins inside the window (the app went quiet).  Judge
      // by the next recorded observation alone — averaging it with the
      // peak would always land exactly on the midpoint and never reject.
      if (peak + 1 >= trace.events.size()) return true;  // trace edge
      return trace.events[peak + 1].normalized_power >= midpoint;
    }
    return total / static_cast<double>(counted) >= midpoint;
  };

  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    if (trace.events[i].variation_amplitude > trace.outlier_fence &&
        trace.events[trace.events[i].run_peak_index].normalized_power >=
            config.min_peak_level &&
        is_sustained(i)) {
      trace.manifestation_indices.push_back(i);
    }
  }
}

void detect_trace(AnalyzedTrace& trace, const DetectionConfig& config) {
  attribute_variation_amplitude(trace, config);
  detect_manifestation_points(trace, config);
}

void detect_all(std::vector<AnalyzedTrace>& traces,
                const DetectionConfig& config,
                common::ThreadPool* pool) {
  require(config.fence_iqr_multiplier >= 0.0,
          "detect_all: fence multiplier must be non-negative");
  if (pool == nullptr || pool->size() <= 1 || traces.size() <= 1) {
    for (AnalyzedTrace& trace : traces) detect_trace(trace, config);
  } else {
    pool->parallel_for(0, traces.size(),
                       [&](std::size_t i) { detect_trace(traces[i], config); });
  }
}

}  // namespace edx::core
