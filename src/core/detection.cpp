#include "core/detection.h"

#include <algorithm>
#include <cstring>

#include "common/error.h"
#include "common/stats.h"

namespace edx::core {

namespace {

/// Recomputes the amplitude of the single instance `i` from the normalized
/// lane, writing the amplitude/peak/dependency lanes at `i`.  Shared by
/// the full pass and the incremental repair so both produce bit-identical
/// values by construction.
inline void amplitude_at(const double* norm, std::size_t count, std::size_t i,
                         const DetectionConfig& config, double* amp,
                         std::uint32_t* peak, std::uint32_t* dep) {
  if (i + 1 >= count) {
    amp[i] = 0.0;
    peak[i] = static_cast<std::uint32_t>(i);
    dep[i] = static_cast<std::uint32_t>(i);
    return;
  }
  const double single_step = norm[i + 1] - norm[i];
  if (!config.extend_monotone_runs || single_step <= 0.0) {
    // "If the normalized power keeps increasing from the i-th instance":
    // the run must rise from instance i itself, otherwise V_i is the
    // plain single-step difference.
    amp[i] = single_step;
    peak[i] = static_cast<std::uint32_t>(i + 1);
    dep[i] = static_cast<std::uint32_t>(i + 1);
    return;
  }
  // Walk forward while normalized power keeps increasing, bridging at
  // most `run_dip_tolerance` flat/dipping steps (sampling staircase),
  // provided power stays at or above the run's start.  The amplitude is
  // measured to the highest point of the run.
  const double start = norm[i];
  std::size_t end = i + 1;
  double run_peak = norm[end];
  std::size_t peak_index = end;
  std::size_t dips = 0;
  while (end + 1 < count) {
    const double current = norm[end];
    const double next = norm[end + 1];
    if (next > current) {
      ++end;
      if (next > run_peak) {
        run_peak = next;
        peak_index = end;
      }
    } else if (next == current) {
      // Events in the same sample window read identical power; bridging
      // them costs nothing.
      ++end;
    } else if (dips < config.run_dip_tolerance && next >= start &&
               current - next <= config.run_dip_fraction * (run_peak - start)) {
      ++end;
      ++dips;
    } else {
      break;
    }
  }
  amp[i] = run_peak - start;
  peak[i] = static_cast<std::uint32_t>(peak_index);
  // The scan inspected normalized powers up to norm[end + 1] (the value
  // that ended the run), capped at the last instance when the run ran off
  // the trace edge.
  dep[i] = static_cast<std::uint32_t>(std::min(end + 1, count - 1));
}

/// Quartiles + fence + the outlier decision loop, from an already-sorted
/// amplitude multiset.  The decision loop reads the contiguous lanes; the
/// per-candidate sustain check is the only strided access left.
void detect_from_sorted(AnalyzedTrace& trace, const DetectionConfig& config,
                        std::span<const double> sorted_amplitudes) {
  trace.amplitude_quartiles = stats::quartiles_sorted(sorted_amplitudes);
  const double iqr_fence =
      trace.amplitude_quartiles.q3 +
      config.fence_iqr_multiplier * trace.amplitude_quartiles.iqr();
  trace.outlier_fence = std::max(iqr_fence, config.min_amplitude);

  const std::size_t count = trace.events.size();
  const double* norm = trace.normalized_power.data();
  const double* amp = trace.variation_amplitude.data();
  const std::uint32_t* peak = trace.run_peak_index.data();

  const auto is_sustained = [&](std::size_t i) {
    if (!config.require_sustained) return true;
    const double start = norm[i];
    const double midpoint = start + 0.5 * amp[i];
    const std::size_t peak_index = peak[i];
    const TimestampMs window_end =
        trace.events[peak_index].interval.begin + config.sustain_window_ms;
    double total = 0.0;
    std::size_t counted = 0;
    for (std::size_t j = peak_index; j < count; ++j) {
      if (trace.events[j].interval.begin > window_end) break;
      total += norm[j];
      ++counted;
    }
    if (counted <= 1) {
      // Nothing else begins inside the window (the app went quiet).  Judge
      // by the next recorded observation alone — averaging it with the
      // peak would always land exactly on the midpoint and never reject.
      if (peak_index + 1 >= count) return true;  // trace edge
      return norm[peak_index + 1] >= midpoint;
    }
    return total / static_cast<double>(counted) >= midpoint;
  };

  trace.manifestation_indices.clear();
  const double fence = trace.outlier_fence;
  for (std::size_t i = 0; i < count; ++i) {
    if (amp[i] > fence && norm[peak[i]] >= config.min_peak_level &&
        is_sustained(i)) {
      trace.manifestation_indices.push_back(i);
    }
  }
}

void require_normalized(const AnalyzedTrace& trace, const char* who) {
  if (trace.normalized_power.size() != trace.events.size()) {
    throw AnalysisError(std::string(who) +
                        ": normalized_power lane not filled (run Step 3 "
                        "before Step 4)");
  }
}

}  // namespace

void attribute_variation_amplitude(AnalyzedTrace& trace,
                                   const DetectionConfig& config) {
  require_normalized(trace, "attribute_variation_amplitude");
  const std::size_t count = trace.events.size();
  trace.variation_amplitude.resize(count);
  trace.run_peak_index.resize(count);
  trace.run_dep_end.resize(count);
  const double* norm = trace.normalized_power.data();
  double* amp = trace.variation_amplitude.data();
  std::uint32_t* peak = trace.run_peak_index.data();
  std::uint32_t* dep = trace.run_dep_end.data();
  for (std::size_t i = 0; i < count; ++i) {
    amplitude_at(norm, count, i, config, amp, peak, dep);
  }
}

void repair_variation_amplitudes(AnalyzedTrace& trace,
                                 std::span<const std::uint32_t> changed,
                                 const DetectionConfig& config,
                                 std::vector<AmplitudeChange>& amp_changes) {
  if (changed.empty()) return;
  require_normalized(trace, "repair_variation_amplitudes");
  const std::size_t count = trace.events.size();
  const double* norm = trace.normalized_power.data();
  double* amp = trace.variation_amplitude.data();
  std::uint32_t* peak = trace.run_peak_index.data();
  std::uint32_t* dep = trace.run_dep_end.data();

  // V_j depends exactly on norm[j .. run_dep_end[j]]: the scan that
  // produced it inspected those values and no others, and it is
  // deterministic in them.  So V_j can only have moved when some changed
  // position lands inside that window — walk j upward with a two-pointer
  // over the ascending changed list and recompute exactly those
  // amplitudes.  A recomputed V_j also refreshes its own window, keeping
  // the invariant for the next snapshot.  Positions after the last
  // changed index can never be affected (their windows start after it).
  const std::uint32_t last_changed = changed.back();
  std::size_t next_changed = 0;
  for (std::uint32_t j = 0; j <= last_changed; ++j) {
    while (changed[next_changed] < j) ++next_changed;
    if (changed[next_changed] > dep[j]) continue;  // window unperturbed
    const double old_amp = amp[j];
    amplitude_at(norm, count, j, config, amp, peak, dep);
    if (amp[j] != old_amp) {
      amp_changes.push_back({j, old_amp, amp[j]});
    }
  }
}

void detect_manifestation_points(AnalyzedTrace& trace,
                                 const DetectionConfig& config) {
  thread_local std::vector<double> scratch;
  detect_manifestation_points(trace, config, scratch);
}

void detect_manifestation_points(AnalyzedTrace& trace,
                                 const DetectionConfig& config,
                                 std::vector<double>& sorted_scratch) {
  if (trace.events.empty()) {
    trace.manifestation_indices.clear();
    trace.amplitude_quartiles = {};
    trace.outlier_fence = config.min_amplitude;
    sorted_scratch.clear();
    return;
  }
  // The scratch copy exists only for the quartiles; sorting it avoids
  // disturbing the in-order amplitude lane the decision loop reads.  The
  // caller may keep the sorted copy as an order-statistic cache
  // (core/fleet_analyzer.h) and maintain it by remove/insert afterwards.
  sorted_scratch.resize(trace.variation_amplitude.size());
  std::memcpy(sorted_scratch.data(), trace.variation_amplitude.data(),
              trace.variation_amplitude.size() * sizeof(double));
  std::sort(sorted_scratch.begin(), sorted_scratch.end());
  detect_from_sorted(trace, config, sorted_scratch);
}

void redetect_manifestation_points(AnalyzedTrace& trace,
                                   const DetectionConfig& config,
                                   std::span<const double> sorted_amplitudes) {
  if (trace.events.empty()) {
    trace.manifestation_indices.clear();
    trace.amplitude_quartiles = {};
    trace.outlier_fence = config.min_amplitude;
    return;
  }
  detect_from_sorted(trace, config, sorted_amplitudes);
}

void detect_trace(AnalyzedTrace& trace, const DetectionConfig& config) {
  attribute_variation_amplitude(trace, config);
  detect_manifestation_points(trace, config);
}

void detect_trace(AnalyzedTrace& trace, const DetectionConfig& config,
                  std::vector<double>& sorted_scratch) {
  attribute_variation_amplitude(trace, config);
  detect_manifestation_points(trace, config, sorted_scratch);
}

void detect_all(std::vector<AnalyzedTrace>& traces,
                const DetectionConfig& config,
                common::ThreadPool* pool) {
  require(config.fence_iqr_multiplier >= 0.0,
          "detect_all: fence multiplier must be non-negative");
  if (pool == nullptr || pool->size() <= 1 || traces.size() <= 1) {
    // One scratch buffer hoisted across the whole fleet: no per-trace
    // allocation and no per-trace thread_local lookup (the latter cost
    // ~7% of BM_Step4Detection on small traces; see BENCH_pipeline.json).
    std::vector<double> scratch;
    for (AnalyzedTrace& trace : traces) detect_trace(trace, config, scratch);
  } else {
    pool->parallel_for(0, traces.size(),
                       [&](std::size_t i) { detect_trace(traces[i], config); });
  }
}

}  // namespace edx::core
