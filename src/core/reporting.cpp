#include "core/reporting.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/error.h"
#include "common/event_symbols.h"

namespace edx::core {

DiagnosisReport report_problematic_events(
    std::span<const AnalyzedTrace> traces, const ReportingConfig& config) {
  require(config.developer_reported_fraction >= 0.0 &&
              config.developer_reported_fraction <= 1.0,
          "report_problematic_events: reported fraction must be in [0,1]");

  DiagnosisReport report;
  report.total_traces = traces.size();

  // Event -> set of users whose trace has it inside a manifestation window,
  // plus the distances from the window's point (for tie-breaking).  The
  // accumulators are a flat id-indexed vector (every id in `traces` is
  // below the global table's current size); `touched` records which slots
  // are live so the output loop skips the untouched majority.
  struct Accumulator {
    std::set<UserId> users;
    double distance_total{0.0};
    std::size_t occurrences{0};
  };
  std::vector<Accumulator> impacted_by(EventSymbolTable::global().size());
  std::vector<EventId> touched;
  for (const AnalyzedTrace& trace : traces) {
    if (!trace.manifestation_indices.empty()) {
      ++report.traces_with_manifestation;
    }
    for (std::size_t point : trace.manifestation_indices) {
      const std::size_t lo =
          point >= config.window_size ? point - config.window_size : 0;
      const std::size_t hi =
          std::min(trace.events.size(), point + config.window_size + 1);
      for (std::size_t i = lo; i < hi; ++i) {
        Accumulator& accumulator = impacted_by[trace.events[i].id];
        if (accumulator.occurrences == 0) {
          touched.push_back(trace.events[i].id);
        }
        accumulator.users.insert(trace.user);
        accumulator.distance_total +=
            static_cast<double>(i > point ? i - point : point - i);
        ++accumulator.occurrences;
      }
    }
  }

  report.ranked_events.reserve(touched.size());
  for (EventId id : touched) {
    const Accumulator& accumulator = impacted_by[id];
    ReportedEvent event;
    event.name = event_name(id);
    event.impacted_traces = accumulator.users.size();
    event.impacted_fraction =
        traces.empty() ? 0.0
                       : static_cast<double>(accumulator.users.size()) /
                             static_cast<double>(traces.size());
    event.mean_point_distance =
        accumulator.occurrences == 0
            ? 0.0
            : accumulator.distance_total /
                  static_cast<double>(accumulator.occurrences);
    report.ranked_events.push_back(std::move(event));
  }

  // The comparator ends in a name comparison and names are unique, so the
  // order is total: the sorted output is independent of the (id-order vs
  // name-order) accumulation order above.
  const double target = config.developer_reported_fraction;
  std::sort(report.ranked_events.begin(), report.ranked_events.end(),
            [&](const ReportedEvent& a, const ReportedEvent& b) {
              const double da = std::abs(a.impacted_fraction - target);
              const double db = std::abs(b.impacted_fraction - target);
              if (da != db) return da < db;
              if (a.mean_point_distance != b.mean_point_distance) {
                return a.mean_point_distance < b.mean_point_distance;
              }
              if (a.impacted_fraction != b.impacted_fraction) {
                return a.impacted_fraction > b.impacted_fraction;
              }
              return a.name < b.name;
            });

  for (std::size_t i = 0; i < report.ranked_events.size(); ++i) {
    const ReportedEvent& event = report.ranked_events[i];
    if (i < config.min_top_k ||
        std::abs(event.impacted_fraction - target) <=
            config.diagnosis_tolerance) {
      report.diagnosis_events.push_back(event.name);
    }
  }
  return report;
}

}  // namespace edx::core
