#include "core/normalization.h"

#include <algorithm>
#include <map>

#include "common/error.h"

namespace edx::core {

double base_power(const EventRanking& ranking, const EventName& name,
                  const NormalizationConfig& config) {
  const double base =
      ranking.distribution(name).percentile(config.base_percentile);
  return std::max(base, config.min_base_power_mw);
}

void normalize_events(std::vector<AnalyzedTrace>& traces,
                      const EventRanking& ranking,
                      const NormalizationConfig& config) {
  require(config.base_percentile >= 0.0 && config.base_percentile <= 100.0,
          "normalize_events: base percentile out of range");
  require(config.min_base_power_mw > 0.0,
          "normalize_events: min base power must be positive");
  // The percentile computation sorts the event's distribution; compute
  // each event's base once, not once per instance.
  std::map<EventName, double> bases;
  for (const auto& [name, distribution] : ranking.all()) {
    bases[name] = std::max(distribution.percentile(config.base_percentile),
                           config.min_base_power_mw);
  }
  for (AnalyzedTrace& trace : traces) {
    for (PoweredEvent& event : trace.events) {
      event.normalized_power = event.raw_power / bases.at(event.name);
    }
  }
}

}  // namespace edx::core
