#include "core/normalization.h"

#include <algorithm>
#include <unordered_map>

#include "common/error.h"

namespace edx::core {

double base_power(const EventRanking& ranking, const EventName& name,
                  const NormalizationConfig& config) {
  const double base =
      ranking.distribution(name).percentile(config.base_percentile);
  return std::max(base, config.min_base_power_mw);
}

void normalize_events(std::vector<AnalyzedTrace>& traces,
                      const EventRanking& ranking,
                      const NormalizationConfig& config,
                      common::ThreadPool* pool) {
  require(config.base_percentile >= 0.0 && config.base_percentile <= 100.0,
          "normalize_events: base percentile out of range");
  require(config.min_base_power_mw > 0.0,
          "normalize_events: min base power must be positive");
  // Compute each event's base once, not once per instance; the hashed map
  // keeps the per-instance lookup below cheap on the hot path.
  std::unordered_map<EventName, double> bases;
  for (const auto& [name, distribution] : ranking.all()) {
    bases[name] = std::max(distribution.percentile(config.base_percentile),
                           config.min_base_power_mw);
  }
  const auto normalize_trace = [&bases](AnalyzedTrace& trace) {
    for (PoweredEvent& event : trace.events) {
      event.normalized_power = event.raw_power / bases.at(event.name);
    }
  };
  if (pool == nullptr || pool->size() <= 1 || traces.size() <= 1) {
    for (AnalyzedTrace& trace : traces) normalize_trace(trace);
  } else {
    pool->parallel_for(0, traces.size(),
                       [&](std::size_t i) { normalize_trace(traces[i]); });
  }
}

}  // namespace edx::core
