#include "core/normalization.h"

#include <algorithm>

#include "common/error.h"

namespace edx::core {

double base_power(const EventRanking& ranking, EventId id,
                  const NormalizationConfig& config) {
  const double base = ranking.distribution(id).percentile(
      config.base_percentile);
  return std::max(base, config.min_base_power_mw);
}

double base_power(const EventRanking& ranking, std::string_view name,
                  const NormalizationConfig& config) {
  return base_power(ranking, ranking.distribution(name).id(), config);
}

double base_power_of(const EventPowerDistribution& distribution,
                     const NormalizationConfig& config) {
  if (distribution.instance_count() == 0) return 0.0;
  return std::max(distribution.percentile(config.base_percentile),
                  config.min_base_power_mw);
}

std::vector<double> event_base_powers(const EventRanking& ranking,
                                      const NormalizationConfig& config) {
  require(config.base_percentile >= 0.0 && config.base_percentile <= 100.0,
          "normalize_events: base percentile out of range");
  require(config.min_base_power_mw > 0.0,
          "normalize_events: min base power must be positive");
  // Compute each event's base once, not once per instance, into a flat
  // id-indexed vector: the per-instance lookup in normalize_trace is a
  // plain array index.  Ids without a distribution keep base 0 as an
  // "absent" marker.
  std::vector<double> bases(ranking.all().size(), 0.0);
  for (const EventPowerDistribution& distribution : ranking.all()) {
    if (distribution.instance_count() == 0) continue;
    bases[distribution.id()] = base_power_of(distribution, config);
  }
  return bases;
}

void normalize_trace(AnalyzedTrace& trace, std::span<const double> bases) {
  const std::size_t count = trace.events.size();
  trace.normalized_power.resize(count);
  const PoweredEvent* events = trace.events.data();
  double* norm = trace.normalized_power.data();
  // One fused pass: gather the instance's base, divide, store.  The
  // missing-base check leaves the hot path as a running minimum — a base
  // is invalid exactly when it is <= 0, so a positive minimum clears the
  // whole trace at once and the offender is located on the (throwing)
  // slow path only.  A split gather-then-divide structure (dense,
  // vectorizable divide lane) measured *slower* here: the strided gather
  // dominates, and the split doubles the lane traffic (DESIGN.md §12).
  double min_base = 1.0;
  const std::size_t id_bound = bases.size();
  for (std::size_t i = 0; i < count; ++i) {
    const double base = events[i].id < id_bound ? bases[events[i].id] : 0.0;
    min_base = std::min(min_base, base);
    norm[i] = events[i].raw_power / base;
  }
  if (min_base <= 0.0) {
    for (std::size_t i = 0; i < count; ++i) {
      const double base = events[i].id < id_bound ? bases[events[i].id] : 0.0;
      if (base <= 0.0) {
        throw AnalysisError("normalize_events: no distribution for event '" +
                            events[i].name() + "'");
      }
    }
  }
}

void renormalize_instances(AnalyzedTrace& trace,
                           std::span<const std::uint32_t> positions,
                           double base,
                           std::vector<std::uint32_t>& changed) {
  require(base > 0.0, "renormalize_instances: base must be positive");
  require(trace.normalized_power.size() == trace.events.size(),
          "renormalize_instances: normalized_power lane not filled");
  double* norm = trace.normalized_power.data();
  for (std::uint32_t position : positions) {
    // Same expression as normalize_trace — one IEEE division — so the
    // scattered value is bit-identical to a full renormalization.
    const double value = trace.events[position].raw_power / base;
    if (value != norm[position]) {
      norm[position] = value;
      changed.push_back(position);
    }
  }
}

void normalize_events(std::vector<AnalyzedTrace>& traces,
                      const EventRanking& ranking,
                      const NormalizationConfig& config,
                      common::ThreadPool* pool) {
  const std::vector<double> bases = event_base_powers(ranking, config);
  if (pool == nullptr || pool->size() <= 1 || traces.size() <= 1) {
    for (AnalyzedTrace& trace : traces) normalize_trace(trace, bases);
  } else {
    pool->parallel_for(0, traces.size(), [&](std::size_t i) {
      normalize_trace(traces[i], bases);
    });
  }
}

}  // namespace edx::core
