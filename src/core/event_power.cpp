#include "core/event_power.h"

namespace edx::core {

AnalyzedTrace estimate_event_power(const trace::TraceBundle& bundle) {
  AnalyzedTrace analyzed;
  analyzed.user = bundle.user;
  for (const trace::EventInstance& instance : bundle.events.instances()) {
    PoweredEvent event;
    event.name = instance.event;
    event.interval = instance.interval;
    // Short callbacks (a few ms) sit inside one 500 ms sample window; long
    // instances (Idle chunks) span several and get the weighted average.
    TimeInterval lookup = instance.interval;
    if (lookup.empty()) lookup.end = lookup.begin + 1;
    event.raw_power = bundle.utilization.average_power(lookup);
    analyzed.events.push_back(std::move(event));
  }
  return analyzed;
}

std::vector<AnalyzedTrace> estimate_event_power(
    const std::vector<trace::TraceBundle>& bundles) {
  std::vector<AnalyzedTrace> traces;
  traces.reserve(bundles.size());
  for (const trace::TraceBundle& bundle : bundles) {
    traces.push_back(estimate_event_power(bundle));
  }
  return traces;
}

}  // namespace edx::core
