#include "core/event_power.h"

namespace edx::core {

AnalyzedTrace estimate_event_power(const trace::TraceBundle& bundle) {
  AnalyzedTrace analyzed;
  analyzed.user = bundle.user;
  // instances() pairs and sorts the raw records on every call — do it once.
  const std::vector<trace::EventInstance> instances =
      bundle.events.instances();
  analyzed.events.reserve(instances.size());
  // Instances are chronological, so the cursor's amortized-O(1) lookups
  // replace a search per instance (same results either way).
  trace::AveragePowerCursor cursor(bundle.utilization);
  for (const trace::EventInstance& instance : instances) {
    PoweredEvent& event = analyzed.events.emplace_back();
    event.id = instance.event;
    event.interval = instance.interval;
    // Short callbacks (a few ms) sit inside one 500 ms sample window; long
    // instances (Idle chunks) span several and get the weighted average.
    TimeInterval lookup = instance.interval;
    if (lookup.empty()) lookup.end = lookup.begin + 1;
    event.raw_power = cursor.average_power(lookup);
  }
  return analyzed;
}

std::vector<AnalyzedTrace> estimate_event_power(
    std::span<const trace::TraceBundle> bundles, common::ThreadPool* pool) {
  std::vector<AnalyzedTrace> traces(bundles.size());
  if (pool == nullptr || pool->size() <= 1 || bundles.size() <= 1) {
    for (std::size_t i = 0; i < bundles.size(); ++i) {
      traces[i] = estimate_event_power(bundles[i]);
    }
  } else {
    pool->parallel_for(0, bundles.size(), [&](std::size_t i) {
      traces[i] = estimate_event_power(bundles[i]);
    });
  }
  return traces;
}

}  // namespace edx::core
