// Step 3 — Event Normalization.
//
// Each instance's power is divided by its event's *base power* — the 10th
// percentile of the event's power across all traces.  The base represents
// the event's "typical" cost, so the normalized value says "how many times
// its normal self is this instance?".  Instances untouched by the ABD land
// near 1.0 regardless of how expensive the event intrinsically is;
// instances inflated by a concurrent ABD stand well above.  The 10th
// percentile (rather than the minimum) absorbs downward estimation noise
// from the tracker.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "common/thread_pool.h"
#include "core/analysis_types.h"
#include "core/ranking.h"

namespace edx::core {

struct NormalizationConfig {
  /// Percentile of an event's power distribution used as base.  The paper
  /// uses 10 and notes "this value can be adjusted for different training
  /// sets".  Our default is 25, bracketed by two failure modes the sweep
  /// in bench_ablation_normbase quantifies:
  ///  - too low (5-10): under 500 ms sampling, the instances of lifecycle
  ///    events that immediately precede a backgrounding share their sample
  ///    window with display-off time; those context-skewed low instances
  ///    capture the low percentiles and inflate every ordinary instance's
  ///    normalized power (false manifestation points);
  ///  - too high (50+): when the ABD impacts a large share of an event's
  ///    instances (high trigger fraction, or several bugs at once), the
  ///    base absorbs the anomaly and normalizes it away (missed points).
  double base_percentile{25.0};
  /// Floor on the base so near-zero-power events (an idle marker before
  /// anything is leaking) do not blow up the ratio.
  PowerMw min_base_power_mw{1.0};
};

/// Fills `normalized_power` on every instance of every trace, in place.
/// The per-event bases are computed once up front into a flat id-indexed
/// vector; with a pool the traces are then normalized in parallel (each
/// trace touched by exactly one task, reading the shared base vector),
/// identical to the sequential loop.
void normalize_events(std::vector<AnalyzedTrace>& traces,
                      const EventRanking& ranking,
                      const NormalizationConfig& config = {},
                      common::ThreadPool* pool = nullptr);

/// Incremental entry points (core/fleet_analyzer.h): the two halves of
/// normalize_events, so a caller holding pre-built state can recompute
/// just the bases that changed and renormalize just the traces that
/// contain them.
///
/// The flat id-indexed base-power table: slot `id` holds the event's base
/// under `config`, 0.0 marks an event with no recorded instances.
/// Validates `config` (throws InvalidArgument when out of range).
std::vector<double> event_base_powers(const EventRanking& ranking,
                                      const NormalizationConfig& config = {});
/// Recomputes the base of a single distribution (0.0 when empty) — what
/// event_base_powers() puts in the event's slot, for one event.
double base_power_of(const EventPowerDistribution& distribution,
                     const NormalizationConfig& config = {});
/// Fills the trace's `normalized_power` lane from a pre-built base table
/// in one fused gather-divide pass.  Throws AnalysisError on an instance
/// whose event has no base (slot missing or 0.0).
void normalize_trace(AnalyzedTrace& trace, std::span<const double> bases);
/// Scatter renormalization (core/fleet_analyzer.h): rewrites the
/// normalized powers at `positions` — one event's instances within the
/// trace — against that event's new `base`, leaving every other instance
/// untouched.  The written values are bit-identical to what a full
/// normalize_trace() against the same base table would produce.  Appends
/// the positions whose value actually moved to `changed` (not cleared);
/// an unchanged division (base moved but the quotient rounds to the same
/// double) is skipped, so downstream repair work is keyed on real value
/// movement, not on base-table churn.
void renormalize_instances(AnalyzedTrace& trace,
                           std::span<const std::uint32_t> positions,
                           double base, std::vector<std::uint32_t>& changed);

/// Base power used for the event with id `id` under `config`.
double base_power(const EventRanking& ranking, EventId id,
                  const NormalizationConfig& config = {});
/// Convenience: resolves `name` through the global symbol table first.
double base_power(const EventRanking& ranking, std::string_view name,
                  const NormalizationConfig& config = {});

}  // namespace edx::core
