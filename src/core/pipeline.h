// ManifestationAnalyzer — the public façade over the 5-step analysis.
//
//   Step 1  estimate_event_power   (core/event_power.h)
//   Step 2  EventRanking::build    (core/ranking.h)
//   Step 3  normalize_events       (core/normalization.h)
//   Step 4  detect_all             (core/detection.h)
//   Step 5  report_problematic_events (core/reporting.h)
//
// run() executes all five on a collection of trace bundles and returns
// both the final report and the fully-annotated per-trace data (for the
// per-step figures and ablations).
#pragma once

#include <span>
#include <vector>

#include "core/detection.h"
#include "core/event_power.h"
#include "core/normalization.h"
#include "core/ranking.h"
#include "core/reporting.h"

namespace edx::core {

/// Full pipeline configuration.
struct AnalysisConfig {
  NormalizationConfig normalization;
  DetectionConfig detection;
  ReportingConfig reporting;
  /// Worker threads for the parallel steps (1, 2, 3 and 4 shard across
  /// trace bundles).  0 = one per hardware thread; 1 = the plain
  /// sequential path (the reference for tests).  Results are identical —
  /// byte for byte — for every value; see DESIGN.md §7.
  std::size_t num_threads{0};
};

/// Everything the pipeline produced.
struct AnalysisResult {
  std::vector<AnalyzedTrace> traces;  ///< annotated by steps 1, 3, 4
  EventRanking ranking;               ///< step 2
  DiagnosisReport report;             ///< step 5
};

class ManifestationAnalyzer {
 public:
  explicit ManifestationAnalyzer(AnalysisConfig config = {});

  [[nodiscard]] const AnalysisConfig& config() const { return config_; }

  /// Runs the full pipeline.  Throws AnalysisError when `bundles` is
  /// empty.  Takes a span so callers with deques or subranges (and the
  /// FleetAnalyzer internals) don't copy into a vector first.
  [[nodiscard]] AnalysisResult run(
      std::span<const trace::TraceBundle> bundles) const;
  /// Thin overload for the common vector-holding caller.
  [[nodiscard]] AnalysisResult run(
      const std::vector<trace::TraceBundle>& bundles) const {
    return run(std::span<const trace::TraceBundle>(bundles));
  }

 private:
  AnalysisConfig config_;
};

}  // namespace edx::core
