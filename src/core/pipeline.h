// ManifestationAnalyzer — the public façade over the 5-step analysis.
//
//   Step 1  estimate_event_power   (core/event_power.h)
//   Step 2  EventRanking::build    (core/ranking.h)
//   Step 3  normalize_events       (core/normalization.h)
//   Step 4  detect_all             (core/detection.h)
//   Step 5  report_problematic_events (core/reporting.h)
//
// run() executes all five on a collection of trace bundles and returns
// both the final report and the fully-annotated per-trace data (for the
// per-step figures and ablations).
#pragma once

#include <span>
#include <vector>

#include "core/detection.h"
#include "core/event_power.h"
#include "core/normalization.h"
#include "core/ranking.h"
#include "core/reporting.h"

namespace edx::core {

/// Full pipeline configuration.
struct AnalysisConfig {
  NormalizationConfig normalization;
  DetectionConfig detection;
  ReportingConfig reporting;
  /// Worker threads for the parallel steps (1, 2, 3 and 4 shard across
  /// trace bundles).  0 = one per hardware thread; 1 = the plain
  /// sequential path (the reference for tests).  Results are identical —
  /// byte for byte — for every value; see DESIGN.md §7.
  std::size_t num_threads{0};
};

/// Everything the pipeline produced.
struct AnalysisResult {
  std::vector<AnalyzedTrace> traces;  ///< annotated by steps 1, 3, 4
  EventRanking ranking;               ///< step 2
  DiagnosisReport report;             ///< step 5
};

class ManifestationAnalyzer {
 public:
  explicit ManifestationAnalyzer(AnalysisConfig config = {});

  [[nodiscard]] const AnalysisConfig& config() const { return config_; }

  /// Runs the full pipeline.  Throws AnalysisError when `bundles` is
  /// empty.  Takes a span only — vectors and arrays convert implicitly,
  /// callers with deques or subranges don't copy into a vector first,
  /// and a single bundle wraps as `std::span(&bundle, 1)`.  (The thin
  /// vector overload this class once carried is gone; spans are the one
  /// bundle-collection currency across the pipeline, the baselines, and
  /// the service layer.)
  [[nodiscard]] AnalysisResult run(
      std::span<const trace::TraceBundle> bundles) const;

 private:
  AnalysisConfig config_;
};

}  // namespace edx::core
