// Step 5 — Reporting Problematic Events.
//
// All instances within the *manifestation window* (± window_size events
// around each detected point) are candidates.  Candidates are then ranked
// by how close the fraction of traces they impact is to the fraction of
// users the developer believes are affected (from forum reports or
// app-level tools like eDoctor): the bug's trigger shows up in exactly the
// affected users' traces, while incidental normal events show up in a very
// different share.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/analysis_types.h"

namespace edx::core {

struct ReportingConfig {
  /// Events on each side of a manifestation point included in its window.
  std::size_t window_size{3};
  /// Developer-estimated fraction of users impacted by the ABD, in [0, 1].
  double developer_reported_fraction{0.15};
  /// Candidates whose |impacted - reported| is within this tolerance form
  /// the diagnosis set whose code the developer actually reads...
  double diagnosis_tolerance{0.05};
  /// ...and the closest `min_top_k` candidates are always included — the
  /// paper's tables hand the developer "the first six events whose
  /// percentages are closest to the value provided" regardless of how
  /// close the runner-ups are.
  std::size_t min_top_k{6};
};

/// One candidate event in the final report.
struct ReportedEvent {
  EventName name;
  double impacted_fraction{0.0};  ///< share of traces with it in a window
  std::size_t impacted_traces{0};
  /// Mean distance (in events) from a window's manifestation point across
  /// this event's window occurrences; breaks ties between events with the
  /// same impacted fraction — closer to the point means more related.
  double mean_point_distance{0.0};
};

/// The final artifact handed to the developer.
struct DiagnosisReport {
  /// Every event seen in any manifestation window, sorted by closeness of
  /// impacted_fraction to the developer-reported fraction (ties: higher
  /// impact first, then name).
  std::vector<ReportedEvent> ranked_events;
  /// The events the developer is asked to inspect (tolerance rule).
  std::vector<EventName> diagnosis_events;
  std::size_t total_traces{0};
  std::size_t traces_with_manifestation{0};
};

/// Builds the report from detected traces.  Takes a span so callers
/// holding pre-built state (core/fleet_analyzer.h), deques or subranges
/// can report without copying into a vector.
DiagnosisReport report_problematic_events(
    std::span<const AnalyzedTrace> traces, const ReportingConfig& config = {});

}  // namespace edx::core
