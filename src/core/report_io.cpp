#include "core/report_io.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "android/event.h"
#include "common/strings.h"
#include "common/table.h"

namespace edx::core {

std::string json_quote(const std::string& text) {
  std::string quoted = "\"";
  for (char c : text) {
    switch (c) {
      case '"': quoted += "\\\""; break;
      case '\\': quoted += "\\\\"; break;
      case '\n': quoted += "\\n"; break;
      case '\r': quoted += "\\r"; break;
      case '\t': quoted += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          quoted += buffer;
        } else {
          quoted += c;
        }
    }
  }
  quoted += '"';
  return quoted;
}

std::string report_to_text(const DiagnosisReport& report,
                           const CodeMap* code_map,
                           const ReportRenderOptions& options) {
  std::ostringstream out;
  out << "EnergyDx diagnosis report";
  if (!options.app_name.empty()) out << " — " << options.app_name;
  out << "\n";
  out << "Traces analyzed: " << report.total_traces << " ("
      << report.traces_with_manifestation
      << " with a detected manifestation point)\n";
  if (options.developer_reported_fraction > 0.0) {
    out << "Developer-reported user impact: "
        << strings::format_double(
               100.0 * options.developer_reported_fraction, 1)
        << "%\n";
  }
  out << "\nEvents around the ABD manifestation, ranked by match to the "
         "reported impact:\n";

  TextTable table(code_map != nullptr
                      ? std::vector<std::string>{"Order", "Event",
                                                 "% traces impacted", "Lines"}
                      : std::vector<std::string>{"Order", "Event",
                                                 "% traces impacted"});
  table.set_align(0, Align::kRight);
  table.set_align(2, Align::kRight);
  if (code_map != nullptr) table.set_align(3, Align::kRight);
  const std::size_t count =
      std::min(options.max_events, report.ranked_events.size());
  for (std::size_t i = 0; i < count; ++i) {
    const ReportedEvent& event = report.ranked_events[i];
    std::vector<std::string> cells = {
        std::to_string(i + 1), android::short_event_name(event.name),
        strings::format_double(100.0 * event.impacted_fraction, 1)};
    if (code_map != nullptr) {
      cells.push_back(std::to_string(code_map->lines_for(event.name)));
    }
    table.add_row(std::move(cells));
  }
  out << table.to_string();

  out << "\nDiagnosis set (start reading here):\n";
  for (const EventName& event : report.diagnosis_events) {
    out << "  - " << android::short_event_name(event);
    if (code_map != nullptr) {
      out << " (" << code_map->lines_for(event) << " lines)";
    }
    out << "\n";
  }
  if (code_map != nullptr) {
    const int lines = code_map->lines_for(report.diagnosis_events);
    out << "\nSearch space: " << code_map->total_lines() << " -> " << lines
        << " lines (code reduction "
        << strings::format_double(
               100.0 * code_reduction(code_map->total_lines(), lines), 1)
        << "%)\n";
  }
  return out.str();
}

std::string report_to_json(const DiagnosisReport& report,
                           const CodeMap* code_map,
                           const ReportRenderOptions& options) {
  std::ostringstream out;
  out << "{\n";
  if (!options.app_name.empty()) {
    out << "  \"app\": " << json_quote(options.app_name) << ",\n";
  }
  out << "  \"total_traces\": " << report.total_traces << ",\n";
  out << "  \"traces_with_manifestation\": "
      << report.traces_with_manifestation << ",\n";
  out << "  \"developer_reported_fraction\": "
      << strings::format_double(options.developer_reported_fraction, 6)
      << ",\n";

  out << "  \"ranked_events\": [\n";
  const std::size_t count =
      std::min(options.max_events, report.ranked_events.size());
  for (std::size_t i = 0; i < count; ++i) {
    const ReportedEvent& event = report.ranked_events[i];
    out << "    {\"event\": " << json_quote(event.name)
        << ", \"impacted_fraction\": "
        << strings::format_double(event.impacted_fraction, 6)
        << ", \"impacted_traces\": " << event.impacted_traces;
    if (code_map != nullptr) {
      out << ", \"lines\": " << code_map->lines_for(event.name);
    }
    out << "}" << (i + 1 < count ? "," : "") << "\n";
  }
  out << "  ],\n";

  out << "  \"diagnosis_events\": [";
  for (std::size_t i = 0; i < report.diagnosis_events.size(); ++i) {
    if (i != 0) out << ", ";
    out << json_quote(report.diagnosis_events[i]);
  }
  out << "]";

  if (code_map != nullptr) {
    const int lines = code_map->lines_for(report.diagnosis_events);
    out << ",\n  \"total_lines\": " << code_map->total_lines()
        << ",\n  \"diagnosis_lines\": " << lines
        << ",\n  \"code_reduction\": "
        << strings::format_double(
               code_reduction(code_map->total_lines(), lines), 6);
  }
  out << "\n}\n";
  return out.str();
}

}  // namespace edx::core
