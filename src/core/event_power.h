// Step 1 — Power Estimation of Events.
//
// Joins each trace bundle's event instances with its power samples by
// timestamp: the power of an event instance is the (overlap-weighted)
// average estimated app power during the instance's [entry, exit) interval.
// Because app power includes everything the app is doing concurrently
// (long-running services, leaked resources), an event executed while an
// ABD drains in the background *appears* expensive — the very effect the
// later steps exploit and discipline.
#pragma once

#include <span>
#include <vector>

#include "common/thread_pool.h"
#include "core/analysis_types.h"
#include "trace/recorder.h"

namespace edx::core {

/// Computes per-instance power for one bundle.
AnalyzedTrace estimate_event_power(const trace::TraceBundle& bundle);

/// Computes per-instance power for a whole collection.  Bundles are
/// independent, so with a pool they are processed in parallel; each slot
/// of the result is written by exactly one task, making the output
/// identical to the sequential loop for any pool size.  Takes a span so
/// callers with deques or subranges (core/fleet_analyzer.h) don't copy.
std::vector<AnalyzedTrace> estimate_event_power(
    std::span<const trace::TraceBundle> bundles,
    common::ThreadPool* pool = nullptr);

}  // namespace edx::core
