// Data types flowing through the 5-step manifestation analysis.
//
// Each step enriches the same per-trace event sequence: Step 1 fills
// raw_power, Step 3 fills the normalized_power lane, Step 4 fills the
// variation_amplitude/run lanes and the detected manifestation indices.
// Keeping the whole enriched sequence around is what lets the benches
// print the paper's per-step figures (7a/7b/7c, 9, 12, 15).
//
// The Step-3/4 annotations are structure-of-arrays lanes on AnalyzedTrace
// rather than fields on PoweredEvent: the normalize/amplitude/fence hot
// loops read and write contiguous double arrays (unit stride, so the
// full-recompute kernels autovectorize) instead of striding through
// padded structs, and the incremental fleet engine
// (core/fleet_analyzer.h) can scatter-update single lanes in place.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/event_symbols.h"
#include "common/stats.h"
#include "common/types.h"

namespace edx::core {

/// One event instance: identity plus Step 1's power estimate.  Identity is
/// the interned EventId; the name string lives once in the symbol table
/// and is resolved only when rendering (reports, benches).  The Step-3/4
/// per-instance annotations live in AnalyzedTrace's lanes.
struct PoweredEvent {
  EventId id{kInvalidEventId};
  TimeInterval interval;
  PowerMw raw_power{0.0};  ///< Step 1

  /// The event's name, resolved from the global symbol table.
  [[nodiscard]] const EventName& name() const { return event_name(id); }
};

/// One user's trace as it moves through the pipeline.  The lanes are
/// index-aligned with `events` once their step has run (empty before).
struct AnalyzedTrace {
  UserId user{0};
  std::vector<PoweredEvent> events;  ///< chronological

  /// Step 3: raw_power / event base power, per instance.
  std::vector<double> normalized_power;

  // Step 4 lanes, per instance.
  /// Variation amplitude V_i (run peak minus run start).
  std::vector<double> variation_amplitude;
  /// Index of the monotone run's peak the amplitude measures to (== i + 1
  /// for a plain single-step difference, == i for the last instance).
  std::vector<std::uint32_t> run_peak_index;
  /// Highest instance index whose normalized power V_i depends on: the
  /// last position the run scan inspected (the one that ended the run).
  /// The incremental repair (core/detection.h) uses it to decide which
  /// amplitudes a changed instance can perturb.
  std::vector<std::uint32_t> run_dep_end;
  /// Normalized power at the run's peak —
  /// normalized_power[run_peak_index[i]], bitwise — so the fence decision
  /// loop tests the peak-level guard on a dense lane instead of a gather.
  /// Kept exact through incremental repair: a change to the normalized
  /// power at a run's peak always lands inside that run's
  /// [i, run_dep_end[i]] window, which forces the run's recompute.
  std::vector<double> run_peak_power;
  /// Dense copy of events[i].interval.begin, refreshed by
  /// attribute_variation_amplitude, so the Step-4 sustain-window walk
  /// reads timestamps at unit stride.
  std::vector<TimestampMs> begin_ms;

  // Step 4 results.
  std::vector<std::size_t> manifestation_indices;
  stats::Quartiles amplitude_quartiles;
  double outlier_fence{0.0};
};

}  // namespace edx::core
