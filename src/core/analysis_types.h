// Data types flowing through the 5-step manifestation analysis.
//
// Each step enriches the same per-trace event sequence: Step 1 fills
// raw_power, Step 3 fills normalized_power, Step 4 fills
// variation_amplitude and the detected manifestation indices.  Keeping the
// whole enriched sequence around is what lets the benches print the
// paper's per-step figures (7a/7b/7c, 9, 12, 15).
#pragma once

#include <cstddef>
#include <vector>

#include "common/event_symbols.h"
#include "common/stats.h"
#include "common/types.h"

namespace edx::core {

/// One event instance annotated by the analysis steps.  Identity is the
/// interned EventId; the name string lives once in the symbol table and is
/// resolved only when rendering (reports, benches).
struct PoweredEvent {
  EventId id{kInvalidEventId};
  TimeInterval interval;
  PowerMw raw_power{0.0};          ///< Step 1
  double normalized_power{0.0};    ///< Step 3
  double variation_amplitude{0.0};  ///< Step 4
  /// Step 4: index of the monotone run's peak this amplitude measures to
  /// (== own index when the amplitude is a plain single-step difference).
  std::size_t run_peak_index{0};

  /// The event's name, resolved from the global symbol table.
  [[nodiscard]] const EventName& name() const { return event_name(id); }
};

/// One user's trace as it moves through the pipeline.
struct AnalyzedTrace {
  UserId user{0};
  std::vector<PoweredEvent> events;  ///< chronological

  // Step 4 results.
  std::vector<std::size_t> manifestation_indices;
  stats::Quartiles amplitude_quartiles;
  double outlier_fence{0.0};
};

}  // namespace edx::core
