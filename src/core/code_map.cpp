#include "core/code_map.h"

#include <set>

#include "android/event.h"
#include "common/error.h"

namespace edx::core {

CodeMap CodeMap::from_app(const android::AppSpec& app) {
  CodeMap map;
  for (const android::ComponentSpec& component : app.components) {
    for (const android::CallbackSpec& callback : component.callbacks) {
      map.lines_[android::qualified_event_name(component.class_name,
                                               callback.name)] =
          callback.lines_of_code;
    }
  }
  map.total_lines_ = app.total_loc();
  return map;
}

int CodeMap::lines_for(const EventName& name) const {
  const auto it = lines_.find(name);
  return it == lines_.end() ? 0 : it->second;
}

int CodeMap::lines_for(const std::vector<EventName>& names) const {
  const std::set<EventName> unique(names.begin(), names.end());
  int total = 0;
  for (const EventName& name : unique) total += lines_for(name);
  return total;
}

double code_reduction(int total_lines, int diagnosis_lines) {
  require(total_lines > 0, "code_reduction: app must have code");
  require(diagnosis_lines >= 0, "code_reduction: negative diagnosis lines");
  if (diagnosis_lines >= total_lines) return 0.0;
  return static_cast<double>(total_lines - diagnosis_lines) /
         static_cast<double>(total_lines);
}

int diagnosis_lines(const CodeMap& code_map, const DiagnosisReport& report) {
  return code_map.lines_for(report.diagnosis_events);
}

double code_reduction(const CodeMap& code_map, const DiagnosisReport& report) {
  return code_reduction(code_map.total_lines(),
                        diagnosis_lines(code_map, report));
}

}  // namespace edx::core
