// Event -> source-lines mapping and the code-reduction metric.
//
// code reduction = (N_all - N_diagnosis) / N_all, where N_diagnosis is the
// number of source lines behind the events EnergyDx reports and N_all is
// the whole app (§IV-B).  The synthesized Idle(No_Display) marker has no
// app code behind it and contributes zero lines.
#pragma once

#include <map>
#include <vector>

#include "android/app.h"
#include "common/types.h"
#include "core/reporting.h"

namespace edx::core {

/// Maps event names to the lines a developer must read to inspect them.
class CodeMap {
 public:
  /// Builds the map from an app spec: every callback of every component,
  /// keyed by the qualified event name.
  static CodeMap from_app(const android::AppSpec& app);

  /// Lines behind one event (0 for unknown events and idle markers).
  [[nodiscard]] int lines_for(const EventName& name) const;

  /// Total lines over a set of (distinct) events.
  [[nodiscard]] int lines_for(const std::vector<EventName>& names) const;

  /// Whole-app line count.
  [[nodiscard]] int total_lines() const { return total_lines_; }

  [[nodiscard]] std::size_t event_count() const { return lines_.size(); }

 private:
  std::map<EventName, int> lines_;
  int total_lines_{0};
};

/// Fraction of the app the developer does NOT need to read: in [0, 1].
double code_reduction(int total_lines, int diagnosis_lines);

/// Code reduction of a diagnosis report under a code map.
double code_reduction(const CodeMap& code_map, const DiagnosisReport& report);

/// Lines the developer must read for `report`.
int diagnosis_lines(const CodeMap& code_map, const DiagnosisReport& report);

}  // namespace edx::core
