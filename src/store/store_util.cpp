#include "store/store_util.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <charconv>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/crc32c.h"
#include "common/error.h"
#include "store/codec.h"

namespace edx::store::sutil {

namespace fs = std::filesystem;

std::string segment_path(const std::string& directory, std::uint64_t base) {
  return directory + "/wal-" + std::to_string(base) + ".edx";
}

std::string manifest_path(const std::string& directory) {
  return directory + "/manifest.edx";
}

std::string snapshot_path(const std::string& directory, std::uint64_t seq) {
  return directory + "/snapshot-" + std::to_string(seq) + ".edx";
}

std::string segment_header(std::string_view magic, std::uint64_t base) {
  std::string header(magic);
  put_varint(header, base);
  return header;
}

std::vector<std::pair<std::uint64_t, std::string>> list_segments(
    const std::string& directory) {
  std::vector<std::pair<std::uint64_t, std::string>> found;
  for (const fs::directory_entry& entry : fs::directory_iterator(directory)) {
    const std::string name = entry.path().filename().string();
    if (!name.starts_with("wal-") || !name.ends_with(".edx")) continue;
    const std::string_view digits(name.data() + 4, name.size() - 8);
    std::uint64_t base = 0;
    const auto [ptr, ec] = std::from_chars(digits.begin(), digits.end(), base);
    if (ec != std::errc() || ptr != digits.end() || base == 0) continue;
    found.emplace_back(base, entry.path().string());
  }
  std::sort(found.begin(), found.end());
  return found;
}

std::vector<std::pair<std::uint64_t, std::string>> list_snapshots(
    const std::string& directory) {
  std::vector<std::pair<std::uint64_t, std::string>> found;
  for (const fs::directory_entry& entry : fs::directory_iterator(directory)) {
    const std::string name = entry.path().filename().string();
    if (!name.starts_with("snapshot-") || !name.ends_with(".edx")) continue;
    const std::string_view digits(name.data() + 9, name.size() - 13);
    std::uint64_t seq = 0;
    const auto [ptr, ec] =
        std::from_chars(digits.begin(), digits.end(), seq);
    if (ec != std::errc() || ptr != digits.end()) continue;
    found.emplace_back(seq, entry.path().string());
  }
  std::sort(found.begin(), found.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  return found;
}

std::string read_file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("store: cannot read " + path);
  std::ostringstream content;
  content << in.rdbuf();
  return content.str();
}

void write_all(int fd, std::string_view bytes, const std::string& what) {
  while (!bytes.empty()) {
    const ssize_t written = ::write(fd, bytes.data(), bytes.size());
    if (written < 0) throw Error("store: write failed for " + what);
    bytes.remove_prefix(static_cast<std::size_t>(written));
  }
}

void publish_file(const std::string& final_path, std::string_view bytes) {
  const std::string temp_path = final_path + ".tmp";
  const int fd =
      ::open(temp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw Error("store: cannot create " + temp_path);
  try {
    write_all(fd, bytes, temp_path);
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::fsync(fd);
  ::close(fd);
  fs::rename(temp_path, final_path);
}

void remove_stale_temp_files(const std::string& directory) {
  for (const fs::directory_entry& entry : fs::directory_iterator(directory)) {
    const std::string name = entry.path().filename().string();
    if (name.ends_with(".tmp")) fs::remove(entry.path());
  }
}

bool scan_varint(std::string_view data, std::size_t& offset,
                 std::uint64_t& value) {
  value = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (offset >= data.size()) return false;
    const auto byte = static_cast<unsigned char>(data[offset++]);
    value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return true;
  }
  return false;  // > 64 bits: treat as corruption, not a valid length
}

std::optional<ManifestContents> read_manifest(const std::string& path) {
  std::string bytes;
  try {
    bytes = read_file_bytes(path);
  } catch (const Error&) {
    return std::nullopt;
  }
  ManifestContents contents;
  try {
    Reader file{std::string_view(bytes)};
    if (file.remaining() < kManifestMagic.size() ||
        file.bytes(kManifestMagic.size()) != kManifestMagic) {
      return std::nullopt;
    }
    const std::uint64_t payload_len = file.varint();
    if (file.remaining() != payload_len + 4) return std::nullopt;
    const std::string_view payload_bytes =
        file.bytes(static_cast<std::size_t>(payload_len));
    if (file.u32le() != common::crc32c(payload_bytes)) return std::nullopt;
    Reader payload(payload_bytes);
    contents.snapshot_seq = payload.varint();
    const std::uint64_t sealed_count = payload.varint();
    if (sealed_count > payload.remaining()) return std::nullopt;
    contents.sealed.reserve(static_cast<std::size_t>(sealed_count));
    for (std::uint64_t i = 0; i < sealed_count; ++i) {
      const std::uint64_t base = payload.varint();
      const std::uint64_t last = payload.varint();
      contents.sealed.emplace_back(base, last);
    }
    contents.active_base = payload.varint();
    if (!payload.done()) return std::nullopt;
  } catch (const ParseError&) {
    return std::nullopt;
  }
  return contents;
}

std::string render_manifest(const ManifestContents& contents) {
  std::string payload;
  put_varint(payload, contents.snapshot_seq);
  put_varint(payload, contents.sealed.size());
  for (const auto& [base, last] : contents.sealed) {
    put_varint(payload, base);
    put_varint(payload, last);
  }
  put_varint(payload, contents.active_base);
  std::string file;
  file.reserve(payload.size() + 24);
  file.append(kManifestMagic);
  put_varint(file, payload.size());
  file += payload;
  put_u32le(file, common::crc32c(payload));
  return file;
}

}  // namespace edx::store::sutil
