// File-level plumbing shared by the WAL-backed stores (fleet_store.cpp,
// shard_store.cpp): path naming, directory scans, crash-safe small-file
// publication, the hand-rolled salvage varint, and the advisory manifest
// codec.  Everything here is format-agnostic with respect to the *frame*
// layout — the per-record framing (and its magic) stays with each store;
// only the pieces that are byte-identical across layouts live here.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace edx::store::sutil {

/// Shared manifest magic: the manifest records *which* segments exist,
/// not how their frames are laid out, so both layouts use one format.
inline constexpr std::string_view kManifestMagic = "EDXMAN01";

std::string segment_path(const std::string& directory, std::uint64_t base);
std::string manifest_path(const std::string& directory);
std::string snapshot_path(const std::string& directory, std::uint64_t seq);

/// Segment file header: `magic` + varint base.
std::string segment_header(std::string_view magic, std::uint64_t base);

/// wal-<base>.edx files in `directory`, ascending base order.
std::vector<std::pair<std::uint64_t, std::string>> list_segments(
    const std::string& directory);

/// snapshot-<seq>.edx files in `directory`, newest seq first.
std::vector<std::pair<std::uint64_t, std::string>> list_snapshots(
    const std::string& directory);

/// Slurps a file; throws Error when unreadable.
std::string read_file_bytes(const std::string& path);

/// write(2) until done; throws Error naming `what` on failure.
void write_all(int fd, std::string_view bytes, const std::string& what);

/// Crash-safe small-file publication: temp file, fsync, atomic rename.
void publish_file(const std::string& final_path, std::string_view bytes);

/// Deletes stray .tmp files a crash between temp-write and rename left
/// behind (they were never published, so they are garbage).
void remove_stale_temp_files(const std::string& directory);

/// Parses a varint by hand so a truncated length is a clean end-of-scan
/// instead of an exception; returns false when the buffer ends mid-varint
/// (or the value would exceed 64 bits — corruption, not a valid length).
bool scan_varint(std::string_view data, std::size_t& offset,
                 std::uint64_t& value);

struct ManifestContents {
  std::uint64_t snapshot_seq{0};
  std::vector<std::pair<std::uint64_t, std::uint64_t>> sealed;  // base, last
  std::uint64_t active_base{0};
};

/// Parses manifest.edx; nullopt on any damage (the manifest is advisory,
/// so damage only downgrades manifest_ok, never recovery).
std::optional<ManifestContents> read_manifest(const std::string& path);

std::string render_manifest(const ManifestContents& contents);

}  // namespace edx::store::sutil
