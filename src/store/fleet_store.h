// Durable, restart-safe storage for an accumulating trace fleet.
//
// The paper's deployment is a long-running service: phones upload trace
// bundles opportunistically and the server re-diagnoses the growing fleet
// (core/fleet_analyzer.h).  This store is what lets that service restart —
// or crash — without losing the fleet:
//
//   append()   frames the bundle with store/codec.h, appends it to an
//              append-only write-ahead log (wal.edx) under a sequence
//              number, and flushes before returning;
//   compact()  folds the current fleet state into snapshot-<seq>.edx —
//              the deduplicated bundles plus the serialized
//              EventSymbolTable and EventRanking (Step-1/2 state) — via a
//              write-to-temp + fsync + rename, then resets the WAL;
//   open()     recovers by loading the newest *valid* snapshot and
//              replaying the WAL tail over it, stopping at the first
//              record whose frame is truncated or fails its CRC32C and
//              reporting exactly how much was salvaged (RecoveryStats).
//              Nothing past the first bad record is ever read.
//
// Re-uploads honor TraceBundle::fleet_key(): a record whose key is already
// in the fleet replaces that user's bundle in its original fleet slot,
// never duplicating the user — the same replace-not-duplicate semantics
// FleetAnalyzer applies, so feeding fleet() (or snapshot + tail) to the
// analyzer reproduces the never-restarted report byte for byte.
//
// The snapshot's EventRanking section is not just a diagnostic: its power
// lists are Step 1's exact per-instance outputs in fleet traversal order,
// so snapshot_step1() can reconstruct every snapshotted bundle's
// AnalyzedTrace without re-running the expensive power join — the warm
// restart path of `edx analyze --store` (see DESIGN.md §10).
//
// On-disk layout inside the store directory:
//   wal.edx             "EDXWAL01" + records:
//                         varint frame_len | frame | u32le crc32c(frame)
//                         frame := u8 kind(1=bundle) | varint seq |
//                                  codec bundle record
//   snapshot-<seq>.edx  "EDXSNAP1" + u32le version + varint payload_len +
//                         payload + u32le crc32c(payload)
//                         payload := varint seq
//                                    varint bundle_count
//                                    bundle_count x (varint len + codec
//                                                    bundle record)
//                                    varint name_count + names (id order)
//                                    varint slot_count
//                                    slot_count x (varint power_count +
//                                                  power_count x f64)
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/analysis_types.h"
#include "trace/recorder.h"

namespace edx::store {

/// What open() found and how much of it was usable.
struct RecoveryStats {
  std::uint64_t snapshot_seq{0};       ///< 0 = recovered without a snapshot
  std::size_t snapshot_bundle_count{0};
  std::size_t snapshots_found{0};
  std::size_t snapshots_skipped{0};    ///< corrupt / unreadable snapshots
  std::size_t wal_records_replayed{0}; ///< valid records applied to state
  std::size_t wal_records_obsolete{0}; ///< seq <= snapshot (already folded)
  std::size_t wal_bytes_salvaged{0};   ///< WAL prefix that parsed cleanly
  std::size_t wal_bytes_dropped{0};    ///< bytes at/after the first bad record
  bool wal_tail_torn{false};           ///< the scan stopped before the end
  std::string wal_tail_reason;         ///< why it stopped ("" when clean)
};

class FleetStore {
 public:
  /// Opens (and creates, if absent) the store at `directory`, recovering
  /// the fleet from the newest valid snapshot plus the WAL tail.  A torn
  /// or corrupt WAL tail is tolerated — the salvaged prefix wins and
  /// recovery() reports the damage; a genuinely unreadable directory
  /// throws Error.
  static FleetStore open(const std::string& directory);

  FleetStore(FleetStore&& other) noexcept;
  FleetStore& operator=(FleetStore&& other) noexcept;
  FleetStore(const FleetStore&) = delete;
  FleetStore& operator=(const FleetStore&) = delete;
  ~FleetStore();

  [[nodiscard]] const std::string& directory() const { return directory_; }
  [[nodiscard]] const RecoveryStats& recovery() const { return recovery_; }

  /// Current fleet: each user's latest bundle, in first-arrival slot
  /// order — exactly the bundle sequence whose batch analysis equals the
  /// never-restarted incremental run.
  [[nodiscard]] const std::vector<trace::TraceBundle>& fleet() const {
    return fleet_;
  }
  [[nodiscard]] std::size_t fleet_size() const { return fleet_.size(); }
  /// Sequence number of the most recently appended record (0 = empty).
  [[nodiscard]] std::uint64_t last_seq() const { return last_seq_; }
  /// Sequence the newest loaded snapshot covers (0 = none).
  [[nodiscard]] std::uint64_t snapshot_seq() const {
    return recovery_.snapshot_seq;
  }

  /// The fleet as of the loaded snapshot, in slot order — kept verbatim
  /// (a later tail record may have replaced a slot in fleet()) because
  /// snapshot_step1()'s power lists describe exactly these bundles.
  [[nodiscard]] const std::vector<trace::TraceBundle>& snapshot_bundles()
      const {
    return snapshot_bundles_;
  }
  /// Bundles appended after the snapshot (WAL replays plus this session's
  /// append() calls), in arrival order.  These still need Step 1.
  [[nodiscard]] const std::vector<trace::TraceBundle>& tail_bundles() const {
    return tail_;
  }

  /// Reconstructs Step 1's AnalyzedTrace for each snapshotted fleet slot
  /// from the snapshot's EventRanking state — bit-identical to running
  /// core::estimate_event_power on those bundles, without the power join.
  /// Empty when the store was recovered without a snapshot.
  [[nodiscard]] std::vector<core::AnalyzedTrace> snapshot_step1() const;

  /// Durably appends one upload and applies it to the in-memory fleet
  /// (replace-not-duplicate).  Returns the record's sequence number.
  std::uint64_t append(const trace::TraceBundle& bundle);

  /// Folds the current fleet into a fresh snapshot-<last_seq>.edx (running
  /// Step 1 over the fleet to serialize the ranking state), resets the
  /// WAL, and prunes all but the two newest snapshots.  No-op when no
  /// record arrived since the newest snapshot.
  void compact();

 private:
  FleetStore() = default;

  /// Applies one recovered/appended bundle to fleet_ (append or replace).
  void apply(trace::TraceBundle bundle);
  /// Loads `path`; returns false (and counts a skip) when invalid.
  bool load_snapshot(const std::string& path);
  /// Parses the WAL, applying records with seq > snapshot_seq.
  void replay_wal(const std::string& wal_bytes);
  void open_wal_for_append();

  std::string directory_;
  RecoveryStats recovery_;
  std::uint64_t last_seq_{0};

  std::vector<trace::TraceBundle> fleet_;          ///< slot order
  std::unordered_map<UserId, std::size_t> slot_by_user_;
  std::vector<trace::TraceBundle> tail_;           ///< arrivals past snapshot
  std::vector<trace::TraceBundle> snapshot_bundles_;  ///< fleet at snapshot

  /// Snapshot analysis state: event names in snapshot-id order and the
  /// per-event Step-1 power lists (snapshot-id indexed).
  std::vector<std::string> snapshot_names_;
  std::vector<std::vector<double>> snapshot_powers_;

  /// WAL append handle (POSIX fd; -1 = closed).
  int wal_fd_{-1};
};

}  // namespace edx::store
