// Durable, restart-safe storage for an accumulating trace fleet.
//
// The paper's deployment is a long-running service: phones upload trace
// bundles opportunistically and the server re-diagnoses the growing fleet
// (core/fleet_analyzer.h).  This store is what lets that service restart —
// or crash — without losing the fleet, at field ingest rates:
//
//   append()        frames the bundle with store/codec.h, hands it to the
//                   group-commit writer, and returns once the record is
//                   durable under the configured fsync policy;
//   append_async()  same, but returns as soon as the record is queued —
//                   flush() later makes everything durable at once;
//   compact_async() folds the fleet as of the current sequence into
//                   snapshot-<seq>.edx on a background thread — the
//                   deduplicated bundles plus the serialized event names
//                   and EventRanking power lists (Step-1/2 state) — via a
//                   write-to-temp + fsync + rename, then deletes the WAL
//                   segments the snapshot subsumes.  Appends keep flowing
//                   while it runs;
//   open()          recovers by loading the newest *valid* snapshot and
//                   replaying the WAL segments over it: sealed segments
//                   are decoded in parallel on a common::ThreadPool and
//                   merged in sequence order, the active tail is replayed
//                   sequentially, and the scan stops at the first record
//                   whose frame is truncated or fails its CRC32C
//                   (RecoveryStats reports exactly how much was salvaged).
//                   Nothing past the first bad record is ever applied.
//
// Re-uploads honor TraceBundle::fleet_key(): a record whose key is already
// in the fleet replaces that user's bundle in its original fleet slot,
// never duplicating the user — the same replace-not-duplicate semantics
// FleetAnalyzer applies, so feeding fleet_refs() (or snapshot + tail) to
// the analyzer reproduces the never-restarted report byte for byte.
//
// Group commit: every append assigns a sequence number and applies to the
// in-memory fleet under one lock, then enqueues the encoded record on a
// bounded MPSC queue.  A single writer thread drains the queue, packs a
// whole batch into one contiguous write(2), and syncs once per batch:
// policy kAlways fdatasyncs after every batch, kGroup keeps collecting
// arrivals for up to group_window_us before the sync (the 10k -> 100k+
// bundles/s lever), kNone never syncs (write(2) still survives a process
// kill, not a machine crash).  A blocking append() waits until the sync
// covering its record completed.
//
// On-disk layout inside the store directory:
//   wal-<base>.edx      one WAL segment; <base> is the first sequence
//                       number the segment may hold.  Header "EDXWAL02" +
//                       varint base, then records:
//                         varint frame_len | frame | u32le crc32c(frame)
//                         frame := u8 kind | varint seq | payload
//                         kind 1: payload = codec bundle record
//                         kind 2: payload = varint raw_len |
//                                 common::block_compress(bundle record)
//                       (kind 2 only when compression actually shrank the
//                       record; the bundle record's own CRC32C covers the
//                       uncompressed bytes).  The segment with the largest
//                       base is the active tail; once a segment reaches
//                       segment_target_bytes the writer fsyncs and seals
//                       it (immutable from then on) and opens the next.
//                       Salvage-and-truncate repair applies only to the
//                       active tail; a torn *sealed* segment stops replay
//                       but is never modified.
//   manifest.edx        "EDXMAN01" + varint payload_len + payload +
//                       u32le crc32c(payload); payload := varint
//                       snapshot_seq, varint sealed_count, sealed_count x
//                       (varint base + varint last_seq), varint
//                       active_base.  Purely advisory: the directory scan
//                       is authoritative and a missing/corrupt/stale
//                       manifest only sets RecoveryStats::manifest_ok.
//   snapshot-<seq>.edx  "EDXSNAP1" + u32le version + varint payload_len +
//                         payload + u32le crc32c(payload)
//                         payload := varint seq
//                                    varint bundle_count
//                                    bundle_count x (varint len + codec
//                                                    bundle record)
//                                    varint name_count + names (id order)
//                                    varint slot_count
//                                    slot_count x (varint power_count +
//                                                  power_count x f64)
//
// The snapshot's EventRanking section is not just a diagnostic: its power
// lists are Step 1's exact per-instance outputs in fleet traversal order,
// so snapshot_step1() can reconstruct every snapshotted bundle's
// AnalyzedTrace without re-running the expensive power join — the warm
// restart path of `edx analyze --store` (see DESIGN.md §10/§13).
//
// Thread safety: append()/append_async()/flush() may be called from any
// number of threads concurrently with one running background compaction.
// The read accessors (fleet_refs(), tail_refs(), ...) are NOT
// synchronized against concurrent appends — quiesce (join producers,
// flush()) first.  The zero-copy *_refs() accessors are the primary read
// API; the materializing fleet()/tail_bundles()/snapshot_bundles() trio
// is compat-only (deep copies for callers that must own their bundles).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/analysis_types.h"
#include "store/store_types.h"
#include "trace/recorder.h"

namespace edx::store {

// BundleRef, FsyncPolicy, StoreOptions, SegmentStats, and RecoveryStats
// live in store/store_types.h — they are shared verbatim with the
// tenant-tagged shard_store.h.

class FleetStore {
 public:
  /// Opens (and creates, if absent) the store at `directory`, recovering
  /// the fleet from the newest valid snapshot plus the WAL segments.  A
  /// torn or corrupt active tail is tolerated — the salvaged prefix wins,
  /// the file is truncated back to it, and recovery() reports the damage;
  /// a genuinely unreadable directory throws Error.
  static FleetStore open(const std::string& directory);
  static FleetStore open(const std::string& directory,
                         const StoreOptions& options);

  FleetStore(const FleetStore&) = delete;
  FleetStore& operator=(const FleetStore&) = delete;
  FleetStore(FleetStore&&) = delete;
  FleetStore& operator=(FleetStore&&) = delete;
  ~FleetStore();

  [[nodiscard]] const std::string& directory() const { return directory_; }
  [[nodiscard]] const StoreOptions& options() const { return options_; }
  [[nodiscard]] const RecoveryStats& recovery() const { return recovery_; }

  /// Current fleet: each user's latest bundle, in first-arrival slot
  /// order — exactly the bundle sequence whose batch analysis equals the
  /// never-restarted incremental run.  Zero-copy shared handles to the
  /// immutable bundles; this is the primary read API.
  [[nodiscard]] const std::vector<BundleRef>& fleet_refs() const {
    return fleet_;
  }
  /// Compat-only (pre-PR-7 API): materializes a full deep copy of
  /// fleet_refs().  Every in-tree caller uses the refs accessor; this
  /// wrapper remains for external callers that own their bundles.
  [[nodiscard]] std::vector<trace::TraceBundle> fleet() const;
  [[nodiscard]] std::size_t fleet_size() const { return fleet_.size(); }
  /// Sequence number of the most recently appended record (0 = empty).
  [[nodiscard]] std::uint64_t last_seq() const { return last_seq_; }
  /// Sequence the newest snapshot covers (0 = none), including snapshots
  /// written by this session's compactions.
  [[nodiscard]] std::uint64_t snapshot_seq() const { return snapshot_seq_; }

  /// The fleet as of the loaded snapshot, in slot order — kept verbatim
  /// (a later tail record may have replaced a slot in fleet_refs())
  /// because snapshot_step1()'s power lists describe exactly these
  /// bundles.  Zero-copy; primary.
  [[nodiscard]] const std::vector<BundleRef>& snapshot_refs() const {
    return snapshot_bundles_;
  }
  /// Compat-only: deep copy of snapshot_refs().
  [[nodiscard]] std::vector<trace::TraceBundle> snapshot_bundles() const;
  /// Bundles appended after the snapshot (WAL replays plus this session's
  /// append() calls), in arrival order.  These still need Step 1.
  /// Zero-copy; primary.
  [[nodiscard]] const std::vector<BundleRef>& tail_refs() const {
    return tail_;
  }
  /// Compat-only: deep copy of tail_refs().
  [[nodiscard]] std::vector<trace::TraceBundle> tail_bundles() const;

  /// Reconstructs Step 1's AnalyzedTrace for each snapshotted fleet slot
  /// from the snapshot's EventRanking state — bit-identical to running
  /// core::estimate_event_power on those bundles, without the power join.
  /// Empty when the store was recovered without a snapshot.
  [[nodiscard]] std::vector<core::AnalyzedTrace> snapshot_step1() const;

  /// Durably appends one upload and applies it to the in-memory fleet
  /// (replace-not-duplicate).  Blocks until the record is durable under
  /// the store's fsync policy.  Returns the record's sequence number.
  std::uint64_t append(const trace::TraceBundle& bundle);

  /// Queues one upload without waiting for durability (the in-memory
  /// fleet is updated immediately).  Pair with flush().  May still block
  /// briefly when the writer queue is full (backpressure).
  std::uint64_t append_async(const trace::TraceBundle& bundle);

  /// Blocks until every queued record is durable under the fsync policy,
  /// forcing a kGroup window to close early.  Rethrows writer failures.
  void flush();

  /// Starts folding the fleet as of last_seq() into a snapshot on a
  /// background thread; appends keep flowing meanwhile.  Once published,
  /// sealed WAL segments the snapshot subsumes are deleted and all but
  /// the two newest snapshots pruned.  Returns false (and does nothing)
  /// when a compaction is already running or there is nothing new to
  /// fold.
  bool compact_async();

  /// Waits for a running background compaction (if any) to finish and
  /// rethrows its failure, if it failed.
  void wait_for_compaction();

  /// Blocking convenience: compact_async() + wait_for_compaction().
  void compact();

  /// True while a background compaction is in flight.
  [[nodiscard]] bool compaction_running() const;

 private:
  /// One queued, already-encoded WAL record.
  struct Pending {
    std::uint64_t seq{0};
    std::uint8_t kind{0};
    std::string payload;
  };

  /// A sealed (immutable, fsynced) segment the writer or recovery knows.
  struct SealedSegment {
    std::uint64_t base_seq{0};
    std::uint64_t last_seq{0};
    std::string path;
  };

  /// Everything open() recovers, handed to the private constructor which
  /// then starts the writer thread (the class itself is immovable).
  struct Recovered;

  explicit FleetStore(Recovered&& state);

  /// Applies one recovered/appended bundle to fleet_ (append or replace).
  void apply(BundleRef bundle);

  std::uint64_t enqueue(const trace::TraceBundle& bundle, bool durable);
  void writer_loop();
  /// Moves the whole queue into `batch` (mutex_ must be held).
  void drain_queue_locked(std::vector<Pending>& batch);
  /// Frames and writes `batch` into the active segment, sealing and
  /// rolling to the next segment whenever the target size is reached.
  void write_batch(const std::vector<Pending>& batch);
  void seal_active_segment(std::uint64_t next_base);
  void sync_active_segment();
  void write_manifest();

  void run_compaction(std::uint64_t cut, std::vector<BundleRef> fleet_at_cut);

  // --- immutable after open() -----------------------------------------
  std::string directory_;
  StoreOptions options_;
  RecoveryStats recovery_;

  // --- fleet state (mutex_ when racing appends; see thread-safety note)
  std::uint64_t last_seq_{0};
  std::uint64_t snapshot_seq_{0};
  std::vector<BundleRef> fleet_;                   ///< slot order
  std::unordered_map<UserId, std::size_t> slot_by_user_;
  std::vector<BundleRef> tail_;                    ///< arrivals past snapshot
  std::vector<std::uint64_t> tail_seqs_;           ///< parallel to tail_
  std::vector<BundleRef> snapshot_bundles_;        ///< fleet at snapshot

  /// Snapshot analysis state: event names in snapshot-id order and the
  /// per-event Step-1 power lists (snapshot-id indexed).
  std::vector<std::string> snapshot_names_;
  std::vector<std::vector<double>> snapshot_powers_;

  // --- writer / group commit ------------------------------------------
  mutable std::mutex mutex_;
  std::condition_variable queue_cv_;    ///< writer wake-up
  std::condition_variable room_cv_;     ///< producers waiting for queue room
  std::condition_variable durable_cv_;  ///< appenders waiting for their sync
  std::condition_variable compact_cv_;  ///< compaction start/finish signals
  std::deque<Pending> queue_;
  std::size_t queue_bytes_{0};
  std::uint64_t durable_seq_{0};        ///< all seqs <= this are durable
  bool flush_requested_{false};
  bool stop_{false};
  std::exception_ptr writer_error_;
  std::thread writer_;

  /// Sealed segments still on disk, oldest first (mutex_-guarded: the
  /// writer appends at seal, compaction removes what it deletes).
  std::vector<SealedSegment> sealed_segments_;

  // Writer-thread-private active segment state (active_base_ is also read
  // under mutex_ by write_manifest, so the writer reassigns it under the
  // lock when sealing).
  int active_fd_{-1};
  std::uint64_t active_base_{1};
  std::uint64_t active_last_seq_{0};
  std::size_t active_bytes_{0};
  std::uint64_t written_seq_{0};       ///< all seqs <= this hit write(2)
  bool active_dirty_{false};           ///< written since last sync

  // --- background compaction ------------------------------------------
  bool compaction_running_{false};
  std::exception_ptr compaction_error_;
  std::thread compaction_thread_;

  std::mutex manifest_mutex_;  ///< serializes manifest temp+rename writes
};

}  // namespace edx::store
