// Binary trace-bundle codec — the record format of the durable store.
//
// The text format of trace/recorder.h is what phones conceptually upload;
// the server-side store keeps bundles in a versioned, length-prefixed
// binary form instead: varint-packed, delta-timestamped, with a per-record
// CRC32C so a torn or bit-flipped record is detected instead of parsed.
// Round-tripping is exact — decode(encode(b)) reproduces every field bit
// for bit (doubles travel as raw IEEE-754 bits, never through decimal
// text), so the decoded bundle's to_text() equals the original's.
//
// Record layout (all multi-byte integers little-endian; `varint` is
// LEB128, `zigzag` is LEB128 of the zigzag-mapped signed value):
//
//   "EDXB"  magic                                   4 bytes
//   version                                         1 byte  (currently 1)
//   body_len                                        varint
//   body                                            body_len bytes
//   crc32c(body)                                    4 bytes
//
//   body := zigzag user
//           string device_name            (varint len + bytes)
//           varint name_count
//           name_count x string           (event names, first-use order)
//           varint record_count
//           record_count x { varint name_index*2 + is_entry,
//                            zigzag timestamp_delta }
//           string utilization_device_name
//           varint sample_count
//           sample_count x { zigzag timestamp_delta,
//                            8 x f64 (7 component utilizations + power) }
//
// Event names are interned per record: each distinct name is written once
// and records reference its local index, so the dominant cost of the text
// format (repeating 60-byte callback names per line) disappears.
// Timestamps are deltas against the previous record/sample, which keeps
// the common monotone traces in 1-2 varint bytes each.  EventIds are
// process-local and never serialized; decode re-interns names through the
// global EventSymbolTable.
//
// decode_bundle() never crashes on hostile input: every read is
// bounds-checked and every failure — bad magic, unknown version, short
// buffer, CRC mismatch, malformed varint — throws edx::ParseError.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"
#include "power/tracker.h"
#include "trace/recorder.h"

namespace edx::store {

inline constexpr std::string_view kBundleMagic = "EDXB";
inline constexpr std::uint8_t kCodecVersion = 1;

// --- primitive writers (appended to `out`) ----------------------------

void put_varint(std::string& out, std::uint64_t value);
void put_zigzag(std::string& out, std::int64_t value);
void put_u32le(std::string& out, std::uint32_t value);
void put_f64(std::string& out, double value);  ///< raw IEEE-754 bits, LE
void put_string(std::string& out, std::string_view value);

/// Bounds-checked forward cursor over an encoded buffer.  Every reader
/// throws ParseError instead of reading past the end; string_views point
/// into the underlying buffer and share its lifetime.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  std::uint64_t varint();
  std::int64_t zigzag();
  std::uint32_t u32le();
  double f64();
  std::string_view bytes(std::size_t count);
  std::string_view string();

  [[nodiscard]] std::size_t position() const { return position_; }
  [[nodiscard]] std::size_t remaining() const {
    return data_.size() - position_;
  }
  [[nodiscard]] bool done() const { return position_ == data_.size(); }

 private:
  std::string_view data_;
  std::size_t position_{0};
};

// --- the bundle record ------------------------------------------------

/// Serializes `bundle` into one framed, CRC-protected record.
[[nodiscard]] std::string encode_bundle(const trace::TraceBundle& bundle);

/// Same record, appended into `record` (which is cleared first).  Lets
/// hot append paths reuse a pooled buffer's capacity instead of paying a
/// fresh allocation per upload; the body scratch is thread-local, so
/// concurrent producers never contend.
void encode_bundle(const trace::TraceBundle& bundle, std::string& record);

/// A fully parsed but not yet interned bundle record.  Event names stay in
/// the record-local table and records carry local indices into it, so
/// producing a BundleParts touches no global state — segment recovery
/// decodes records in parallel and defers interning to assemble_bundle(),
/// which runs sequentially in replay order to keep the EventSymbolTable's
/// first-seen id assignment deterministic.
struct BundleParts {
  struct Record {
    TimestampMs timestamp{0};
    std::uint32_t name_index{0};  ///< into `names`
    bool is_entry{false};
  };

  UserId user{0};
  std::string device_name;
  std::vector<std::string> names;  ///< distinct event names, first-use order
  std::vector<Record> records;
  std::string utilization_device;
  std::vector<power::UtilizationSample> samples;
};

/// Parses one record produced by encode_bundle() without touching the
/// global symbol table (thread-safe against concurrent decodes).  Same
/// validation and ParseError contract as decode_bundle().
[[nodiscard]] BundleParts decode_bundle_parts(std::string_view blob);

/// Interns `parts.names` (in table order) and builds the TraceBundle.
/// decode_bundle(blob) == assemble_bundle(decode_bundle_parts(blob)).
[[nodiscard]] trace::TraceBundle assemble_bundle(BundleParts&& parts);

/// Parses one record produced by encode_bundle().  `blob` must be exactly
/// the record (no trailing bytes).  Throws ParseError on any corruption.
[[nodiscard]] trace::TraceBundle decode_bundle(std::string_view blob);

}  // namespace edx::store
