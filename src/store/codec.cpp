#include "store/codec.h"

#include <bit>
#include <cstring>
#include <limits>
#include <unordered_map>
#include <vector>

#include "common/crc32c.h"
#include "common/error.h"
#include "power/hardware.h"

namespace edx::store {

namespace {

[[noreturn]] void fail(const std::string& why) {
  throw ParseError("store::decode_bundle: " + why);
}

inline std::uint64_t zigzag_map(std::int64_t value) {
  return (static_cast<std::uint64_t>(value) << 1) ^
         static_cast<std::uint64_t>(value >> 63);
}

inline std::int64_t zigzag_unmap(std::uint64_t value) {
  return static_cast<std::int64_t>((value >> 1) ^ (~(value & 1) + 1));
}

}  // namespace

void put_varint(std::string& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<char>((value & 0x7F) | 0x80));
    value >>= 7;
  }
  out.push_back(static_cast<char>(value));
}

void put_zigzag(std::string& out, std::int64_t value) {
  put_varint(out, zigzag_map(value));
}

void put_u32le(std::string& out, std::uint32_t value) {
  out.push_back(static_cast<char>(value & 0xFF));
  out.push_back(static_cast<char>((value >> 8) & 0xFF));
  out.push_back(static_cast<char>((value >> 16) & 0xFF));
  out.push_back(static_cast<char>((value >> 24) & 0xFF));
}

void put_f64(std::string& out, double value) {
  // The hot loop of encode_bundle (8 doubles per utilization sample):
  // a single 8-byte append beats byte-wise push_back by ~5x.
  std::uint64_t bits = std::bit_cast<std::uint64_t>(value);
  if constexpr (std::endian::native == std::endian::big) {
    bits = __builtin_bswap64(bits);
  }
  char raw[8];
  std::memcpy(raw, &bits, 8);
  out.append(raw, 8);
}

void put_string(std::string& out, std::string_view value) {
  put_varint(out, value.size());
  out.append(value);
}

std::uint64_t Reader::varint() {
  std::uint64_t value = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (position_ >= data_.size()) fail("truncated varint");
    const auto byte = static_cast<unsigned char>(data_[position_++]);
    value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return value;
  }
  fail("varint longer than 64 bits");
}

std::int64_t Reader::zigzag() { return zigzag_unmap(varint()); }

std::uint32_t Reader::u32le() {
  if (remaining() < 4) fail("truncated u32");
  std::uint32_t value = 0;
  for (int shift = 0; shift < 32; shift += 8) {
    value |= static_cast<std::uint32_t>(
                 static_cast<unsigned char>(data_[position_++]))
             << shift;
  }
  return value;
}

double Reader::f64() {
  if (remaining() < 8) fail("truncated f64");
  std::uint64_t bits;
  std::memcpy(&bits, data_.data() + position_, 8);
  if constexpr (std::endian::native == std::endian::big) {
    bits = __builtin_bswap64(bits);
  }
  position_ += 8;
  return std::bit_cast<double>(bits);
}

std::string_view Reader::bytes(std::size_t count) {
  if (remaining() < count) fail("truncated byte run");
  const std::string_view view = data_.substr(position_, count);
  position_ += count;
  return view;
}

std::string_view Reader::string() {
  const std::uint64_t length = varint();
  if (length > remaining()) fail("string length past end of buffer");
  return bytes(static_cast<std::size_t>(length));
}

std::string encode_bundle(const trace::TraceBundle& bundle) {
  std::string record;
  encode_bundle(bundle, record);
  return record;
}

void encode_bundle(const trace::TraceBundle& bundle, std::string& record) {
  // One body scratch per producer thread: capacity survives across calls,
  // so a warmed-up append path encodes without touching the allocator.
  thread_local std::string body;
  body.clear();
  // Samples dominate (1 + 8x8 bytes each, plus small deltas); sizing the
  // body up front keeps the append loop free of reallocation.
  body.reserve(bundle.utilization.samples().size() * 72 +
               bundle.events.records().size() * 6 + 256);
  put_zigzag(body, bundle.user);
  put_string(body, bundle.device_name);

  // Event section: per-record string table of distinct names in first-use
  // order, then (name_index, is_entry, timestamp-delta) triples.
  const std::vector<trace::EventRecord>& records = bundle.events.records();
  std::unordered_map<EventId, std::uint64_t> local_index;
  std::vector<EventId> distinct;
  for (const trace::EventRecord& record : records) {
    if (local_index.emplace(record.event, distinct.size()).second) {
      distinct.push_back(record.event);
    }
  }
  put_varint(body, distinct.size());
  for (const EventId id : distinct) put_string(body, event_name(id));
  put_varint(body, records.size());
  TimestampMs previous = 0;
  for (const trace::EventRecord& record : records) {
    put_varint(body, local_index.at(record.event) * 2 +
                         (record.is_entry ? 1 : 0));
    put_zigzag(body, record.timestamp - previous);
    previous = record.timestamp;
  }

  // Utilization section: the trace keeps samples sorted, so deltas are
  // non-negative and small for the tracker's fixed cadence.
  put_string(body, bundle.utilization.device_name());
  const auto& samples = bundle.utilization.samples();
  put_varint(body, samples.size());
  previous = 0;
  for (const power::UtilizationSample& sample : samples) {
    put_zigzag(body, sample.timestamp - previous);
    previous = sample.timestamp;
    for (const power::Component component : power::kAllComponents) {
      put_f64(body, sample.utilization.get(component));
    }
    put_f64(body, sample.estimated_app_power_mw);
  }

  record.clear();
  record.reserve(body.size() + 16);
  record.append(kBundleMagic);
  record.push_back(static_cast<char>(kCodecVersion));
  put_varint(record, body.size());
  record.append(body);
  put_u32le(record, common::crc32c(body));
}

BundleParts decode_bundle_parts(std::string_view blob) {
  Reader frame(blob);
  if (frame.remaining() < kBundleMagic.size() + 1 ||
      frame.bytes(kBundleMagic.size()) != kBundleMagic) {
    fail("bad magic (not an EDXB record)");
  }
  const auto version = static_cast<std::uint8_t>(frame.bytes(1)[0]);
  if (version == 0 || version > kCodecVersion) {
    fail("unsupported codec version " + std::to_string(version));
  }
  const std::uint64_t body_len = frame.varint();
  if (frame.remaining() != body_len + 4) {
    fail("record length mismatch (truncated or trailing bytes)");
  }
  const std::string_view body_bytes =
      frame.bytes(static_cast<std::size_t>(body_len));
  if (frame.u32le() != common::crc32c(body_bytes)) {
    fail("CRC32C mismatch");
  }

  Reader body(body_bytes);
  BundleParts parts;
  const std::int64_t user = body.zigzag();
  if (user < std::numeric_limits<UserId>::min() ||
      user > std::numeric_limits<UserId>::max()) {
    fail("user id out of range");
  }
  parts.user = static_cast<UserId>(user);
  parts.device_name = std::string(body.string());

  const std::uint64_t name_count = body.varint();
  if (name_count > body.remaining()) fail("name count past end of buffer");
  parts.names.reserve(static_cast<std::size_t>(name_count));
  for (std::uint64_t i = 0; i < name_count; ++i) {
    parts.names.emplace_back(body.string());
  }
  const std::uint64_t record_count = body.varint();
  if (record_count > body.remaining()) {
    fail("record count past end of buffer");
  }
  parts.records.reserve(static_cast<std::size_t>(record_count));
  TimestampMs previous = 0;
  for (std::uint64_t i = 0; i < record_count; ++i) {
    const std::uint64_t key = body.varint();
    const std::uint64_t index = key >> 1;
    if (index >= parts.names.size()) fail("event name index out of range");
    BundleParts::Record record;
    record.name_index = static_cast<std::uint32_t>(index);
    record.is_entry = (key & 1) != 0;
    record.timestamp = previous + body.zigzag();
    previous = record.timestamp;
    parts.records.push_back(record);
  }

  parts.utilization_device = std::string(body.string());
  const std::uint64_t sample_count = body.varint();
  // Each sample is at least 1 (delta) + 64 (doubles) bytes.
  if (sample_count > body.remaining() / 65 + 1) {
    fail("sample count past end of buffer");
  }
  parts.samples.reserve(static_cast<std::size_t>(sample_count));
  previous = 0;
  for (std::uint64_t i = 0; i < sample_count; ++i) {
    power::UtilizationSample sample;
    sample.timestamp = previous + body.zigzag();
    previous = sample.timestamp;
    for (const power::Component component : power::kAllComponents) {
      sample.utilization.set(component, body.f64());
    }
    sample.estimated_app_power_mw = body.f64();
    parts.samples.push_back(sample);
  }
  if (!body.done()) fail("trailing bytes after utilization section");
  return parts;
}

trace::TraceBundle assemble_bundle(BundleParts&& parts) {
  // The only global side effect of decoding: intern names in table order,
  // exactly as the pre-split decode_bundle did.
  std::vector<EventId> ids;
  ids.reserve(parts.names.size());
  for (const std::string& name : parts.names) {
    ids.push_back(intern_event(name));
  }

  trace::TraceBundle bundle;
  bundle.user = parts.user;
  bundle.device_name = std::move(parts.device_name);
  std::vector<trace::EventRecord> records;
  records.reserve(parts.records.size());
  for (const BundleParts::Record& part : parts.records) {
    trace::EventRecord record;
    record.event = ids[part.name_index];
    record.is_entry = part.is_entry;
    record.timestamp = part.timestamp;
    records.push_back(record);
  }
  bundle.events = trace::EventTrace(std::move(records));
  bundle.utilization = trace::UtilizationTrace(
      std::move(parts.utilization_device), std::move(parts.samples));
  return bundle;
}

trace::TraceBundle decode_bundle(std::string_view blob) {
  return assemble_bundle(decode_bundle_parts(blob));
}

}  // namespace edx::store
