#include "store/fleet_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/compress.h"
#include "common/crc32c.h"
#include "common/error.h"
#include "common/thread_pool.h"
#include "core/event_power.h"
#include "store/codec.h"
#include "store/store_util.h"

namespace edx::store {

namespace fs = std::filesystem;

using sutil::manifest_path;
using sutil::publish_file;
using sutil::read_file_bytes;
using sutil::scan_varint;
using sutil::segment_path;
using sutil::snapshot_path;
using sutil::write_all;
using ManifestContents = sutil::ManifestContents;

namespace {

constexpr std::string_view kSegmentMagic = "EDXWAL02";
constexpr std::string_view kSnapshotMagic = "EDXSNAP1";
constexpr std::uint32_t kSnapshotVersion = 1;
constexpr std::uint8_t kRecordKindBundle = 1;
constexpr std::uint8_t kRecordKindCompressed = 2;
/// Producers block once this many encoded-but-unwritten bytes are queued.
constexpr std::size_t kMaxQueueBytes = 8u << 20;
/// Sanity cap on a kind-2 frame's declared uncompressed size.
constexpr std::size_t kMaxRawFrameBytes = std::size_t{1} << 28;

std::string segment_header(std::uint64_t base) {
  return sutil::segment_header(kSegmentMagic, base);
}

/// Result of scanning one segment file: stats plus every record that
/// parsed cleanly, still un-interned (BundleParts).
struct SegmentScan {
  SegmentStats stats;
  std::size_t file_size{0};
  std::vector<std::pair<std::uint64_t, BundleParts>> records;
};

/// Decodes a segment file up to the first bad byte.  Never throws: any
/// damage — unreadable file, bad header, torn frame, CRC mismatch,
/// malformed record — ends the scan with stats.torn set.  Interning is
/// deferred to the caller's sequential merge (decode_bundle_parts touches
/// no global state), which is what makes concurrent scans deterministic.
/// Records with seq <= skip_upto_seq are already folded into the loaded
/// snapshot: their framing, CRC, and sequence order are still verified,
/// but the expensive bundle decode is skipped (the merge drops them as
/// obsolete without ever looking at the parts).
SegmentScan scan_segment(const std::string& path, std::uint64_t base,
                         std::uint64_t skip_upto_seq) {
  SegmentScan scan;
  scan.stats.file = fs::path(path).filename().string();
  scan.stats.base_seq = base;
  scan.stats.last_seq = base == 0 ? 0 : base - 1;

  const auto torn = [&scan](std::size_t good_prefix, std::string reason) {
    scan.stats.torn = true;
    scan.stats.reason = std::move(reason);
    scan.stats.bytes = good_prefix;
  };

  std::string bytes;
  try {
    bytes = read_file_bytes(path);
  } catch (const Error&) {
    torn(0, "unreadable segment file");
    return scan;
  }
  scan.file_size = bytes.size();

  const std::string header = segment_header(base);
  if (bytes.size() < header.size() ||
      std::string_view(bytes).substr(0, header.size()) != header) {
    torn(0, "bad segment header");
    return scan;
  }
  std::size_t offset = header.size();
  scan.stats.bytes = offset;
  const std::string_view data(bytes);
  std::uint64_t previous_seq = base - 1;
  std::string decompressed;
  while (offset < data.size()) {
    std::size_t cursor = offset;
    std::uint64_t frame_len = 0;
    if (!scan_varint(data, cursor, frame_len)) {
      torn(offset, "truncated frame length");
      return scan;
    }
    if (frame_len > data.size() - cursor ||
        data.size() - cursor - frame_len < 4) {
      torn(offset, "truncated frame");
      return scan;
    }
    const std::string_view frame =
        data.substr(cursor, static_cast<std::size_t>(frame_len));
    cursor += static_cast<std::size_t>(frame_len);
    std::uint32_t stored_crc = 0;
    for (int shift = 0; shift < 32; shift += 8) {
      stored_crc |= static_cast<std::uint32_t>(
                        static_cast<unsigned char>(data[cursor++]))
                    << shift;
    }
    if (stored_crc != common::crc32c(frame)) {
      torn(offset, "frame CRC32C mismatch");
      return scan;
    }
    std::uint64_t seq = 0;
    BundleParts parts;
    try {
      Reader reader(frame);
      const auto kind = static_cast<std::uint8_t>(reader.bytes(1)[0]);
      seq = reader.varint();
      if (kind != kRecordKindBundle && kind != kRecordKindCompressed) {
        throw ParseError("unknown record kind " + std::to_string(kind));
      }
      if (seq <= skip_upto_seq) {
        // Snapshot-covered: CRC already vouches for the bytes; leave the
        // parts empty.
      } else if (kind == kRecordKindBundle) {
        parts = decode_bundle_parts(reader.bytes(reader.remaining()));
      } else {
        const std::uint64_t raw_len = reader.varint();
        if (raw_len > kMaxRawFrameBytes) {
          throw ParseError("compressed frame declares absurd raw length");
        }
        // The decompressed record carries its own CRC32C over the
        // uncompressed bytes; decode_bundle_parts re-validates it.
        if (!common::block_decompress(reader.bytes(reader.remaining()),
                                      decompressed,
                                      static_cast<std::size_t>(raw_len)) ||
            decompressed.size() != raw_len) {
          throw ParseError("compressed frame does not decompress");
        }
        parts = decode_bundle_parts(decompressed);
      }
    } catch (const ParseError& failure) {
      // The frame passed its CRC but does not parse — a writer bug or
      // deliberate tampering; either way, stop before it like any other
      // bad tail.
      torn(offset, std::string("bad frame: ") + failure.what());
      return scan;
    }
    if (seq <= previous_seq) {
      torn(offset, "out-of-order sequence number");
      return scan;
    }
    previous_seq = seq;
    scan.records.emplace_back(seq, std::move(parts));
    scan.stats.last_seq = seq;
    ++scan.stats.records;
    offset = cursor;
    scan.stats.bytes = offset;
  }
  return scan;
}

/// Reads snapshot-<seq>.edx; returns false when invalid in any way.
bool load_snapshot_file(const std::string& path,
                        std::vector<BundleRef>& bundles,
                        std::vector<std::string>& names,
                        std::vector<std::vector<double>>& powers) {
  std::string bytes;
  try {
    bytes = read_file_bytes(path);
  } catch (const Error&) {
    return false;
  }
  std::vector<BundleRef> loaded_bundles;
  std::vector<std::string> loaded_names;
  std::vector<std::vector<double>> loaded_powers;
  try {
    Reader file{std::string_view(bytes)};
    if (file.remaining() < kSnapshotMagic.size() ||
        file.bytes(kSnapshotMagic.size()) != kSnapshotMagic) {
      return false;
    }
    if (file.u32le() != kSnapshotVersion) return false;
    const std::uint64_t payload_len = file.varint();
    if (file.remaining() != payload_len + 4) return false;
    const std::string_view payload_bytes =
        file.bytes(static_cast<std::size_t>(payload_len));
    if (file.u32le() != common::crc32c(payload_bytes)) return false;

    Reader payload(payload_bytes);
    payload.varint();  // seq; the filename is authoritative
    const std::uint64_t bundle_count = payload.varint();
    if (bundle_count > payload.remaining()) return false;
    loaded_bundles.reserve(static_cast<std::size_t>(bundle_count));
    for (std::uint64_t i = 0; i < bundle_count; ++i) {
      loaded_bundles.push_back(std::make_shared<const trace::TraceBundle>(
          decode_bundle(payload.string())));
    }
    const std::uint64_t name_count = payload.varint();
    if (name_count > payload.remaining()) return false;
    loaded_names.reserve(static_cast<std::size_t>(name_count));
    for (std::uint64_t i = 0; i < name_count; ++i) {
      loaded_names.emplace_back(payload.string());
    }
    const std::uint64_t slot_count = payload.varint();
    if (slot_count != loaded_names.size()) return false;
    loaded_powers.resize(static_cast<std::size_t>(slot_count));
    for (auto& list : loaded_powers) {
      const std::uint64_t power_count = payload.varint();
      if (power_count > payload.remaining() / 8 + 1) return false;
      list.reserve(static_cast<std::size_t>(power_count));
      for (std::uint64_t i = 0; i < power_count; ++i) {
        list.push_back(payload.f64());
      }
    }
    if (!payload.done()) return false;
  } catch (const ParseError&) {
    return false;
  }
  bundles = std::move(loaded_bundles);
  names = std::move(loaded_names);
  powers = std::move(loaded_powers);
  return true;
}

}  // namespace

// ----------------------------------------------------------------------
// Recovery / open
// ----------------------------------------------------------------------

struct FleetStore::Recovered {
  std::string directory;
  StoreOptions options;
  RecoveryStats recovery;
  std::uint64_t last_seq{0};
  std::vector<BundleRef> fleet;
  std::unordered_map<UserId, std::size_t> slot_by_user;
  std::vector<BundleRef> tail;
  std::vector<std::uint64_t> tail_seqs;
  std::vector<BundleRef> snapshot_bundles;
  std::vector<std::string> snapshot_names;
  std::vector<std::vector<double>> snapshot_powers;
  std::vector<SealedSegment> sealed;
  int active_fd{-1};
  std::uint64_t active_base{1};
  std::uint64_t active_last_seq{0};
  std::size_t active_bytes{0};
};

FleetStore FleetStore::open(const std::string& directory) {
  return open(directory, StoreOptions{});
}

FleetStore FleetStore::open(const std::string& directory,
                            const StoreOptions& options) {
  std::error_code ec;
  fs::create_directories(directory, ec);
  if (ec || !fs::is_directory(directory)) {
    throw Error("store: cannot open directory " + directory +
                (ec ? ": " + ec.message() : ""));
  }
  Recovered st;
  st.directory = directory;
  st.options = options;
  if (st.options.segment_target_bytes < 64) {
    st.options.segment_target_bytes = 64;  // floor: header + one frame
  }

  // A crash between temp-write and rename can leave a stray .tmp behind;
  // it was never published, so it is garbage.
  sutil::remove_stale_temp_files(directory);

  // Newest valid snapshot wins; corrupt ones are skipped, falling back to
  // older snapshots and finally to an empty base state.
  for (const auto& [seq, path] : sutil::list_snapshots(directory)) {
    ++st.recovery.snapshots_found;
    if (st.recovery.snapshot_seq != 0) continue;
    if (load_snapshot_file(path, st.snapshot_bundles, st.snapshot_names,
                           st.snapshot_powers)) {
      st.recovery.snapshot_seq = seq;
    } else {
      ++st.recovery.snapshots_skipped;
    }
  }
  st.recovery.snapshot_bundle_count = st.snapshot_bundles.size();
  st.fleet = st.snapshot_bundles;  // shares the bundles, copies no data
  for (std::size_t slot = 0; slot < st.fleet.size(); ++slot) {
    st.slot_by_user.emplace(st.fleet[slot]->fleet_key(), slot);
  }
  st.last_seq = st.recovery.snapshot_seq;

  const auto segments = sutil::list_segments(directory);
  const auto decode_begin = std::chrono::steady_clock::now();
  std::vector<SegmentScan> scans(segments.size());
  if (segments.size() > 1 &&
      common::ThreadPool::resolve_threads(options.recovery_threads) > 1) {
    common::ThreadPool pool(
        common::ThreadPool::resolve_threads(options.recovery_threads));
    pool.parallel_for(0, segments.size(), [&](std::size_t i) {
      scans[i] = scan_segment(segments[i].second, segments[i].first,
                              st.recovery.snapshot_seq);
    });
  } else {
    for (std::size_t i = 0; i < segments.size(); ++i) {
      scans[i] = scan_segment(segments[i].second, segments[i].first,
                              st.recovery.snapshot_seq);
    }
  }

  // Sequential merge in base order: interning happens here, in replay
  // order, so recovery is byte-identical for any recovery_threads.  The
  // first torn segment ends the global replay (a WAL is a prefix log);
  // only the *active* (newest) segment is ever repaired on disk.
  bool stop_replay = false;
  for (std::size_t i = 0; i < scans.size(); ++i) {
    SegmentScan& scan = scans[i];
    const bool is_active = i + 1 == scans.size();
    scan.stats.sealed = !is_active;
    ++st.recovery.segments_scanned;
    st.recovery.wal_bytes_salvaged += scan.stats.bytes;
    st.recovery.wal_bytes_dropped += scan.file_size - scan.stats.bytes;
    if (stop_replay) {
      if (!scan.stats.reason.empty()) scan.stats.reason += "; ";
      scan.stats.reason += "not replayed (earlier segment torn)";
    } else {
      for (auto& [seq, parts] : scan.records) {
        if (seq <= st.recovery.snapshot_seq) {
          ++st.recovery.wal_records_obsolete;
        } else {
          auto bundle = std::make_shared<const trace::TraceBundle>(
              assemble_bundle(std::move(parts)));
          st.tail.push_back(bundle);
          st.tail_seqs.push_back(seq);
          const auto [it, inserted] =
              st.slot_by_user.emplace(bundle->fleet_key(), st.fleet.size());
          if (inserted) {
            st.fleet.push_back(std::move(bundle));
          } else {
            st.fleet[it->second] = std::move(bundle);
          }
          ++st.recovery.wal_records_replayed;
        }
        st.last_seq = std::max(st.last_seq, seq);
      }
    }
    if (scan.stats.torn) {
      ++st.recovery.segments_salvaged;
      stop_replay = true;
      if (!st.recovery.wal_tail_torn) {
        st.recovery.wal_tail_torn = true;
        st.recovery.wal_tail_reason = scan.stats.reason;
      }
    }
    scan.records.clear();
  }

  // Repair the active tail, LevelDB-style: cut the segment back to the
  // salvaged prefix so new appends land after good records, never after
  // junk.  Sealed segments are immutable and never touched.
  if (!scans.empty()) {
    SegmentScan& active = scans.back();
    const std::string& path = segments.back().second;
    if (active.stats.torn) {
      const std::string header = segment_header(active.stats.base_seq);
      if (active.stats.bytes < header.size()) {
        // Not even the header survived (empty or foreign file): rewrite
        // it so subsequent appends land in a log recovery will read.
        const int fd = ::open(path.c_str(), O_WRONLY | O_TRUNC);
        if (fd < 0) throw Error("FleetStore: cannot repair " + path);
        write_all(fd, header, path);
        ::close(fd);
        active.stats.bytes = header.size();
      } else {
        fs::resize_file(path, active.stats.bytes);
      }
      st.recovery.tail_bytes_truncated =
          active.file_size - active.stats.bytes;
    }
    st.active_base = active.stats.base_seq;
    st.active_last_seq = active.stats.last_seq;
    st.active_bytes = active.stats.bytes;
    // New appends must land past anything already framed in the active
    // segment — even records an earlier torn segment kept us from
    // replaying — or the next recovery would see out-of-order sequences.
    st.last_seq = std::max(st.last_seq, st.active_last_seq);
    for (std::size_t i = 0; i + 1 < scans.size(); ++i) {
      st.sealed.push_back({scans[i].stats.base_seq, scans[i].stats.last_seq,
                           segments[i].second});
    }
  } else {
    st.active_base = st.last_seq + 1;
    st.active_last_seq = st.last_seq;
    const std::string path = segment_path(directory, st.active_base);
    const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
    if (fd < 0) throw Error("FleetStore: cannot create " + path);
    const std::string header = segment_header(st.active_base);
    write_all(fd, header, path);
    ::close(fd);
    st.active_bytes = header.size();
  }
  st.recovery.decode_micros = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - decode_begin)
          .count());

  // Cross-check the manifest against what the directory scan found.  The
  // scan is authoritative; the manifest only buys a consistency signal
  // (and will be rewritten below to match reality).
  const std::string man_path = manifest_path(directory);
  if (fs::exists(man_path)) {
    const std::optional<ManifestContents> manifest = sutil::read_manifest(man_path);
    if (!manifest) {
      st.recovery.manifest_ok = false;
      st.recovery.manifest_note =
          "corrupt manifest; recovered from directory scan";
    } else {
      std::vector<std::pair<std::uint64_t, std::uint64_t>> actual;
      for (const SealedSegment& sealed : st.sealed) {
        actual.emplace_back(sealed.base_seq, sealed.last_seq);
      }
      if (manifest->snapshot_seq != st.recovery.snapshot_seq) {
        st.recovery.manifest_ok = false;
        st.recovery.manifest_note =
            "manifest snapshot seq disagrees with newest valid snapshot";
      } else if (manifest->sealed != actual ||
                 manifest->active_base != st.active_base) {
        st.recovery.manifest_ok = false;
        st.recovery.manifest_note =
            "manifest is stale (behind the directory scan)";
      }
    }
  } else if (!segments.empty()) {
    st.recovery.manifest_ok = false;
    st.recovery.manifest_note =
        "manifest missing; recovered from directory scan";
  }

  for (std::size_t i = 0; i < scans.size(); ++i) {
    st.recovery.segments.push_back(std::move(scans[i].stats));
  }

  // Reopen the active tail for appends.
  {
    const std::string path = segment_path(directory, st.active_base);
    st.active_fd = ::open(path.c_str(), O_WRONLY | O_APPEND);
    if (st.active_fd < 0) throw Error("FleetStore: cannot open " + path);
  }

  return FleetStore(std::move(st));
}

FleetStore::FleetStore(Recovered&& st)
    : directory_(std::move(st.directory)),
      options_(st.options),
      recovery_(std::move(st.recovery)),
      last_seq_(st.last_seq),
      snapshot_seq_(recovery_.snapshot_seq),
      fleet_(std::move(st.fleet)),
      slot_by_user_(std::move(st.slot_by_user)),
      tail_(std::move(st.tail)),
      tail_seqs_(std::move(st.tail_seqs)),
      snapshot_bundles_(std::move(st.snapshot_bundles)),
      snapshot_names_(std::move(st.snapshot_names)),
      snapshot_powers_(std::move(st.snapshot_powers)),
      durable_seq_(st.last_seq),
      sealed_segments_(std::move(st.sealed)),
      active_fd_(st.active_fd),
      active_base_(st.active_base),
      active_last_seq_(st.active_last_seq),
      active_bytes_(st.active_bytes),
      written_seq_(st.last_seq) {
  write_manifest();  // publish a manifest matching recovered reality
  writer_ = std::thread(&FleetStore::writer_loop, this);
}

FleetStore::~FleetStore() {
  try {
    wait_for_compaction();
  } catch (...) {
    // A failed compaction at destruction has nowhere to report; the
    // snapshot set on disk is still consistent (temp+rename).
  }
  {
    std::lock_guard<std::mutex> lk(mutex_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  room_cv_.notify_all();
  if (writer_.joinable()) writer_.join();
  if (active_fd_ >= 0) ::close(active_fd_);
}

namespace {
std::vector<trace::TraceBundle> materialize(
    const std::vector<BundleRef>& refs) {
  std::vector<trace::TraceBundle> out;
  out.reserve(refs.size());
  for (const BundleRef& bundle : refs) out.push_back(*bundle);
  return out;
}
}  // namespace

std::vector<trace::TraceBundle> FleetStore::fleet() const {
  return materialize(fleet_);
}

std::vector<trace::TraceBundle> FleetStore::snapshot_bundles() const {
  return materialize(snapshot_bundles_);
}

std::vector<trace::TraceBundle> FleetStore::tail_bundles() const {
  return materialize(tail_);
}

// ----------------------------------------------------------------------
// Append path / group commit
// ----------------------------------------------------------------------

void FleetStore::apply(BundleRef bundle) {
  const auto [it, inserted] =
      slot_by_user_.emplace(bundle->fleet_key(), fleet_.size());
  if (inserted) {
    fleet_.push_back(std::move(bundle));
  } else {
    fleet_[it->second] = std::move(bundle);
  }
}

std::uint64_t FleetStore::enqueue(const trace::TraceBundle& bundle,
                                  bool durable) {
  // All the expensive work — encoding, optional compression, the one
  // bundle copy — happens outside the lock, so concurrent producers only
  // serialize on the cheap state update + queue push.
  std::string payload = encode_bundle(bundle);
  auto ref = std::make_shared<const trace::TraceBundle>(bundle);
  std::uint8_t kind = kRecordKindBundle;
  if (options_.compress) {
    std::string packed;
    put_varint(packed, payload.size());
    packed += common::block_compress(payload);
    if (packed.size() < payload.size()) {
      kind = kRecordKindCompressed;
      payload = std::move(packed);
    }
  }

  std::unique_lock<std::mutex> lk(mutex_);
  if (writer_error_) std::rethrow_exception(writer_error_);
  room_cv_.wait(lk, [this] {
    return queue_bytes_ < kMaxQueueBytes || stop_ ||
           writer_error_ != nullptr;
  });
  if (writer_error_) std::rethrow_exception(writer_error_);
  if (stop_) throw Error("FleetStore: store is closing");

  const std::uint64_t seq = ++last_seq_;
  tail_.push_back(ref);
  tail_seqs_.push_back(seq);
  apply(std::move(ref));
  queue_bytes_ += payload.size() + sizeof(Pending);
  queue_.push_back(Pending{seq, kind, std::move(payload)});
  queue_cv_.notify_one();

  if (durable) {
    durable_cv_.wait(lk, [this, seq] {
      return durable_seq_ >= seq || writer_error_ != nullptr;
    });
    if (writer_error_) std::rethrow_exception(writer_error_);
  }
  return seq;
}

std::uint64_t FleetStore::append(const trace::TraceBundle& bundle) {
  return enqueue(bundle, /*durable=*/true);
}

std::uint64_t FleetStore::append_async(const trace::TraceBundle& bundle) {
  return enqueue(bundle, /*durable=*/false);
}

void FleetStore::flush() {
  std::unique_lock<std::mutex> lk(mutex_);
  if (writer_error_) std::rethrow_exception(writer_error_);
  const std::uint64_t target = last_seq_;
  flush_requested_ = true;
  queue_cv_.notify_all();
  durable_cv_.wait(lk, [this, target] {
    return durable_seq_ >= target || writer_error_ != nullptr;
  });
  if (writer_error_) std::rethrow_exception(writer_error_);
}

void FleetStore::drain_queue_locked(std::vector<Pending>& batch) {
  while (!queue_.empty()) {
    batch.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  queue_bytes_ = 0;
  room_cv_.notify_all();
}

void FleetStore::write_batch(const std::vector<Pending>& batch) {
  std::string buffer;
  std::size_t i = 0;
  while (i < batch.size()) {
    buffer.clear();
    std::uint64_t last = batch[i].seq;
    // Pack records into one contiguous write until the segment target is
    // reached (always at least one record per write).
    while (i < batch.size() &&
           (buffer.empty() || active_bytes_ + buffer.size() <
                                  options_.segment_target_bytes)) {
      const Pending& pending = batch[i];
      std::string prefix;
      prefix.push_back(static_cast<char>(pending.kind));
      put_varint(prefix, pending.seq);
      put_varint(buffer, prefix.size() + pending.payload.size());
      buffer += prefix;
      buffer += pending.payload;
      put_u32le(buffer, common::crc32c(common::crc32c(0, prefix.data(),
                                                      prefix.size()),
                                       pending.payload.data(),
                                       pending.payload.size()));
      last = pending.seq;
      ++i;
    }
    write_all(active_fd_, buffer, segment_path(directory_, active_base_));
    active_bytes_ += buffer.size();
    active_dirty_ = true;
    active_last_seq_ = last;
    written_seq_ = last;
    if (active_bytes_ >= options_.segment_target_bytes) {
      seal_active_segment(last + 1);
    }
  }
}

void FleetStore::seal_active_segment(std::uint64_t next_base) {
  // Sealing makes the segment immutable *and* durable: compaction may
  // delete older data on the strength of a later snapshot, so the chain
  // of sealed segments must survive a machine crash regardless of the
  // append-path fsync policy.
  if (::fsync(active_fd_) < 0) {
    throw Error("FleetStore: fsync failed for " +
                segment_path(directory_, active_base_));
  }
  ::close(active_fd_);
  active_fd_ = -1;
  active_dirty_ = false;
  const SealedSegment sealed{active_base_, active_last_seq_,
                             segment_path(directory_, active_base_)};

  const std::string path = segment_path(directory_, next_base);
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw Error("FleetStore: cannot create " + path);
  const std::string header = segment_header(next_base);
  write_all(fd, header, path);
  active_fd_ = fd;
  active_bytes_ = header.size();
  active_last_seq_ = next_base - 1;
  {
    std::lock_guard<std::mutex> lk(mutex_);
    sealed_segments_.push_back(sealed);
    active_base_ = next_base;
  }
  write_manifest();
}

void FleetStore::sync_active_segment() {
  if (!active_dirty_ || active_fd_ < 0) return;
#if defined(__APPLE__)
  if (::fsync(active_fd_) < 0) {
#else
  if (::fdatasync(active_fd_) < 0) {
#endif
    throw Error("FleetStore: fdatasync failed for " +
                segment_path(directory_, active_base_));
  }
  active_dirty_ = false;
}

void FleetStore::writer_loop() {
  using clock = std::chrono::steady_clock;
  for (;;) {
    std::vector<Pending> batch;
    bool force_sync = false;
    {
      std::unique_lock<std::mutex> lk(mutex_);
      queue_cv_.wait(lk, [this] {
        return stop_ || !queue_.empty() || flush_requested_;
      });
      if (flush_requested_) {
        force_sync = true;
        flush_requested_ = false;
      }
      drain_queue_locked(batch);
      if (batch.empty() && !force_sync && stop_) break;
    }
    try {
      if (!batch.empty()) write_batch(batch);
      if (options_.fsync_policy == FsyncPolicy::kGroup && !force_sync) {
        // Group window: keep absorbing arrivals before paying the sync.
        // The fsync below then covers the whole group — the amortization
        // that turns ~250 us of sync latency into sub-microsecond
        // per-record cost at load.
        const auto deadline =
            clock::now() +
            std::chrono::microseconds(options_.group_window_us);
        for (;;) {
          std::vector<Pending> more;
          bool stopping = false;
          {
            std::unique_lock<std::mutex> lk(mutex_);
            queue_cv_.wait_until(lk, deadline, [this] {
              return stop_ || !queue_.empty() || flush_requested_;
            });
            if (flush_requested_) {
              force_sync = true;
              flush_requested_ = false;
            }
            drain_queue_locked(more);
            stopping = stop_;
          }
          if (!more.empty()) write_batch(more);
          if (force_sync || stopping || clock::now() >= deadline) break;
        }
      }
      if (options_.fsync_policy != FsyncPolicy::kNone) {
        sync_active_segment();
      }
      {
        std::lock_guard<std::mutex> lk(mutex_);
        durable_seq_ = written_seq_;
      }
      durable_cv_.notify_all();
      compact_cv_.notify_all();
    } catch (...) {
      {
        std::lock_guard<std::mutex> lk(mutex_);
        writer_error_ = std::current_exception();
      }
      durable_cv_.notify_all();
      room_cv_.notify_all();
      compact_cv_.notify_all();
      return;  // the store is wedged; producers see writer_error_
    }
  }
  // Drained and stopping: make whatever was written durable so a clean
  // close never loses async appends (kNone keeps its weaker contract).
  try {
    if (options_.fsync_policy != FsyncPolicy::kNone) sync_active_segment();
  } catch (...) {
    std::lock_guard<std::mutex> lk(mutex_);
    writer_error_ = std::current_exception();
  }
  {
    std::lock_guard<std::mutex> lk(mutex_);
    durable_seq_ = written_seq_;
  }
  durable_cv_.notify_all();
  compact_cv_.notify_all();
}

void FleetStore::write_manifest() {
  ManifestContents contents;
  {
    std::lock_guard<std::mutex> lk(mutex_);
    contents.snapshot_seq = snapshot_seq_;
    contents.sealed.reserve(sealed_segments_.size());
    for (const SealedSegment& sealed : sealed_segments_) {
      contents.sealed.emplace_back(sealed.base_seq, sealed.last_seq);
    }
    contents.active_base = active_base_;
  }
  const std::string bytes = sutil::render_manifest(contents);
  std::lock_guard<std::mutex> lk(manifest_mutex_);
  publish_file(manifest_path(directory_), bytes);
}

// ----------------------------------------------------------------------
// Background compaction
// ----------------------------------------------------------------------

bool FleetStore::compact_async() {
  std::lock_guard<std::mutex> lk(mutex_);
  if (compaction_running_) return false;
  if (compaction_thread_.joinable()) compaction_thread_.join();  // finished
  if (last_seq_ == snapshot_seq_) return false;  // nothing new to fold
  const std::uint64_t cut = last_seq_;
  std::vector<BundleRef> fleet_at_cut = fleet_;  // shares, copies no data
  compaction_running_ = true;
  // The new thread's first action is locking mutex_, so it blocks until
  // this function returns; assigning compaction_thread_ under the lock
  // keeps wait_for_compaction from racing the assignment.
  compaction_thread_ = std::thread(&FleetStore::run_compaction, this, cut,
                                   std::move(fleet_at_cut));
  return true;
}

void FleetStore::wait_for_compaction() {
  std::exception_ptr failure;
  {
    std::unique_lock<std::mutex> lk(mutex_);
    compact_cv_.wait(lk, [this] { return !compaction_running_; });
    if (compaction_thread_.joinable()) compaction_thread_.join();
    failure = std::exchange(compaction_error_, nullptr);
  }
  if (failure) std::rethrow_exception(failure);
}

void FleetStore::compact() {
  compact_async();
  wait_for_compaction();
}

bool FleetStore::compaction_running() const {
  std::lock_guard<std::mutex> lk(mutex_);
  return compaction_running_;
}

void FleetStore::run_compaction(std::uint64_t cut,
                                std::vector<BundleRef> fleet_at_cut) {
  {
    // Every record the snapshot subsumes must be durable before the
    // snapshot can license deleting the segments that carry them.
    std::unique_lock<std::mutex> lk(mutex_);
    compact_cv_.wait(lk, [this, cut] {
      return durable_seq_ >= cut || writer_error_ != nullptr || stop_;
    });
    if (durable_seq_ < cut) {
      compaction_error_ = std::make_exception_ptr(
          Error("FleetStore: compaction aborted (writer stopped)"));
      compaction_running_ = false;
      lk.unlock();
      compact_cv_.notify_all();
      return;
    }
  }
  try {
    // Step 1 over the fleet-at-cut gives the exact per-instance powers
    // the analyzer would compute; serialized per event in traversal order
    // they are EventRanking's state, and snapshot_step1() inverts them.
    // (The per-bundle overload in a loop is documented identical to the
    // span overload for any pool size.)
    std::vector<core::AnalyzedTrace> analyzed;
    analyzed.reserve(fleet_at_cut.size());
    for (const BundleRef& bundle : fleet_at_cut) {
      analyzed.push_back(core::estimate_event_power(*bundle));
    }
    std::vector<std::string> names;
    std::vector<std::vector<double>> powers;
    std::unordered_map<EventId, std::size_t> local_index;
    for (const core::AnalyzedTrace& trace : analyzed) {
      for (const core::PoweredEvent& event : trace.events) {
        const auto [it, inserted] =
            local_index.emplace(event.id, names.size());
        if (inserted) {
          names.push_back(event_name(event.id));
          powers.emplace_back();
        }
        powers[it->second].push_back(event.raw_power);
      }
    }

    std::string payload;
    put_varint(payload, cut);
    put_varint(payload, fleet_at_cut.size());
    for (const BundleRef& bundle : fleet_at_cut) {
      put_string(payload, encode_bundle(*bundle));
    }
    put_varint(payload, names.size());
    for (const std::string& name : names) put_string(payload, name);
    put_varint(payload, powers.size());
    for (const std::vector<double>& list : powers) {
      put_varint(payload, list.size());
      for (const double power : list) put_f64(payload, power);
    }

    std::string file;
    file.reserve(payload.size() + 24);
    file.append(kSnapshotMagic);
    put_u32le(file, kSnapshotVersion);
    put_varint(file, payload.size());
    file += payload;
    put_u32le(file, common::crc32c(payload));
    publish_file(snapshot_path(directory_, cut), file);

    // The snapshot subsumes every record with seq <= cut: delete the
    // sealed segments it fully covers.  (The active segment may still
    // hold covered records; they are skipped as obsolete on recovery and
    // reclaimed once that segment seals and a later compaction runs.)
    std::vector<std::string> doomed;
    {
      std::lock_guard<std::mutex> lk(mutex_);
      auto keep = sealed_segments_.begin();
      for (auto it = sealed_segments_.begin(); it != sealed_segments_.end();
           ++it) {
        if (it->last_seq <= cut) {
          doomed.push_back(it->path);
        } else {
          *keep++ = std::move(*it);
        }
      }
      sealed_segments_.erase(keep, sealed_segments_.end());
    }
    for (const std::string& path : doomed) fs::remove(path);

    // Keep the previous snapshot as a fallback against latent corruption
    // of the new one; prune anything older.
    const auto snapshots = sutil::list_snapshots(directory_);
    for (std::size_t i = 2; i < snapshots.size(); ++i) {
      fs::remove(snapshots[i].second);
    }

    {
      std::lock_guard<std::mutex> lk(mutex_);
      snapshot_bundles_ = std::move(fleet_at_cut);
      snapshot_names_ = std::move(names);
      snapshot_powers_ = std::move(powers);
      snapshot_seq_ = cut;
      std::size_t covered = 0;
      while (covered < tail_seqs_.size() && tail_seqs_[covered] <= cut) {
        ++covered;
      }
      tail_.erase(tail_.begin(),
                  tail_.begin() + static_cast<std::ptrdiff_t>(covered));
      tail_seqs_.erase(
          tail_seqs_.begin(),
          tail_seqs_.begin() + static_cast<std::ptrdiff_t>(covered));
    }
    write_manifest();
  } catch (...) {
    std::lock_guard<std::mutex> lk(mutex_);
    compaction_error_ = std::current_exception();
  }
  {
    std::lock_guard<std::mutex> lk(mutex_);
    compaction_running_ = false;
  }
  compact_cv_.notify_all();
}

// ----------------------------------------------------------------------
// Warm restart
// ----------------------------------------------------------------------

std::vector<core::AnalyzedTrace> FleetStore::snapshot_step1() const {
  std::unordered_map<EventId, std::size_t> local_index;
  local_index.reserve(snapshot_names_.size());
  for (std::size_t i = 0; i < snapshot_names_.size(); ++i) {
    local_index.emplace(intern_event(snapshot_names_[i]), i);
  }
  std::vector<std::size_t> cursor(snapshot_powers_.size(), 0);

  std::vector<core::AnalyzedTrace> traces;
  traces.reserve(snapshot_bundles_.size());
  for (const BundleRef& bundle : snapshot_bundles_) {
    core::AnalyzedTrace& analyzed = traces.emplace_back();
    analyzed.user = bundle->user;
    const std::vector<trace::EventInstance> instances =
        bundle->events.instances();
    analyzed.events.reserve(instances.size());
    for (const trace::EventInstance& instance : instances) {
      const auto it = local_index.find(instance.event);
      if (it == local_index.end() ||
          cursor[it->second] >= snapshot_powers_[it->second].size()) {
        throw ParseError(
            "FleetStore::snapshot_step1: ranking state does not cover the "
            "snapshot bundles (inconsistent snapshot)");
      }
      core::PoweredEvent& event = analyzed.events.emplace_back();
      event.id = instance.event;
      event.interval = instance.interval;
      event.raw_power = snapshot_powers_[it->second][cursor[it->second]++];
    }
  }
  for (std::size_t i = 0; i < cursor.size(); ++i) {
    if (cursor[i] != snapshot_powers_[i].size()) {
      throw ParseError(
          "FleetStore::snapshot_step1: leftover ranking powers "
          "(inconsistent snapshot)");
    }
  }
  return traces;
}

}  // namespace edx::store
