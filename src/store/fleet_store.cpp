#include "store/fleet_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/crc32c.h"
#include "common/error.h"
#include "core/event_power.h"
#include "store/codec.h"

namespace edx::store {

namespace fs = std::filesystem;

namespace {

constexpr std::string_view kWalMagic = "EDXWAL01";
constexpr std::string_view kSnapshotMagic = "EDXSNAP1";
constexpr std::uint32_t kSnapshotVersion = 1;
constexpr std::uint8_t kRecordKindBundle = 1;

std::string wal_path(const std::string& directory) {
  return directory + "/wal.edx";
}

std::string snapshot_path(const std::string& directory, std::uint64_t seq) {
  return directory + "/snapshot-" + std::to_string(seq) + ".edx";
}

/// snapshot-<seq>.edx files in `directory`, newest seq first.
std::vector<std::pair<std::uint64_t, std::string>> list_snapshots(
    const std::string& directory) {
  std::vector<std::pair<std::uint64_t, std::string>> found;
  for (const fs::directory_entry& entry : fs::directory_iterator(directory)) {
    const std::string name = entry.path().filename().string();
    if (!name.starts_with("snapshot-") || !name.ends_with(".edx")) continue;
    const std::string_view digits(name.data() + 9, name.size() - 13);
    std::uint64_t seq = 0;
    const auto [ptr, ec] =
        std::from_chars(digits.begin(), digits.end(), seq);
    if (ec != std::errc() || ptr != digits.end()) continue;
    found.emplace_back(seq, entry.path().string());
  }
  std::sort(found.begin(), found.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  return found;
}

std::string read_file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("FleetStore: cannot read " + path);
  std::ostringstream content;
  content << in.rdbuf();
  return content.str();
}

void write_all(int fd, std::string_view bytes, const std::string& what) {
  while (!bytes.empty()) {
    const ssize_t written = ::write(fd, bytes.data(), bytes.size());
    if (written < 0) throw Error("FleetStore: write failed for " + what);
    bytes.remove_prefix(static_cast<std::size_t>(written));
  }
}

/// Parses "varint frame_len" by hand so a truncated length is a clean
/// end-of-scan instead of an exception; returns false when the buffer ends
/// mid-varint.
bool scan_varint(std::string_view data, std::size_t& offset,
                 std::uint64_t& value) {
  value = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (offset >= data.size()) return false;
    const auto byte = static_cast<unsigned char>(data[offset++]);
    value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return true;
  }
  return false;  // > 64 bits: treat as corruption, not a valid length
}

}  // namespace

FleetStore::FleetStore(FleetStore&& other) noexcept
    : directory_(std::move(other.directory_)),
      recovery_(std::move(other.recovery_)),
      last_seq_(other.last_seq_),
      fleet_(std::move(other.fleet_)),
      slot_by_user_(std::move(other.slot_by_user_)),
      tail_(std::move(other.tail_)),
      snapshot_bundles_(std::move(other.snapshot_bundles_)),
      snapshot_names_(std::move(other.snapshot_names_)),
      snapshot_powers_(std::move(other.snapshot_powers_)),
      wal_fd_(std::exchange(other.wal_fd_, -1)) {}

FleetStore& FleetStore::operator=(FleetStore&& other) noexcept {
  if (this == &other) return *this;
  if (wal_fd_ >= 0) ::close(wal_fd_);
  directory_ = std::move(other.directory_);
  recovery_ = std::move(other.recovery_);
  last_seq_ = other.last_seq_;
  fleet_ = std::move(other.fleet_);
  slot_by_user_ = std::move(other.slot_by_user_);
  tail_ = std::move(other.tail_);
  snapshot_bundles_ = std::move(other.snapshot_bundles_);
  snapshot_names_ = std::move(other.snapshot_names_);
  snapshot_powers_ = std::move(other.snapshot_powers_);
  wal_fd_ = std::exchange(other.wal_fd_, -1);
  return *this;
}

FleetStore::~FleetStore() {
  if (wal_fd_ >= 0) ::close(wal_fd_);
}

FleetStore FleetStore::open(const std::string& directory) {
  std::error_code ec;
  fs::create_directories(directory, ec);
  if (ec || !fs::is_directory(directory)) {
    throw Error("store: cannot open directory " + directory +
                (ec ? ": " + ec.message() : ""));
  }
  FleetStore self;
  self.directory_ = directory;

  // A crash between temp-write and rename in compact() can leave a stray
  // .tmp behind; it was never published, so it is garbage.
  for (const fs::directory_entry& entry : fs::directory_iterator(directory)) {
    const std::string name = entry.path().filename().string();
    if (name.starts_with("snapshot-") && name.ends_with(".edx.tmp")) {
      fs::remove(entry.path());
    }
  }

  // Newest valid snapshot wins; corrupt ones are skipped, falling back to
  // older snapshots and finally to an empty base state.
  for (const auto& [seq, path] : list_snapshots(directory)) {
    ++self.recovery_.snapshots_found;
    if (self.recovery_.snapshot_seq == 0 && self.load_snapshot(path)) {
      self.recovery_.snapshot_seq = seq;
    } else if (self.recovery_.snapshot_seq == 0) {
      ++self.recovery_.snapshots_skipped;
    }
  }
  self.recovery_.snapshot_bundle_count = self.snapshot_bundles_.size();
  self.fleet_ = self.snapshot_bundles_;
  for (std::size_t slot = 0; slot < self.fleet_.size(); ++slot) {
    self.slot_by_user_.emplace(self.fleet_[slot].fleet_key(), slot);
  }
  self.last_seq_ = self.recovery_.snapshot_seq;

  const std::string wal = wal_path(directory);
  if (fs::exists(wal)) {
    self.replay_wal(read_file_bytes(wal));
    if (self.recovery_.wal_tail_torn) {
      // Repair on open, LevelDB-style: cut the log back to the salvaged
      // prefix so new appends land after good records, never after junk.
      fs::resize_file(wal, self.recovery_.wal_bytes_salvaged);
      if (self.recovery_.wal_bytes_salvaged < kWalMagic.size()) {
        // Not even the header survived (empty or foreign file): rewrite
        // it so subsequent appends land in a log recovery will read.
        const int fd = ::open(wal.c_str(), O_WRONLY | O_TRUNC);
        if (fd < 0) throw Error("FleetStore: cannot repair " + wal);
        write_all(fd, kWalMagic, wal);
        ::close(fd);
      }
    }
  } else {
    const int fd = ::open(wal.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
    if (fd < 0) throw Error("FleetStore: cannot create " + wal);
    write_all(fd, kWalMagic, wal);
    ::close(fd);
    self.recovery_.wal_bytes_salvaged = kWalMagic.size();
  }
  self.open_wal_for_append();
  return self;
}

void FleetStore::replay_wal(const std::string& wal_bytes) {
  const auto torn = [this, &wal_bytes](std::size_t good_prefix,
                                       std::string reason) {
    recovery_.wal_tail_torn = true;
    recovery_.wal_tail_reason = std::move(reason);
    recovery_.wal_bytes_salvaged = good_prefix;
    recovery_.wal_bytes_dropped = wal_bytes.size() - good_prefix;
  };

  if (wal_bytes.size() < kWalMagic.size() ||
      std::string_view(wal_bytes).substr(0, kWalMagic.size()) != kWalMagic) {
    torn(0, "bad WAL header");
    return;
  }
  std::size_t offset = kWalMagic.size();
  recovery_.wal_bytes_salvaged = offset;
  const std::string_view data(wal_bytes);
  while (offset < data.size()) {
    std::size_t cursor = offset;
    std::uint64_t frame_len = 0;
    if (!scan_varint(data, cursor, frame_len)) {
      torn(offset, "truncated frame length");
      return;
    }
    if (frame_len > data.size() - cursor ||
        data.size() - cursor - frame_len < 4) {
      torn(offset, "truncated frame");
      return;
    }
    const std::string_view frame =
        data.substr(cursor, static_cast<std::size_t>(frame_len));
    cursor += static_cast<std::size_t>(frame_len);
    std::uint32_t stored_crc = 0;
    for (int shift = 0; shift < 32; shift += 8) {
      stored_crc |= static_cast<std::uint32_t>(
                        static_cast<unsigned char>(data[cursor++]))
                    << shift;
    }
    if (stored_crc != common::crc32c(frame)) {
      torn(offset, "frame CRC32C mismatch");
      return;
    }
    std::uint64_t seq = 0;
    trace::TraceBundle bundle;
    try {
      Reader reader(frame);
      const auto kind = static_cast<std::uint8_t>(reader.bytes(1)[0]);
      if (kind != kRecordKindBundle) {
        throw ParseError("unknown record kind " + std::to_string(kind));
      }
      seq = reader.varint();
      bundle = decode_bundle(reader.bytes(reader.remaining()));
    } catch (const ParseError& failure) {
      // The frame passed its CRC but does not parse — a writer bug or
      // deliberate tampering; either way, stop before it like any other
      // bad tail.
      torn(offset, std::string("bad frame: ") + failure.what());
      return;
    }
    if (seq <= recovery_.snapshot_seq) {
      ++recovery_.wal_records_obsolete;
    } else {
      tail_.push_back(bundle);
      apply(std::move(bundle));
      ++recovery_.wal_records_replayed;
    }
    last_seq_ = std::max(last_seq_, seq);
    offset = cursor;
    recovery_.wal_bytes_salvaged = offset;
  }
}

void FleetStore::apply(trace::TraceBundle bundle) {
  const auto [it, inserted] =
      slot_by_user_.emplace(bundle.fleet_key(), fleet_.size());
  if (inserted) {
    fleet_.push_back(std::move(bundle));
  } else {
    fleet_[it->second] = std::move(bundle);
  }
}

void FleetStore::open_wal_for_append() {
  const std::string wal = wal_path(directory_);
  wal_fd_ = ::open(wal.c_str(), O_WRONLY | O_APPEND);
  if (wal_fd_ < 0) throw Error("FleetStore: cannot open " + wal);
}

std::uint64_t FleetStore::append(const trace::TraceBundle& bundle) {
  const std::uint64_t seq = last_seq_ + 1;
  std::string frame;
  frame.push_back(static_cast<char>(kRecordKindBundle));
  put_varint(frame, seq);
  frame += encode_bundle(bundle);

  std::string record;
  record.reserve(frame.size() + 8);
  put_varint(record, frame.size());
  record += frame;
  put_u32le(record, common::crc32c(frame));
  // write(2) goes straight to the kernel: once append() returns, the
  // record survives a process kill.  fsync (machine-crash durability) is
  // paid once per compact(), not per upload.
  write_all(wal_fd_, record, wal_path(directory_));

  last_seq_ = seq;
  tail_.push_back(bundle);
  apply(bundle);
  return seq;
}

void FleetStore::compact() {
  if (last_seq_ == recovery_.snapshot_seq) return;  // nothing new to fold

  // Step 1 over the fleet gives the exact per-instance powers the
  // analyzer would compute; serialized per event in traversal order they
  // are EventRanking's state, and snapshot_step1() inverts them.
  const std::vector<core::AnalyzedTrace> analyzed =
      core::estimate_event_power(std::span<const trace::TraceBundle>(fleet_));
  std::vector<std::string> names;
  std::vector<std::vector<double>> powers;
  std::unordered_map<EventId, std::size_t> local_index;
  for (const core::AnalyzedTrace& trace : analyzed) {
    for (const core::PoweredEvent& event : trace.events) {
      const auto [it, inserted] =
          local_index.emplace(event.id, names.size());
      if (inserted) {
        names.push_back(event_name(event.id));
        powers.emplace_back();
      }
      powers[it->second].push_back(event.raw_power);
    }
  }

  std::string payload;
  put_varint(payload, last_seq_);
  put_varint(payload, fleet_.size());
  for (const trace::TraceBundle& bundle : fleet_) {
    put_string(payload, encode_bundle(bundle));
  }
  put_varint(payload, names.size());
  for (const std::string& name : names) put_string(payload, name);
  put_varint(payload, powers.size());
  for (const std::vector<double>& list : powers) {
    put_varint(payload, list.size());
    for (const double power : list) put_f64(payload, power);
  }

  std::string file;
  file.reserve(payload.size() + 24);
  file.append(kSnapshotMagic);
  put_u32le(file, kSnapshotVersion);
  put_varint(file, payload.size());
  file += payload;
  put_u32le(file, common::crc32c(payload));

  // Crash-safe publication: temp file, fsync, atomic rename.  A crash at
  // any point leaves either the old snapshot set or the new one — never a
  // half-written snapshot that recovery would have to trust.
  const std::string final_path = snapshot_path(directory_, last_seq_);
  const std::string temp_path = final_path + ".tmp";
  {
    const int fd =
        ::open(temp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) throw Error("FleetStore: cannot create " + temp_path);
    write_all(fd, file, temp_path);
    ::fsync(fd);
    ::close(fd);
  }
  fs::rename(temp_path, final_path);

  // The snapshot now subsumes every WAL record: reset the log.
  if (wal_fd_ >= 0) ::close(wal_fd_);
  const std::string wal = wal_path(directory_);
  const int fd = ::open(wal.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw Error("FleetStore: cannot reset " + wal);
  write_all(fd, kWalMagic, wal);
  ::fsync(fd);
  ::close(fd);
  open_wal_for_append();

  // Keep the previous snapshot as a fallback against latent corruption of
  // the new one; prune anything older.
  const auto snapshots = list_snapshots(directory_);
  for (std::size_t i = 2; i < snapshots.size(); ++i) {
    fs::remove(snapshots[i].second);
  }

  snapshot_bundles_ = fleet_;
  snapshot_names_ = std::move(names);
  snapshot_powers_ = std::move(powers);
  tail_.clear();
  recovery_.snapshot_seq = last_seq_;
  recovery_.snapshot_bundle_count = snapshot_bundles_.size();
}

bool FleetStore::load_snapshot(const std::string& path) {
  std::string bytes;
  try {
    bytes = read_file_bytes(path);
  } catch (const Error&) {
    return false;
  }
  std::vector<trace::TraceBundle> bundles;
  std::vector<std::string> names;
  std::vector<std::vector<double>> powers;
  try {
    Reader file{std::string_view(bytes)};
    if (file.remaining() < kSnapshotMagic.size() ||
        file.bytes(kSnapshotMagic.size()) != kSnapshotMagic) {
      return false;
    }
    if (file.u32le() != kSnapshotVersion) return false;
    const std::uint64_t payload_len = file.varint();
    if (file.remaining() != payload_len + 4) return false;
    const std::string_view payload_bytes =
        file.bytes(static_cast<std::size_t>(payload_len));
    if (file.u32le() != common::crc32c(payload_bytes)) return false;

    Reader payload(payload_bytes);
    payload.varint();  // seq; the filename is authoritative
    const std::uint64_t bundle_count = payload.varint();
    if (bundle_count > payload.remaining()) return false;
    bundles.reserve(static_cast<std::size_t>(bundle_count));
    for (std::uint64_t i = 0; i < bundle_count; ++i) {
      bundles.push_back(decode_bundle(payload.string()));
    }
    const std::uint64_t name_count = payload.varint();
    if (name_count > payload.remaining()) return false;
    names.reserve(static_cast<std::size_t>(name_count));
    for (std::uint64_t i = 0; i < name_count; ++i) {
      names.emplace_back(payload.string());
    }
    const std::uint64_t slot_count = payload.varint();
    if (slot_count != names.size()) return false;
    powers.resize(static_cast<std::size_t>(slot_count));
    for (auto& list : powers) {
      const std::uint64_t power_count = payload.varint();
      if (power_count > payload.remaining() / 8 + 1) return false;
      list.reserve(static_cast<std::size_t>(power_count));
      for (std::uint64_t i = 0; i < power_count; ++i) {
        list.push_back(payload.f64());
      }
    }
    if (!payload.done()) return false;
  } catch (const ParseError&) {
    return false;
  }
  snapshot_bundles_ = std::move(bundles);
  snapshot_names_ = std::move(names);
  snapshot_powers_ = std::move(powers);
  return true;
}

std::vector<core::AnalyzedTrace> FleetStore::snapshot_step1() const {
  std::unordered_map<EventId, std::size_t> local_index;
  local_index.reserve(snapshot_names_.size());
  for (std::size_t i = 0; i < snapshot_names_.size(); ++i) {
    local_index.emplace(intern_event(snapshot_names_[i]), i);
  }
  std::vector<std::size_t> cursor(snapshot_powers_.size(), 0);

  std::vector<core::AnalyzedTrace> traces;
  traces.reserve(snapshot_bundles_.size());
  for (const trace::TraceBundle& bundle : snapshot_bundles_) {
    core::AnalyzedTrace& analyzed = traces.emplace_back();
    analyzed.user = bundle.user;
    const std::vector<trace::EventInstance> instances =
        bundle.events.instances();
    analyzed.events.reserve(instances.size());
    for (const trace::EventInstance& instance : instances) {
      const auto it = local_index.find(instance.event);
      if (it == local_index.end() ||
          cursor[it->second] >= snapshot_powers_[it->second].size()) {
        throw ParseError(
            "FleetStore::snapshot_step1: ranking state does not cover the "
            "snapshot bundles (inconsistent snapshot)");
      }
      core::PoweredEvent& event = analyzed.events.emplace_back();
      event.id = instance.event;
      event.interval = instance.interval;
      event.raw_power = snapshot_powers_[it->second][cursor[it->second]++];
    }
  }
  for (std::size_t i = 0; i < cursor.size(); ++i) {
    if (cursor[i] != snapshot_powers_[i].size()) {
      throw ParseError(
          "FleetStore::snapshot_step1: leftover ranking powers "
          "(inconsistent snapshot)");
    }
  }
  return traces;
}

}  // namespace edx::store
