// Types shared by the durable stores (fleet_store.h, shard_store.h):
// the bundle handle, the fsync policy knobs, and the recovery report
// structures both stores fill in from the same WAL scan machinery.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "trace/recorder.h"

namespace edx::store {

/// One decoded upload, held exactly once and shared between the fleet
/// slot, the tail, and the snapshot image (a full TraceBundle copy is
/// ~10 heap allocations — sharing is what keeps the append hot path
/// alloc-light).  The pointee is immutable.
using BundleRef = std::shared_ptr<const trace::TraceBundle>;

/// When the writer thread syncs a batch to stable storage.
enum class FsyncPolicy {
  kAlways,  ///< one fdatasync per drained batch
  kGroup,   ///< collect arrivals up to group_window_us, then one fdatasync
  kNone,    ///< never sync (process-kill durable only, like PR-4 append)
};

struct StoreOptions {
  FsyncPolicy fsync_policy{FsyncPolicy::kGroup};
  /// How long a kGroup batch keeps absorbing arrivals before its sync.
  std::uint32_t group_window_us{500};
  /// A segment reaching this size is sealed and the next one opened.
  std::size_t segment_target_bytes{8u << 20};
  /// Write compressed (block_compress) frames when they come out smaller.
  bool compress{false};
  /// Threads for parallel segment decode in open(); 0 = hardware.
  std::size_t recovery_threads{0};
};

/// Per-segment recovery diagnostics, in base-sequence order.
struct SegmentStats {
  std::string file;          ///< filename, e.g. "wal-1.edx"
  std::uint64_t base_seq{0};
  std::uint64_t last_seq{0}; ///< last valid record's seq (base-1 if none)
  std::size_t records{0};    ///< valid records decoded
  std::size_t bytes{0};      ///< bytes that parsed cleanly
  bool sealed{false};        ///< not the active tail
  bool torn{false};          ///< scan stopped before the end
  std::string reason;        ///< why it stopped ("" when clean)
  /// Tenant-tagged stores only (shard_store.h): valid records per tenant
  /// in this segment, (tenant key, count), tenant-id order.  A record
  /// whose tenant key could not be resolved is labeled "tenant#<id>".
  std::vector<std::pair<std::string, std::size_t>> tenant_records;
};

/// What open() found and how much of it was usable.
struct RecoveryStats {
  std::uint64_t snapshot_seq{0};       ///< 0 = recovered without a snapshot
  std::size_t snapshot_bundle_count{0};
  std::size_t snapshots_found{0};
  std::size_t snapshots_skipped{0};    ///< corrupt / unreadable snapshots
  std::size_t wal_records_replayed{0}; ///< valid records applied to state
  std::size_t wal_records_obsolete{0}; ///< seq <= snapshot (already folded)
  std::size_t wal_bytes_salvaged{0};   ///< bytes that parsed cleanly (all segments)
  std::size_t wal_bytes_dropped{0};    ///< bytes at/after the first bad record
  bool wal_tail_torn{false};           ///< some segment scan stopped early
  std::string wal_tail_reason;         ///< first stop reason ("" when clean)

  std::size_t segments_scanned{0};
  std::size_t segments_salvaged{0};    ///< torn segments whose prefix was kept
  std::size_t tail_bytes_truncated{0}; ///< active-tail bytes cut by repair
  std::uint64_t decode_micros{0};      ///< wall time of the segment decode+merge
  bool manifest_ok{true};              ///< manifest matched the directory scan
  std::string manifest_note;           ///< why not ("" when ok)
  /// Tenant-tagged stores only: tenants known after recovery.
  std::size_t tenants_recovered{0};
  std::vector<SegmentStats> segments;
};

}  // namespace edx::store
