// Durable, restart-safe storage for MANY tenants sharing one WAL — the
// per-shard partition of the fleet service's store.
//
// fleet_store.h gives one tenant a private WAL, writer thread, and
// fdatasync; a service shard draining a batch that touches K tenants
// therefore pays K syncs.  ShardStore is the LevelDB-style fix: all
// tenants routed to a shard share ONE log, ONE writer thread, and ONE
// group-commit fdatasync per drained batch — frames carry a tenant tag so
// recovery can fan the records back out to per-tenant fleets.  Durability
// amortizes across tenants, not within them.
//
// On-disk layout inside the shard directory:
//   wal-<base>.edx      one WAL segment; header "EDXWAL03" + varint base
//                       (the base is the first sequence the segment may
//                       hold; sequences are per-shard, shared by all
//                       tenants).  Records:
//                         varint frame_len | frame | u32le crc32c(frame)
//                         frame := u8 kind | varint tenant_id |
//                                  varint seq | [string key] | payload
//                         kind 1: payload = codec bundle record
//                         kind 2: payload = varint raw_len |
//                                 common::block_compress(bundle record)
//                         kind 3/4: as 1/2, but a `string key` (varint
//                                 len + bytes) precedes the payload —
//                                 written for a tenant's first-ever
//                                 persisted record, so the id->key map is
//                                 rebuilt from the log itself without
//                                 spending sequence numbers on separate
//                                 registration records.
//                       Active-tail salvage-and-truncate repair and the
//                       torn-sealed-segment stop rule are exactly
//                       fleet_store.h's.
//   manifest.edx        advisory, same "EDXMAN01" format as fleet_store
//                       (it names segments, not frames).
//   snapshot-<seq>.edx  "EDXSNP2" + u32le version + varint payload_len +
//                         payload + u32le crc32c(payload)
//                         payload := varint seq
//                                    varint tenant_count
//                                    tenant_count x tenant section,
//                                      ascending tenant id:
//                                      varint tenant_id | string key |
//                                      varint bundle_count + bundles |
//                                      varint name_count + names |
//                                      varint slot_count + per-slot
//                                        (varint power_count + f64s)
//                       Every registered tenant appears — even ones with
//                       an empty fleet — so the id->key map survives the
//                       deletion of the sealed segments that carried the
//                       kind-3/4 registrations.  Tenant ids are permanent
//                       and never reassigned.
//
// Per-tenant semantics (replace-not-duplicate by fleet_key(), the
// snapshot's Step-1 power lists, snapshot_step1() warm restart) are
// unchanged from fleet_store.h — just keyed by TenantId.
//
// Thread safety matches FleetStore: append()/append_async()/flush() from
// any threads, one background compaction; per-tenant read accessors need
// a quiesced store.  close() (also run by the destructor) stops the
// writer and RETHROWS any writer-thread failure, so an error raised while
// a service drains its final batch is never swallowed.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/analysis_types.h"
#include "store/store_types.h"
#include "trace/recorder.h"

namespace edx::store {

/// Dense per-shard tenant handle.  Ids are assigned in registration order,
/// persisted in the WAL/snapshot, and never reused.
using TenantId = std::uint32_t;
inline constexpr TenantId kInvalidTenant = ~TenantId{0};

/// Read-side summary of one tenant (tenants() accessor).
struct TenantInfo {
  TenantId id{kInvalidTenant};
  std::string key;
  std::size_t fleet_size{0};
  std::size_t tail_size{0};
  std::uint64_t last_seq{0};  ///< shard seq of the tenant's newest record
};

// ---------------------------------------------------------------------
// Partitioned-root layout (a directory of shard stores)
// ---------------------------------------------------------------------

/// layout.edx pins the shard count of a partitioned store root: records
/// route to shards by key hash, so reopening with a different count would
/// silently split tenants across shards.  "EDXLAY01" + varint payload_len
/// + payload(varint shard_count) + u32le crc32c(payload).
struct PartitionedLayout {
  std::size_t shard_count{0};
};

/// Subdirectory holding shard `index` of a partitioned root.
std::string shard_dir(const std::string& root, std::size_t index);

/// Reads root/layout.edx.  nullopt when the file is missing; throws Error
/// when it exists but is corrupt (the shard count cannot be guessed).
std::optional<PartitionedLayout> read_layout(const std::string& root);

/// Publishes root/layout.edx (temp + fsync + rename).
void write_layout(const std::string& root, std::size_t shard_count);

/// What a store root on disk actually is.
enum class RootKind {
  kMissing,         ///< directory does not exist
  kEmpty,           ///< exists, nothing store-like inside
  kPartitioned,     ///< layout.edx and/or shard-<i>/ subdirectories
  kSingleStore,     ///< one FleetStore directory (wal-*.edx at top level)
  kLegacyPerTenant, ///< pre-partition layout: one FleetStore dir per tenant
};

struct RootInfo {
  RootKind kind{RootKind::kMissing};
  std::size_t shard_count{0};          ///< kPartitioned only
  /// Per-tenant FleetStore directories (sorted tenant keys).  Filled for
  /// every kind, not just kLegacyPerTenant: a partitioned root can still
  /// hold unmigrated tenant dirs after a mid-migration crash.
  std::vector<std::string> tenant_dirs;
};

/// Classifies `root` without opening any store.
RootInfo inspect_root(const std::string& root);

// ---------------------------------------------------------------------
// ShardStore
// ---------------------------------------------------------------------

class ShardStore {
 public:
  static ShardStore open(const std::string& directory);
  static ShardStore open(const std::string& directory,
                         const StoreOptions& options);

  ShardStore(const ShardStore&) = delete;
  ShardStore& operator=(const ShardStore&) = delete;
  ShardStore(ShardStore&&) = delete;
  ShardStore& operator=(ShardStore&&) = delete;
  ~ShardStore();

  /// Flushes nothing, stops the writer thread, and rethrows the first
  /// writer or compaction failure — so errors raised by the final batch
  /// are surfaced, not swallowed.  Idempotent; the store is unusable
  /// afterwards.  The destructor calls it and swallows (with a stderr
  /// note) because destructors must not throw.
  void close();

  [[nodiscard]] const std::string& directory() const { return directory_; }
  [[nodiscard]] const StoreOptions& options() const { return options_; }
  [[nodiscard]] const RecoveryStats& recovery() const { return recovery_; }

  /// Registers `key` (idempotent) and returns its permanent id.  The key
  /// itself is persisted inline with the tenant's first record (kind 3/4)
  /// and in every snapshot; registering without ever appending leaves no
  /// trace on disk.
  TenantId ensure_tenant(const std::string& key);
  [[nodiscard]] std::optional<TenantId> find_tenant(
      const std::string& key) const;
  [[nodiscard]] std::size_t tenant_count() const;
  [[nodiscard]] const std::string& tenant_key(TenantId id) const;
  /// All tenants, ascending id.
  [[nodiscard]] std::vector<TenantInfo> tenants() const;

  // Per-tenant reads (quiesced store; zero-copy, same contracts as the
  // FleetStore accessors of the same names).
  [[nodiscard]] const std::vector<BundleRef>& fleet_refs(TenantId id) const;
  [[nodiscard]] const std::vector<BundleRef>& tail_refs(TenantId id) const;
  [[nodiscard]] const std::vector<BundleRef>& snapshot_refs(
      TenantId id) const;
  [[nodiscard]] std::vector<core::AnalyzedTrace> snapshot_step1(
      TenantId id) const;
  [[nodiscard]] std::uint64_t tenant_last_seq(TenantId id) const;

  /// Durably appends one upload for `id` (blocks for the covering sync).
  /// Returns the record's shard-wide sequence number.
  std::uint64_t append(TenantId id, const trace::TraceBundle& bundle);
  /// Queues without waiting for durability; pair with flush().
  std::uint64_t append_async(TenantId id, const trace::TraceBundle& bundle);
  /// Blocks until every queued record is durable under the fsync policy.
  void flush();

  [[nodiscard]] std::uint64_t last_seq() const { return last_seq_; }
  [[nodiscard]] std::uint64_t snapshot_seq() const { return snapshot_seq_; }
  /// Total fdatasync/fsync calls issued by the writer thread so far — the
  /// group-commit receipt: one batch touching K tenants bumps this once.
  [[nodiscard]] std::uint64_t fsync_count() const {
    return fsyncs_.load(std::memory_order_relaxed);
  }

  /// Folds every tenant's fleet as of last_seq() into one snapshot on a
  /// background thread (shared segment scan, per-tenant sections).
  bool compact_async();
  void wait_for_compaction();
  void compact();
  [[nodiscard]] bool compaction_running() const;

 private:
  /// Per-tenant fleet state; id-indexed in a deque for stable references
  /// across concurrent ensure_tenant calls.
  struct Tenant {
    std::string key;
    bool key_persisted{false};  ///< a kind-3/4 or snapshot record holds it
    std::uint64_t last_seq{0};
    std::vector<BundleRef> fleet;
    std::unordered_map<UserId, std::size_t> slot_by_user;
    std::vector<BundleRef> tail;
    std::vector<std::uint64_t> tail_seqs;
    std::vector<BundleRef> snapshot_bundles;
    std::vector<std::string> snapshot_names;
    std::vector<std::vector<double>> snapshot_powers;
  };

  /// One queued, already-encoded WAL record.  `kind` is final (includes
  /// the +2 inline-key variant); the key bytes are fetched from the
  /// tenant at write time (immutable once registered).
  struct Pending {
    std::uint64_t seq{0};
    TenantId tenant{kInvalidTenant};
    std::uint8_t kind{0};
    std::string payload;
  };

  struct SealedSegment {
    std::uint64_t base_seq{0};
    std::uint64_t last_seq{0};
    std::string path;
  };

  struct Recovered;
  explicit ShardStore(Recovered&& state);

  Tenant& tenant_ref(TenantId id);
  const Tenant& tenant_ref(TenantId id) const;

  std::uint64_t enqueue(TenantId id, const trace::TraceBundle& bundle,
                        bool durable);
  void writer_loop();
  void drain_queue_locked(std::vector<Pending>& batch);
  void write_batch(std::vector<Pending>& batch);
  void seal_active_segment(std::uint64_t next_base);
  void sync_active_segment();
  void write_manifest();
  /// Returns a pooled encode buffer (cleared, capacity retained) or a
  /// fresh string; the writer recycles batch payloads after write(2).
  std::string take_pooled_payload();
  void recycle_payloads(std::vector<Pending>& batch);

  void run_compaction(
      std::uint64_t cut,
      std::vector<std::pair<TenantId, std::vector<BundleRef>>> fleets);

  // --- immutable after open() -----------------------------------------
  std::string directory_;
  StoreOptions options_;
  RecoveryStats recovery_;

  // --- tenant / fleet state (mutex_ when racing appends) ---------------
  std::uint64_t last_seq_{0};
  std::uint64_t snapshot_seq_{0};
  std::deque<Tenant> tenants_;  ///< id-indexed, reference-stable
  std::unordered_map<std::string, TenantId> tenant_by_key_;
  mutable std::shared_mutex tenant_mutex_;  ///< guards the two above

  // --- writer / group commit ------------------------------------------
  mutable std::mutex mutex_;
  std::condition_variable queue_cv_;
  std::condition_variable room_cv_;
  std::condition_variable durable_cv_;
  std::condition_variable compact_cv_;
  std::deque<Pending> queue_;
  std::size_t queue_bytes_{0};
  std::uint64_t durable_seq_{0};
  bool flush_requested_{false};
  bool stop_{false};
  bool closed_{false};
  std::exception_ptr writer_error_;
  std::thread writer_;
  std::atomic<std::uint64_t> fsyncs_{0};

  /// Pooled encode buffers: producers take, the writer gives back after
  /// the batch hits write(2) — per-batch allocation churn goes away once
  /// the pool warms up.
  std::mutex pool_mutex_;
  std::vector<std::string> payload_pool_;

  std::vector<SealedSegment> sealed_segments_;

  // Writer-thread-private active segment state (active_base_ also read
  // under mutex_ by write_manifest).
  int active_fd_{-1};
  std::uint64_t active_base_{1};
  std::uint64_t active_last_seq_{0};
  std::size_t active_bytes_{0};
  std::uint64_t written_seq_{0};
  bool active_dirty_{false};
  std::string write_buffer_;  ///< writer-private, reused across batches

  // --- background compaction ------------------------------------------
  bool compaction_running_{false};
  std::exception_ptr compaction_error_;
  std::thread compaction_thread_;

  std::mutex manifest_mutex_;
};

}  // namespace edx::store
