#include "store/shard_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <map>
#include <utility>

#include "common/compress.h"
#include "common/crc32c.h"
#include "common/error.h"
#include "common/thread_pool.h"
#include "core/event_power.h"
#include "store/codec.h"
#include "store/store_util.h"

namespace edx::store {

namespace fs = std::filesystem;

using sutil::manifest_path;
using sutil::publish_file;
using sutil::read_file_bytes;
using sutil::scan_varint;
using sutil::segment_path;
using sutil::snapshot_path;
using sutil::write_all;
using ManifestContents = sutil::ManifestContents;

namespace {

constexpr std::string_view kSegmentMagic = "EDXWAL03";
constexpr std::string_view kSnapshotMagic = "EDXSNP2";
constexpr std::string_view kLayoutMagic = "EDXLAY01";
constexpr std::uint32_t kSnapshotVersion = 1;
// Frame kinds: 1 = bundle record, 2 = block-compressed bundle record;
// +2 (3/4) = same payload, but a `string key` precedes it — the tenant's
// first-ever persisted record registers its key without spending a
// separate sequence number.
constexpr std::uint8_t kRecordKindBundle = 1;
constexpr std::uint8_t kRecordKindCompressed = 2;
constexpr std::uint8_t kRecordKeyFlag = 2;  // kind + kRecordKeyFlag
/// Producers block once this many encoded-but-unwritten bytes are queued.
constexpr std::size_t kMaxQueueBytes = 8u << 20;
/// Sanity cap on a compressed frame's declared uncompressed size.
constexpr std::size_t kMaxRawFrameBytes = std::size_t{1} << 28;
/// Encode-buffer pool bounds: plenty for a full writer queue of typical
/// bundles without letting a burst of huge records pin memory forever.
constexpr std::size_t kMaxPooledPayloads = 1024;
constexpr std::size_t kMaxPooledPayloadCapacity = 1u << 20;

std::string segment_header(std::uint64_t base) {
  return sutil::segment_header(kSegmentMagic, base);
}

std::string layout_path(const std::string& root) {
  return root + "/layout.edx";
}

/// One valid record out of a tenant-tagged segment scan.
struct ScannedRecord {
  std::uint64_t seq{0};
  TenantId tenant{kInvalidTenant};
  bool has_key{false};
  std::string key;
  BundleParts parts;
};

/// Result of scanning one tenant-tagged segment file.
struct SegmentScan {
  SegmentStats stats;
  std::size_t file_size{0};
  std::vector<ScannedRecord> records;
  /// Valid records per tenant id (resolved to keys at merge time).
  std::map<TenantId, std::size_t> tenant_counts;
};

/// Decodes a tenant-tagged segment up to the first bad byte.  Same
/// contract as fleet_store.cpp's scan_segment: never throws, damage sets
/// stats.torn, interning is deferred to the sequential merge.  Records
/// with seq <= skip_upto_seq skip the bundle decode (snapshot-covered)
/// but still surface their tenant tag and inline key.
SegmentScan scan_segment(const std::string& path, std::uint64_t base,
                         std::uint64_t skip_upto_seq) {
  SegmentScan scan;
  scan.stats.file = fs::path(path).filename().string();
  scan.stats.base_seq = base;
  scan.stats.last_seq = base == 0 ? 0 : base - 1;

  const auto torn = [&scan](std::size_t good_prefix, std::string reason) {
    scan.stats.torn = true;
    scan.stats.reason = std::move(reason);
    scan.stats.bytes = good_prefix;
  };

  std::string bytes;
  try {
    bytes = read_file_bytes(path);
  } catch (const Error&) {
    torn(0, "unreadable segment file");
    return scan;
  }
  scan.file_size = bytes.size();

  const std::string header = segment_header(base);
  if (bytes.size() < header.size() ||
      std::string_view(bytes).substr(0, header.size()) != header) {
    torn(0, "bad segment header");
    return scan;
  }
  std::size_t offset = header.size();
  scan.stats.bytes = offset;
  const std::string_view data(bytes);
  std::uint64_t previous_seq = base - 1;
  std::string decompressed;
  while (offset < data.size()) {
    std::size_t cursor = offset;
    std::uint64_t frame_len = 0;
    if (!scan_varint(data, cursor, frame_len)) {
      torn(offset, "truncated frame length");
      return scan;
    }
    if (frame_len > data.size() - cursor ||
        data.size() - cursor - frame_len < 4) {
      torn(offset, "truncated frame");
      return scan;
    }
    const std::string_view frame =
        data.substr(cursor, static_cast<std::size_t>(frame_len));
    cursor += static_cast<std::size_t>(frame_len);
    std::uint32_t stored_crc = 0;
    for (int shift = 0; shift < 32; shift += 8) {
      stored_crc |= static_cast<std::uint32_t>(
                        static_cast<unsigned char>(data[cursor++]))
                    << shift;
    }
    if (stored_crc != common::crc32c(frame)) {
      torn(offset, "frame CRC32C mismatch");
      return scan;
    }
    ScannedRecord record;
    try {
      Reader reader(frame);
      const auto kind = static_cast<std::uint8_t>(reader.bytes(1)[0]);
      const std::uint64_t tenant = reader.varint();
      if (tenant >= kInvalidTenant) {
        throw ParseError("tenant id out of range");
      }
      record.tenant = static_cast<TenantId>(tenant);
      record.seq = reader.varint();
      const std::uint8_t base_kind =
          kind > kRecordKeyFlag ? kind - kRecordKeyFlag : kind;
      if (base_kind != kRecordKindBundle &&
          base_kind != kRecordKindCompressed) {
        throw ParseError("unknown record kind " + std::to_string(kind));
      }
      record.has_key = kind > kRecordKeyFlag;
      if (record.has_key) record.key = std::string(reader.string());
      if (record.seq <= skip_upto_seq) {
        // Snapshot-covered: CRC already vouches for the bytes; leave the
        // parts empty (the key, if any, was still parsed above).
      } else if (base_kind == kRecordKindBundle) {
        record.parts = decode_bundle_parts(reader.bytes(reader.remaining()));
      } else {
        const std::uint64_t raw_len = reader.varint();
        if (raw_len > kMaxRawFrameBytes) {
          throw ParseError("compressed frame declares absurd raw length");
        }
        if (!common::block_decompress(reader.bytes(reader.remaining()),
                                      decompressed,
                                      static_cast<std::size_t>(raw_len)) ||
            decompressed.size() != raw_len) {
          throw ParseError("compressed frame does not decompress");
        }
        record.parts = decode_bundle_parts(decompressed);
      }
    } catch (const ParseError& failure) {
      torn(offset, std::string("bad frame: ") + failure.what());
      return scan;
    }
    if (record.seq <= previous_seq) {
      torn(offset, "out-of-order sequence number");
      return scan;
    }
    previous_seq = record.seq;
    scan.stats.last_seq = record.seq;
    ++scan.stats.records;
    ++scan.tenant_counts[record.tenant];
    scan.records.push_back(std::move(record));
    offset = cursor;
    scan.stats.bytes = offset;
  }
  return scan;
}

/// One tenant section as loaded from an EDXSNP2 snapshot.
struct SnapshotTenant {
  TenantId id{kInvalidTenant};
  std::string key;
  std::vector<BundleRef> bundles;
  std::vector<std::string> names;
  std::vector<std::vector<double>> powers;
};

/// Reads snapshot-<seq>.edx; returns false when invalid in any way.
bool load_snapshot_file(const std::string& path,
                        std::vector<SnapshotTenant>& tenants) {
  std::string bytes;
  try {
    bytes = read_file_bytes(path);
  } catch (const Error&) {
    return false;
  }
  std::vector<SnapshotTenant> loaded;
  try {
    Reader file{std::string_view(bytes)};
    if (file.remaining() < kSnapshotMagic.size() ||
        file.bytes(kSnapshotMagic.size()) != kSnapshotMagic) {
      return false;
    }
    if (file.u32le() != kSnapshotVersion) return false;
    const std::uint64_t payload_len = file.varint();
    if (file.remaining() != payload_len + 4) return false;
    const std::string_view payload_bytes =
        file.bytes(static_cast<std::size_t>(payload_len));
    if (file.u32le() != common::crc32c(payload_bytes)) return false;

    Reader payload(payload_bytes);
    payload.varint();  // seq; the filename is authoritative
    const std::uint64_t tenant_count = payload.varint();
    if (tenant_count > payload.remaining()) return false;
    loaded.reserve(static_cast<std::size_t>(tenant_count));
    TenantId previous_id = kInvalidTenant;  // sections ascend by id
    for (std::uint64_t t = 0; t < tenant_count; ++t) {
      SnapshotTenant& tenant = loaded.emplace_back();
      const std::uint64_t id = payload.varint();
      if (id >= kInvalidTenant) return false;
      tenant.id = static_cast<TenantId>(id);
      if (previous_id != kInvalidTenant && tenant.id <= previous_id) {
        return false;
      }
      previous_id = tenant.id;
      tenant.key = std::string(payload.string());
      if (tenant.key.empty()) return false;
      const std::uint64_t bundle_count = payload.varint();
      if (bundle_count > payload.remaining()) return false;
      tenant.bundles.reserve(static_cast<std::size_t>(bundle_count));
      for (std::uint64_t i = 0; i < bundle_count; ++i) {
        tenant.bundles.push_back(std::make_shared<const trace::TraceBundle>(
            decode_bundle(payload.string())));
      }
      const std::uint64_t name_count = payload.varint();
      if (name_count > payload.remaining()) return false;
      tenant.names.reserve(static_cast<std::size_t>(name_count));
      for (std::uint64_t i = 0; i < name_count; ++i) {
        tenant.names.emplace_back(payload.string());
      }
      const std::uint64_t slot_count = payload.varint();
      if (slot_count != tenant.names.size()) return false;
      tenant.powers.resize(static_cast<std::size_t>(slot_count));
      for (auto& list : tenant.powers) {
        const std::uint64_t power_count = payload.varint();
        if (power_count > payload.remaining() / 8 + 1) return false;
        list.reserve(static_cast<std::size_t>(power_count));
        for (std::uint64_t i = 0; i < power_count; ++i) {
          list.push_back(payload.f64());
        }
      }
    }
    if (!payload.done()) return false;
  } catch (const ParseError&) {
    return false;
  }
  tenants = std::move(loaded);
  return true;
}

}  // namespace

// ----------------------------------------------------------------------
// Partitioned-root layout helpers
// ----------------------------------------------------------------------

std::string shard_dir(const std::string& root, std::size_t index) {
  return root + "/shard-" + std::to_string(index);
}

std::optional<PartitionedLayout> read_layout(const std::string& root) {
  const std::string path = layout_path(root);
  if (!fs::exists(path)) return std::nullopt;
  const std::string bytes = read_file_bytes(path);
  try {
    Reader file{std::string_view(bytes)};
    if (file.remaining() < kLayoutMagic.size() ||
        file.bytes(kLayoutMagic.size()) != kLayoutMagic) {
      throw ParseError("bad magic");
    }
    const std::uint64_t payload_len = file.varint();
    if (file.remaining() != payload_len + 4) throw ParseError("bad length");
    const std::string_view payload_bytes =
        file.bytes(static_cast<std::size_t>(payload_len));
    if (file.u32le() != common::crc32c(payload_bytes)) {
      throw ParseError("CRC32C mismatch");
    }
    Reader payload(payload_bytes);
    PartitionedLayout layout;
    layout.shard_count = static_cast<std::size_t>(payload.varint());
    if (!payload.done() || layout.shard_count == 0) {
      throw ParseError("bad shard count");
    }
    return layout;
  } catch (const ParseError& failure) {
    // The shard count routes tenants; guessing it would silently split
    // tenants across shards, so a corrupt layout file is fatal.
    throw Error("store: corrupt layout file " + path + ": " +
                failure.what());
  }
}

void write_layout(const std::string& root, std::size_t shard_count) {
  std::string payload;
  put_varint(payload, shard_count);
  std::string file;
  file.reserve(payload.size() + 24);
  file.append(kLayoutMagic);
  put_varint(file, payload.size());
  file += payload;
  put_u32le(file, common::crc32c(payload));
  publish_file(layout_path(root), file);
}

RootInfo inspect_root(const std::string& root) {
  RootInfo info;
  if (!fs::exists(root)) return info;  // kMissing
  if (!fs::is_directory(root)) {
    throw Error("store: " + root + " is not a directory");
  }
  const std::optional<PartitionedLayout> layout = read_layout(root);

  const auto looks_like_store = [](const std::string& dir) {
    std::error_code ec;
    for (const fs::directory_entry& entry :
         fs::directory_iterator(dir, ec)) {
      const std::string name = entry.path().filename().string();
      if ((name.starts_with("wal-") || name.starts_with("snapshot-")) &&
          name.ends_with(".edx")) {
        return true;
      }
      if (name == "manifest.edx") return true;
    }
    return false;
  };

  std::size_t max_shard = 0;
  bool saw_shard_dir = false;
  bool saw_top_level_store = false;
  std::vector<std::string> tenant_dirs;
  for (const fs::directory_entry& entry : fs::directory_iterator(root)) {
    const std::string name = entry.path().filename().string();
    if (entry.is_directory()) {
      if (name.starts_with("shard-")) {
        saw_shard_dir = true;
        std::size_t index = 0;
        try {
          index = static_cast<std::size_t>(std::stoul(name.substr(6)));
        } catch (...) {
          continue;
        }
        max_shard = std::max(max_shard, index);
      } else if (looks_like_store(entry.path().string())) {
        tenant_dirs.push_back(name);
      }
    } else if (((name.starts_with("wal-") || name.starts_with("snapshot-")) &&
                name.ends_with(".edx")) ||
               name == "manifest.edx") {
      saw_top_level_store = true;
    }
  }

  // Tenant-looking directories are reported for every kind: a crash in
  // the middle of a legacy-root migration leaves a layout file AND
  // unmigrated per-tenant directories, and the service finishes the
  // migration from this list on the next open.
  std::sort(tenant_dirs.begin(), tenant_dirs.end());
  info.tenant_dirs = std::move(tenant_dirs);

  if (layout) {
    info.kind = RootKind::kPartitioned;
    info.shard_count = layout->shard_count;
  } else if (saw_shard_dir) {
    // Shard directories without a layout file (a crash before
    // write_layout published): the directory scan is the fallback.
    info.kind = RootKind::kPartitioned;
    info.shard_count = max_shard + 1;
  } else if (saw_top_level_store) {
    info.kind = RootKind::kSingleStore;
  } else if (!info.tenant_dirs.empty()) {
    info.kind = RootKind::kLegacyPerTenant;
  } else {
    info.kind = RootKind::kEmpty;
  }
  return info;
}

// ----------------------------------------------------------------------
// Recovery / open
// ----------------------------------------------------------------------

struct ShardStore::Recovered {
  std::string directory;
  StoreOptions options;
  RecoveryStats recovery;
  std::uint64_t last_seq{0};
  std::deque<Tenant> tenants;
  std::unordered_map<std::string, TenantId> tenant_by_key;
  std::vector<SealedSegment> sealed;
  int active_fd{-1};
  std::uint64_t active_base{1};
  std::uint64_t active_last_seq{0};
  std::size_t active_bytes{0};
};

ShardStore ShardStore::open(const std::string& directory) {
  return open(directory, StoreOptions{});
}

ShardStore ShardStore::open(const std::string& directory,
                            const StoreOptions& options) {
  std::error_code ec;
  fs::create_directories(directory, ec);
  if (ec || !fs::is_directory(directory)) {
    throw Error("store: cannot open directory " + directory +
                (ec ? ": " + ec.message() : ""));
  }
  Recovered st;
  st.directory = directory;
  st.options = options;
  if (st.options.segment_target_bytes < 64) {
    st.options.segment_target_bytes = 64;  // floor: header + one frame
  }

  sutil::remove_stale_temp_files(directory);

  // Ensures a tenant slot exists for `id` (gaps become unregistered
  // placeholders with an empty key; ids on disk are authoritative).
  const auto tenant_slot = [&st](TenantId id) -> Tenant& {
    while (st.tenants.size() <= id) st.tenants.emplace_back();
    return st.tenants[id];
  };

  // Newest valid snapshot wins; corrupt ones are skipped.
  {
    std::vector<SnapshotTenant> sections;
    for (const auto& [seq, path] : sutil::list_snapshots(directory)) {
      ++st.recovery.snapshots_found;
      if (st.recovery.snapshot_seq != 0) continue;
      if (load_snapshot_file(path, sections)) {
        st.recovery.snapshot_seq = seq;
      } else {
        ++st.recovery.snapshots_skipped;
      }
    }
    for (SnapshotTenant& section : sections) {
      Tenant& tenant = tenant_slot(section.id);
      tenant.key = section.key;
      tenant.key_persisted = true;
      tenant.snapshot_bundles = std::move(section.bundles);
      tenant.snapshot_names = std::move(section.names);
      tenant.snapshot_powers = std::move(section.powers);
      tenant.fleet = tenant.snapshot_bundles;  // shares, copies no data
      for (std::size_t slot = 0; slot < tenant.fleet.size(); ++slot) {
        tenant.slot_by_user.emplace(tenant.fleet[slot]->fleet_key(), slot);
      }
      tenant.last_seq = st.recovery.snapshot_seq;
      st.recovery.snapshot_bundle_count += tenant.fleet.size();
      st.tenant_by_key.emplace(tenant.key, section.id);
    }
  }
  st.last_seq = st.recovery.snapshot_seq;

  const auto segments = sutil::list_segments(directory);
  const auto decode_begin = std::chrono::steady_clock::now();
  std::vector<SegmentScan> scans(segments.size());
  if (segments.size() > 1 &&
      common::ThreadPool::resolve_threads(options.recovery_threads) > 1) {
    common::ThreadPool pool(
        common::ThreadPool::resolve_threads(options.recovery_threads));
    pool.parallel_for(0, segments.size(), [&](std::size_t i) {
      scans[i] = scan_segment(segments[i].second, segments[i].first,
                              st.recovery.snapshot_seq);
    });
  } else {
    for (std::size_t i = 0; i < segments.size(); ++i) {
      scans[i] = scan_segment(segments[i].second, segments[i].first,
                              st.recovery.snapshot_seq);
    }
  }

  // Sequential merge in base order: fan tenant-tagged records back out to
  // per-tenant fleets.  Interning happens here, in replay order, so
  // recovery is byte-identical for any recovery_threads.  The first torn
  // segment ends the global replay; only the active segment is repaired.
  bool stop_replay = false;
  for (std::size_t i = 0; i < scans.size(); ++i) {
    SegmentScan& scan = scans[i];
    const bool is_active = i + 1 == scans.size();
    scan.stats.sealed = !is_active;
    ++st.recovery.segments_scanned;
    st.recovery.wal_bytes_salvaged += scan.stats.bytes;
    st.recovery.wal_bytes_dropped += scan.file_size - scan.stats.bytes;
    if (stop_replay) {
      if (!scan.stats.reason.empty()) scan.stats.reason += "; ";
      scan.stats.reason += "not replayed (earlier segment torn)";
    } else {
      for (ScannedRecord& record : scan.records) {
        if (record.has_key) {
          Tenant& tenant = tenant_slot(record.tenant);
          if (tenant.key.empty()) {
            tenant.key = record.key;
            tenant.key_persisted = true;
            st.tenant_by_key.emplace(tenant.key, record.tenant);
          } else if (tenant.key != record.key) {
            // CRC-valid but semantically impossible — a writer bug or
            // tampering.  Stop the replay like any other bad tail.
            stop_replay = true;
            st.recovery.wal_tail_torn = true;
            st.recovery.wal_tail_reason =
                "tenant key conflict for tenant id " +
                std::to_string(record.tenant);
            break;
          }
        }
        if (record.seq <= st.recovery.snapshot_seq) {
          ++st.recovery.wal_records_obsolete;
        } else {
          if (record.tenant >= st.tenants.size() ||
              st.tenants[record.tenant].key.empty()) {
            // A live record for a tenant the snapshot + earlier records
            // never registered: the prefix that carried its registration
            // is gone.  Stop rather than guess.
            stop_replay = true;
            st.recovery.wal_tail_torn = true;
            st.recovery.wal_tail_reason =
                "record references unregistered tenant id " +
                std::to_string(record.tenant);
            break;
          }
          Tenant& tenant = st.tenants[record.tenant];
          auto bundle = std::make_shared<const trace::TraceBundle>(
              assemble_bundle(std::move(record.parts)));
          tenant.tail.push_back(bundle);
          tenant.tail_seqs.push_back(record.seq);
          const auto [it, inserted] = tenant.slot_by_user.emplace(
              bundle->fleet_key(), tenant.fleet.size());
          if (inserted) {
            tenant.fleet.push_back(std::move(bundle));
          } else {
            tenant.fleet[it->second] = std::move(bundle);
          }
          tenant.last_seq = record.seq;
          ++st.recovery.wal_records_replayed;
        }
        st.last_seq = std::max(st.last_seq, record.seq);
      }
    }
    // Resolve the per-tenant record counts now that keys are known.
    for (const auto& [id, count] : scan.tenant_counts) {
      const std::string label =
          id < st.tenants.size() && !st.tenants[id].key.empty()
              ? st.tenants[id].key
              : "tenant#" + std::to_string(id);
      scan.stats.tenant_records.emplace_back(label, count);
    }
    if (scan.stats.torn) {
      ++st.recovery.segments_salvaged;
      stop_replay = true;
      if (!st.recovery.wal_tail_torn) {
        st.recovery.wal_tail_torn = true;
        st.recovery.wal_tail_reason = scan.stats.reason;
      }
    }
    scan.records.clear();
  }

  // Repair the active tail (salvage-and-truncate); sealed segments are
  // immutable and never touched.
  if (!scans.empty()) {
    SegmentScan& active = scans.back();
    const std::string& path = segments.back().second;
    if (active.stats.torn) {
      const std::string header = segment_header(active.stats.base_seq);
      if (active.stats.bytes < header.size()) {
        const int fd = ::open(path.c_str(), O_WRONLY | O_TRUNC);
        if (fd < 0) throw Error("ShardStore: cannot repair " + path);
        write_all(fd, header, path);
        ::close(fd);
        active.stats.bytes = header.size();
      } else {
        fs::resize_file(path, active.stats.bytes);
      }
      st.recovery.tail_bytes_truncated =
          active.file_size - active.stats.bytes;
    }
    st.active_base = active.stats.base_seq;
    st.active_last_seq = active.stats.last_seq;
    st.active_bytes = active.stats.bytes;
    st.last_seq = std::max(st.last_seq, st.active_last_seq);
    for (std::size_t i = 0; i + 1 < scans.size(); ++i) {
      st.sealed.push_back({scans[i].stats.base_seq, scans[i].stats.last_seq,
                           segments[i].second});
    }
  } else {
    st.active_base = st.last_seq + 1;
    st.active_last_seq = st.last_seq;
    const std::string path = segment_path(directory, st.active_base);
    const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
    if (fd < 0) throw Error("ShardStore: cannot create " + path);
    const std::string header = segment_header(st.active_base);
    write_all(fd, header, path);
    ::close(fd);
    st.active_bytes = header.size();
  }
  st.recovery.decode_micros = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - decode_begin)
          .count());
  st.recovery.tenants_recovered = st.tenant_by_key.size();

  // Manifest cross-check (advisory; the directory scan is authoritative).
  const std::string man_path = manifest_path(directory);
  if (fs::exists(man_path)) {
    const std::optional<ManifestContents> manifest =
        sutil::read_manifest(man_path);
    if (!manifest) {
      st.recovery.manifest_ok = false;
      st.recovery.manifest_note =
          "corrupt manifest; recovered from directory scan";
    } else {
      std::vector<std::pair<std::uint64_t, std::uint64_t>> actual;
      for (const SealedSegment& sealed : st.sealed) {
        actual.emplace_back(sealed.base_seq, sealed.last_seq);
      }
      if (manifest->snapshot_seq != st.recovery.snapshot_seq) {
        st.recovery.manifest_ok = false;
        st.recovery.manifest_note =
            "manifest snapshot seq disagrees with newest valid snapshot";
      } else if (manifest->sealed != actual ||
                 manifest->active_base != st.active_base) {
        st.recovery.manifest_ok = false;
        st.recovery.manifest_note =
            "manifest is stale (behind the directory scan)";
      }
    }
  } else if (!segments.empty()) {
    st.recovery.manifest_ok = false;
    st.recovery.manifest_note =
        "manifest missing; recovered from directory scan";
  }

  for (std::size_t i = 0; i < scans.size(); ++i) {
    st.recovery.segments.push_back(std::move(scans[i].stats));
  }

  // Reopen the active tail for appends.
  {
    const std::string path = segment_path(directory, st.active_base);
    st.active_fd = ::open(path.c_str(), O_WRONLY | O_APPEND);
    if (st.active_fd < 0) throw Error("ShardStore: cannot open " + path);
  }

  return ShardStore(std::move(st));
}

ShardStore::ShardStore(Recovered&& st)
    : directory_(std::move(st.directory)),
      options_(st.options),
      recovery_(std::move(st.recovery)),
      last_seq_(st.last_seq),
      snapshot_seq_(recovery_.snapshot_seq),
      tenants_(std::move(st.tenants)),
      tenant_by_key_(std::move(st.tenant_by_key)),
      durable_seq_(st.last_seq),
      sealed_segments_(std::move(st.sealed)),
      active_fd_(st.active_fd),
      active_base_(st.active_base),
      active_last_seq_(st.active_last_seq),
      active_bytes_(st.active_bytes),
      written_seq_(st.last_seq) {
  write_manifest();  // publish a manifest matching recovered reality
  writer_ = std::thread(&ShardStore::writer_loop, this);
}

ShardStore::~ShardStore() {
  try {
    close();
  } catch (const std::exception& failure) {
    std::fprintf(stderr, "ShardStore: error closing %s: %s\n",
                 directory_.c_str(), failure.what());
  } catch (...) {
    std::fprintf(stderr, "ShardStore: unknown error closing %s\n",
                 directory_.c_str());
  }
}

void ShardStore::close() {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    if (closed_) return;
    closed_ = true;
  }
  std::exception_ptr failure;
  try {
    wait_for_compaction();
  } catch (...) {
    failure = std::current_exception();
  }
  {
    std::lock_guard<std::mutex> lk(mutex_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  room_cv_.notify_all();
  if (writer_.joinable()) writer_.join();
  if (active_fd_ >= 0) {
    ::close(active_fd_);
    active_fd_ = -1;
  }
  std::exception_ptr writer_failure;
  {
    std::lock_guard<std::mutex> lk(mutex_);
    writer_failure = std::exchange(writer_error_, nullptr);
  }
  // The writer's own failure is the root cause; surface it first.
  if (writer_failure) std::rethrow_exception(writer_failure);
  if (failure) std::rethrow_exception(failure);
}

// ----------------------------------------------------------------------
// Tenants
// ----------------------------------------------------------------------

ShardStore::Tenant& ShardStore::tenant_ref(TenantId id) {
  std::shared_lock<std::shared_mutex> lk(tenant_mutex_);
  if (id >= tenants_.size() || tenants_[id].key.empty()) {
    throw InvalidArgument("ShardStore: unknown tenant id " +
                          std::to_string(id));
  }
  return tenants_[id];
}

const ShardStore::Tenant& ShardStore::tenant_ref(TenantId id) const {
  std::shared_lock<std::shared_mutex> lk(tenant_mutex_);
  if (id >= tenants_.size() || tenants_[id].key.empty()) {
    throw InvalidArgument("ShardStore: unknown tenant id " +
                          std::to_string(id));
  }
  return tenants_[id];
}

TenantId ShardStore::ensure_tenant(const std::string& key) {
  if (key.empty()) {
    throw InvalidArgument("ShardStore: tenant key must not be empty");
  }
  {
    std::shared_lock<std::shared_mutex> lk(tenant_mutex_);
    const auto it = tenant_by_key_.find(key);
    if (it != tenant_by_key_.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> lk(tenant_mutex_);
  const auto [it, inserted] =
      tenant_by_key_.emplace(key, static_cast<TenantId>(tenants_.size()));
  if (!inserted) return it->second;
  Tenant& tenant = tenants_.emplace_back();
  tenant.key = key;
  return it->second;
}

std::optional<TenantId> ShardStore::find_tenant(
    const std::string& key) const {
  std::shared_lock<std::shared_mutex> lk(tenant_mutex_);
  const auto it = tenant_by_key_.find(key);
  if (it == tenant_by_key_.end()) return std::nullopt;
  return it->second;
}

std::size_t ShardStore::tenant_count() const {
  std::shared_lock<std::shared_mutex> lk(tenant_mutex_);
  return tenant_by_key_.size();
}

const std::string& ShardStore::tenant_key(TenantId id) const {
  return tenant_ref(id).key;
}

std::vector<TenantInfo> ShardStore::tenants() const {
  std::shared_lock<std::shared_mutex> lk(tenant_mutex_);
  std::vector<TenantInfo> out;
  out.reserve(tenant_by_key_.size());
  for (std::size_t id = 0; id < tenants_.size(); ++id) {
    const Tenant& tenant = tenants_[id];
    if (tenant.key.empty()) continue;  // unregistered placeholder (gap)
    TenantInfo& info = out.emplace_back();
    info.id = static_cast<TenantId>(id);
    info.key = tenant.key;
    info.fleet_size = tenant.fleet.size();
    info.tail_size = tenant.tail.size();
    info.last_seq = tenant.last_seq;
  }
  return out;
}

const std::vector<BundleRef>& ShardStore::fleet_refs(TenantId id) const {
  return tenant_ref(id).fleet;
}

const std::vector<BundleRef>& ShardStore::tail_refs(TenantId id) const {
  return tenant_ref(id).tail;
}

const std::vector<BundleRef>& ShardStore::snapshot_refs(TenantId id) const {
  return tenant_ref(id).snapshot_bundles;
}

std::uint64_t ShardStore::tenant_last_seq(TenantId id) const {
  return tenant_ref(id).last_seq;
}

std::vector<core::AnalyzedTrace> ShardStore::snapshot_step1(
    TenantId id) const {
  const Tenant& tenant = tenant_ref(id);
  std::unordered_map<EventId, std::size_t> local_index;
  local_index.reserve(tenant.snapshot_names.size());
  for (std::size_t i = 0; i < tenant.snapshot_names.size(); ++i) {
    local_index.emplace(intern_event(tenant.snapshot_names[i]), i);
  }
  std::vector<std::size_t> cursor(tenant.snapshot_powers.size(), 0);

  std::vector<core::AnalyzedTrace> traces;
  traces.reserve(tenant.snapshot_bundles.size());
  for (const BundleRef& bundle : tenant.snapshot_bundles) {
    core::AnalyzedTrace& analyzed = traces.emplace_back();
    analyzed.user = bundle->user;
    const std::vector<trace::EventInstance> instances =
        bundle->events.instances();
    analyzed.events.reserve(instances.size());
    for (const trace::EventInstance& instance : instances) {
      const auto it = local_index.find(instance.event);
      if (it == local_index.end() ||
          cursor[it->second] >= tenant.snapshot_powers[it->second].size()) {
        throw ParseError(
            "ShardStore::snapshot_step1: ranking state does not cover the "
            "snapshot bundles (inconsistent snapshot)");
      }
      core::PoweredEvent& event = analyzed.events.emplace_back();
      event.id = instance.event;
      event.interval = instance.interval;
      event.raw_power =
          tenant.snapshot_powers[it->second][cursor[it->second]++];
    }
  }
  for (std::size_t i = 0; i < cursor.size(); ++i) {
    if (cursor[i] != tenant.snapshot_powers[i].size()) {
      throw ParseError(
          "ShardStore::snapshot_step1: leftover ranking powers "
          "(inconsistent snapshot)");
    }
  }
  return traces;
}

// ----------------------------------------------------------------------
// Append path / group commit
// ----------------------------------------------------------------------

std::string ShardStore::take_pooled_payload() {
  std::lock_guard<std::mutex> lk(pool_mutex_);
  if (payload_pool_.empty()) return {};
  std::string payload = std::move(payload_pool_.back());
  payload_pool_.pop_back();
  return payload;
}

void ShardStore::recycle_payloads(std::vector<Pending>& batch) {
  std::lock_guard<std::mutex> lk(pool_mutex_);
  for (Pending& pending : batch) {
    if (payload_pool_.size() >= kMaxPooledPayloads) break;
    if (pending.payload.capacity() > kMaxPooledPayloadCapacity) continue;
    pending.payload.clear();
    payload_pool_.push_back(std::move(pending.payload));
  }
}

std::uint64_t ShardStore::enqueue(TenantId id,
                                  const trace::TraceBundle& bundle,
                                  bool durable) {
  Tenant& tenant = tenant_ref(id);  // validates the id
  // All the expensive work — encoding, optional compression, the one
  // bundle copy — happens outside the lock; the encode buffer comes from
  // the pool the writer refills after each batch.
  std::string payload = take_pooled_payload();
  encode_bundle(bundle, payload);
  auto ref = std::make_shared<const trace::TraceBundle>(bundle);
  std::uint8_t kind = kRecordKindBundle;
  if (options_.compress) {
    std::string packed;
    put_varint(packed, payload.size());
    packed += common::block_compress(payload);
    if (packed.size() < payload.size()) {
      kind = kRecordKindCompressed;
      std::swap(payload, packed);
      // `packed` now holds the raw encode buffer; hand it back.
      std::lock_guard<std::mutex> lk(pool_mutex_);
      if (payload_pool_.size() < kMaxPooledPayloads &&
          packed.capacity() <= kMaxPooledPayloadCapacity) {
        packed.clear();
        payload_pool_.push_back(std::move(packed));
      }
    }
  }

  std::unique_lock<std::mutex> lk(mutex_);
  if (writer_error_) std::rethrow_exception(writer_error_);
  room_cv_.wait(lk, [this] {
    return queue_bytes_ < kMaxQueueBytes || stop_ ||
           writer_error_ != nullptr;
  });
  if (writer_error_) std::rethrow_exception(writer_error_);
  if (stop_) throw Error("ShardStore: store is closing");

  const std::uint64_t seq = ++last_seq_;
  if (!tenant.key_persisted) {
    // First record for this tenant: carry the key inline so recovery can
    // rebuild the id->key map from the log itself.
    kind = static_cast<std::uint8_t>(kind + kRecordKeyFlag);
    tenant.key_persisted = true;
  }
  tenant.last_seq = seq;
  tenant.tail.push_back(ref);
  tenant.tail_seqs.push_back(seq);
  const auto [it, inserted] =
      tenant.slot_by_user.emplace(ref->fleet_key(), tenant.fleet.size());
  if (inserted) {
    tenant.fleet.push_back(std::move(ref));
  } else {
    tenant.fleet[it->second] = std::move(ref);
  }
  queue_bytes_ += payload.size() + sizeof(Pending);
  queue_.push_back(Pending{seq, id, kind, std::move(payload)});
  queue_cv_.notify_one();

  if (durable) {
    durable_cv_.wait(lk, [this, seq] {
      return durable_seq_ >= seq || writer_error_ != nullptr;
    });
    if (writer_error_) std::rethrow_exception(writer_error_);
  }
  return seq;
}

std::uint64_t ShardStore::append(TenantId id,
                                 const trace::TraceBundle& bundle) {
  return enqueue(id, bundle, /*durable=*/true);
}

std::uint64_t ShardStore::append_async(TenantId id,
                                       const trace::TraceBundle& bundle) {
  return enqueue(id, bundle, /*durable=*/false);
}

void ShardStore::flush() {
  std::unique_lock<std::mutex> lk(mutex_);
  if (writer_error_) std::rethrow_exception(writer_error_);
  const std::uint64_t target = last_seq_;
  flush_requested_ = true;
  queue_cv_.notify_all();
  durable_cv_.wait(lk, [this, target] {
    return durable_seq_ >= target || writer_error_ != nullptr;
  });
  if (writer_error_) std::rethrow_exception(writer_error_);
}

void ShardStore::drain_queue_locked(std::vector<Pending>& batch) {
  while (!queue_.empty()) {
    batch.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  queue_bytes_ = 0;
  room_cv_.notify_all();
}

void ShardStore::write_batch(std::vector<Pending>& batch) {
  std::string& buffer = write_buffer_;
  std::size_t i = 0;
  while (i < batch.size()) {
    buffer.clear();
    std::uint64_t last = batch[i].seq;
    // Pack records into one contiguous write until the segment target is
    // reached (always at least one record per write).  A batch touching
    // K tenants still lands in ONE write + ONE sync — the tenant tag
    // lives in the frame, not in the file layout.
    while (i < batch.size() &&
           (buffer.empty() || active_bytes_ + buffer.size() <
                                  options_.segment_target_bytes)) {
      const Pending& pending = batch[i];
      std::string prefix;
      prefix.push_back(static_cast<char>(pending.kind));
      put_varint(prefix, pending.tenant);
      put_varint(prefix, pending.seq);
      if (pending.kind > kRecordKeyFlag) {
        put_string(prefix, tenant_ref(pending.tenant).key);
      }
      put_varint(buffer, prefix.size() + pending.payload.size());
      buffer += prefix;
      buffer += pending.payload;
      put_u32le(buffer, common::crc32c(common::crc32c(0, prefix.data(),
                                                      prefix.size()),
                                       pending.payload.data(),
                                       pending.payload.size()));
      last = pending.seq;
      ++i;
    }
    write_all(active_fd_, buffer, segment_path(directory_, active_base_));
    active_bytes_ += buffer.size();
    active_dirty_ = true;
    active_last_seq_ = last;
    written_seq_ = last;
    if (active_bytes_ >= options_.segment_target_bytes) {
      seal_active_segment(last + 1);
    }
  }
  recycle_payloads(batch);
}

void ShardStore::seal_active_segment(std::uint64_t next_base) {
  // Sealing makes the segment immutable *and* durable (compaction deletes
  // older data on the strength of later snapshots).
  if (::fsync(active_fd_) < 0) {
    throw Error("ShardStore: fsync failed for " +
                segment_path(directory_, active_base_));
  }
  fsyncs_.fetch_add(1, std::memory_order_relaxed);
  ::close(active_fd_);
  active_fd_ = -1;
  active_dirty_ = false;
  const SealedSegment sealed{active_base_, active_last_seq_,
                             segment_path(directory_, active_base_)};

  const std::string path = segment_path(directory_, next_base);
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw Error("ShardStore: cannot create " + path);
  const std::string header = segment_header(next_base);
  write_all(fd, header, path);
  active_fd_ = fd;
  active_bytes_ = header.size();
  active_last_seq_ = next_base - 1;
  {
    std::lock_guard<std::mutex> lk(mutex_);
    sealed_segments_.push_back(sealed);
    active_base_ = next_base;
  }
  write_manifest();
}

void ShardStore::sync_active_segment() {
  if (!active_dirty_ || active_fd_ < 0) return;
#if defined(__APPLE__)
  if (::fsync(active_fd_) < 0) {
#else
  if (::fdatasync(active_fd_) < 0) {
#endif
    throw Error("ShardStore: fdatasync failed for " +
                segment_path(directory_, active_base_));
  }
  fsyncs_.fetch_add(1, std::memory_order_relaxed);
  active_dirty_ = false;
}

void ShardStore::writer_loop() {
  using clock = std::chrono::steady_clock;
  for (;;) {
    std::vector<Pending> batch;
    bool force_sync = false;
    {
      std::unique_lock<std::mutex> lk(mutex_);
      queue_cv_.wait(lk, [this] {
        return stop_ || !queue_.empty() || flush_requested_;
      });
      if (flush_requested_) {
        force_sync = true;
        flush_requested_ = false;
      }
      drain_queue_locked(batch);
      if (batch.empty() && !force_sync && stop_) break;
    }
    try {
      if (!batch.empty()) write_batch(batch);
      if (options_.fsync_policy == FsyncPolicy::kGroup && !force_sync) {
        const auto deadline =
            clock::now() +
            std::chrono::microseconds(options_.group_window_us);
        for (;;) {
          std::vector<Pending> more;
          bool stopping = false;
          {
            std::unique_lock<std::mutex> lk(mutex_);
            queue_cv_.wait_until(lk, deadline, [this] {
              return stop_ || !queue_.empty() || flush_requested_;
            });
            if (flush_requested_) {
              force_sync = true;
              flush_requested_ = false;
            }
            drain_queue_locked(more);
            stopping = stop_;
          }
          if (!more.empty()) write_batch(more);
          if (force_sync || stopping || clock::now() >= deadline) break;
        }
      }
      if (options_.fsync_policy != FsyncPolicy::kNone) {
        sync_active_segment();
      }
      {
        std::lock_guard<std::mutex> lk(mutex_);
        durable_seq_ = written_seq_;
      }
      durable_cv_.notify_all();
      compact_cv_.notify_all();
    } catch (...) {
      {
        std::lock_guard<std::mutex> lk(mutex_);
        writer_error_ = std::current_exception();
      }
      durable_cv_.notify_all();
      room_cv_.notify_all();
      compact_cv_.notify_all();
      return;  // the store is wedged; producers see writer_error_
    }
  }
  // Drained and stopping: make whatever was written durable so a clean
  // close never loses async appends (kNone keeps its weaker contract).
  try {
    if (options_.fsync_policy != FsyncPolicy::kNone) sync_active_segment();
  } catch (...) {
    std::lock_guard<std::mutex> lk(mutex_);
    writer_error_ = std::current_exception();
  }
  {
    std::lock_guard<std::mutex> lk(mutex_);
    durable_seq_ = written_seq_;
  }
  durable_cv_.notify_all();
  compact_cv_.notify_all();
}

void ShardStore::write_manifest() {
  ManifestContents contents;
  {
    std::lock_guard<std::mutex> lk(mutex_);
    contents.snapshot_seq = snapshot_seq_;
    contents.sealed.reserve(sealed_segments_.size());
    for (const SealedSegment& sealed : sealed_segments_) {
      contents.sealed.emplace_back(sealed.base_seq, sealed.last_seq);
    }
    contents.active_base = active_base_;
  }
  const std::string bytes = sutil::render_manifest(contents);
  std::lock_guard<std::mutex> lk(manifest_mutex_);
  publish_file(manifest_path(directory_), bytes);
}

// ----------------------------------------------------------------------
// Background compaction
// ----------------------------------------------------------------------

bool ShardStore::compact_async() {
  // Lock order everywhere: tenant_mutex_ before mutex_ (enqueue resolves
  // the tenant before taking the queue lock).
  std::shared_lock<std::shared_mutex> tenants_lk(tenant_mutex_);
  std::lock_guard<std::mutex> lk(mutex_);
  if (compaction_running_) return false;
  if (compaction_thread_.joinable()) compaction_thread_.join();  // finished
  if (last_seq_ == snapshot_seq_) return false;  // nothing new to fold
  const std::uint64_t cut = last_seq_;
  std::vector<std::pair<TenantId, std::vector<BundleRef>>> fleets;
  fleets.reserve(tenant_by_key_.size());
  for (std::size_t id = 0; id < tenants_.size(); ++id) {
    if (tenants_[id].key.empty()) continue;
    // Every registered tenant is captured — even with an empty fleet —
    // so the snapshot preserves the full id->key map.
    fleets.emplace_back(static_cast<TenantId>(id), tenants_[id].fleet);
  }
  compaction_running_ = true;
  compaction_thread_ = std::thread(&ShardStore::run_compaction, this, cut,
                                   std::move(fleets));
  return true;
}

void ShardStore::wait_for_compaction() {
  std::exception_ptr failure;
  {
    std::unique_lock<std::mutex> lk(mutex_);
    compact_cv_.wait(lk, [this] { return !compaction_running_; });
    if (compaction_thread_.joinable()) compaction_thread_.join();
    failure = std::exchange(compaction_error_, nullptr);
  }
  if (failure) std::rethrow_exception(failure);
}

void ShardStore::compact() {
  compact_async();
  wait_for_compaction();
}

bool ShardStore::compaction_running() const {
  std::lock_guard<std::mutex> lk(mutex_);
  return compaction_running_;
}

void ShardStore::run_compaction(
    std::uint64_t cut,
    std::vector<std::pair<TenantId, std::vector<BundleRef>>> fleets) {
  {
    std::unique_lock<std::mutex> lk(mutex_);
    compact_cv_.wait(lk, [this, cut] {
      return durable_seq_ >= cut || writer_error_ != nullptr || stop_;
    });
    if (durable_seq_ < cut) {
      compaction_error_ = std::make_exception_ptr(
          Error("ShardStore: compaction aborted (writer stopped)"));
      compaction_running_ = false;
      lk.unlock();
      compact_cv_.notify_all();
      return;
    }
  }
  try {
    // One shared pass over the fleets; the Step-1 fold and the ranking
    // serialization happen per tenant (each tenant's snapshot_step1 must
    // invert independently).
    struct TenantSection {
      TenantId id;
      std::vector<BundleRef>* fleet;
      std::vector<std::string> names;
      std::vector<std::vector<double>> powers;
    };
    std::vector<TenantSection> sections;
    sections.reserve(fleets.size());
    for (auto& [id, fleet] : fleets) {
      TenantSection& section = sections.emplace_back();
      section.id = id;
      section.fleet = &fleet;
      std::unordered_map<EventId, std::size_t> local_index;
      for (const BundleRef& bundle : fleet) {
        const core::AnalyzedTrace analyzed =
            core::estimate_event_power(*bundle);
        for (const core::PoweredEvent& event : analyzed.events) {
          const auto [it, inserted] =
              local_index.emplace(event.id, section.names.size());
          if (inserted) {
            section.names.push_back(event_name(event.id));
            section.powers.emplace_back();
          }
          section.powers[it->second].push_back(event.raw_power);
        }
      }
    }

    std::string payload;
    put_varint(payload, cut);
    put_varint(payload, sections.size());
    for (const TenantSection& section : sections) {
      put_varint(payload, section.id);
      put_string(payload, tenant_ref(section.id).key);
      put_varint(payload, section.fleet->size());
      for (const BundleRef& bundle : *section.fleet) {
        put_string(payload, encode_bundle(*bundle));
      }
      put_varint(payload, section.names.size());
      for (const std::string& name : section.names) {
        put_string(payload, name);
      }
      put_varint(payload, section.powers.size());
      for (const std::vector<double>& list : section.powers) {
        put_varint(payload, list.size());
        for (const double power : list) put_f64(payload, power);
      }
    }

    std::string file;
    file.reserve(payload.size() + 24);
    file.append(kSnapshotMagic);
    put_u32le(file, kSnapshotVersion);
    put_varint(file, payload.size());
    file += payload;
    put_u32le(file, common::crc32c(payload));
    publish_file(snapshot_path(directory_, cut), file);

    // The snapshot subsumes every record with seq <= cut: delete the
    // sealed segments it fully covers.
    std::vector<std::string> doomed;
    {
      std::lock_guard<std::mutex> lk(mutex_);
      auto keep = sealed_segments_.begin();
      for (auto it = sealed_segments_.begin(); it != sealed_segments_.end();
           ++it) {
        if (it->last_seq <= cut) {
          doomed.push_back(it->path);
        } else {
          *keep++ = std::move(*it);
        }
      }
      sealed_segments_.erase(keep, sealed_segments_.end());
    }
    for (const std::string& path : doomed) fs::remove(path);

    const auto snapshots = sutil::list_snapshots(directory_);
    for (std::size_t i = 2; i < snapshots.size(); ++i) {
      fs::remove(snapshots[i].second);
    }

    {
      std::shared_lock<std::shared_mutex> tenants_lk(tenant_mutex_);
      std::lock_guard<std::mutex> lk(mutex_);
      for (TenantSection& section : sections) {
        Tenant& tenant = tenants_[section.id];
        tenant.snapshot_bundles = std::move(*section.fleet);
        tenant.snapshot_names = std::move(section.names);
        tenant.snapshot_powers = std::move(section.powers);
        std::size_t covered = 0;
        while (covered < tenant.tail_seqs.size() &&
               tenant.tail_seqs[covered] <= cut) {
          ++covered;
        }
        tenant.tail.erase(
            tenant.tail.begin(),
            tenant.tail.begin() + static_cast<std::ptrdiff_t>(covered));
        tenant.tail_seqs.erase(
            tenant.tail_seqs.begin(),
            tenant.tail_seqs.begin() + static_cast<std::ptrdiff_t>(covered));
      }
      snapshot_seq_ = cut;
    }
    write_manifest();
  } catch (...) {
    std::lock_guard<std::mutex> lk(mutex_);
    compaction_error_ = std::current_exception();
  }
  {
    std::lock_guard<std::mutex> lk(mutex_);
    compaction_running_ = false;
  }
  compact_cv_.notify_all();
}

}  // namespace edx::store
