#include "trace/util_trace.h"

#include <sstream>

#include "common/error.h"
#include "common/strings.h"

namespace edx::trace {

UtilizationTrace::UtilizationTrace(
    std::string device_name, std::vector<power::UtilizationSample> samples)
    : device_name_(std::move(device_name)), samples_(std::move(samples)) {}

DurationMs UtilizationTrace::sample_period() const {
  if (samples_.size() >= 2) {
    return samples_[1].timestamp - samples_[0].timestamp;
  }
  return 500;  // the tracker default
}

PowerMw UtilizationTrace::average_power(TimeInterval interval) const {
  if (samples_.empty() || interval.empty()) return 0.0;
  const DurationMs period = sample_period();
  double weighted = 0.0;
  DurationMs covered = 0;
  for (const power::UtilizationSample& sample : samples_) {
    // Sample windows are (timestamp - period, timestamp].
    const TimeInterval window{sample.timestamp - period, sample.timestamp};
    const DurationMs overlap = window.overlap(interval.begin, interval.end);
    if (overlap <= 0) continue;
    weighted += sample.estimated_app_power_mw * static_cast<double>(overlap);
    covered += overlap;
  }
  if (covered == 0) {
    // Interval shorter than a sample window and between timestamps: take
    // the enclosing sample if any.
    for (const power::UtilizationSample& sample : samples_) {
      if (sample.timestamp - period <= interval.begin &&
          interval.end <= sample.timestamp) {
        return sample.estimated_app_power_mw;
      }
    }
    return 0.0;
  }
  return weighted / static_cast<double>(covered);
}

void UtilizationTrace::scale_power(double factor) {
  require(factor > 0.0, "UtilizationTrace::scale_power: factor must be > 0");
  for (power::UtilizationSample& sample : samples_) {
    sample.estimated_app_power_mw *= factor;
  }
}

std::string UtilizationTrace::to_text() const {
  std::ostringstream out;
  out << "DEVICE " << device_name_ << '\n';
  for (const power::UtilizationSample& sample : samples_) {
    out << sample.timestamp << ' '
        << strings::format_double(sample.estimated_app_power_mw, 4);
    for (power::Component component : power::kAllComponents) {
      out << ' '
          << strings::format_double(sample.utilization.get(component), 4);
    }
    out << '\n';
  }
  return out.str();
}

UtilizationTrace UtilizationTrace::from_text(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || !strings::starts_with(line, "DEVICE ")) {
    throw ParseError("UtilizationTrace::from_text: missing DEVICE header");
  }
  UtilizationTrace trace;
  trace.device_name_ = strings::trim(line.substr(7));
  while (std::getline(in, line)) {
    line = strings::trim(line);
    if (line.empty()) continue;
    std::istringstream fields(line);
    power::UtilizationSample sample;
    if (!(fields >> sample.timestamp >> sample.estimated_app_power_mw)) {
      throw ParseError("UtilizationTrace::from_text: malformed line '" + line +
                       "'");
    }
    for (power::Component component : power::kAllComponents) {
      double value = 0.0;
      if (!(fields >> value)) {
        throw ParseError(
            "UtilizationTrace::from_text: missing utilization in '" + line +
            "'");
      }
      sample.utilization.set(component, value);
    }
    trace.samples_.push_back(sample);
  }
  return trace;
}

}  // namespace edx::trace
