#include "trace/util_trace.h"

#include <algorithm>
#include <sstream>

#include "common/error.h"
#include "common/strings.h"

namespace edx::trace {

UtilizationTrace::UtilizationTrace(
    std::string device_name, std::vector<power::UtilizationSample> samples)
    : device_name_(std::move(device_name)), samples_(std::move(samples)) {
  build_index();
}

void UtilizationTrace::build_index() {
  const auto by_time = [](const power::UtilizationSample& a,
                          const power::UtilizationSample& b) {
    return a.timestamp < b.timestamp;
  };
  if (!std::is_sorted(samples_.begin(), samples_.end(), by_time)) {
    std::stable_sort(samples_.begin(), samples_.end(), by_time);
  }

  // Infer the window width as the median inter-sample gap: robust both to
  // a single dropped sample (which would double a naive first-gap guess)
  // and to duplicate timestamps (whose zero gap would collapse every
  // window to nothing and silently drop all overlap weight).
  period_ = 500;  // the tracker default
  if (samples_.size() >= 2) {
    std::vector<DurationMs> gaps;
    gaps.reserve(samples_.size() - 1);
    for (std::size_t i = 0; i + 1 < samples_.size(); ++i) {
      gaps.push_back(samples_[i + 1].timestamp - samples_[i].timestamp);
    }
    const std::size_t mid = (gaps.size() - 1) / 2;
    std::nth_element(gaps.begin(), gaps.begin() + static_cast<std::ptrdiff_t>(mid),
                     gaps.end());
    DurationMs inferred = gaps[mid];
    if (inferred <= 0) {
      // More than half the gaps are degenerate (bursts of duplicated
      // timestamps); fall back to the smallest real gap.
      inferred = 0;
      for (DurationMs gap : gaps) {
        if (gap > 0 && (inferred == 0 || gap < inferred)) inferred = gap;
      }
    }
    if (inferred > 0) period_ = inferred;
  }

  const std::size_t n = samples_.size();
  uniform_gap_ = n <= 1 ? period_ : samples_[1].timestamp - samples_[0].timestamp;
  for (std::size_t i = 1; i + 1 < n && uniform_gap_ > 0; ++i) {
    if (samples_[i + 1].timestamp - samples_[i].timestamp != uniform_gap_) {
      uniform_gap_ = 0;
    }
  }
  if (uniform_gap_ < 0) uniform_gap_ = 0;
  timestamps_.resize(n);
  prefix_power_.assign(n + 1, 0.0);
  prefix_pt_.assign(n + 1, 0.0);
  prefix_time_.assign(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const power::UtilizationSample& sample = samples_[i];
    timestamps_[i] = sample.timestamp;
    prefix_power_[i + 1] = prefix_power_[i] + sample.estimated_app_power_mw;
    prefix_pt_[i + 1] =
        prefix_pt_[i] +
        sample.estimated_app_power_mw * static_cast<double>(sample.timestamp);
    prefix_time_[i + 1] = prefix_time_[i] + sample.timestamp;
  }
}

PowerMw UtilizationTrace::average_power(TimeInterval interval) const {
  if (samples_.empty() || interval.empty()) return 0.0;
  const DurationMs period = period_;
  const TimestampMs b = interval.begin;
  const TimestampMs e = interval.end;

  // Sample i's window (t_i - period, t_i] intersects [b, e) iff
  // b < t_i < e + period; with timestamps sorted the contributing samples
  // form one contiguous range.  Within it the overlap is a piecewise-
  // linear function of t_i with breakpoints at b + period (where the
  // window stops being clipped on the left) and e (where it starts being
  // clipped on the right), so three prefix-sum differences reproduce the
  // naive per-sample scan exactly.
  const auto ts_begin = timestamps_.begin();
  const auto ts_end = timestamps_.end();
  const std::size_t n = timestamps_.size();
  const TimestampMs left_break = b + period;
  const TimestampMs right_break = e;

  // The five bounds the decomposition needs: lo = upper_bound(b),
  // hi = lower_bound(e + period), the two break indices, and (for the
  // covered == 0 fallback) lower_bound(e).
  std::size_t lo, hi, u_left, u_right, fallback;
  if (uniform_gap_ > 0) {
    // Uniform grid t_i = t_0 + i·gap (and then period == gap, since the
    // period is the median gap): every bound is integer arithmetic on two
    // floor divisions.  upper_bound(v) counts timestamps <= v, i.e.
    // clamp(fdiv(v - t_0) + 1); adding `gap` to v shifts fdiv by exactly
    // one, and lower_bound(v) = upper_bound(v - 1) splits on whether v
    // lands exactly on the grid.
    const TimestampMs g = uniform_gap_;
    const auto fdiv = [g](TimestampMs a) -> TimestampMs {
      return a >= 0 ? a / g : -((-a + g - 1) / g);
    };
    const auto clamp_idx = [n](TimestampMs i) -> std::size_t {
      return static_cast<std::size_t>(
          std::clamp<TimestampMs>(i, 0, static_cast<TimestampMs>(n)));
    };
    const TimestampMs t0 = timestamps_.front();
    const TimestampMs db = fdiv(b - t0);
    const TimestampMs de = fdiv(e - t0);
    const TimestampMs remainder_e = (e - t0) - de * g;  // in [0, g)
    lo = clamp_idx(db + 1);                      // upper_bound(b)
    const std::size_t u_b_period = clamp_idx(db + 2);  // upper_bound(b + g)
    const std::size_t u_e = clamp_idx(de + 1);         // upper_bound(e)
    hi = clamp_idx(de + 1 + (remainder_e != 0 ? 1 : 0));  // lower_bound(e + g)
    fallback = clamp_idx(de + (remainder_e != 0 ? 1 : 0));  // lower_bound(e)
    u_left = left_break <= right_break ? u_b_period : u_e;
    u_right = left_break <= right_break ? u_e : u_b_period;
  } else {
    lo = static_cast<std::size_t>(std::upper_bound(ts_begin, ts_end, b) -
                                  ts_begin);
    hi = static_cast<std::size_t>(
        std::lower_bound(ts_begin, ts_end, e + period) - ts_begin);
    u_left = static_cast<std::size_t>(
        std::upper_bound(ts_begin, ts_end,
                         std::min(left_break, right_break)) -
        ts_begin);
    u_right = static_cast<std::size_t>(
        std::upper_bound(ts_begin, ts_end,
                         std::max(left_break, right_break)) -
        ts_begin);
    fallback = static_cast<std::size_t>(
        std::lower_bound(ts_begin, ts_end, e) - ts_begin);
  }

  return average_from_bounds(b, e, lo, hi, u_left, u_right, fallback);
}

PowerMw UtilizationTrace::average_from_bounds(TimestampMs b, TimestampMs e,
                                              std::size_t lo, std::size_t hi,
                                              std::size_t u_left,
                                              std::size_t u_right,
                                              std::size_t fallback) const {
  const DurationMs period = period_;
  const TimestampMs left_break = b + period;
  const TimestampMs right_break = e;

  double weighted = 0.0;
  DurationMs covered = 0;
  if (lo < hi) {
    const std::size_t m1 = std::clamp(u_left, lo, hi);
    const std::size_t m2 = std::clamp(u_right, m1, hi);

    const auto power_sum = [&](std::size_t i, std::size_t j) {
      return prefix_power_[j] - prefix_power_[i];
    };
    const auto pt_sum = [&](std::size_t i, std::size_t j) {
      return prefix_pt_[j] - prefix_pt_[i];
    };
    const auto time_sum = [&](std::size_t i, std::size_t j) {
      return prefix_time_[j] - prefix_time_[i];
    };
    const auto count = [&](std::size_t i, std::size_t j) {
      return static_cast<std::int64_t>(j - i);
    };

    // t_i in (b, min(breaks)]: left-clipped, overlap = t_i - b.
    weighted += pt_sum(lo, m1) - static_cast<double>(b) * power_sum(lo, m1);
    covered += time_sum(lo, m1) - b * count(lo, m1);
    // t_i between the breaks: either fully inside (overlap = period) or
    // the window encloses the whole interval (overlap = e - b).
    const DurationMs middle_overlap =
        left_break < right_break ? period : e - b;
    weighted += static_cast<double>(middle_overlap) * power_sum(m1, m2);
    covered += middle_overlap * count(m1, m2);
    // t_i in (max(breaks), e + period): right-clipped,
    // overlap = (e + period) - t_i.
    weighted +=
        static_cast<double>(e + period) * power_sum(m2, hi) - pt_sum(m2, hi);
    covered += (e + period) * count(m2, hi) - time_sum(m2, hi);
  }

  if (covered == 0) {
    // Interval shorter than a sample window and between timestamps: take
    // the enclosing sample if any.  The first candidate in timestamp order
    // is the first sample with t_i >= end; later ones start even later and
    // cannot enclose begin.
    if (fallback < timestamps_.size() &&
        samples_[fallback].timestamp - period <= b) {
      return samples_[fallback].estimated_app_power_mw;
    }
    return 0.0;
  }
  return weighted / static_cast<double>(covered);
}

PowerMw AveragePowerCursor::average_power(TimeInterval interval) {
  const UtilizationTrace& trace = *trace_;
  if (trace.samples_.empty() || interval.empty()) return 0.0;
  const TimestampMs b = interval.begin;
  const TimestampMs e = interval.end;
  if (b < prev_begin_ || e < prev_end_) {
    // Out-of-order query: rewind.  Correctness never depends on the
    // chronological assumption, only the amortized cost does.
    upper_b_ = upper_b_period_ = upper_e_ = lower_e_ = lower_e_period_ = 0;
  }
  prev_begin_ = b;
  prev_end_ = e;

  const std::vector<TimestampMs>& ts = trace.timestamps_;
  const std::size_t n = ts.size();
  const DurationMs period = trace.period_;
  // Each cursor only ever moves forward; since its query point is
  // non-decreasing across calls, the resting position is exactly the
  // upper_bound/lower_bound index average_power() would compute.
  const auto advance_upper = [&](std::size_t& cursor, TimestampMs v) {
    while (cursor < n && ts[cursor] <= v) ++cursor;
    return cursor;
  };
  const auto advance_lower = [&](std::size_t& cursor, TimestampMs v) {
    while (cursor < n && ts[cursor] < v) ++cursor;
    return cursor;
  };
  const std::size_t lo = advance_upper(upper_b_, b);
  const std::size_t hi = advance_lower(lower_e_period_, e + period);
  const std::size_t u_b_period = advance_upper(upper_b_period_, b + period);
  const std::size_t u_e = advance_upper(upper_e_, e);
  const std::size_t fallback = advance_lower(lower_e_, e);
  const bool left_break_first = b + period <= e;
  return trace.average_from_bounds(b, e, lo, hi,
                                   left_break_first ? u_b_period : u_e,
                                   left_break_first ? u_e : u_b_period,
                                   fallback);
}

void UtilizationTrace::scale_power(double factor) {
  require(factor > 0.0, "UtilizationTrace::scale_power: factor must be > 0");
  for (power::UtilizationSample& sample : samples_) {
    sample.estimated_app_power_mw *= factor;
  }
  build_index();
}

std::string UtilizationTrace::to_text() const {
  std::ostringstream out;
  out << "DEVICE " << device_name_ << '\n';
  for (const power::UtilizationSample& sample : samples_) {
    out << sample.timestamp << ' '
        << strings::format_double(sample.estimated_app_power_mw, 4);
    for (power::Component component : power::kAllComponents) {
      out << ' '
          << strings::format_double(sample.utilization.get(component), 4);
    }
    out << '\n';
  }
  return out.str();
}

UtilizationTrace UtilizationTrace::from_text(const std::string& text) {
  std::string_view remaining(text);
  std::string_view header = strings::next_line(remaining);
  if (!strings::starts_with(header, "DEVICE ")) {
    throw ParseError("UtilizationTrace::from_text: missing DEVICE header");
  }
  UtilizationTrace trace;
  trace.device_name_ = strings::trim(header.substr(7));
  while (!remaining.empty()) {
    std::string_view line = strings::next_line(remaining);
    std::string_view fields = strings::trim_view(line);
    if (fields.empty()) continue;
    power::UtilizationSample sample;
    if (!strings::consume_int64(fields, sample.timestamp) ||
        !strings::consume_double(fields, sample.estimated_app_power_mw)) {
      throw ParseError("UtilizationTrace::from_text: malformed line '" +
                       std::string(strings::trim_view(line)) + "'");
    }
    for (power::Component component : power::kAllComponents) {
      double value = 0.0;
      if (!strings::consume_double(fields, value)) {
        throw ParseError(
            "UtilizationTrace::from_text: missing utilization in '" +
            std::string(strings::trim_view(line)) + "'");
      }
      sample.utilization.set(component, value);
    }
    trace.samples_.push_back(sample);
  }
  trace.build_index();
  return trace;
}

}  // namespace edx::trace
