// Backend collection server.
//
// Phones upload their trace bundles "when the smartphone is in charge with
// WiFi" (Fig. 4).  The server enforces that policy, anonymizes the event
// traces, applies power-model scaling so heterogeneous devices share the
// reference power scale, and hands the merged data set to the analysis.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "power/scaling.h"
#include "trace/anonymizer.h"
#include "trace/recorder.h"

namespace edx::trace {

/// Phone-side state at upload time.
struct UploadContext {
  bool charging{false};
  bool on_wifi{false};
};

/// Result of an upload attempt.
enum class UploadStatus {
  kAccepted,
  kDeferredNotCharging,
  kDeferredNoWifi,
};

std::string_view upload_status_name(UploadStatus status);

/// Collects, scrubs, and normalizes bundles for one diagnosed app.
class CollectionServer {
 public:
  /// `reference` is the device all power data is scaled to; `devices` is
  /// the known fleet (bundles from unknown devices are rejected).
  CollectionServer(power::Device reference, std::vector<power::Device> fleet);

  /// Attempts an upload; the bundle is queued on the phone (kDeferred*)
  /// unless the policy allows transmission.  Accepted bundles are
  /// anonymized and power-scaled before storage.  Throws InvalidArgument
  /// for bundles from devices outside the fleet.
  UploadStatus upload(const TraceBundle& bundle, const UploadContext& context);

  /// Bundles accepted so far, in arrival order.
  [[nodiscard]] const std::vector<TraceBundle>& bundles() const {
    return bundles_;
  }

  [[nodiscard]] std::size_t accepted_count() const { return bundles_.size(); }
  [[nodiscard]] std::size_t deferred_count() const { return deferred_; }

 private:
  power::PowerModelScaler scaler_;
  std::vector<power::Device> fleet_;
  std::vector<TraceBundle> bundles_;
  std::size_t deferred_{0};
};

}  // namespace edx::trace
