#include "trace/anonymizer.h"

#include <regex>
#include <unordered_map>

#include "common/event_symbols.h"

namespace edx::trace {

namespace {

const std::regex& email_pattern() {
  static const std::regex kPattern(
      R"([A-Za-z0-9._%+\-]+@[A-Za-z0-9.\-]+\.[A-Za-z]{2,})");
  return kPattern;
}

const std::regex& ip_pattern() {
  static const std::regex kPattern(
      R"((\d{1,3})\.(\d{1,3})\.(\d{1,3})\.(\d{1,3}))");
  return kPattern;
}

// 7+ digits, optionally '+'-prefixed, with '-' or ' ' separators allowed
// between digit groups.
const std::regex& phone_pattern() {
  static const std::regex kPattern(R"(\+?\d(?:[\- ]?\d){6,})");
  return kPattern;
}

}  // namespace

std::string anonymize_text(const std::string& text) {
  std::string result =
      std::regex_replace(text, email_pattern(), std::string(kEmailMarker));
  result =
      std::regex_replace(result, ip_pattern(), std::string(kIpMarker));
  result =
      std::regex_replace(result, phone_pattern(), std::string(kPhoneMarker));
  return result;
}

EventTrace anonymize(const EventTrace& trace) {
  std::vector<EventRecord> scrubbed;
  scrubbed.reserve(trace.records().size());
  // Interning makes scrubbing per-name instead of per-record: each distinct
  // event id is regex-scrubbed once, and repeats hit the memo.
  std::unordered_map<EventId, EventId> scrubbed_id;
  for (const EventRecord& record : trace.records()) {
    EventRecord copy = record;
    const auto memo = scrubbed_id.find(record.event);
    if (memo != scrubbed_id.end()) {
      copy.event = memo->second;
    } else {
      const EventName& name = event_name(record.event);
      const std::string clean = anonymize_text(name);
      copy.event = clean == name ? record.event : intern_event(clean);
      scrubbed_id.emplace(record.event, copy.event);
    }
    scrubbed.push_back(copy);
  }
  return EventTrace(std::move(scrubbed));
}

bool contains_identifier(const std::string& text) {
  return std::regex_search(text, email_pattern()) ||
         std::regex_search(text, ip_pattern()) ||
         std::regex_search(text, phone_pattern());
}

}  // namespace edx::trace
