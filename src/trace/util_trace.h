// Utilization/power traces.
//
// The tracker produces one UtilizationSample per 500 ms window; a
// UtilizationTrace bundles the samples with the device they came from so
// the collection server can scale heterogeneous traces onto a common power
// scale before the analysis.
//
// Samples are kept sorted by timestamp (the constructor and the parser
// sort when needed) and indexed with prefix sums of power·overlap terms,
// so average_power() answers in O(log n) instead of scanning the whole
// sample vector once per event instance — the Step-1 hot path when the
// collection server joins millions of event instances with their samples.
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "common/types.h"
#include "power/tracker.h"

namespace edx::trace {

class AveragePowerCursor;

/// Power/utilization samples of one run on one device.
class UtilizationTrace {
 public:
  UtilizationTrace() = default;
  UtilizationTrace(std::string device_name,
                   std::vector<power::UtilizationSample> samples);

  [[nodiscard]] const std::string& device_name() const { return device_name_; }
  [[nodiscard]] const std::vector<power::UtilizationSample>& samples() const {
    return samples_;
  }
  [[nodiscard]] bool empty() const { return samples_.empty(); }

  /// Average estimated app power over [begin, end), weighting each sample
  /// window by its overlap with the interval.  Returns 0 when nothing
  /// overlaps.  `period_ms` is inferred from sample spacing.
  [[nodiscard]] PowerMw average_power(TimeInterval interval) const;

  /// Width of one sample window, inferred as the *median* inter-sample gap
  /// (robust to dropped or irregularly-spaced samples); 500 ms — the
  /// tracker default — when fewer than two samples or when every gap is
  /// zero/negative.  Sample i covers (timestamp_i - sample_period(),
  /// timestamp_i].
  [[nodiscard]] DurationMs sample_period() const { return period_; }

  /// Multiplies every sample's power estimate by `factor` (model scaling).
  void scale_power(double factor);

  /// Plain-text serialization: one "timestamp power util0..util6" line per
  /// sample, preceded by a DEVICE header.
  [[nodiscard]] std::string to_text() const;
  static UtilizationTrace from_text(const std::string& text);

 private:
  friend class AveragePowerCursor;

  /// Sorts samples by timestamp when needed, infers the period, and builds
  /// the prefix-sum index.  Must be called whenever samples_ changes.
  void build_index();

  /// Shared tail of the interval-average computation: three prefix-sum
  /// segment differences over [lo, hi) split at the clipping breakpoints,
  /// plus the enclosing-sample fallback when nothing overlaps.  The five
  /// indices are upper_bound(b), lower_bound(e + period),
  /// upper_bound(min/max of b + period and e), and lower_bound(e).
  [[nodiscard]] PowerMw average_from_bounds(TimestampMs b, TimestampMs e,
                                            std::size_t lo, std::size_t hi,
                                            std::size_t u_left,
                                            std::size_t u_right,
                                            std::size_t fallback) const;

  std::string device_name_;
  std::vector<power::UtilizationSample> samples_;

  // --- index over samples_, rebuilt by build_index() -------------------
  DurationMs period_{500};
  /// When every inter-sample gap is the same positive value the timestamps
  /// form an exact arithmetic progression and every bound below is plain
  /// integer arithmetic instead of a binary search (the tracker emits
  /// samples on a fixed cadence, so this is the common case).  0 when the
  /// spacing is irregular.
  DurationMs uniform_gap_{0};
  std::vector<TimestampMs> timestamps_;  ///< samples_[i].timestamp
  /// prefix_power_[i]  = sum of estimated_app_power_mw over samples_[0..i)
  /// prefix_pt_[i]     = sum of power·timestamp over samples_[0..i)
  /// prefix_time_[i]   = sum of timestamps over samples_[0..i)
  std::vector<double> prefix_power_;
  std::vector<double> prefix_pt_;
  std::vector<std::int64_t> prefix_time_;
};

/// Amortized-O(1) interval averages for chronologically ordered queries —
/// Step 1 walks each bundle's event instances in time order, so the five
/// bound cursors only ever advance.  Results are bit-identical to
/// UtilizationTrace::average_power for ANY query sequence: an out-of-order
/// query just rewinds the cursors and pays a fresh forward scan.  Holds a
/// reference to the trace; do not mutate the trace while a cursor is live.
class AveragePowerCursor {
 public:
  explicit AveragePowerCursor(const UtilizationTrace& trace)
      : trace_(&trace) {}

  /// Equivalent to trace.average_power(interval).
  [[nodiscard]] PowerMw average_power(TimeInterval interval);

 private:
  const UtilizationTrace* trace_;
  TimestampMs prev_begin_{std::numeric_limits<TimestampMs>::min()};
  TimestampMs prev_end_{std::numeric_limits<TimestampMs>::min()};
  std::size_t upper_b_{0};         ///< upper_bound(begin)
  std::size_t upper_b_period_{0};  ///< upper_bound(begin + period)
  std::size_t upper_e_{0};         ///< upper_bound(end)
  std::size_t lower_e_{0};         ///< lower_bound(end)
  std::size_t lower_e_period_{0};  ///< lower_bound(end + period)
};

}  // namespace edx::trace
