// Utilization/power traces.
//
// The tracker produces one UtilizationSample per 500 ms window; a
// UtilizationTrace bundles the samples with the device they came from so
// the collection server can scale heterogeneous traces onto a common power
// scale before the analysis.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"
#include "power/tracker.h"

namespace edx::trace {

/// Power/utilization samples of one run on one device.
class UtilizationTrace {
 public:
  UtilizationTrace() = default;
  UtilizationTrace(std::string device_name,
                   std::vector<power::UtilizationSample> samples);

  [[nodiscard]] const std::string& device_name() const { return device_name_; }
  [[nodiscard]] const std::vector<power::UtilizationSample>& samples() const {
    return samples_;
  }
  [[nodiscard]] bool empty() const { return samples_.empty(); }

  /// Average estimated app power over [begin, end), weighting each sample
  /// window by its overlap with the interval.  Returns 0 when nothing
  /// overlaps.  `period_ms` is inferred from sample spacing.
  [[nodiscard]] PowerMw average_power(TimeInterval interval) const;

  /// Multiplies every sample's power estimate by `factor` (model scaling).
  void scale_power(double factor);

  /// Plain-text serialization: one "timestamp power util0..util6" line per
  /// sample, preceded by a DEVICE header.
  [[nodiscard]] std::string to_text() const;
  static UtilizationTrace from_text(const std::string& text);

 private:
  [[nodiscard]] DurationMs sample_period() const;

  std::string device_name_;
  std::vector<power::UtilizationSample> samples_;
};

}  // namespace edx::trace
