#include "trace/collection.h"

#include "common/error.h"

namespace edx::trace {

std::string_view upload_status_name(UploadStatus status) {
  switch (status) {
    case UploadStatus::kAccepted: return "accepted";
    case UploadStatus::kDeferredNotCharging: return "deferred-not-charging";
    case UploadStatus::kDeferredNoWifi: return "deferred-no-wifi";
  }
  throw InvalidArgument("upload_status_name: unknown status");
}

CollectionServer::CollectionServer(power::Device reference,
                                   std::vector<power::Device> fleet)
    : scaler_(std::move(reference)), fleet_(std::move(fleet)) {}

UploadStatus CollectionServer::upload(const TraceBundle& bundle,
                                      const UploadContext& context) {
  if (!context.charging) {
    ++deferred_;
    return UploadStatus::kDeferredNotCharging;
  }
  if (!context.on_wifi) {
    ++deferred_;
    return UploadStatus::kDeferredNoWifi;
  }

  const power::Device* device = nullptr;
  for (const power::Device& candidate : fleet_) {
    if (candidate.name() == bundle.device_name) {
      device = &candidate;
      break;
    }
  }
  require(device != nullptr,
          "CollectionServer::upload: unknown device '" + bundle.device_name +
              "'");

  TraceBundle stored = bundle;
  stored.events = anonymize(stored.events);
  stored.utilization.scale_power(scaler_.scale_factor(*device));
  bundles_.push_back(std::move(stored));
  return UploadStatus::kAccepted;
}

}  // namespace edx::trace
