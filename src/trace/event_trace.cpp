#include "trace/event_trace.h"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "common/error.h"
#include "common/strings.h"

namespace edx::trace {

EventTrace::EventTrace(std::vector<EventRecord> records)
    : records_(std::move(records)) {}

EventTrace EventTrace::from_run(const android::RunResult& run) {
  EventTrace trace;
  for (const android::RawEvent& event : run.events) {
    if (!event.logged) continue;
    trace.add_instance(std::string_view(event.name), event.interval);
  }
  // Events are appended in completion order by the runtime; the trace file
  // is timestamp-ordered like a real log.
  std::stable_sort(trace.records_.begin(), trace.records_.end(),
                   [](const EventRecord& a, const EventRecord& b) {
                     return a.timestamp < b.timestamp;
                   });
  return trace;
}

void EventTrace::add_instance(EventId event, TimeInterval interval) {
  records_.push_back({interval.begin, true, event});
  records_.push_back({interval.end, false, event});
}

void EventTrace::add_instance(std::string_view event, TimeInterval interval) {
  add_instance(intern_event(event), interval);
}

std::vector<EventInstance> EventTrace::instances() const {
  std::vector<EventInstance> result;
  result.reserve(records_.size() / 2);
  // Pair each '+' with the next '-' of the same event.  Our runtime never
  // nests instances of the same event, so greedy pairing is exact.
  std::vector<bool> consumed(records_.size(), false);
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const EventRecord& entry = records_[i];
    if (!entry.is_entry) {
      if (!consumed[i]) {
        throw ParseError("EventTrace::instances: exit without entry for " +
                         event_name(entry.event));
      }
      continue;
    }
    bool paired = false;
    for (std::size_t j = i + 1; j < records_.size(); ++j) {
      const EventRecord& exit = records_[j];
      if (consumed[j] || exit.is_entry || exit.event != entry.event) continue;
      result.push_back({entry.event, {entry.timestamp, exit.timestamp}});
      consumed[i] = consumed[j] = true;
      paired = true;
      break;
    }
    if (!paired) {
      throw ParseError("EventTrace::instances: entry without exit for " +
                       event_name(entry.event));
    }
  }
  const auto by_begin = [](const EventInstance& a, const EventInstance& b) {
    return a.interval.begin < b.interval.begin;
  };
  // Greedy pairing of an add_instance-built trace already yields entry
  // order, so the common case skips the sort entirely.
  if (!std::is_sorted(result.begin(), result.end(), by_begin)) {
    std::sort(result.begin(), result.end(), by_begin);
  }
  return result;
}

std::string EventTrace::to_text() const {
  std::ostringstream out;
  for (const EventRecord& record : records_) {
    out << record.timestamp << ' ' << (record.is_entry ? '+' : '-') << ' '
        << event_name(record.event) << '\n';
  }
  return out.str();
}

EventTrace EventTrace::from_text(const std::string& text) {
  EventTrace trace;
  EventSymbolTable& symbols = EventSymbolTable::global();
  std::string_view remaining(text);
  while (!remaining.empty()) {
    const std::string_view line = strings::trim_view(strings::next_line(remaining));
    if (line.empty() || line.front() == '#') continue;
    std::string_view fields = line;
    TimestampMs timestamp = 0;
    const bool have_timestamp = strings::consume_int64(fields, timestamp);
    fields = strings::trim_view(fields);
    const bool have_sign =
        !fields.empty() && (fields.front() == '+' || fields.front() == '-') &&
        (fields.size() == 1 ||
         std::isspace(static_cast<unsigned char>(fields[1])));
    if (!have_timestamp || !have_sign) {
      throw ParseError("EventTrace::from_text: malformed line '" +
                       std::string(line) + "'");
    }
    const bool is_entry = fields.front() == '+';
    const std::string_view event = strings::trim_view(fields.substr(1));
    if (event.empty()) {
      throw ParseError("EventTrace::from_text: missing event name in '" +
                       std::string(line) + "'");
    }
    // Intern straight from the view: no per-line std::string, and repeated
    // names (the entire point of a trace) cost one hashed lookup.
    trace.records_.push_back({timestamp, is_entry, symbols.intern(event)});
  }
  return trace;
}

}  // namespace edx::trace
