// On-device trace recorder.
//
// Pairs the two collection paths of the paper's Fig. 4: the instrumented
// app writes the event trace; the EnergyDx background service samples
// utilization and estimates power.  The recorder runs both against a
// finished simulation and produces the bundle a phone would upload.
#pragma once

#include <string>

#include "android/runtime.h"
#include "common/rng.h"
#include "common/types.h"
#include "power/tracker.h"
#include "trace/event_trace.h"
#include "trace/util_trace.h"

namespace edx::trace {

/// Everything one phone uploads for one diagnosis session.
struct TraceBundle {
  UserId user{0};
  std::string device_name;
  EventTrace events;
  UtilizationTrace utilization;

  /// Stable identity of the uploading phone across sessions: bundles with
  /// the same key describe the same user, so a fleet engine ingests a
  /// re-upload as an idempotent replacement of that user's earlier bundle,
  /// never as a new fleet member (see core/fleet_analyzer.h).
  [[nodiscard]] UserId fleet_key() const { return user; }

  /// Serializes to a single blob (both traces with section headers).
  [[nodiscard]] std::string to_text() const;
  static TraceBundle from_text(const std::string& text);
};

/// Records one run into a TraceBundle.
class TraceRecorder {
 public:
  /// `device` decides the power model used for on-device estimation.
  TraceRecorder(power::Device device, power::TrackerConfig tracker_config,
                Rng rng);

  /// Produces the bundle for `run`: event trace from the logged events,
  /// utilization trace by sampling `timeline` over the run's time span.
  /// Also registers the tracker's own CPU cost under `tracker_pid` (pass a
  /// distinct pid; pass run.pid to attribute it to the app itself).
  [[nodiscard]] TraceBundle record(const android::RunResult& run,
                                   power::UtilizationTimeline& timeline,
                                   UserId user, Pid tracker_pid);

 private:
  power::Device device_;
  power::UtilizationTracker tracker_;
};

}  // namespace edx::trace
