// Event traces (Figure 5 of the paper).
//
// An event trace is a sequence of timestamped entry ("+") / exit ("-")
// records of instrumented callbacks:
//
//   28223867 + Lcom/fsck/k9/service/MailService;.onDestroy
//   28223867 - Lcom/fsck/k9/service/MailService;.onDestroy
//   28224781 + Lcom/fsck/k9/activity/MessageList;.onItemClick
//   28224844 - Lcom/fsck/k9/activity/MessageList;.onItemClick
//
// This module stores, pairs, prints, and parses such traces.  Event names
// are interned into the process-wide EventSymbolTable at ingestion
// (from_text parses by string_view and never materializes a per-line
// std::string); every record and instance carries the dense EventId, and
// the name is resolved back only when rendering text.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "android/runtime.h"
#include "common/event_symbols.h"
#include "common/types.h"

namespace edx::trace {

/// One +/- line.
struct EventRecord {
  TimestampMs timestamp{0};
  bool is_entry{true};  ///< '+' when true, '-' when false
  EventId event{kInvalidEventId};

  friend bool operator==(const EventRecord&, const EventRecord&) = default;
};

/// A paired event occurrence.
struct EventInstance {
  EventId event{kInvalidEventId};
  TimeInterval interval;

  friend bool operator==(const EventInstance&, const EventInstance&) = default;
};

/// A full event trace for one app run on one phone.
class EventTrace {
 public:
  EventTrace() = default;
  explicit EventTrace(std::vector<EventRecord> records);

  /// Builds a trace from a runtime result, keeping only logged events.
  static EventTrace from_run(const android::RunResult& run);

  [[nodiscard]] const std::vector<EventRecord>& records() const {
    return records_;
  }
  [[nodiscard]] bool empty() const { return records_.empty(); }

  /// Appends an entry/exit pair for one instance.
  void add_instance(EventId event, TimeInterval interval);
  /// Convenience overload interning `event` into the global table.
  void add_instance(std::string_view event, TimeInterval interval);

  /// Pairs + / - records into instances, in chronological (entry) order.
  /// Throws ParseError on unbalanced records.
  [[nodiscard]] std::vector<EventInstance> instances() const;

  /// Renders the Fig.-5 text format.
  [[nodiscard]] std::string to_text() const;

  /// Parses the text format; throws ParseError on malformed lines.  Blank
  /// lines and '#' comment lines are skipped; CRLF line ends are accepted.
  static EventTrace from_text(const std::string& text);

  friend bool operator==(const EventTrace&, const EventTrace&) = default;

 private:
  std::vector<EventRecord> records_;
};

}  // namespace edx::trace
