// Trace anonymization.
//
// "The traces collected by EnergyDx are preprocessed to remove any user
// identifiers, such as phone numbers or IP addresses, in order to protect
// the user privacy."  The anonymizer scrubs phone numbers, IPv4 addresses,
// and email addresses from free-form text (event names can embed deep-link
// payloads; metadata can embed account hints).
#pragma once

#include <string>

#include "trace/event_trace.h"

namespace edx::trace {

/// Replacement markers.
inline constexpr std::string_view kPhoneMarker = "<phone>";
inline constexpr std::string_view kIpMarker = "<ip>";
inline constexpr std::string_view kEmailMarker = "<email>";

/// Scrubs one string: phone numbers (7+ digit runs, optionally separated by
/// '-' or ' ' and prefixed '+'), dotted-quad IPv4 addresses, and
/// user@host.tld emails.
std::string anonymize_text(const std::string& text);

/// Scrubs every event name in a trace, returning the sanitized copy.
EventTrace anonymize(const EventTrace& trace);

/// True if `text` still contains an identifier the scrubber recognizes.
bool contains_identifier(const std::string& text);

}  // namespace edx::trace
