#include "trace/recorder.h"

#include <sstream>

#include "common/error.h"
#include "common/strings.h"

namespace edx::trace {

std::string TraceBundle::to_text() const {
  std::ostringstream out;
  out << "BUNDLE user=" << user << " device=" << device_name << '\n';
  out << "[events]\n" << events.to_text();
  out << "[utilization]\n" << utilization.to_text();
  out << "[end]\n";
  return out.str();
}

TraceBundle TraceBundle::from_text(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || !strings::starts_with(line, "BUNDLE ")) {
    throw ParseError("TraceBundle::from_text: missing BUNDLE header");
  }
  TraceBundle bundle;
  // "BUNDLE user=<n> device=<name...>" — device names may contain spaces,
  // so the device field runs to the end of the line.
  const std::string header = line.substr(7);
  const std::size_t device_pos = header.find(" device=");
  if (device_pos == std::string::npos ||
      !strings::starts_with(header, "user=")) {
    throw ParseError("TraceBundle::from_text: malformed BUNDLE header");
  }
  bundle.user = std::stoi(header.substr(5, device_pos - 5));
  bundle.device_name = strings::trim(header.substr(device_pos + 8));

  std::string events_text;
  std::string util_text;
  std::string* section = nullptr;
  while (std::getline(in, line)) {
    const std::string trimmed = strings::trim(line);
    if (trimmed == "[events]") {
      section = &events_text;
    } else if (trimmed == "[utilization]") {
      section = &util_text;
    } else if (trimmed == "[end]") {
      section = nullptr;
    } else if (section != nullptr) {
      *section += line + "\n";
    }
  }
  bundle.events = EventTrace::from_text(events_text);
  bundle.utilization = UtilizationTrace::from_text(util_text);
  return bundle;
}

TraceRecorder::TraceRecorder(power::Device device,
                             power::TrackerConfig tracker_config, Rng rng)
    : device_(device),
      tracker_(power::PowerModel(std::move(device)), tracker_config, rng) {}

TraceBundle TraceRecorder::record(const android::RunResult& run,
                                  power::UtilizationTimeline& timeline,
                                  UserId user, Pid tracker_pid) {
  tracker_.register_self_cost(timeline, tracker_pid, run.start_time,
                              run.end_time);
  TraceBundle bundle;
  bundle.user = user;
  bundle.device_name = device_.name();
  bundle.events = EventTrace::from_run(run);
  bundle.utilization = UtilizationTrace(
      device_.name(),
      tracker_.track(timeline, run.pid, run.start_time, run.end_time));
  return bundle;
}

}  // namespace edx::trace
