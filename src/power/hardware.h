// Hardware component vocabulary of the simulated phone.
//
// The power model of Zhang et al. [20] (PowerTutor) is linear in the
// utilization of a small set of components; we model the same set.
#pragma once

#include <array>
#include <cstddef>
#include <string_view>

namespace edx::power {

/// The hardware components whose utilization the tracker records.
enum class Component : std::size_t {
  kCpu = 0,
  kDisplay,
  kWifi,
  kCellular,
  kGps,
  kAudio,
  kSensor,
};

inline constexpr std::size_t kComponentCount = 7;

/// All components, for iteration.
inline constexpr std::array<Component, kComponentCount> kAllComponents = {
    Component::kCpu,  Component::kDisplay, Component::kWifi,
    Component::kCellular, Component::kGps, Component::kAudio,
    Component::kSensor,
};

/// Human-readable component name ("cpu", "display", ...).
std::string_view component_name(Component component);

/// Inverse of component_name(); throws InvalidArgument on unknown names.
Component component_from_name(std::string_view name);

/// A fixed-size utilization vector, one slot per component, each in [0, 1].
class UtilizationVector {
 public:
  UtilizationVector() { values_.fill(0.0); }

  [[nodiscard]] double get(Component component) const {
    return values_[static_cast<std::size_t>(component)];
  }
  /// Sets a component's utilization, clamping to [0, 1].
  void set(Component component, double utilization);
  /// Adds to a component's utilization, clamping the result to [0, 1].
  void add(Component component, double utilization);

  [[nodiscard]] const std::array<double, kComponentCount>& raw() const {
    return values_;
  }

  friend bool operator==(const UtilizationVector&,
                         const UtilizationVector&) = default;

 private:
  std::array<double, kComponentCount> values_;
};

}  // namespace edx::power
