#include "power/power_model.h"

namespace edx::power {

PowerModel::PowerModel(Device device) : device_(std::move(device)) {}

PowerMw PowerModel::app_power(const UtilizationVector& utilization) const {
  double total = 0.0;
  for (Component component : kAllComponents) {
    total += component_power(component, utilization.get(component));
  }
  return total;
}

PowerMw PowerModel::phone_power(const UtilizationVector& utilization) const {
  return device_.idle_mw() + app_power(utilization);
}

PowerMw PowerModel::component_power(Component component,
                                    Utilization utilization) const {
  return device_.coefficient_mw(component) * utilization;
}

}  // namespace edx::power
