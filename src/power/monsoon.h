// Ground-truth whole-phone power measurement.
//
// The paper validates overheads with a Monsoon Power Monitor wired to a
// Nexus 6.  Our stand-in integrates the *whole-phone* power (idle baseline
// plus every PID's component activity) over the utilization timeline at
// fine granularity.  Unlike the tracker it has no estimation noise and no
// sampling alignment: it is the oracle against which the model is checked.
#pragma once

#include "common/types.h"
#include "power/power_model.h"
#include "power/timeline.h"

namespace edx::power {

/// Result of one measurement run.
struct MonsoonReading {
  PowerMw average_power_mw{0.0};
  EnergyMj energy_mj{0.0};
  DurationMs duration_ms{0};
};

/// Integrating whole-phone power meter.
class MonsoonMonitor {
 public:
  /// `resolution_ms` is the integration step (default 5 ms ≈ 200 Hz).
  explicit MonsoonMonitor(PowerModel model, DurationMs resolution_ms = 5);

  /// Measures whole-phone power over [begin, end).
  [[nodiscard]] MonsoonReading measure(const UtilizationTimeline& timeline,
                                       TimestampMs begin,
                                       TimestampMs end) const;

  /// Measures power attributable to a single PID (no idle baseline); used
  /// to validate the tracker's per-app estimates.
  [[nodiscard]] MonsoonReading measure_pid(const UtilizationTimeline& timeline,
                                           Pid pid, TimestampMs begin,
                                           TimestampMs end) const;

 private:
  PowerModel model_;
  DurationMs resolution_ms_;
};

}  // namespace edx::power
