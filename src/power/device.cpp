#include "power/device.h"

#include "common/error.h"

namespace edx::power {

Device::Device(std::string name, double idle_mw,
               std::array<double, kComponentCount> coefficients_mw)
    : name_(std::move(name)),
      idle_mw_(idle_mw),
      coefficients_mw_(coefficients_mw) {
  require(!name_.empty(), "Device: name must be non-empty");
  require(idle_mw_ >= 0.0, "Device: idle power must be non-negative");
  for (double coefficient : coefficients_mw_) {
    require(coefficient >= 0.0, "Device: coefficients must be non-negative");
  }
}

double Device::reference_power_mw() const {
  // A fixed "typical usage" utilization vector: moderate CPU, display on,
  // light radio activity.  Every device is evaluated at the same point so
  // the ratio between two devices is a meaningful scale factor.
  constexpr std::array<double, kComponentCount> kTypicalUtil = {
      0.30,  // cpu
      0.80,  // display
      0.10,  // wifi
      0.05,  // cellular
      0.00,  // gps
      0.00,  // audio
      0.05,  // sensor
  };
  double total = idle_mw_;
  for (std::size_t i = 0; i < kComponentCount; ++i) {
    total += coefficients_mw_[i] * kTypicalUtil[i];
  }
  return total;
}

// Coefficient sets are loosely based on the published PowerTutor model for
// comparable hardware generations: CPU and display dominate, GPS is a large
// fixed-cost consumer when on, WiFi/cellular sit in between.
Device nexus6() {
  return Device("Nexus 6", 28.0,
                {/*cpu=*/860.0, /*display=*/414.0, /*wifi=*/405.0,
                 /*cellular=*/720.0, /*gps=*/429.0, /*audio=*/185.0,
                 /*sensor=*/96.0});
}

Device nexus5() {
  return Device("Nexus 5", 24.0,
                {/*cpu=*/788.0, /*display=*/372.0, /*wifi=*/384.0,
                 /*cellular=*/690.0, /*gps=*/404.0, /*audio=*/170.0,
                 /*sensor=*/88.0});
}

Device galaxy_s5() {
  return Device("Galaxy S5", 31.0,
                {/*cpu=*/934.0, /*display=*/452.0, /*wifi=*/418.0,
                 /*cellular=*/742.0, /*gps=*/445.0, /*audio=*/196.0,
                 /*sensor=*/102.0});
}

Device moto_g() {
  return Device("Moto G", 21.0,
                {/*cpu=*/652.0, /*display=*/331.0, /*wifi=*/356.0,
                 /*cellular=*/640.0, /*gps=*/381.0, /*audio=*/152.0,
                 /*sensor=*/76.0});
}

std::vector<Device> builtin_devices() {
  return {nexus6(), nexus5(), galaxy_s5(), moto_g()};
}

}  // namespace edx::power
