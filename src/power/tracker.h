// Procfs-style per-app utilization tracker.
//
// The EnergyDx prototype runs a background service that samples, every
// 500 ms, the hardware utilization the kernel attributes to the suspect
// app's PID, and estimates app power with the linear model.  We replicate
// that: the tracker reads the UtilizationTimeline (our procfs), applies the
// device's PowerModel, and adds a small multiplicative estimation error
// (the paper cites < 2.5% model error).
//
// The tracker is itself a consumer: when asked, it registers its own CPU
// cost on the timeline so the §IV-F power-overhead experiment can measure
// EnergyDx against ground truth.
#pragma once

#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "power/power_model.h"
#include "power/timeline.h"

namespace edx::power {

/// One tracker sample: utilization over [timestamp - period, timestamp) and
/// the model's power estimate for the tracked app.
struct UtilizationSample {
  TimestampMs timestamp{0};  ///< end of the sampling window
  UtilizationVector utilization;
  PowerMw estimated_app_power_mw{0.0};

  friend bool operator==(const UtilizationSample&,
                         const UtilizationSample&) = default;
};

/// Configuration of a tracking run.
struct TrackerConfig {
  DurationMs period_ms{500};  ///< the paper's accuracy/overhead trade-off
  /// Stddev of the multiplicative estimation noise (0.01 ~ "under 2.5%"
  /// error at 2 sigma).  Set to 0 for exact-model tests.
  double estimation_noise{0.01};
  /// CPU utilization the tracker service itself costs while running.
  Utilization self_cpu_utilization{0.025};
};

/// Samples a timeline for one PID at a fixed period.
class UtilizationTracker {
 public:
  UtilizationTracker(PowerModel model, TrackerConfig config, Rng rng);

  [[nodiscard]] const TrackerConfig& config() const { return config_; }
  [[nodiscard]] const PowerModel& model() const { return model_; }

  /// Samples [begin, end) for `pid`.  Each sample covers one period; the
  /// final partial period (if any) is dropped, like a real periodic timer.
  [[nodiscard]] std::vector<UtilizationSample> track(
      const UtilizationTimeline& timeline, Pid pid, TimestampMs begin,
      TimestampMs end);

  /// Registers the tracker's own CPU cost over [begin, end) on `timeline`
  /// under `tracker_pid`, so whole-phone measurements include EnergyDx's
  /// overhead.
  void register_self_cost(UtilizationTimeline& timeline, Pid tracker_pid,
                          TimestampMs begin, TimestampMs end) const;

 private:
  PowerModel model_;
  TrackerConfig config_;
  Rng rng_;
};

}  // namespace edx::power
