#include "power/timeline.h"

#include <algorithm>
#include <limits>

#include "common/error.h"

namespace edx::power {

namespace {
// Sentinel end for contributions opened but not yet closed.
constexpr TimestampMs kOpenEnd = std::numeric_limits<TimestampMs>::max();
}  // namespace

void UtilizationTimeline::add(Pid pid, Component component,
                              TimeInterval interval,
                              Utilization utilization) {
  if (interval.empty() || utilization <= 0.0) return;
  Contribution contribution;
  contribution.pid = pid;
  contribution.component = component;
  contribution.interval = interval;
  contribution.utilization = std::clamp(utilization, 0.0, 1.0);
  contributions_.push_back(contribution);
}

std::size_t UtilizationTimeline::open(Pid pid, Component component,
                                      TimestampMs begin,
                                      Utilization utilization) {
  Contribution contribution;
  contribution.pid = pid;
  contribution.component = component;
  contribution.interval = {begin, kOpenEnd};
  contribution.utilization = std::clamp(utilization, 0.0, 1.0);
  contributions_.push_back(contribution);
  const std::size_t handle = contributions_.size() - 1;
  open_handles_.push_back(handle);
  return handle;
}

void UtilizationTimeline::close(std::size_t handle, TimestampMs end) {
  require(handle < contributions_.size(),
          "UtilizationTimeline::close: bad handle");
  Contribution& contribution = contributions_[handle];
  require(contribution.interval.end == kOpenEnd,
          "UtilizationTimeline::close: contribution already closed");
  contribution.interval.end = std::max(end, contribution.interval.begin);
  std::erase(open_handles_, handle);
}

bool UtilizationTimeline::is_open(std::size_t handle) const {
  return handle < contributions_.size() &&
         contributions_[handle].interval.end == kOpenEnd;
}

std::size_t UtilizationTimeline::close_all(TimestampMs end) {
  const std::size_t closed = open_handles_.size();
  for (std::size_t handle : open_handles_) {
    Contribution& contribution = contributions_[handle];
    contribution.interval.end = std::max(end, contribution.interval.begin);
  }
  open_handles_.clear();
  return closed;
}

Utilization UtilizationTimeline::windowed_utilization(Component component,
                                                      TimestampMs begin,
                                                      TimestampMs end, Pid pid,
                                                      bool filter_pid) const {
  if (end <= begin) return 0.0;

  // Gather the relevant contributions and the boundary points they induce
  // inside the window, then sweep segment by segment, clamping the summed
  // utilization to 1.0 within each segment.
  std::vector<const Contribution*> relevant;
  std::vector<TimestampMs> boundaries{begin, end};
  for (const Contribution& contribution : contributions_) {
    if (filter_pid && contribution.pid != pid) continue;
    if (contribution.component != component) continue;
    if (contribution.interval.overlap(begin, end) <= 0) continue;
    relevant.push_back(&contribution);
    if (contribution.interval.begin > begin) {
      boundaries.push_back(contribution.interval.begin);
    }
    if (contribution.interval.end < end) {
      boundaries.push_back(contribution.interval.end);
    }
  }
  if (relevant.empty()) return 0.0;

  std::sort(boundaries.begin(), boundaries.end());
  boundaries.erase(std::unique(boundaries.begin(), boundaries.end()),
                   boundaries.end());

  double weighted_total = 0.0;
  for (std::size_t i = 0; i + 1 < boundaries.size(); ++i) {
    const TimestampMs seg_begin = boundaries[i];
    const TimestampMs seg_end = boundaries[i + 1];
    if (seg_begin < begin || seg_end > end) continue;
    double level = 0.0;
    for (const Contribution* contribution : relevant) {
      if (contribution->interval.begin <= seg_begin &&
          contribution->interval.end >= seg_end) {
        level += contribution->utilization;
      }
    }
    weighted_total +=
        std::min(level, 1.0) * static_cast<double>(seg_end - seg_begin);
  }
  return weighted_total / static_cast<double>(end - begin);
}

std::vector<Utilization> UtilizationTimeline::windowed_averages(
    Pid pid, bool filter_pid, Component component, TimestampMs begin,
    TimestampMs end, DurationMs period) const {
  require(period > 0, "windowed_averages: period must be positive");
  const std::size_t window_count =
      end > begin ? static_cast<std::size_t>((end - begin) / period) : 0;
  std::vector<Utilization> averages(window_count, 0.0);
  if (window_count == 0) return averages;
  const TimestampMs span_end = begin + static_cast<TimestampMs>(window_count) *
                                           static_cast<TimestampMs>(period);

  // Level-change events: +util at start, -util at end (clipped to range).
  std::vector<std::pair<TimestampMs, double>> deltas;
  for (const Contribution& contribution : contributions_) {
    if (filter_pid && contribution.pid != pid) continue;
    if (contribution.component != component) continue;
    const TimestampMs lo = std::max(contribution.interval.begin, begin);
    const TimestampMs hi = std::min(contribution.interval.end, span_end);
    if (hi <= lo) continue;
    deltas.emplace_back(lo, contribution.utilization);
    deltas.emplace_back(hi, -contribution.utilization);
  }
  if (deltas.empty()) return averages;
  std::sort(deltas.begin(), deltas.end());

  // Sweep: accumulate clamped level * dt into the windows each segment
  // overlaps.
  double level = 0.0;
  TimestampMs cursor = begin;
  std::size_t next_delta = 0;
  std::vector<double> integral(window_count, 0.0);
  const auto accumulate = [&](TimestampMs from, TimestampMs to,
                              double clamped_level) {
    if (to <= from || clamped_level <= 0.0) return;
    std::size_t w = static_cast<std::size_t>((from - begin) / period);
    TimestampMs position = from;
    while (position < to && w < window_count) {
      const TimestampMs window_end =
          begin + static_cast<TimestampMs>(w + 1) *
                      static_cast<TimestampMs>(period);
      const TimestampMs segment_end = std::min(to, window_end);
      integral[w] +=
          clamped_level * static_cast<double>(segment_end - position);
      position = segment_end;
      ++w;
    }
  };

  while (cursor < span_end) {
    // Apply all deltas at `cursor`.
    while (next_delta < deltas.size() && deltas[next_delta].first <= cursor) {
      level += deltas[next_delta].second;
      ++next_delta;
    }
    const TimestampMs next_change = next_delta < deltas.size()
                                        ? deltas[next_delta].first
                                        : span_end;
    const TimestampMs segment_end = std::min(next_change, span_end);
    accumulate(cursor, segment_end, std::min(std::max(level, 0.0), 1.0));
    cursor = segment_end;
    if (next_change >= span_end) break;
  }

  for (std::size_t w = 0; w < window_count; ++w) {
    averages[w] = integral[w] / static_cast<double>(period);
  }
  return averages;
}

Utilization UtilizationTimeline::component_utilization(Pid pid,
                                                       Component component,
                                                       TimestampMs begin,
                                                       TimestampMs end) const {
  return windowed_utilization(component, begin, end, pid, /*filter_pid=*/true);
}

Utilization UtilizationTimeline::total_component_utilization(
    Component component, TimestampMs begin, TimestampMs end) const {
  return windowed_utilization(component, begin, end, /*pid=*/0,
                              /*filter_pid=*/false);
}

UtilizationVector UtilizationTimeline::utilization_vector(
    Pid pid, TimestampMs begin, TimestampMs end) const {
  UtilizationVector vector;
  for (Component component : kAllComponents) {
    vector.set(component, component_utilization(pid, component, begin, end));
  }
  return vector;
}

TimestampMs UtilizationTimeline::last_activity_end() const {
  TimestampMs latest = kNoTimestamp;
  for (const Contribution& contribution : contributions_) {
    if (contribution.interval.end == kOpenEnd) continue;
    latest = std::max(latest, contribution.interval.end);
  }
  return latest;
}

}  // namespace edx::power
