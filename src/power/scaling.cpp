#include "power/scaling.h"

#include "common/error.h"

namespace edx::power {

PowerModelScaler::PowerModelScaler(Device reference)
    : reference_(std::move(reference)) {}

double PowerModelScaler::scale_factor(const Device& device) const {
  const double device_reference = device.reference_power_mw();
  require(device_reference > 0.0,
          "PowerModelScaler: device reference power must be positive");
  if (device == reference_) return 1.0;
  return reference_.reference_power_mw() / device_reference;
}

PowerMw PowerModelScaler::to_reference(PowerMw power,
                                       const Device& device) const {
  return power * scale_factor(device);
}

}  // namespace edx::power
