// Power-model calibration (the "automatic power model generation" half of
// Zhang et al. [20]).
//
// EnergyDx ships device profiles, but a new phone model arrives without
// one.  The calibrator recovers the linear coefficients of the power model
// from observation pairs (component utilization vector, measured
// whole-phone power) — e.g. one Monsoon session while a training workload
// sweeps the components — by ordinary least squares.  The fitted Device
// can then be registered with the collection fleet and the scaler.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"
#include "power/device.h"
#include "power/hardware.h"

namespace edx::power {

/// One calibration observation: what the components were doing and what
/// the meter read (whole-phone, mW).
struct CalibrationSample {
  UtilizationVector utilization;
  PowerMw measured_phone_power_mw{0.0};
};

/// Result of a fit.
struct CalibrationResult {
  Device device;                 ///< fitted profile (coefficients + idle)
  double rms_error_mw{0.0};      ///< residual over the training samples
  double max_abs_error_mw{0.0};
  std::size_t samples_used{0};
};

/// Least-squares fit of an (idle + 7 coefficients) linear power model.
///
/// Requirements: at least kComponentCount + 1 samples, and the utilization
/// matrix must excite every component (a column that is identically zero
/// makes that coefficient unidentifiable — reported via AnalysisError).
/// Negative fitted coefficients are clamped to zero (hardware cannot
/// produce power), with the residual recomputed after clamping.
CalibrationResult fit_power_model(const std::string& device_name,
                                  const std::vector<CalibrationSample>& samples);

/// Generates a component-sweep training workload: for each component, a
/// block of samples at several utilization levels (plus one all-idle
/// block), evaluated against `truth` with optional multiplicative
/// measurement noise.  This is the "training app + power meter" session a
/// lab would run; tests use it to verify the fit recovers the truth.
std::vector<CalibrationSample> generate_training_samples(
    const Device& truth, std::size_t levels_per_component, double noise_stddev,
    std::uint64_t seed);

}  // namespace edx::power
