#include "power/monsoon.h"

#include <algorithm>

#include "common/error.h"

namespace edx::power {

MonsoonMonitor::MonsoonMonitor(PowerModel model, DurationMs resolution_ms)
    : model_(std::move(model)), resolution_ms_(resolution_ms) {
  require(resolution_ms_ > 0, "MonsoonMonitor: resolution must be > 0");
}

namespace {

MonsoonReading integrate(const PowerModel& model,
                         const UtilizationTimeline& timeline, TimestampMs begin,
                         TimestampMs end, DurationMs step, Pid pid,
                         bool per_pid) {
  MonsoonReading reading;
  reading.duration_ms = std::max<DurationMs>(0, end - begin);
  if (reading.duration_ms == 0) return reading;

  const std::size_t window_count =
      static_cast<std::size_t>((end - begin + step - 1) / step);
  std::vector<UtilizationVector> windows(window_count);
  for (Component component : kAllComponents) {
    // Sweep whole windows; the final partial window (if any) is integrated
    // separately below.
    const std::vector<Utilization> averages = timeline.windowed_averages(
        pid, per_pid, component, begin, end, step);
    for (std::size_t w = 0; w < averages.size(); ++w) {
      windows[w].set(component, averages[w]);
    }
    if (averages.size() < window_count) {
      const TimestampMs tail_begin =
          begin + static_cast<TimestampMs>(averages.size()) * step;
      const Utilization tail =
          per_pid
              ? timeline.component_utilization(pid, component, tail_begin, end)
              : timeline.total_component_utilization(component, tail_begin,
                                                     end);
      windows[window_count - 1].set(component, tail);
    }
  }

  double energy_mj = 0.0;
  for (std::size_t w = 0; w < window_count; ++w) {
    const TimestampMs w_begin = begin + static_cast<TimestampMs>(w) * step;
    const TimestampMs w_end = std::min<TimestampMs>(w_begin + step, end);
    const PowerMw power = per_pid ? model.app_power(windows[w])
                                  : model.phone_power(windows[w]);
    energy_mj += power * static_cast<double>(w_end - w_begin) / 1000.0;
  }
  reading.energy_mj = energy_mj;
  reading.average_power_mw =
      energy_mj * 1000.0 / static_cast<double>(reading.duration_ms);
  return reading;
}

}  // namespace

MonsoonReading MonsoonMonitor::measure(const UtilizationTimeline& timeline,
                                       TimestampMs begin,
                                       TimestampMs end) const {
  return integrate(model_, timeline, begin, end, resolution_ms_, /*pid=*/0,
                   /*per_pid=*/false);
}

MonsoonReading MonsoonMonitor::measure_pid(const UtilizationTimeline& timeline,
                                           Pid pid, TimestampMs begin,
                                           TimestampMs end) const {
  return integrate(model_, timeline, begin, end, resolution_ms_, pid,
                   /*per_pid=*/true);
}

}  // namespace edx::power
