// Device power profiles.
//
// A DeviceProfile holds the linear power coefficients of one phone model:
// the power drawn by each hardware component at 100% utilization, plus an
// idle baseline.  The paper's traces come from "more than 30 volunteer users
// with various smartphones"; we ship several profiles so the power-model
// scaling step ([22], Step 1 of the analysis) has real work to do.
#pragma once

#include <string>
#include <vector>

#include "power/hardware.h"

namespace edx::power {

/// Power coefficients of one phone model.  `coefficient_mw(c)` is the power
/// drawn by component `c` at utilization 1.0.
class Device {
 public:
  Device(std::string name, double idle_mw,
         std::array<double, kComponentCount> coefficients_mw);

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Baseline power of the phone when every component idles (mW).
  [[nodiscard]] double idle_mw() const { return idle_mw_; }

  /// Power of `component` at full utilization (mW).
  [[nodiscard]] double coefficient_mw(Component component) const {
    return coefficients_mw_[static_cast<std::size_t>(component)];
  }

  /// Sum of all coefficients evaluated at a reference utilization vector;
  /// used by PowerModelScaler to derive a cross-device scale factor.
  [[nodiscard]] double reference_power_mw() const;

  friend bool operator==(const Device&, const Device&) = default;

 private:
  std::string name_;
  double idle_mw_;
  std::array<double, kComponentCount> coefficients_mw_;
};

/// The profile the paper's overhead experiment uses (Monsoon on a Nexus 6).
Device nexus6();
/// Additional profiles for heterogeneous-fleet simulation.
Device nexus5();
Device galaxy_s5();
Device moto_g();

/// All built-in profiles, Nexus 6 first (it is the scaling reference).
std::vector<Device> builtin_devices();

}  // namespace edx::power
