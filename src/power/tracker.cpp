#include "power/tracker.h"

#include <algorithm>

#include "common/error.h"

namespace edx::power {

UtilizationTracker::UtilizationTracker(PowerModel model, TrackerConfig config,
                                       Rng rng)
    : model_(std::move(model)), config_(config), rng_(rng) {
  require(config_.period_ms > 0, "UtilizationTracker: period must be > 0");
  require(config_.estimation_noise >= 0.0,
          "UtilizationTracker: noise must be non-negative");
}

std::vector<UtilizationSample> UtilizationTracker::track(
    const UtilizationTimeline& timeline, Pid pid, TimestampMs begin,
    TimestampMs end) {
  const std::size_t window_count =
      end > begin
          ? static_cast<std::size_t>((end - begin) / config_.period_ms)
          : 0;
  std::vector<UtilizationSample> samples(window_count);
  if (window_count == 0) return samples;

  for (Component component : kAllComponents) {
    const std::vector<Utilization> averages = timeline.windowed_averages(
        pid, /*filter_pid=*/true, component, begin, end, config_.period_ms);
    for (std::size_t w = 0; w < window_count; ++w) {
      samples[w].utilization.set(component, averages[w]);
    }
  }
  for (std::size_t w = 0; w < window_count; ++w) {
    samples[w].timestamp =
        begin + static_cast<TimestampMs>(w + 1) * config_.period_ms;
    double power = model_.app_power(samples[w].utilization);
    if (config_.estimation_noise > 0.0) {
      power *= std::max(0.0, rng_.normal(1.0, config_.estimation_noise));
    }
    samples[w].estimated_app_power_mw = power;
  }
  return samples;
}

void UtilizationTracker::register_self_cost(UtilizationTimeline& timeline,
                                            Pid tracker_pid, TimestampMs begin,
                                            TimestampMs end) const {
  if (config_.self_cpu_utilization <= 0.0) return;
  timeline.add(tracker_pid, Component::kCpu, {begin, end},
               config_.self_cpu_utilization);
}

}  // namespace edx::power
