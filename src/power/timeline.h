// UtilizationTimeline — the bridge between the simulated Android runtime
// and the power subsystem.
//
// While executing callbacks and background services, the runtime registers
// utilization *contributions*: "pid P drove component C at utilization U
// over [begin, end)".  Overlapping contributions to the same component add
// up and saturate at 1.0, exactly like concurrently-running threads sharing
// a CPU.  The procfs-style tracker and the Monsoon monitor both read this
// timeline, each at its own granularity.
#pragma once

#include <vector>

#include "common/types.h"
#include "power/hardware.h"

namespace edx::power {

/// One utilization contribution recorded by the runtime.
struct Contribution {
  Pid pid{0};
  Component component{Component::kCpu};
  TimeInterval interval;
  Utilization utilization{0.0};
};

/// Append-only log of contributions with windowed aggregation queries.
class UtilizationTimeline {
 public:
  /// Records a contribution.  Empty or negative intervals and zero
  /// utilization are ignored; utilization is clamped to [0, 1].
  void add(Pid pid, Component component, TimeInterval interval,
           Utilization utilization);

  /// Records the same utilization on an open-ended activity that a later
  /// `close()` call terminates; returns a handle.  Used for long-running
  /// resources (wakelocks, GPS fixes) whose release time is not known at
  /// acquisition.
  std::size_t open(Pid pid, Component component, TimestampMs begin,
                   Utilization utilization);

  /// Closes an open contribution at time `end` (clamped to >= begin).
  void close(std::size_t handle, TimestampMs end);

  /// True if the handle refers to a still-open contribution.
  [[nodiscard]] bool is_open(std::size_t handle) const;

  /// Closes every still-open contribution at `end`; returns how many were
  /// closed.  Called once at the end of a simulation so leaked resources
  /// (the no-sleep bugs!) keep draining until the session ends.
  std::size_t close_all(TimestampMs end);

  /// Time-weighted average utilization of `component` attributed to `pid`
  /// over [begin, end), with concurrent contributions summed and clamped to
  /// 1.0 instant-by-instant.  Returns 0 for empty windows.
  [[nodiscard]] Utilization component_utilization(Pid pid, Component component,
                                                  TimestampMs begin,
                                                  TimestampMs end) const;

  /// Same, aggregated across *all* pids (whole-phone view for the Monsoon).
  [[nodiscard]] Utilization total_component_utilization(Component component,
                                                        TimestampMs begin,
                                                        TimestampMs end) const;

  /// Full utilization vector for one pid over a window.
  [[nodiscard]] UtilizationVector utilization_vector(Pid pid, TimestampMs begin,
                                                     TimestampMs end) const;

  /// Batch query: average clamped utilization of `component` for `pid`
  /// (all pids when `filter_pid` is false) over consecutive windows of
  /// `period` covering [begin, begin + n*period <= end).  One sweep over
  /// the contributions — O((C + W) log C) instead of O(C * W).
  [[nodiscard]] std::vector<Utilization> windowed_averages(
      Pid pid, bool filter_pid, Component component, TimestampMs begin,
      TimestampMs end, DurationMs period) const;

  /// Latest `end` across all closed contributions (kNoTimestamp if none).
  [[nodiscard]] TimestampMs last_activity_end() const;

  [[nodiscard]] std::size_t contribution_count() const {
    return contributions_.size();
  }
  [[nodiscard]] const std::vector<Contribution>& contributions() const {
    return contributions_;
  }

 private:
  [[nodiscard]] Utilization windowed_utilization(Component component,
                                                 TimestampMs begin,
                                                 TimestampMs end, Pid pid,
                                                 bool filter_pid) const;

  std::vector<Contribution> contributions_;
  std::vector<std::size_t> open_handles_;  // indices with end == kOpenEnd
};

}  // namespace edx::power
