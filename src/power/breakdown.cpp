#include "power/breakdown.h"

#include <algorithm>

#include "common/error.h"

namespace edx::power {

PowerBreakdown::PowerBreakdown(PowerModel model) : model_(std::move(model)) {}

std::vector<BreakdownSample> PowerBreakdown::series(
    const UtilizationTimeline& timeline, Pid pid, TimestampMs begin,
    TimestampMs end, DurationMs period_ms) const {
  require(period_ms > 0, "PowerBreakdown::series: period must be > 0");
  const std::size_t window_count =
      end > begin ? static_cast<std::size_t>((end - begin) / period_ms) : 0;
  std::vector<BreakdownSample> result(window_count);
  for (Component component : kAllComponents) {
    const std::vector<Utilization> averages = timeline.windowed_averages(
        pid, /*filter_pid=*/true, component, begin, end, period_ms);
    for (std::size_t w = 0; w < window_count; ++w) {
      result[w].component_power_mw[static_cast<std::size_t>(component)] =
          model_.component_power(component, averages[w]);
    }
  }
  for (std::size_t w = 0; w < window_count; ++w) {
    result[w].timestamp =
        begin + static_cast<TimestampMs>(w + 1) * period_ms;
  }
  return result;
}

BreakdownSample PowerBreakdown::average(const UtilizationTimeline& timeline,
                                        Pid pid, TimestampMs begin,
                                        TimestampMs end) const {
  BreakdownSample sample;
  sample.timestamp = end;
  for (Component component : kAllComponents) {
    const Utilization utilization =
        timeline.component_utilization(pid, component, begin, end);
    sample.component_power_mw[static_cast<std::size_t>(component)] =
        model_.component_power(component, utilization);
  }
  return sample;
}

Component PowerBreakdown::dominant_component(const BreakdownSample& sample) {
  const auto it = std::max_element(sample.component_power_mw.begin(),
                                   sample.component_power_mw.end());
  return static_cast<Component>(
      std::distance(sample.component_power_mw.begin(), it));
}

}  // namespace edx::power
