// Cross-device power-model scaling (Mittal et al. [22]).
//
// Traces arrive from phones with different hardware; raw milliwatt values
// are not directly comparable between a Moto G and a Galaxy S5.  The paper
// performs "power model scaling" so all traces share a common scale before
// the manifestation analysis.  We implement the standard approach: evaluate
// every device's model at a fixed reference utilization point and rescale
// each trace's power by the ratio to a chosen reference device.
#pragma once

#include "common/types.h"
#include "power/device.h"

namespace edx::power {

/// Maps power values measured on arbitrary devices onto the scale of a
/// reference device.
class PowerModelScaler {
 public:
  /// `reference` is the device whose scale all traces are mapped onto
  /// (the paper's prototype measures on a Nexus 6).
  explicit PowerModelScaler(Device reference);

  [[nodiscard]] const Device& reference() const { return reference_; }

  /// Multiplicative factor that converts power measured on `device` to the
  /// reference scale.  Equal devices yield exactly 1.0.
  [[nodiscard]] double scale_factor(const Device& device) const;

  /// Convenience: rescales one power value.
  [[nodiscard]] PowerMw to_reference(PowerMw power,
                                     const Device& device) const;

 private:
  Device reference_;
};

}  // namespace edx::power
