#include "power/hardware.h"

#include <algorithm>

#include "common/error.h"

namespace edx::power {

std::string_view component_name(Component component) {
  switch (component) {
    case Component::kCpu: return "cpu";
    case Component::kDisplay: return "display";
    case Component::kWifi: return "wifi";
    case Component::kCellular: return "cellular";
    case Component::kGps: return "gps";
    case Component::kAudio: return "audio";
    case Component::kSensor: return "sensor";
  }
  throw InvalidArgument("component_name: unknown component");
}

Component component_from_name(std::string_view name) {
  for (Component component : kAllComponents) {
    if (component_name(component) == name) return component;
  }
  throw InvalidArgument("component_from_name: unknown component '" +
                        std::string(name) + "'");
}

void UtilizationVector::set(Component component, double utilization) {
  values_[static_cast<std::size_t>(component)] =
      std::clamp(utilization, 0.0, 1.0);
}

void UtilizationVector::add(Component component, double utilization) {
  auto& slot = values_[static_cast<std::size_t>(component)];
  slot = std::clamp(slot + utilization, 0.0, 1.0);
}

}  // namespace edx::power
