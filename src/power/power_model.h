// Utilization-based linear power model (Zhang et al. [20], PowerTutor).
//
// Estimated power = sum_over_components(coefficient_c * utilization_c),
// optionally plus the device's idle baseline for whole-phone estimates.
// The paper reports < 2.5% estimation error for this class of model, which
// it argues is sufficient to characterize the app-level power transitions
// the manifestation analysis depends on.
#pragma once

#include "common/types.h"
#include "power/device.h"
#include "power/hardware.h"

namespace edx::power {

/// Linear power model bound to one device profile.
class PowerModel {
 public:
  explicit PowerModel(Device device);

  [[nodiscard]] const Device& device() const { return device_; }

  /// Power attributed to an app with the given utilization vector (mW).
  /// Excludes the idle baseline — baseline power belongs to the phone, not
  /// to any single app.
  [[nodiscard]] PowerMw app_power(const UtilizationVector& utilization) const;

  /// Whole-phone power: idle baseline + component power (mW).
  [[nodiscard]] PowerMw phone_power(const UtilizationVector& utilization) const;

  /// Power contributed by a single component at the given utilization (mW).
  [[nodiscard]] PowerMw component_power(Component component,
                                        Utilization utilization) const;

 private:
  Device device_;
};

}  // namespace edx::power
