// Per-component power breakdown (Figures 11 and 14 of the paper).
//
// When a manifestation point is found, the paper explains the root cause by
// showing which hardware component keeps drawing power (GPS for OpenGPS,
// CPU for Wallabag).  PowerBreakdown computes that series from a timeline.
#pragma once

#include <array>
#include <vector>

#include "common/types.h"
#include "power/power_model.h"
#include "power/timeline.h"

namespace edx::power {

/// Average power per component for one PID over one window.
struct BreakdownSample {
  TimestampMs timestamp{0};
  std::array<PowerMw, kComponentCount> component_power_mw{};
  [[nodiscard]] PowerMw total() const {
    double sum = 0.0;
    for (double p : component_power_mw) sum += p;
    return sum;
  }
};

/// Computes per-component power series and aggregates.
class PowerBreakdown {
 public:
  explicit PowerBreakdown(PowerModel model);

  /// Per-component power of `pid` sampled every `period_ms` over
  /// [begin, end); partial trailing window dropped.
  [[nodiscard]] std::vector<BreakdownSample> series(
      const UtilizationTimeline& timeline, Pid pid, TimestampMs begin,
      TimestampMs end, DurationMs period_ms) const;

  /// Average per-component power of `pid` over the whole window.
  [[nodiscard]] BreakdownSample average(const UtilizationTimeline& timeline,
                                        Pid pid, TimestampMs begin,
                                        TimestampMs end) const;

  /// The component with the highest average power in `sample`.
  [[nodiscard]] static Component dominant_component(
      const BreakdownSample& sample);

 private:
  PowerModel model_;
};

}  // namespace edx::power
