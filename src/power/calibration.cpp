#include "power/calibration.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "power/power_model.h"

namespace edx::power {

namespace {

constexpr std::size_t kUnknowns = kComponentCount + 1;  // coefficients + idle

/// Solves the symmetric positive-definite system A*x = b in place via
/// Gaussian elimination with partial pivoting.  A is kUnknowns^2.
std::vector<double> solve(std::vector<std::vector<double>> a,
                          std::vector<double> b) {
  const std::size_t n = b.size();
  for (std::size_t column = 0; column < n; ++column) {
    // Pivot.
    std::size_t pivot = column;
    for (std::size_t row = column + 1; row < n; ++row) {
      if (std::abs(a[row][column]) > std::abs(a[pivot][column])) pivot = row;
    }
    if (std::abs(a[pivot][column]) < 1e-9) {
      throw AnalysisError(
          "fit_power_model: singular system — some component is never "
          "exercised by the training samples");
    }
    std::swap(a[column], a[pivot]);
    std::swap(b[column], b[pivot]);
    // Eliminate.
    for (std::size_t row = column + 1; row < n; ++row) {
      const double factor = a[row][column] / a[column][column];
      for (std::size_t k = column; k < n; ++k) {
        a[row][k] -= factor * a[column][k];
      }
      b[row] -= factor * b[column];
    }
  }
  std::vector<double> x(n, 0.0);
  for (std::size_t row = n; row-- > 0;) {
    double accum = b[row];
    for (std::size_t k = row + 1; k < n; ++k) accum -= a[row][k] * x[k];
    x[row] = accum / a[row][row];
  }
  return x;
}

/// Design-matrix row: [util_0 .. util_6, 1].
std::array<double, kUnknowns> features(const CalibrationSample& sample) {
  std::array<double, kUnknowns> row{};
  for (Component component : kAllComponents) {
    row[static_cast<std::size_t>(component)] =
        sample.utilization.get(component);
  }
  row[kComponentCount] = 1.0;  // idle intercept
  return row;
}

}  // namespace

CalibrationResult fit_power_model(
    const std::string& device_name,
    const std::vector<CalibrationSample>& samples) {
  require(samples.size() > kUnknowns,
          "fit_power_model: need more samples than unknowns");

  // Normal equations: (X^T X) beta = X^T y.
  std::vector<std::vector<double>> xtx(kUnknowns,
                                       std::vector<double>(kUnknowns, 0.0));
  std::vector<double> xty(kUnknowns, 0.0);
  for (const CalibrationSample& sample : samples) {
    const auto row = features(sample);
    for (std::size_t i = 0; i < kUnknowns; ++i) {
      for (std::size_t j = 0; j < kUnknowns; ++j) {
        xtx[i][j] += row[i] * row[j];
      }
      xty[i] += row[i] * sample.measured_phone_power_mw;
    }
  }
  std::vector<double> beta = solve(std::move(xtx), std::move(xty));

  // Physicality: power coefficients cannot be negative.
  std::array<double, kComponentCount> coefficients{};
  for (std::size_t i = 0; i < kComponentCount; ++i) {
    coefficients[i] = std::max(0.0, beta[i]);
  }
  const double idle = std::max(0.0, beta[kComponentCount]);

  CalibrationResult result{
      Device(device_name, idle, coefficients), 0.0, 0.0, samples.size()};

  const PowerModel model(result.device);
  double squared_total = 0.0;
  for (const CalibrationSample& sample : samples) {
    const double predicted = model.phone_power(sample.utilization);
    const double error = predicted - sample.measured_phone_power_mw;
    squared_total += error * error;
    result.max_abs_error_mw = std::max(result.max_abs_error_mw,
                                       std::abs(error));
  }
  result.rms_error_mw =
      std::sqrt(squared_total / static_cast<double>(samples.size()));
  return result;
}

std::vector<CalibrationSample> generate_training_samples(
    const Device& truth, std::size_t levels_per_component, double noise_stddev,
    std::uint64_t seed) {
  require(levels_per_component >= 2,
          "generate_training_samples: need at least 2 levels");
  Rng rng(seed);
  const PowerModel model(truth);
  std::vector<CalibrationSample> samples;

  const auto push = [&](const UtilizationVector& utilization) {
    CalibrationSample sample;
    sample.utilization = utilization;
    double power = model.phone_power(utilization);
    if (noise_stddev > 0.0) {
      power *= std::max(0.0, rng.normal(1.0, noise_stddev));
    }
    sample.measured_phone_power_mw = power;
    samples.push_back(sample);
  };

  // All-idle block (anchors the intercept).
  for (std::size_t i = 0; i < levels_per_component; ++i) {
    push(UtilizationVector{});
  }
  // Per-component sweeps, plus a light random co-activation so coefficients
  // separate even under correlated noise.
  for (Component component : kAllComponents) {
    for (std::size_t level = 1; level <= levels_per_component; ++level) {
      UtilizationVector utilization;
      utilization.set(component, static_cast<double>(level) /
                                     static_cast<double>(levels_per_component));
      if (rng.bernoulli(0.5)) {
        const auto other = static_cast<Component>(
            rng.uniform_int(0, static_cast<std::int64_t>(kComponentCount) - 1));
        if (other != component) utilization.set(other, rng.uniform(0.1, 0.4));
      }
      push(utilization);
    }
  }
  return samples;
}

}  // namespace edx::power
