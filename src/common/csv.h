// Minimal CSV writer; benches use it to dump figure series for external
// plotting alongside the ASCII rendering.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace edx {

/// Accumulates rows and writes RFC-4180-style CSV (quotes fields containing
/// commas, quotes, or newlines).
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> headers);

  /// Appends a row; throws InvalidArgument on column-count mismatch.
  void add_row(std::vector<std::string> cells);

  [[nodiscard]] std::string to_string() const;

  /// Writes to a file; throws Error on I/O failure.
  void write_file(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace edx
