// Fundamental value types shared across all EnergyDx modules.
//
// The simulation runs on a millisecond-resolution virtual clock; power is
// carried in milliwatts, energy in millijoules.  Plain aliases (rather than
// wrapper classes) keep arithmetic ergonomic, while the distinct names keep
// interfaces self-describing (Core Guidelines I.1/I.4).
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace edx {

/// Virtual time since boot of the simulated device, in milliseconds.
using TimestampMs = std::int64_t;

/// Length of a virtual time interval, in milliseconds.
using DurationMs = std::int64_t;

/// Instantaneous power draw, in milliwatts.
using PowerMw = double;

/// Energy, in millijoules (mW * s == mJ when durations are in seconds).
using EnergyMj = double;

/// Fractional utilization of a hardware component, clamped to [0, 1].
using Utilization = double;

/// Process id of a simulated app; 0 is reserved for "the system".
using Pid = std::int32_t;

/// Identifies a user (and therefore a trace pair) in a collection run.
using UserId = std::int32_t;

inline constexpr TimestampMs kNoTimestamp =
    std::numeric_limits<TimestampMs>::min();

/// A half-open time interval [begin, end) on the virtual clock.
struct TimeInterval {
  TimestampMs begin{0};
  TimestampMs end{0};

  [[nodiscard]] DurationMs length() const { return end - begin; }
  [[nodiscard]] bool empty() const { return end <= begin; }
  [[nodiscard]] bool contains(TimestampMs t) const {
    return t >= begin && t < end;
  }
  /// Length of the overlap between this interval and [b, e).
  [[nodiscard]] DurationMs overlap(TimestampMs b, TimestampMs e) const {
    const TimestampMs lo = begin > b ? begin : b;
    const TimestampMs hi = end < e ? end : e;
    return hi > lo ? hi - lo : 0;
  }

  friend bool operator==(const TimeInterval&, const TimeInterval&) = default;
};

/// Fully-qualified name of an instrumented callback, e.g.
/// "Lcom/fsck/k9/activity/MessageList;.onResume".  Used at the system
/// boundaries (trace files, reports); inside the pipeline every event is
/// identified by its interned EventId instead (common/event_symbols.h).
using EventName = std::string;

/// Dense interned id of an event name.  Ids are assigned in first-seen
/// order by the process-wide EventSymbolTable, so a collection ingested in
/// a fixed order always yields the same ids; the analysis steps index flat
/// vectors by EventId instead of hashing or comparing strings.
using EventId = std::uint32_t;

/// Sentinel for "no such event" (EventSymbolTable::find misses, and the
/// default id of a not-yet-interned record).
inline constexpr EventId kInvalidEventId =
    std::numeric_limits<EventId>::max();

}  // namespace edx
