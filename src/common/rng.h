// Deterministic pseudo-random number generation.
//
// Every stochastic element of the simulation (user scripts, power noise,
// trigger decisions) draws from an Rng seeded explicitly by the experiment
// driver, so every table and figure in the paper reproduction is exactly
// repeatable.  The generator is xoshiro256** seeded via splitmix64 — fast,
// well-distributed, and trivially forkable per subsystem.
#pragma once

#include <cstdint>
#include <vector>

namespace edx {

/// splitmix64 step; used for seeding and for cheap stateless hashing.
std::uint64_t splitmix64(std::uint64_t& state);

/// Deterministic RNG (xoshiro256**).  Copyable; copies diverge independently.
class Rng {
 public:
  /// Seeds the four 64-bit words of state from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit output.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).  Requires lo <= hi.
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// True with probability p (clamped to [0, 1]).
  bool bernoulli(double p);

  /// Standard normal via Box–Muller (cached second value).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Exponential with the given mean (> 0).
  double exponential(double mean);

  /// Picks an index in [0, weights.size()) with probability proportional to
  /// weights[i].  Requires a non-empty vector with a positive total.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Derives an independent child generator; successive calls yield
  /// different children.  Used to give each simulated user its own stream.
  Rng fork();

 private:
  std::uint64_t s_[4];
  double cached_normal_{0.0};
  bool has_cached_normal_{false};
  std::uint64_t fork_counter_{0};
};

}  // namespace edx
