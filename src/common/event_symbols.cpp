#include "common/event_symbols.h"

#include <mutex>

#include "common/error.h"

namespace edx {

EventId EventSymbolTable::intern(std::string_view name) {
  {
    // Hit path: the overwhelmingly common case once a collection's
    // vocabulary has been seen, and the only case on the parse hot path
    // after the first few lines.
    std::shared_lock lock(mutex_);
    const auto it = ids_.find(name);
    if (it != ids_.end()) return it->second;
  }
  std::unique_lock lock(mutex_);
  // Re-check: another thread may have interned `name` between the locks.
  const auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  const EventId id = static_cast<EventId>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(std::string_view(names_.back()), id);
  return id;
}

EventId EventSymbolTable::find(std::string_view name) const {
  std::shared_lock lock(mutex_);
  const auto it = ids_.find(name);
  return it == ids_.end() ? kInvalidEventId : it->second;
}

const EventName& EventSymbolTable::name(EventId id) const {
  std::shared_lock lock(mutex_);
  require(id < names_.size(),
          "EventSymbolTable::name: unknown EventId " + std::to_string(id));
  // Safe to hand out past the unlock: deque elements are never moved or
  // destroyed while the table lives.
  return names_[id];
}

std::size_t EventSymbolTable::size() const {
  std::shared_lock lock(mutex_);
  return names_.size();
}

EventSymbolTable& EventSymbolTable::global() {
  static EventSymbolTable table;
  return table;
}

EventId intern_event(std::string_view name) {
  return EventSymbolTable::global().intern(name);
}

EventId find_event(std::string_view name) {
  return EventSymbolTable::global().find(name);
}

const EventName& event_name(EventId id) {
  return EventSymbolTable::global().name(id);
}

}  // namespace edx
