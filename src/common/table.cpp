#include "common/table.h"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "common/error.h"

namespace edx {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)), aligns_(headers_.size(), Align::kLeft) {
  require(!headers_.empty(), "TextTable: need at least one column");
}

void TextTable::set_align(std::size_t index, Align align) {
  require(index < aligns_.size(), "TextTable::set_align: column out of range");
  aligns_[index] = align;
}

void TextTable::add_row(std::vector<std::string> cells) {
  require(cells.size() == headers_.size(),
          "TextTable::add_row: cell count must match header count");
  rows_.push_back(std::move(cells));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }

  const auto render_cell = [&](const std::string& text, std::size_t column) {
    const std::size_t pad = widths[column] - text.size();
    if (aligns_[column] == Align::kRight) {
      return std::string(pad, ' ') + text;
    }
    return text + std::string(pad, ' ');
  };
  const auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      line += " " + render_cell(cells[c], c) + " |";
    }
    return line;
  };

  std::ostringstream out;
  out << render_row(headers_) << '\n';
  std::string rule = "|";
  for (std::size_t width : widths) rule += std::string(width + 2, '-') + "|";
  out << rule << '\n';
  for (const auto& row : rows_) out << render_row(row) << '\n';
  return out.str();
}

void TextTable::print(std::ostream& out) const { out << to_string(); }

std::string ascii_bar(double value, double full_scale, int width) {
  require(width > 0, "ascii_bar: width must be positive");
  if (full_scale <= 0.0 || value <= 0.0) return "";
  const double fraction = std::min(1.0, value / full_scale);
  const int count = static_cast<int>(fraction * width + 0.5);
  return std::string(static_cast<std::size_t>(count), '#');
}

}  // namespace edx
