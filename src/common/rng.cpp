#include "common/rng.h"

#include <cmath>
#include <numbers>

#include "common/error.h"

namespace edx {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // xoshiro's all-zero state is absorbing; splitmix64 cannot produce four
  // zero outputs from any seed, so no further check is needed.
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  require(lo <= hi, "Rng::uniform: lo must be <= hi");
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  require(lo <= hi, "Rng::uniform_int: lo must be <= hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % span);
  std::uint64_t value = next_u64();
  while (value >= limit) value = next_u64();
  return lo + static_cast<std::int64_t>(value % span);
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::exponential(double mean) {
  require(mean > 0.0, "Rng::exponential: mean must be positive");
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -mean * std::log(u);
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  require(!weights.empty(), "Rng::weighted_index: weights must be non-empty");
  double total = 0.0;
  for (double w : weights) {
    require(w >= 0.0, "Rng::weighted_index: weights must be non-negative");
    total += w;
  }
  require(total > 0.0, "Rng::weighted_index: total weight must be positive");
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // floating-point edge: land on the last bucket
}

Rng Rng::fork() {
  // Mix the fork counter into fresh entropy drawn from this stream so that
  // children are independent of each other and of the parent's future output.
  std::uint64_t seed = next_u64() ^ (0xA02BDBF7BB3C0A7ULL * ++fork_counter_);
  return Rng(seed);
}

}  // namespace edx
