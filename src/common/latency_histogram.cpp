#include "common/latency_histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace edx::common {

namespace {

/// Buckets: values < 2^kSubBits map exactly (one value per bucket); a
/// value with most-significant bit m >= kSubBits keeps its top kSubBits
/// mantissa bits, discarding m - kSubBits low bits.  Index layout:
/// [0, 2^kSubBits) exact, then one 2^kSubBits-wide group per discarded
/// shift amount.
constexpr int kSubBits = LatencyHistogram::kSubBits;
constexpr std::size_t kSubCount = std::size_t{1} << kSubBits;
// Max shift for a 63-bit value (kMaxValue = 2^62): msb 62 -> shift 56;
// one spare group absorbs the clamp.
constexpr std::size_t kBucketCount = kSubCount * (64 - kSubBits);

}  // namespace

LatencyHistogram::LatencyHistogram() : counts_(kBucketCount, 0) {}

std::size_t LatencyHistogram::bucket_index(std::uint64_t value) {
  if (value < kSubCount) return static_cast<std::size_t>(value);
  const int msb = 63 - std::countl_zero(value);
  const int shift = msb - kSubBits;
  return (static_cast<std::size_t>(shift) + 1) * kSubCount +
         static_cast<std::size_t>((value >> shift) & (kSubCount - 1));
}

std::uint64_t LatencyHistogram::bucket_high(std::size_t index) {
  if (index < kSubCount) return index;
  const int shift = static_cast<int>(index / kSubCount) - 1;
  const std::uint64_t base =
      (kSubCount + (index & (kSubCount - 1))) << shift;
  return base + ((std::uint64_t{1} << shift) - 1);
}

void LatencyHistogram::record(std::uint64_t value) {
  value = std::min(value, kMaxValue);
  ++counts_[bucket_index(value)];
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void LatencyHistogram::record_corrected(std::uint64_t value,
                                        std::uint64_t expected_interval) {
  record(value);
  if (expected_interval == 0) return;
  for (std::uint64_t missed = value;
       missed >= 2 * expected_interval;) {  // next backfill still >= interval
    missed -= expected_interval;
    record(missed);
  }
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (std::size_t i = 0; i < kBucketCount; ++i) counts_[i] += other.counts_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

std::uint64_t LatencyHistogram::value_at_percentile(double p) const {
  if (count_ == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  const double exact_rank = p / 100.0 * static_cast<double>(count_);
  const std::uint64_t target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(exact_rank)));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    cumulative += counts_[i];
    if (cumulative >= target) return std::min(bucket_high(i), max_);
  }
  return max_;  // unreachable: cumulative reaches count_
}

double LatencyHistogram::mean() const {
  return count_ == 0
             ? 0.0
             : static_cast<double>(sum_) / static_cast<double>(count_);
}

}  // namespace edx::common
