// In-tree LZ4-class block compression for the durable store's WAL frames.
//
// The store's bundle records are dominated by utilization samples whose
// byte patterns repeat across a trace (fixed cadence, recurring component
// mixes), so a byte-oriented dictionary coder recovers most of the easy
// redundancy without pulling in an external dependency.  The format is a
// plain LZ77 token stream in the LZ4 style:
//
//   sequence := token                        1 byte
//               literal-length extension     0+ bytes (255-runs)
//               literals                     literal_length bytes
//               match offset                 u16le, 1..65535 back-distance
//               match-length extension       0+ bytes (255-runs)
//
//   token = (literal_length capped at 15) << 4 | (match_length - 4,
//           capped at 15); a nibble of 15 continues into extension bytes,
//           each adding 0..255 (a byte below 255 terminates the run).
//   The final sequence carries literals only — the stream simply ends
//   after them (no offset / match fields).
//
// Matches are at least 4 bytes and reference at most 65535 bytes back.
// block_compress is greedy with a small hash table over 4-byte windows:
// compression ratio is modest by design; the store only keeps a
// compressed frame when it actually came out smaller, and integrity is
// the codec layer's job (the CRC travels over the *uncompressed* record),
// so this coder optimizes for simplicity and decode safety.
//
// block_decompress never crashes on hostile input: every length, offset
// and copy is bounds-checked against both the input and the `max_size`
// output cap, and any violation returns false with `out` unspecified.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

namespace edx::common {

/// Compresses `src` into a self-delimiting token stream.  Always succeeds;
/// incompressible input grows by at most ~1 byte per 255 input bytes plus
/// a small constant.  Inputs of 4 GiB or larger are not supported (the
/// store frames are megabytes at most) and are returned as one literal run.
[[nodiscard]] std::string block_compress(std::string_view src);

/// Decompresses a block_compress() stream into `out` (cleared first).
/// Returns false — without crashing, reading out of bounds, or producing
/// more than `max_size` bytes — on any malformed input: truncated lengths,
/// offsets past the start of output, literal runs past the end of input,
/// or output exceeding `max_size`.
[[nodiscard]] bool block_decompress(std::string_view src, std::string& out,
                                    std::size_t max_size);

}  // namespace edx::common
