// CRC32C (Castagnoli) checksums for the durable trace store.
//
// Every record the store writes — WAL frames, snapshot payloads, encoded
// trace bundles — carries a CRC32C so recovery can distinguish a clean
// end-of-log from a torn or corrupted tail.  CRC32C (polynomial 0x1EDC6F41,
// reflected) is the variant hardened storage systems standardize on
// (iSCSI, ext4, LevelDB/RocksDB log formats), which keeps our on-disk
// format checkable by stock tooling.
//
// Two implementations behind one entry point: on x86-64 machines that
// advertise SSE4.2 at runtime, the CRC32 instruction folds eight bytes per
// cycle-ish step; everywhere else (and as the reference the hardware path
// is tested against) portable software slicing-by-8 — eight 256-entry
// tables built once at first use, processing eight input bytes per step.
// Dispatch is a one-time __builtin_cpu_supports check, so the binary still
// runs on any build target.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace edx::common {

/// CRC32C of `data`, continuing from `crc` (pass 0 to start a new
/// checksum).  Extending is associative with concatenation:
/// crc32c(crc32c(0, a), b) == crc32c(0, a + b).
std::uint32_t crc32c(std::uint32_t crc, const void* data, std::size_t size);

/// The table-driven software implementation, always available.  Same
/// contract as crc32c(); exposed so tests can cross-check the hardware
/// path against it on machines where the two differ in code path.
std::uint32_t crc32c_portable(std::uint32_t crc, const void* data,
                              std::size_t size);

/// One-shot CRC32C of a whole buffer.
inline std::uint32_t crc32c(std::string_view data) {
  return crc32c(0, data.data(), data.size());
}

}  // namespace edx::common
