// CRC32C (Castagnoli) checksums for the durable trace store.
//
// Every record the store writes — WAL frames, snapshot payloads, encoded
// trace bundles — carries a CRC32C so recovery can distinguish a clean
// end-of-log from a torn or corrupted tail.  CRC32C (polynomial 0x1EDC6F41,
// reflected) is the variant hardened storage systems standardize on
// (iSCSI, ext4, LevelDB/RocksDB log formats), which keeps our on-disk
// format checkable by stock tooling.
//
// The implementation is portable software slicing-by-8: eight 256-entry
// tables built once at first use, processing eight input bytes per step.
// No SSE4.2 dependency — the store must work on any build target.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace edx::common {

/// CRC32C of `data`, continuing from `crc` (pass 0 to start a new
/// checksum).  Extending is associative with concatenation:
/// crc32c(crc32c(0, a), b) == crc32c(0, a + b).
std::uint32_t crc32c(std::uint32_t crc, const void* data, std::size_t size);

/// One-shot CRC32C of a whole buffer.
inline std::uint32_t crc32c(std::string_view data) {
  return crc32c(0, data.data(), data.size());
}

}  // namespace edx::common
