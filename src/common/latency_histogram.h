// HDR-style log-bucketed latency histogram.
//
// The loadgen driver (src/loadgen/) and the serve-mode benches need
// p50..p99.9 over millions of per-op latencies without keeping every
// sample.  A LatencyHistogram buckets non-negative integer values (the
// caller picks the unit — microseconds for latencies, arrivals for
// snapshot staleness) into log-linear buckets: exact below 2^kSubBits,
// then 2^kSubBits sub-buckets per power of two, so every bucket spans at
// most value/2^kSubBits and any reported percentile is within ~1/64
// (1.6%) relative error of the exact order statistic (the bound
// tests/common/latency_histogram_test.cpp pins against a sort).
//
// Concurrency model: the type itself is plain data and NOT internally
// synchronized.  Writers record into a private per-thread shard — no
// locks, no atomics, no false sharing on the hot path — and the owner
// merge()s the shards afterwards.  merge is commutative and associative
// (bucket counts add), so any merge tree yields identical percentiles.
//
// Coordinated omission: a closed-loop driver that measures latency from
// the moment it *sent* a request under-reports queueing delay — while
// one slow op is in flight, the ops that *should* have started go
// unmeasured.  Two correctives, matching HdrHistogram practice:
//   - open-loop drivers measure from the op's *intended* start time (the
//     arrival-process timestamp), which folds the backlog into every
//     sample; that is the loadgen driver's open-loop mode, no histogram
//     support needed;
//   - record_corrected(value, expected_interval) additionally backfills
//     the samples a stalled closed loop swallowed: it records `value`,
//     then value - interval, value - 2*interval, ... while the remainder
//     still exceeds the expected inter-op interval.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace edx::common {

class LatencyHistogram {
 public:
  /// Sub-bucket resolution: 2^kSubBits buckets per octave => worst-case
  /// relative bucket width 2^-kSubBits (~1.6%).
  static constexpr int kSubBits = 6;

  LatencyHistogram();

  /// Adds one sample.  Values saturate at kMaxValue (2^62), which still
  /// buckets — no sample is ever dropped.
  void record(std::uint64_t value);

  /// record(value), then backfill the closed-loop samples a stall
  /// swallowed: value - interval, value - 2*interval, ... while the
  /// remainder is >= interval.  interval == 0 degenerates to record().
  void record_corrected(std::uint64_t value, std::uint64_t expected_interval);

  /// Adds every bucket of `other` into this histogram.  Commutative and
  /// associative: any merge order produces identical state.
  void merge(const LatencyHistogram& other);

  /// The value at percentile `p` in [0, 100]: the upper bound of the
  /// bucket holding the order statistic of rank ceil(p/100 * count),
  /// clamped to the exact observed maximum (so p=100 is exact).  0 when
  /// empty.
  [[nodiscard]] std::uint64_t value_at_percentile(double p) const;

  [[nodiscard]] std::uint64_t count() const { return count_; }
  /// Exact observed extremes and mean (sum tracked exactly).
  [[nodiscard]] std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  [[nodiscard]] std::uint64_t max() const { return max_; }
  [[nodiscard]] double mean() const;

  /// Largest recordable value; larger samples clamp here.
  static constexpr std::uint64_t kMaxValue = std::uint64_t{1} << 62;

 private:
  static std::size_t bucket_index(std::uint64_t value);
  /// Largest value mapping to bucket `index` (the reported
  /// representative — conservative for SLO checks).
  static std::uint64_t bucket_high(std::size_t index);

  std::vector<std::uint64_t> counts_;
  std::uint64_t count_{0};
  std::uint64_t sum_{0};
  std::uint64_t min_{~std::uint64_t{0}};
  std::uint64_t max_{0};
};

}  // namespace edx::common
