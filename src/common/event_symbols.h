// Event-name interning: the dense EventId symbol table.
//
// A server ingesting traces from millions of users sees the same few
// hundred callback names ("Lcom/fsck/k9/service/MailService;.onDestroy")
// repeated millions of times.  Interning each distinct name once into a
// dense uint32 EventId turns every downstream keying operation — Step 2's
// per-event distributions, Step 3's base-power lookups, Step 5's impact
// accumulators — into a flat vector index instead of a string hash or an
// O(len) tree compare, and shrinks a PoweredEvent to a few plain words.
//
// Ids are assigned in first-seen order: ingesting the same inputs in the
// same order always produces the same ids (the analysis itself never
// depends on id order — names are resolved back to strings only at the
// report boundary, so reports are byte-identical either way).  The table
// is append-only and thread-safe: interning takes a shared lock on the hit
// path and an exclusive lock only for a genuinely new name, and resolved
// name references stay valid forever (storage never moves or shrinks), so
// worker threads can resolve ids without holding any lock across use.
#pragma once

#include <deque>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/types.h"

namespace edx {

/// Append-only bidirectional map between event names and dense EventIds.
class EventSymbolTable {
 public:
  EventSymbolTable() = default;
  EventSymbolTable(const EventSymbolTable&) = delete;
  EventSymbolTable& operator=(const EventSymbolTable&) = delete;

  /// Id of `name`, interning it first if unseen.  Ids are dense, starting
  /// at 0, in first-seen order.
  EventId intern(std::string_view name);

  /// Id of `name` if already interned, kInvalidEventId otherwise.  Never
  /// extends the table.
  [[nodiscard]] EventId find(std::string_view name) const;

  /// The name behind `id`.  The reference stays valid for the lifetime of
  /// the table (entries are never moved or removed).  Throws
  /// InvalidArgument for ids the table never handed out.
  [[nodiscard]] const EventName& name(EventId id) const;

  /// Number of distinct names interned so far.  Monotone; every id handed
  /// out so far is < size().
  [[nodiscard]] std::size_t size() const;

  /// The process-wide table all traces and pipeline stages share.
  static EventSymbolTable& global();

 private:
  mutable std::shared_mutex mutex_;
  /// id -> name.  A deque never relocates existing elements, so both the
  /// string_view keys of ids_ and references returned by name() survive
  /// growth.
  std::deque<EventName> names_;
  std::unordered_map<std::string_view, EventId> ids_;
};

/// Shorthands on the global table.
EventId intern_event(std::string_view name);
EventId find_event(std::string_view name);
const EventName& event_name(EventId id);

}  // namespace edx
