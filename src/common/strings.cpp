#include "common/strings.h"

#include <cctype>
#include <charconv>
#include <cstdio>

#include "common/error.h"

namespace edx::strings {

std::vector<std::string> split(std::string_view text, char delimiter) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      fields.emplace_back(text.substr(start));
      return fields;
    }
    fields.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return std::string(text.substr(begin, end - begin));
}

std::string_view trim_view(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string_view next_line(std::string_view& text) {
  const std::size_t pos = text.find('\n');
  if (pos == std::string_view::npos) {
    const std::string_view line = text;
    text = {};
    return line;
  }
  const std::string_view line = text.substr(0, pos);
  text.remove_prefix(pos + 1);
  return line;
}

namespace {

template <typename T>
bool consume_number(std::string_view& text, T& value) {
  std::size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  T parsed{};
  const auto [ptr, ec] = std::from_chars(text.data() + begin,
                                         text.data() + text.size(), parsed);
  if (ec != std::errc()) return false;
  value = parsed;
  text.remove_prefix(static_cast<std::size_t>(ptr - text.data()));
  return true;
}

}  // namespace

bool consume_int64(std::string_view& text, std::int64_t& value) {
  return consume_number(text, value);
}

bool consume_double(std::string_view& text, double& value) {
  return consume_number(text, value);
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string result;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) result.append(separator);
    result.append(parts[i]);
  }
  return result;
}

std::string replace_all(std::string_view text, std::string_view from,
                        std::string_view to) {
  require(!from.empty(), "strings::replace_all: 'from' must be non-empty");
  std::string result;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(from, start);
    if (pos == std::string_view::npos) {
      result.append(text.substr(start));
      return result;
    }
    result.append(text.substr(start, pos - start));
    result.append(to);
    start = pos + from.size();
  }
}

std::string format_double(double value, int decimals) {
  require(decimals >= 0 && decimals <= 17,
          "strings::format_double: decimals out of range");
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  return buffer;
}

std::string human_count(long long value) {
  if (value >= 1'000'000'000) {
    const double billions = static_cast<double>(value) / 1e9;
    return (billions == static_cast<long long>(billions)
                ? std::to_string(static_cast<long long>(billions))
                : format_double(billions, 1)) +
           "B";
  }
  if (value >= 1'000'000) {
    const double millions = static_cast<double>(value) / 1e6;
    return (millions == static_cast<long long>(millions)
                ? std::to_string(static_cast<long long>(millions))
                : format_double(millions, 1)) +
           "M";
  }
  if (value >= 1'000) {
    const double thousands = static_cast<double>(value) / 1e3;
    return (thousands == static_cast<long long>(thousands)
                ? std::to_string(static_cast<long long>(thousands))
                : format_double(thousands, 1)) +
           "K";
  }
  return std::to_string(value);
}

}  // namespace edx::strings
