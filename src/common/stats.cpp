#include "common/stats.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>

#include "common/error.h"

namespace edx::stats {

double mean(std::span<const double> values) {
  require(!values.empty(), "stats::mean: empty input");
  double total = 0.0;
  for (double v : values) total += v;
  return total / static_cast<double>(values.size());
}

double variance(std::span<const double> values) {
  require(values.size() >= 2, "stats::variance: need at least 2 values");
  const double m = mean(values);
  double accum = 0.0;
  for (double v : values) accum += (v - m) * (v - m);
  return accum / static_cast<double>(values.size() - 1);
}

double stddev(std::span<const double> values) {
  return std::sqrt(variance(values));
}

double min(std::span<const double> values) {
  require(!values.empty(), "stats::min: empty input");
  return *std::min_element(values.begin(), values.end());
}

double max(std::span<const double> values) {
  require(!values.empty(), "stats::max: empty input");
  return *std::max_element(values.begin(), values.end());
}

double percentile(std::span<const double> values, double p) {
  require(!values.empty(), "stats::percentile: empty input");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  return percentile_sorted(sorted, p);
}

double percentile_sorted(std::span<const double> sorted_values, double p) {
  require(!sorted_values.empty(), "stats::percentile: empty input");
  require(p >= 0.0 && p <= 100.0, "stats::percentile: p must be in [0,100]");
  if (sorted_values.size() == 1) return sorted_values.front();
  // R-7 / numpy 'linear': h = (n-1) * p/100, interpolate between floor/ceil.
  const double h = static_cast<double>(sorted_values.size() - 1) * (p / 100.0);
  const auto lo = static_cast<std::size_t>(std::floor(h));
  const auto hi = static_cast<std::size_t>(std::ceil(h));
  const double fraction = h - static_cast<double>(lo);
  return sorted_values[lo] +
         fraction * (sorted_values[hi] - sorted_values[lo]);
}

double percentile_select(std::span<const double> values, double p) {
  require(!values.empty(), "stats::percentile: empty input");
  require(p >= 0.0 && p <= 100.0, "stats::percentile: p must be in [0,100]");
  if (values.size() == 1) return values.front();
  // Same R-7 rank arithmetic as percentile_sorted, but the two order
  // statistics come from one nth_element pass: after selecting rank `lo`,
  // everything right of it is >= sorted[lo], so sorted[hi] (hi <= lo + 1)
  // is the minimum of that suffix.  Order statistics are multiset values,
  // so the interpolated result is bit-identical to the sorted path.
  const double h = static_cast<double>(values.size() - 1) * (p / 100.0);
  const auto lo = static_cast<std::size_t>(std::floor(h));
  const double fraction = h - static_cast<double>(lo);
  std::vector<double> scratch(values.begin(), values.end());
  const auto lo_it = scratch.begin() + static_cast<std::ptrdiff_t>(lo);
  std::nth_element(scratch.begin(), lo_it, scratch.end());
  const double at_lo = *lo_it;
  if (fraction == 0.0) return at_lo;
  const double at_hi = *std::min_element(lo_it + 1, scratch.end());
  return at_lo + fraction * (at_hi - at_lo);
}

double median(std::span<const double> values) {
  return percentile(values, 50.0);
}

Quartiles quartiles(std::span<const double> values) {
  // Sort once and interpolate three times (percentile() would copy and
  // sort the input per call).
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  return quartiles_sorted(sorted);
}

Quartiles quartiles_sorted(std::span<const double> sorted_values) {
  Quartiles q;
  q.q1 = percentile_sorted(sorted_values, 25.0);
  q.q2 = percentile_sorted(sorted_values, 50.0);
  q.q3 = percentile_sorted(sorted_values, 75.0);
  return q;
}

namespace {

/// Order-preserving key image of a double: key(a) < key(b) iff a < b for
/// every non-NaN double (the IEEE total order on the sign-magnitude bit
/// pattern — positives get the sign bit set, negatives are complemented).
/// Exactly invertible, so a selected key converts back to the original
/// double bit for bit.
inline std::uint64_t order_key(double value) {
  std::uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  constexpr std::uint64_t kSign = 0x8000'0000'0000'0000ull;
  return (bits & kSign) != 0 ? ~bits : bits | kSign;
}

inline double key_value(std::uint64_t key) {
  constexpr std::uint64_t kSign = 0x8000'0000'0000'0000ull;
  const std::uint64_t bits = (key & kSign) != 0 ? key & ~kSign : ~key;
  double value;
  std::memcpy(&value, &bits, sizeof(bits));
  return value;
}

/// One order statistic to resolve: the `rank`-th smallest key (0-based,
/// relative to the pool currently being refined) goes to out[slot].
struct SelectTarget {
  std::size_t rank;
  std::size_t slot;
};

/// Per-thread refinement arenas, one per radix level, so repeated
/// selections (one per trace per snapshot) allocate nothing once warm.
std::array<std::vector<std::uint64_t>, 9>& select_pools() {
  thread_local std::array<std::vector<std::uint64_t>, 9> pools;
  return pools;
}

/// Resolves every target's order statistic within `pool` by MSB-first
/// radix refinement: one branch-free counting pass per level, then each
/// target group descends into its digit's (much smaller) bucket.  The
/// level's digit position comes from the pool's min/max keys — the byte
/// holding the highest bit of min^max — so shared prefixes (one
/// sign/exponent cluster, the common shape for same-magnitude amplitudes)
/// are skipped wholesale and every histogram is guaranteed to split the
/// pool.  Unlike comparison selection (nth_element), the per-element work
/// is a fixed shift/increment with no data-dependent branches, so the
/// cost per element is flat in both the input size and the data —
/// introselect's partition branches mispredict on real amplitude data the
/// moment the trace outgrows what the branch predictor memorizes across
/// benchmark iterations (DESIGN.md §12).  Each level consumes one byte of
/// key, so the recursion is at most 8 levels deep and O(n) per level over
/// geometrically shrinking pools.
void select_keys(std::vector<std::uint64_t>& pool, std::uint64_t min_key,
                 std::uint64_t max_key, int depth,
                 std::vector<SelectTarget>& targets, std::uint64_t* out,
                 std::size_t target_begin, std::size_t target_end) {
  if (min_key == max_key) {
    for (std::size_t t = target_begin; t < target_end; ++t) {
      out[targets[t].slot] = min_key;
    }
    return;
  }
  if (pool.size() <= 32) {
    std::sort(pool.begin(), pool.end());
    for (std::size_t t = target_begin; t < target_end; ++t) {
      out[targets[t].slot] = pool[targets[t].rank];
    }
    return;
  }
  const int shift = 8 * ((63 - std::countl_zero(min_key ^ max_key)) / 8);
  std::uint32_t hist[256] = {};
  for (const std::uint64_t key : pool) ++hist[(key >> shift) & 0xFFu];
  // Targets are rank-ascending, so each digit's targets are contiguous;
  // rebase their ranks into the bucket and descend per digit group.
  std::size_t before = 0;  // keys in buckets below the current digit
  std::size_t t = target_begin;
  for (std::size_t digit = 0; digit < 256 && t < target_end; ++digit) {
    if (hist[digit] == 0) continue;
    const std::size_t group_begin = t;
    while (t < target_end && targets[t].rank < before + hist[digit]) {
      targets[t].rank -= before;
      ++t;
    }
    if (t > group_begin) {
      std::vector<std::uint64_t>& bucket = select_pools()[depth];
      bucket.clear();
      std::uint64_t bucket_min = ~std::uint64_t{0};
      std::uint64_t bucket_max = 0;
      for (const std::uint64_t key : pool) {
        if (((key >> shift) & 0xFFu) == digit) {
          bucket.push_back(key);
          bucket_min = std::min(bucket_min, key);
          bucket_max = std::max(bucket_max, key);
        }
      }
      select_keys(bucket, bucket_min, bucket_max, depth + 1, targets, out,
                  group_begin, t);
    }
    before += hist[digit];
  }
}

}  // namespace

Quartiles quartiles_select(std::span<const double> values) {
  require(!values.empty(), "stats::quartiles: empty input");
  const std::size_t n = values.size();
  if (n == 1) return {values.front(), values.front(), values.front()};
  // Below this size the radix machinery's fixed costs (key transform,
  // 1 KiB histogram clears, per-target bucket extraction) exceed simple
  // comparison selection, and an input this small cannot mispredict its
  // way to superlinear cost.  A full sort resolves every rank at once
  // (measured faster at this size than chained per-rank nth_element,
  // whose repeated partitions revisit the suffix once per distinct
  // rank), and then quartiles_sorted *is* the reference path — no rank
  // arithmetic of our own, so not even setup cost.  Either path resolves
  // the same multiset values, so the returned bits are identical and the
  // crossover is purely a tuning constant.
  constexpr std::size_t kRadixMinN = 256;
  if (n < kRadixMinN) {
    thread_local std::vector<double> buf;
    buf.resize(n);
    std::memcpy(buf.data(), values.data(), n * sizeof(double));
    std::sort(buf.begin(), buf.end());
    return quartiles_sorted(buf);
  }
  // The six order statistics behind Q1/Q2/Q3 under R-7 rank arithmetic
  // (floor and ceil of each h; ceil == floor when h is integral),
  // deduplicated into ascending distinct ranks.
  double h[3];
  std::size_t need[6];
  for (int k = 0; k < 3; ++k) {
    h[k] = static_cast<double>(n - 1) * (static_cast<double>(k + 1) * 0.25);
    need[2 * k] = static_cast<std::size_t>(std::floor(h[k]));
    need[2 * k + 1] = static_cast<std::size_t>(std::ceil(h[k]));
  }
  std::size_t uniq[6];
  std::copy(need, need + 6, uniq);
  std::sort(uniq, uniq + 6);
  std::size_t* uniq_end = std::unique(uniq, uniq + 6);
  const auto num_ranks = static_cast<std::size_t>(uniq_end - uniq);

  double at[6];
  // One radix multi-select resolves every distinct rank: each target
  // group descends into its digit's bucket, sharing counting passes.
  std::vector<SelectTarget> targets;
  targets.reserve(num_ranks);
  for (std::size_t t = 0; t < num_ranks; ++t) targets.push_back({uniq[t], t});
  std::uint64_t resolved[6];
  std::vector<std::uint64_t>& pool = select_pools()[8];
  pool.resize(n);
  std::uint64_t min_key = ~std::uint64_t{0};
  std::uint64_t max_key = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t key = order_key(values[i]);
    pool[i] = key;
    min_key = std::min(min_key, key);
    max_key = std::max(max_key, key);
  }
  select_keys(pool, min_key, max_key, 0, targets, resolved, 0, targets.size());
  for (std::size_t s = 0; s < 6; ++s) {
    const std::size_t* rank = std::find(uniq, uniq_end, need[s]);
    at[s] = key_value(resolved[static_cast<std::size_t>(rank - uniq)]);
  }
  // The exact percentile_sorted interpolation expression on the resolved
  // order statistics — bit-identical to sorting first.
  Quartiles q;
  q.q1 = at[0] + (h[0] - std::floor(h[0])) * (at[1] - at[0]);
  q.q2 = at[2] + (h[1] - std::floor(h[1])) * (at[3] - at[2]);
  q.q3 = at[4] + (h[2] - std::floor(h[2])) * (at[5] - at[4]);
  return q;
}

std::vector<CdfPoint> empirical_cdf(std::span<const double> values) {
  require(!values.empty(), "stats::empirical_cdf: empty input");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<CdfPoint> cdf;
  const auto n = static_cast<double>(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const bool last_of_run =
        i + 1 == sorted.size() || sorted[i + 1] != sorted[i];
    if (last_of_run) {
      cdf.push_back({sorted[i], static_cast<double>(i + 1) / n});
    }
  }
  return cdf;
}

std::vector<std::size_t> indices_above(std::span<const double> values,
                                       double threshold) {
  std::vector<std::size_t> result;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (values[i] > threshold) result.push_back(i);
  }
  return result;
}

std::vector<std::size_t> competition_ranks(std::span<const double> values) {
  std::vector<std::size_t> order(values.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return values[a] < values[b]; });
  std::vector<std::size_t> ranks(values.size(), 0);
  std::size_t position = 0;
  while (position < order.size()) {
    std::size_t run_end = position;
    while (run_end + 1 < order.size() &&
           values[order[run_end + 1]] == values[order[position]]) {
      ++run_end;
    }
    for (std::size_t i = position; i <= run_end; ++i) {
      ranks[order[i]] = position + 1;  // ties share the lowest rank of the run
    }
    position = run_end + 1;
  }
  return ranks;
}

}  // namespace edx::stats
