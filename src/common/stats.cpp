#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace edx::stats {

double mean(std::span<const double> values) {
  require(!values.empty(), "stats::mean: empty input");
  double total = 0.0;
  for (double v : values) total += v;
  return total / static_cast<double>(values.size());
}

double variance(std::span<const double> values) {
  require(values.size() >= 2, "stats::variance: need at least 2 values");
  const double m = mean(values);
  double accum = 0.0;
  for (double v : values) accum += (v - m) * (v - m);
  return accum / static_cast<double>(values.size() - 1);
}

double stddev(std::span<const double> values) {
  return std::sqrt(variance(values));
}

double min(std::span<const double> values) {
  require(!values.empty(), "stats::min: empty input");
  return *std::min_element(values.begin(), values.end());
}

double max(std::span<const double> values) {
  require(!values.empty(), "stats::max: empty input");
  return *std::max_element(values.begin(), values.end());
}

double percentile(std::span<const double> values, double p) {
  require(!values.empty(), "stats::percentile: empty input");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  return percentile_sorted(sorted, p);
}

double percentile_sorted(std::span<const double> sorted_values, double p) {
  require(!sorted_values.empty(), "stats::percentile: empty input");
  require(p >= 0.0 && p <= 100.0, "stats::percentile: p must be in [0,100]");
  if (sorted_values.size() == 1) return sorted_values.front();
  // R-7 / numpy 'linear': h = (n-1) * p/100, interpolate between floor/ceil.
  const double h = static_cast<double>(sorted_values.size() - 1) * (p / 100.0);
  const auto lo = static_cast<std::size_t>(std::floor(h));
  const auto hi = static_cast<std::size_t>(std::ceil(h));
  const double fraction = h - static_cast<double>(lo);
  return sorted_values[lo] +
         fraction * (sorted_values[hi] - sorted_values[lo]);
}

double percentile_select(std::span<const double> values, double p) {
  require(!values.empty(), "stats::percentile: empty input");
  require(p >= 0.0 && p <= 100.0, "stats::percentile: p must be in [0,100]");
  if (values.size() == 1) return values.front();
  // Same R-7 rank arithmetic as percentile_sorted, but the two order
  // statistics come from one nth_element pass: after selecting rank `lo`,
  // everything right of it is >= sorted[lo], so sorted[hi] (hi <= lo + 1)
  // is the minimum of that suffix.  Order statistics are multiset values,
  // so the interpolated result is bit-identical to the sorted path.
  const double h = static_cast<double>(values.size() - 1) * (p / 100.0);
  const auto lo = static_cast<std::size_t>(std::floor(h));
  const double fraction = h - static_cast<double>(lo);
  std::vector<double> scratch(values.begin(), values.end());
  const auto lo_it = scratch.begin() + static_cast<std::ptrdiff_t>(lo);
  std::nth_element(scratch.begin(), lo_it, scratch.end());
  const double at_lo = *lo_it;
  if (fraction == 0.0) return at_lo;
  const double at_hi = *std::min_element(lo_it + 1, scratch.end());
  return at_lo + fraction * (at_hi - at_lo);
}

double median(std::span<const double> values) {
  return percentile(values, 50.0);
}

Quartiles quartiles(std::span<const double> values) {
  // Sort once and interpolate three times (percentile() would copy and
  // sort the input per call).
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  return quartiles_sorted(sorted);
}

Quartiles quartiles_sorted(std::span<const double> sorted_values) {
  Quartiles q;
  q.q1 = percentile_sorted(sorted_values, 25.0);
  q.q2 = percentile_sorted(sorted_values, 50.0);
  q.q3 = percentile_sorted(sorted_values, 75.0);
  return q;
}

std::vector<CdfPoint> empirical_cdf(std::span<const double> values) {
  require(!values.empty(), "stats::empirical_cdf: empty input");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<CdfPoint> cdf;
  const auto n = static_cast<double>(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const bool last_of_run =
        i + 1 == sorted.size() || sorted[i + 1] != sorted[i];
    if (last_of_run) {
      cdf.push_back({sorted[i], static_cast<double>(i + 1) / n});
    }
  }
  return cdf;
}

std::vector<std::size_t> indices_above(std::span<const double> values,
                                       double threshold) {
  std::vector<std::size_t> result;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (values[i] > threshold) result.push_back(i);
  }
  return result;
}

std::vector<std::size_t> competition_ranks(std::span<const double> values) {
  std::vector<std::size_t> order(values.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return values[a] < values[b]; });
  std::vector<std::size_t> ranks(values.size(), 0);
  std::size_t position = 0;
  while (position < order.size()) {
    std::size_t run_end = position;
    while (run_end + 1 < order.size() &&
           values[order[run_end + 1]] == values[order[position]]) {
      ++run_end;
    }
    for (std::size_t i = position; i <= run_end; ++i) {
      ranks[order[i]] = position + 1;  // ties share the lowest rank of the run
    }
    position = run_end + 1;
  }
  return ranks;
}

}  // namespace edx::stats
