#include "common/thread_pool.h"

#include <algorithm>
#include <utility>

namespace edx::common {

std::size_t ThreadPool::resolve_threads(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t n = resolve_threads(num_threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    bool last = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      last = --pending_ == 0;
    }
    if (last) batch_done_.notify_all();
  }
}

void ThreadPool::run_batch(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    pending_ = tasks.size();
    first_error_ = nullptr;
    for (std::function<void()>& task : tasks) {
      queue_.push_back(std::move(task));
    }
  }
  work_available_.notify_all();
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    batch_done_.wait(lock, [this] { return pending_ == 0; });
    error = std::exchange(first_error_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::parallel_for_chunks(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t count = end - begin;
  const std::size_t chunks = std::min(size(), count);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(chunks);
  // Spread the remainder over the first chunks so sizes differ by at most
  // one; boundaries depend only on (begin, end, size()).
  const std::size_t base = count / chunks;
  const std::size_t extra = count % chunks;
  std::size_t chunk_begin = begin;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t chunk_end = chunk_begin + base + (c < extra ? 1 : 0);
    tasks.emplace_back(
        [&fn, chunk_begin, chunk_end] { fn(chunk_begin, chunk_end); });
    chunk_begin = chunk_end;
  }
  run_batch(std::move(tasks));
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  parallel_for_chunks(begin, end,
                      [&fn](std::size_t chunk_begin, std::size_t chunk_end) {
                        for (std::size_t i = chunk_begin; i < chunk_end; ++i) {
                          fn(i);
                        }
                      });
}

}  // namespace edx::common
