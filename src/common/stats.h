// Descriptive statistics used by the manifestation analysis.
//
// The paper's Step 3 normalizes to the 10th percentile of an event's power
// distribution and Step 4 detects outliers above the Tukey *upper outer
// fence* Q3 + 3*IQR; both primitives live here so every module (core
// analysis, baselines, benches) computes them identically.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace edx::stats {

/// Arithmetic mean.  Requires a non-empty range.
double mean(std::span<const double> values);

/// Sample variance (n-1 denominator).  Requires size >= 2.
double variance(std::span<const double> values);

/// Sample standard deviation.  Requires size >= 2.
double stddev(std::span<const double> values);

/// Smallest / largest element.  Require a non-empty range.
double min(std::span<const double> values);
double max(std::span<const double> values);

/// Percentile with linear interpolation between closest ranks
/// (the "exclusive" R-7 definition used by numpy.percentile's default).
/// `p` is in [0, 100].  Requires a non-empty range; the input need not be
/// sorted.
double percentile(std::span<const double> values, double p);

/// percentile() for callers that already hold the values in ascending
/// order (e.g. a cached sorted distribution): O(1), no copy, no sort.
double percentile_sorted(std::span<const double> sorted_values, double p);

/// percentile() via selection instead of a full sort: O(n) average for a
/// one-off query on unsorted data (copies into a scratch buffer and runs
/// nth_element).  Returns exactly the same value as percentile().
double percentile_select(std::span<const double> values, double p);

/// Median == percentile(values, 50).
double median(std::span<const double> values);

/// Tukey quartile summary of a data set.
struct Quartiles {
  double q1{0};  ///< 25th percentile
  double q2{0};  ///< median
  double q3{0};  ///< 75th percentile

  [[nodiscard]] double iqr() const { return q3 - q1; }
  /// Q3 + 1.5*IQR — the classic whisker bound.
  [[nodiscard]] double upper_inner_fence() const { return q3 + 1.5 * iqr(); }
  /// Q3 + 3*IQR — the paper's manifestation-point threshold (Step 4).
  [[nodiscard]] double upper_outer_fence() const { return q3 + 3.0 * iqr(); }
  [[nodiscard]] double lower_inner_fence() const { return q1 - 1.5 * iqr(); }
  [[nodiscard]] double lower_outer_fence() const { return q1 - 3.0 * iqr(); }
};

/// Computes Q1/median/Q3 of `values`.  Requires a non-empty range.
Quartiles quartiles(std::span<const double> values);

/// quartiles() for values already in ascending order: three O(1)
/// interpolations, no copy, no sort.
Quartiles quartiles_sorted(std::span<const double> sorted_values);

/// quartiles() via radix selection: resolves the six order statistics
/// behind Q1/Q2/Q3 with branch-free MSB-radix counting passes over the
/// doubles' order-preserving key images, and returns the same Q1/Q2/Q3 a
/// full sort would, bit for bit — order statistics are multiset values,
/// independent of how they are brought to their rank.  O(n) worst case
/// (at most 8 counting passes), with per-element cost flat in both input
/// size and data shape — unlike comparison selection, whose partition
/// branches mispredict once the input outgrows the branch predictor.
/// The Step-4 batch decision phase uses it so detection cost stays linear
/// in trace length (core/detection.cpp).  Inputs below a few hundred
/// elements instead take a plain sort — cheaper than the radix pass's
/// fixed costs, and too small to mispredict superlinearly — which yields
/// the same bits.  The input must be NaN-free.  Requires a non-empty
/// range.
Quartiles quartiles_select(std::span<const double> values);

/// One point of an empirical CDF.
struct CdfPoint {
  double value{0};
  double cumulative_probability{0};  ///< P(X <= value)
};

/// Empirical CDF of `values` (sorted ascending, one point per distinct
/// value).  Requires a non-empty range.
std::vector<CdfPoint> empirical_cdf(std::span<const double> values);

/// Indices of elements strictly above `threshold`, in input order.
std::vector<std::size_t> indices_above(std::span<const double> values,
                                       double threshold);

/// Competition ranks ("1224" style): rank[i] is 1 + the number of elements
/// strictly smaller than values[i]; ties share a rank.  Used by Step 2 of
/// the analysis to rank instances of the same event across traces.
std::vector<std::size_t> competition_ranks(std::span<const double> values);

}  // namespace edx::stats
