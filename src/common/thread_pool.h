// A small fixed-size thread pool for the server-side analysis.
//
// The manifestation pipeline is embarrassingly parallel across per-user
// trace bundles (Step 1, Step 4) and across contiguous chunks of traces
// (Step 2's partial-map build).  The pool offers exactly the primitive
// those steps need — a blocking parallel_for over an index range with a
// deterministic, scheduling-independent chunking — and nothing more.
//
// Determinism contract: parallel_for / parallel_for_chunks always split
// [begin, end) into the same contiguous chunks for a given pool size, and
// callers only write to disjoint, index-addressed slots (or merge chunk
// results in chunk order), so results are byte-identical to a sequential
// loop regardless of how the OS schedules the workers.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace edx::common {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 means std::thread::hardware_concurrency
  /// (at least 1).  A pool of size 1 still spawns one worker, but callers
  /// that want the plain sequential path should simply not use a pool.
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Runs fn(i) for every i in [begin, end), split into size() contiguous
  /// chunks, and blocks until all calls finished.  The first exception
  /// thrown by `fn` is rethrown on the calling thread (the remaining
  /// chunks still run to completion).  Not reentrant from inside `fn`.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

  /// Chunked variant: runs fn(chunk_begin, chunk_end) once per contiguous
  /// chunk, in parallel.  Chunk boundaries depend only on (begin, end,
  /// size()), never on scheduling.
  void parallel_for_chunks(
      std::size_t begin, std::size_t end,
      const std::function<void(std::size_t, std::size_t)>& fn);

  /// Resolves a requested thread count: 0 -> hardware concurrency, with a
  /// floor of 1.
  static std::size_t resolve_threads(std::size_t requested);

 private:
  void worker_loop();
  void run_batch(std::vector<std::function<void()>> tasks);

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable batch_done_;
  std::size_t pending_{0};
  std::exception_ptr first_error_;
  bool stopping_{false};
};

}  // namespace edx::common
