#include "common/compress.h"

#include <array>
#include <cstdint>
#include <cstring>
#include <limits>

namespace edx::common {

namespace {

constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxOffset = 65535;
// Matches never start within the last 12 bytes and never extend into the
// last 5: the tail is always emitted as literals, which keeps the decoder's
// final-sequence rule (stream ends after literals) unambiguous.
constexpr std::size_t kMatchStartMargin = 12;
constexpr std::size_t kMatchEndMargin = 5;
constexpr std::uint32_t kHashBits = 13;

inline std::uint32_t hash4(const unsigned char* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

/// Appends a 255-run extension encoding of `value` (the amount beyond the
/// token nibble's 15).
void put_run(std::string& out, std::size_t value) {
  while (value >= 255) {
    out.push_back(static_cast<char>(static_cast<unsigned char>(255)));
    value -= 255;
  }
  out.push_back(static_cast<char>(static_cast<unsigned char>(value)));
}

/// One sequence: `lit_len` literals from src[lit_begin], then a match of
/// `match_len` (0 = literals-only final sequence) at `offset` back.
void put_sequence(std::string& out, std::string_view src,
                  std::size_t lit_begin, std::size_t lit_len,
                  std::size_t match_len, std::size_t offset) {
  const std::size_t lit_nibble = lit_len < 15 ? lit_len : 15;
  std::size_t match_nibble = 0;
  if (match_len != 0) {
    const std::size_t extra = match_len - kMinMatch;
    match_nibble = extra < 15 ? extra : 15;
  }
  out.push_back(static_cast<char>((lit_nibble << 4) | match_nibble));
  if (lit_nibble == 15) put_run(out, lit_len - 15);
  out.append(src.data() + lit_begin, lit_len);
  if (match_len != 0) {
    out.push_back(static_cast<char>(offset & 0xFF));
    out.push_back(static_cast<char>((offset >> 8) & 0xFF));
    if (match_nibble == 15) put_run(out, match_len - kMinMatch - 15);
  }
}

}  // namespace

std::string block_compress(std::string_view src) {
  const std::size_t n = src.size();
  std::string out;
  out.reserve(n / 2 + 16);
  const auto* in = reinterpret_cast<const unsigned char*>(src.data());

  std::size_t anchor = 0;
  if (n >= kMatchStartMargin &&
      n < std::numeric_limits<std::uint32_t>::max()) {
    // Positions are stored +1 so 0 means "empty slot".
    std::array<std::uint32_t, std::size_t{1} << kHashBits> table{};
    const std::size_t match_limit = n - kMatchEndMargin;
    const std::size_t search_limit = n - kMatchStartMargin;
    std::size_t pos = 0;
    while (pos <= search_limit) {
      const std::uint32_t slot = hash4(in + pos);
      const std::uint32_t candidate = table[slot];
      table[slot] = static_cast<std::uint32_t>(pos + 1);
      if (candidate != 0) {
        const std::size_t cpos = candidate - 1;
        if (pos - cpos <= kMaxOffset &&
            std::memcmp(in + cpos, in + pos, kMinMatch) == 0) {
          std::size_t len = kMinMatch;
          while (pos + len < match_limit && in[cpos + len] == in[pos + len]) {
            ++len;
          }
          put_sequence(out, src, anchor, pos - anchor, len, pos - cpos);
          pos += len;
          anchor = pos;
          continue;
        }
      }
      ++pos;
    }
  }
  put_sequence(out, src, anchor, n - anchor, 0, 0);
  return out;
}

bool block_decompress(std::string_view src, std::string& out,
                      std::size_t max_size) {
  out.clear();
  if (src.empty()) return false;  // block_compress never emits zero bytes
  const auto* in = reinterpret_cast<const unsigned char*>(src.data());
  const std::size_t n = src.size();
  out.reserve(max_size < (std::size_t{1} << 26) ? max_size : 0);

  std::size_t ip = 0;
  // Reads a token nibble's full length: `base` plus 255-run extension
  // bytes when base saturated at 15.  Rejects runs that exceed the output
  // cap before they can overflow the accumulator.
  const auto read_length = [&](std::size_t base, std::size_t& length) {
    length = base;
    if (base != 15) return true;
    while (true) {
      if (ip >= n) return false;
      const unsigned char byte = in[ip++];
      length += byte;
      if (length > max_size + 255) return false;
      if (byte != 255) return true;
    }
  };

  while (ip < n) {
    const unsigned char token = in[ip++];
    std::size_t lit_len = 0;
    if (!read_length(token >> 4, lit_len)) return false;
    if (lit_len > n - ip) return false;
    if (lit_len > max_size - out.size()) return false;
    out.append(src.data() + ip, lit_len);
    ip += lit_len;
    if (ip == n) return true;  // final, literals-only sequence

    if (n - ip < 2) return false;
    const std::size_t offset =
        static_cast<std::size_t>(in[ip]) |
        (static_cast<std::size_t>(in[ip + 1]) << 8);
    ip += 2;
    if (offset == 0 || offset > out.size()) return false;
    std::size_t match_len = 0;
    if (!read_length(token & 0xF, match_len)) return false;
    match_len += kMinMatch;
    if (match_len > max_size - out.size()) return false;
    // Byte-at-a-time on purpose: offsets smaller than the match length
    // replicate the overlapped run (RLE-style), exactly as encoded.
    std::size_t from = out.size() - offset;
    for (std::size_t i = 0; i < match_len; ++i) {
      out.push_back(out[from + i]);
    }
  }
  return false;  // input exhausted mid-sequence (before its literals)
}

}  // namespace edx::common
