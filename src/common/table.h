// ASCII table renderer used by the bench binaries to print the paper's
// tables and figure data series in a uniform, diffable format.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace edx {

/// Column alignment inside a rendered table cell.
enum class Align { kLeft, kRight };

/// A simple row/column text table.  Build with add_row(), render with
/// print() / to_string().  Column widths auto-size to the widest cell.
class TextTable {
 public:
  /// Creates a table with the given column headers; all columns default to
  /// left alignment.
  explicit TextTable(std::vector<std::string> headers);

  /// Sets the alignment of column `index` (0-based).
  void set_align(std::size_t index, Align align);

  /// Appends a row.  Throws InvalidArgument if the cell count mismatches
  /// the header count.
  void add_row(std::vector<std::string> cells);

  /// Number of data rows added so far.
  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  /// Renders the table (header, separator, rows) into a string.
  [[nodiscard]] std::string to_string() const;

  /// Writes to_string() to `out`.
  void print(std::ostream& out) const;

 private:
  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Renders a one-line horizontal bar of '#' characters scaled so that
/// `full_scale` maps to `width` characters; used for poor-man's figures.
std::string ascii_bar(double value, double full_scale, int width);

}  // namespace edx
