#include "common/crc32c.h"

#include <array>

namespace edx::common {

namespace {

/// Reflected CRC32C polynomial.
constexpr std::uint32_t kPoly = 0x82F63B78u;

struct Tables {
  // slice[0] is the classic byte-at-a-time table; slice[k] advances a byte
  // through k additional zero bytes, which is what lets the hot loop fold
  // eight input bytes per iteration.
  std::array<std::array<std::uint32_t, 256>, 8> slice;

  Tables() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) != 0 ? kPoly : 0u);
      }
      slice[0][i] = crc;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      for (std::size_t k = 1; k < 8; ++k) {
        slice[k][i] = (slice[k - 1][i] >> 8) ^ slice[0][slice[k - 1][i] & 0xFFu];
      }
    }
  }
};

const Tables& tables() {
  static const Tables instance;
  return instance;
}

inline std::uint32_t load_u32le(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

#if defined(__x86_64__) && defined(__GNUC__)
#define EDX_CRC32C_HW 1

/// SSE4.2 CRC32 instruction path.  Compiled with a per-function target so
/// the translation unit itself needs no -msse4.2; only ever called after
/// the runtime __builtin_cpu_supports check below.
__attribute__((target("sse4.2"))) std::uint32_t crc32c_hw(
    std::uint32_t crc, const unsigned char* p, std::size_t size) {
  crc = ~crc;
  std::uint64_t crc64 = crc;
  while (size >= 8) {
    std::uint64_t chunk;
    __builtin_memcpy(&chunk, p, 8);
    crc64 = __builtin_ia32_crc32di(crc64, chunk);
    p += 8;
    size -= 8;
  }
  crc = static_cast<std::uint32_t>(crc64);
  while (size-- > 0) {
    crc = __builtin_ia32_crc32qi(crc, *p++);
  }
  return ~crc;
}
#endif  // __x86_64__ && __GNUC__

}  // namespace

std::uint32_t crc32c_portable(std::uint32_t crc, const void* data,
                              std::size_t size) {
  const Tables& t = tables();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  while (size >= 8) {
    const std::uint32_t lo = load_u32le(p) ^ crc;
    const std::uint32_t hi = load_u32le(p + 4);
    crc = t.slice[7][lo & 0xFFu] ^ t.slice[6][(lo >> 8) & 0xFFu] ^
          t.slice[5][(lo >> 16) & 0xFFu] ^ t.slice[4][lo >> 24] ^
          t.slice[3][hi & 0xFFu] ^ t.slice[2][(hi >> 8) & 0xFFu] ^
          t.slice[1][(hi >> 16) & 0xFFu] ^ t.slice[0][hi >> 24];
    p += 8;
    size -= 8;
  }
  while (size-- > 0) {
    crc = (crc >> 8) ^ t.slice[0][(crc ^ *p++) & 0xFFu];
  }
  return ~crc;
}

std::uint32_t crc32c(std::uint32_t crc, const void* data, std::size_t size) {
#ifdef EDX_CRC32C_HW
  static const bool have_sse42 = __builtin_cpu_supports("sse4.2");
  if (have_sse42) {
    return crc32c_hw(crc, static_cast<const unsigned char*>(data), size);
  }
#endif
  return crc32c_portable(crc, data, size);
}

}  // namespace edx::common
