// Error types for the EnergyDx libraries.
//
// All modules signal failure by throwing Error (or a subclass).  Benches and
// examples catch at main(); tests assert on the exact subclass.
#pragma once

#include <stdexcept>
#include <string>

namespace edx {

/// Base class for all EnergyDx errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller violated a documented precondition.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Malformed serialized data (trace files, APK blobs, ...).
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

/// The analysis was asked for something the input traces cannot support
/// (e.g. normalizing an event with zero recorded instances).
class AnalysisError : public Error {
 public:
  explicit AnalysisError(const std::string& what) : Error(what) {}
};

/// Throws InvalidArgument with `message` unless `condition` holds.
inline void require(bool condition, const std::string& message) {
  if (!condition) throw InvalidArgument(message);
}

}  // namespace edx
