// Small string helpers shared by the trace parsers and report printers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace edx::strings {

/// Splits `text` on every occurrence of `delimiter`; keeps empty fields.
std::vector<std::string> split(std::string_view text, char delimiter);

/// Removes leading and trailing ASCII whitespace.
std::string trim(std::string_view text);

/// True if `text` begins with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// True if `text` ends with `suffix`.
bool ends_with(std::string_view text, std::string_view suffix);

/// Joins `parts` with `separator` between elements.
std::string join(const std::vector<std::string>& parts,
                 std::string_view separator);

/// Replaces every occurrence of `from` (non-empty) with `to`.
std::string replace_all(std::string_view text, std::string_view from,
                        std::string_view to);

/// Formats a double with `decimals` digits after the point (no locale).
std::string format_double(double value, int decimals);

/// Renders e.g. 1500000 as "1.5M", 100000 as "100K" — the style used by the
/// downloads column of Table III.
std::string human_count(long long value);

}  // namespace edx::strings
