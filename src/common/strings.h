// Small string helpers shared by the trace parsers and report printers.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace edx::strings {

/// Splits `text` on every occurrence of `delimiter`; keeps empty fields.
std::vector<std::string> split(std::string_view text, char delimiter);

/// Removes leading and trailing ASCII whitespace.
std::string trim(std::string_view text);

/// Allocation-free trim: a view into `text` without leading/trailing
/// ASCII whitespace.
std::string_view trim_view(std::string_view text);

/// Returns the next line of `text` (without the terminator) and advances
/// `text` past it.  The final line needs no trailing newline.
std::string_view next_line(std::string_view& text);

/// Field parsers for the trace hot paths: skip leading spaces/tabs, parse
/// one number with std::from_chars (no locale, no stream state), and
/// advance `text` past the consumed characters.  Return false — leaving
/// `text` untouched — when no valid number starts the next field.
bool consume_int64(std::string_view& text, std::int64_t& value);
bool consume_double(std::string_view& text, double& value);

/// True if `text` begins with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// True if `text` ends with `suffix`.
bool ends_with(std::string_view text, std::string_view suffix);

/// Joins `parts` with `separator` between elements.
std::string join(const std::vector<std::string>& parts,
                 std::string_view separator);

/// Replaces every occurrence of `from` (non-empty) with `to`.
std::string replace_all(std::string_view text, std::string_view from,
                        std::string_view to);

/// Formats a double with `decimals` digits after the point (no locale).
std::string format_double(double value, int decimals);

/// Renders e.g. 1500000 as "1.5M", 100000 as "100K" — the style used by the
/// downloads column of Table III.
std::string human_count(long long value);

}  // namespace edx::strings
