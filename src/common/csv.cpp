#include "common/csv.h"

#include <fstream>
#include <sstream>

#include "common/error.h"

namespace edx {

namespace {
std::string escape(const std::string& field) {
  const bool needs_quoting =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quoting) return field;
  std::string quoted = "\"";
  for (char c : field) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}
}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  require(!headers_.empty(), "CsvWriter: need at least one column");
}

void CsvWriter::add_row(std::vector<std::string> cells) {
  require(cells.size() == headers_.size(),
          "CsvWriter::add_row: cell count must match header count");
  rows_.push_back(std::move(cells));
}

std::string CsvWriter::to_string() const {
  std::ostringstream out;
  const auto write_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i != 0) out << ',';
      out << escape(cells[i]);
    }
    out << '\n';
  };
  write_row(headers_);
  for (const auto& row : rows_) write_row(row);
  return out.str();
}

void CsvWriter::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw Error("CsvWriter: cannot open " + path);
  out << to_string();
  if (!out) throw Error("CsvWriter: write failed for " + path);
}

}  // namespace edx
