#include "service/fleet_service.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <utility>

#include "common/error.h"
#include "core/event_power.h"
#include "core/report_io.h"
#include "store/fleet_store.h"

namespace edx::service {

namespace fs = std::filesystem;

namespace {

/// Shard count resolution order: an existing partitioned layout pins it
/// (records route by key hash, so reopening with a different count would
/// silently split tenants across shards); otherwise the explicit request;
/// otherwise one per hardware thread, capped at 4.
std::size_t resolve_shards(const ServiceOptions& options) {
  const std::size_t requested = options.num_shards;
  if (!options.store_root.empty()) {
    if (const std::optional<store::PartitionedLayout> layout =
            store::read_layout(options.store_root)) {
      if (requested != 0 && requested != layout->shard_count) {
        throw Error("FleetService: store root '" + options.store_root +
                    "' is partitioned for " +
                    std::to_string(layout->shard_count) +
                    " shard(s) but " + std::to_string(requested) +
                    " were requested; reopen with the stored count (or 0)");
      }
      return layout->shard_count;
    }
  }
  if (requested != 0) return requested;
  const std::size_t hardware = std::thread::hardware_concurrency();
  return std::clamp<std::size_t>(hardware, 1, 4);
}

}  // namespace

/// One registered app.  The apply mutex serializes everything that
/// mutates tenant state — analyzer arrivals, the applied log, store
/// sequence tracking, and epoch publication — so a hot app fanned over
/// several shards still applies and publishes one arrival at a time.
/// Readers never take it: they go through the Published slot.
struct FleetService::Tenant {
  explicit Tenant(core::AnalysisConfig config) : analyzer(std::move(config)) {}

  AppKey key;
  bool hot{false};
  mutable std::mutex apply_mutex;
  core::FleetAnalyzer analyzer;
  /// This tenant's id in each shard's store, kInvalidTenant until its
  /// first record lands there.  Slot `s` is only touched by shard s's
  /// worker (and by single-threaded recovery), so no extra lock.
  std::vector<store::TenantId> store_ids;
  /// Submission ids in applied order — the arrival prefix every
  /// published snapshot is equivalent to a batch run over.
  std::vector<std::uint64_t> applied_log;

  // Counters readable without the apply mutex (written under it, or
  // under a shard lock for `submitted`).
  std::atomic<std::uint64_t> submitted{0};
  std::atomic<std::uint64_t> applied{0};
  std::atomic<std::uint64_t> epoch{0};
  std::atomic<std::uint64_t> published_arrivals{0};
  std::atomic<std::uint64_t> store_seq{0};

  Published<FleetSnapshot> published;
};

/// One queued arrival.  The bundle is copied at submit() — the caller's
/// buffer may die immediately after — and moved through Step 1.
struct FleetService::Item {
  Tenant* tenant{nullptr};
  std::uint64_t id{0};
  trace::TraceBundle bundle;
};

/// One ingest lane: a bounded MPSC queue drained whole by a dedicated
/// worker (the WAL writer's group-commit shape at the analysis layer),
/// plus this shard's partition of the durable store.
struct FleetService::Shard {
  std::size_t index{0};
  std::mutex mutex;
  std::condition_variable arrived;  ///< worker wake-up
  std::condition_variable room;     ///< producers waiting for queue room
  std::condition_variable idle;     ///< drain() waiting for quiescence
  std::deque<Item> queue;
  bool busy{false};  ///< a drained batch is being processed
  bool stop{false};
  std::exception_ptr error;
  std::uint64_t batches{0};
  std::size_t queue_peak{0};
  /// Private Step-1 pool: ThreadPool's run_batch state is per-pool, so
  /// concurrent shard workers must not share one.  Also fans out the
  /// per-tenant epoch publications at the end of each batch.
  std::optional<common::ThreadPool> step1_pool;
  /// All tenants routed here share this store: one WAL, one writer, one
  /// group-commit fdatasync per drained batch.  Null without store_root.
  std::unique_ptr<store::ShardStore> store;
  /// Batch scratch, worker-private and reused across batches — together
  /// with the store's pooled encode buffers this keeps a warmed-up
  /// drain loop off the allocator.
  std::vector<core::AnalyzedTrace> scratch_analyzed;  ///< Step-1 slots
  std::vector<Tenant*> scratch_touched;
  std::thread worker;
};

FleetService::FleetService(ServiceOptions options)
    : options_(std::move(options)),
      router_(resolve_shards(options_), options_.hot_fanout) {
  options_.num_shards = router_.num_shards();
  options_.hot_fanout = router_.hot_fanout();
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
  if (options_.analysis.num_threads == 0) {
    // AnalysisConfig's 0 means "one thread per core" — right for one
    // batch run, wrong for a service that already parallelizes across
    // shards and would otherwise spawn a full pool per tenant.
    options_.analysis.num_threads = 1;
  }

  shards_.reserve(options_.num_shards);
  for (std::size_t s = 0; s < options_.num_shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
    Shard& shard = *shards_.back();
    shard.index = s;
    if (common::ThreadPool::resolve_threads(options_.step1_threads) > 1) {
      shard.step1_pool.emplace(options_.step1_threads);
    }
  }
  // Stores open (and recovery + legacy migration run) before any worker
  // starts: every stored tenant is warm and published when the
  // constructor returns.
  if (!options_.store_root.empty()) open_stores();
  for (std::unique_ptr<Shard>& shard : shards_) {
    Shard& ref = *shard;
    ref.worker = std::thread([this, &ref] { worker_loop(ref); });
  }
}

FleetService::~FleetService() {
  try {
    close();
  } catch (const std::exception& error) {
    std::fprintf(stderr, "FleetService: error during shutdown: %s\n",
                 error.what());
  } catch (...) {
    std::fprintf(stderr, "FleetService: unknown error during shutdown\n");
  }
}

void FleetService::close() {
  for (std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    shard->stop = true;
  }
  for (std::unique_ptr<Shard>& shard : shards_) {
    shard->arrived.notify_all();
    shard->room.notify_all();  // blocked producers re-check stop and throw
  }
  // Workers drain whatever is still queued (applying and publishing it)
  // before exiting, so close() is also a graceful flush.
  for (std::unique_ptr<Shard>& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
  // Surface what the shutdown found, worker failures first: a worker
  // error from the final drain used to die with the thread here.
  std::exception_ptr failure;
  for (std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    if (shard->error != nullptr && failure == nullptr) {
      failure = std::exchange(shard->error, nullptr);
    }
  }
  for (std::unique_ptr<Shard>& shard : shards_) {
    if (shard->store == nullptr) continue;
    try {
      shard->store->close();  // rethrows the store writer's first error
    } catch (...) {
      if (failure == nullptr) failure = std::current_exception();
    }
  }
  if (failure != nullptr) std::rethrow_exception(failure);
}

void FleetService::open_stores() {
  const std::string& root = options_.store_root;
  const store::RootInfo info = store::inspect_root(root);
  if (info.kind == store::RootKind::kSingleStore) {
    throw Error("FleetService: store root '" + root +
                "' holds a single-tenant FleetStore (wal-*.edx at top "
                "level); pass a service store root instead");
  }
  fs::create_directories(root);
  // Layout first, stores second: a crash in between leaves a valid
  // (empty-shard) partitioned root.
  if (!store::read_layout(root)) store::write_layout(root, shards_.size());
  for (std::unique_ptr<Shard>& shard : shards_) {
    shard->store.reset(new store::ShardStore(store::ShardStore::open(
        store::shard_dir(root, shard->index), options_.store)));
  }

  // Legacy per-tenant roots migrate in place: re-append every tenant's
  // fleet through the router into the shard stores, make them durable,
  // and only then delete the old directories.  A crash mid-migration
  // re-runs it — re-appended bundles replace rather than duplicate in
  // the fleet, so the published report is unaffected.
  if (!info.tenant_dirs.empty()) {
    for (const std::string& key : info.tenant_dirs) {
      migrate_legacy_tenant(key);
    }
    for (std::unique_ptr<Shard>& shard : shards_) shard->store->flush();
    for (const std::string& key : info.tenant_dirs) {
      fs::remove_all(fs::path(root) / key);
    }
  }

  // Warm-start every stored tenant: snapshotted slots re-enter through
  // their stored Step-1 state (no power join), the WAL tail through the
  // normal arrival path — so the recovered analyzer state matches a
  // never-restarted run byte for byte.  Shard order then tenant-id
  // order; a hot tenant spanning shards merges per-user streams, which
  // commutes in the report.
  for (std::unique_ptr<Shard>& shard_ptr : shards_) {
    store::ShardStore& shard_store = *shard_ptr->store;
    for (const store::TenantInfo& stored : shard_store.tenants()) {
      Tenant& tenant = ensure_tenant(stored.key);
      tenant.store_ids[shard_ptr->index] = stored.id;
      std::lock_guard apply_lock(tenant.apply_mutex);
      for (core::AnalyzedTrace& analyzed :
           shard_store.snapshot_step1(stored.id)) {
        tenant.analyzer.add_analyzed(std::move(analyzed));
      }
      for (const store::BundleRef& bundle :
           shard_store.tail_refs(stored.id)) {
        tenant.analyzer.add_bundle(*bundle);
      }
      tenant.store_seq.store(
          std::max(tenant.store_seq.load(std::memory_order_relaxed),
                   stored.last_seq),
          std::memory_order_relaxed);
    }
  }
  for (auto& [key, tenant] : tenants_) {
    const std::uint64_t recovered = tenant->analyzer.arrivals();
    if (recovered == 0) continue;
    // Recovered uploads count as already submitted and applied, so the
    // submitted/applied/published counters stay comparable.
    tenant->submitted.store(recovered, std::memory_order_relaxed);
    tenant->applied.store(recovered, std::memory_order_relaxed);
    if (tenant->analyzer.fleet_size() > 0) {
      std::lock_guard apply_lock(tenant->apply_mutex);
      publish_locked(*tenant);
    }
  }
}

void FleetService::migrate_legacy_tenant(const AppKey& app) {
  const fs::path directory = fs::path(options_.store_root) / app;
  const bool hot = std::find(options_.hot_apps.begin(),
                             options_.hot_apps.end(),
                             app) != options_.hot_apps.end();
  store::FleetStore legacy =
      store::FleetStore::open(directory.string(), options_.store);
  // The fleet (last upload per user, slot order) is what the report is
  // a function of, so it is what migrates; superseded tail duplicates
  // are dropped, exactly as the legacy store's own compaction would.
  for (const store::BundleRef& bundle : legacy.fleet_refs()) {
    const std::size_t s = router_.route(app, bundle->fleet_key(), hot);
    store::ShardStore& target = *shards_[s]->store;
    target.append_async(target.ensure_tenant(app), *bundle);
  }
}

FleetService::Tenant& FleetService::ensure_tenant(const AppKey& app) {
  require(!app.empty(), "FleetService: app key must be non-empty");
  {
    std::shared_lock lock(tenants_mutex_);
    const auto it = tenants_.find(app);
    if (it != tenants_.end()) return *it->second;
  }
  std::unique_lock lock(tenants_mutex_);
  const auto it = tenants_.find(app);
  if (it != tenants_.end()) return *it->second;

  auto tenant = std::make_unique<Tenant>(options_.analysis);
  tenant->key = app;
  tenant->hot = std::find(options_.hot_apps.begin(), options_.hot_apps.end(),
                          app) != options_.hot_apps.end();
  tenant->store_ids.assign(shards_.size(), store::kInvalidTenant);
  return *tenants_.emplace(app, std::move(tenant)).first->second;
}

const FleetService::Tenant* FleetService::find_tenant(
    const AppKey& app) const {
  std::shared_lock lock(tenants_mutex_);
  const auto it = tenants_.find(app);
  return it == tenants_.end() ? nullptr : it->second.get();
}

void FleetService::open(const AppKey& app) { ensure_tenant(app); }

void FleetService::enqueue(Shard& shard, Tenant& tenant,
                           const trace::TraceBundle& bundle,
                           std::uint64_t id) {
  {
    std::unique_lock lock(shard.mutex);
    shard.room.wait(lock, [&] {
      return shard.stop || shard.queue.size() < options_.queue_capacity;
    });
    require(!shard.stop, "FleetService: submit after close()");
    tenant.submitted.fetch_add(1, std::memory_order_relaxed);
    shard.queue.push_back(Item{&tenant, id, bundle});
    shard.queue_peak = std::max(shard.queue_peak, shard.queue.size());
  }
  shard.arrived.notify_one();
}

std::uint64_t FleetService::submit(const AppKey& app,
                                   const trace::TraceBundle& bundle) {
  Tenant& tenant = ensure_tenant(app);
  const std::size_t shard_index =
      router_.route(app, bundle.fleet_key(), tenant.hot);
  const std::uint64_t id =
      next_submission_.fetch_add(1, std::memory_order_relaxed);
  enqueue(*shards_[shard_index], tenant, bundle, id);
  return id;
}

std::vector<std::uint64_t> FleetService::submit_batch(
    const AppKey& app, std::span<const trace::TraceBundle> bundles) {
  Tenant& tenant = ensure_tenant(app);
  std::vector<std::uint64_t> ids(bundles.size(), 0);
  // One routing pass, then one lock acquisition per touched shard.  A
  // user's bundles always land in the same bucket (same key -> same
  // shard), and a bucket preserves span order, so per-user order holds.
  std::vector<std::vector<std::size_t>> buckets(shards_.size());
  for (std::size_t i = 0; i < bundles.size(); ++i) {
    buckets[router_.route(app, bundles[i].fleet_key(), tenant.hot)]
        .push_back(i);
  }
  for (std::size_t s = 0; s < buckets.size(); ++s) {
    if (buckets[s].empty()) continue;
    Shard& shard = *shards_[s];
    {
      std::unique_lock lock(shard.mutex);
      for (const std::size_t i : buckets[s]) {
        shard.room.wait(lock, [&] {
          return shard.stop || shard.queue.size() < options_.queue_capacity;
        });
        require(!shard.stop, "FleetService: submit after close()");
        ids[i] = next_submission_.fetch_add(1, std::memory_order_relaxed);
        tenant.submitted.fetch_add(1, std::memory_order_relaxed);
        shard.queue.push_back(Item{&tenant, ids[i], bundles[i]});
        shard.queue_peak = std::max(shard.queue_peak, shard.queue.size());
      }
    }
    shard.arrived.notify_one();
  }
  return ids;
}

void FleetService::worker_loop(Shard& shard) {
  std::vector<Item> batch;
  for (;;) {
    {
      std::unique_lock lock(shard.mutex);
      shard.busy = false;
      shard.idle.notify_all();
      shard.arrived.wait(lock,
                         [&] { return shard.stop || !shard.queue.empty(); });
      if (shard.queue.empty()) return;  // stop requested, queue drained
      batch.clear();
      while (!shard.queue.empty()) {
        batch.push_back(std::move(shard.queue.front()));
        shard.queue.pop_front();
      }
      shard.busy = true;
      ++shard.batches;
    }
    shard.room.notify_all();
    try {
      process_batch(shard, batch);
    } catch (...) {
      std::lock_guard lock(shard.mutex);
      if (!shard.error) shard.error = std::current_exception();
    }
  }
}

void FleetService::process_batch(Shard& shard, std::vector<Item>& batch) {
  // Step 1 — the expensive per-trace power join — for the whole batch,
  // fanned across the shard's private pool.  Results are slot-indexed,
  // so the parallel join commits in exactly the queue order below.
  std::vector<core::AnalyzedTrace>& analyzed = shard.scratch_analyzed;
  analyzed.clear();
  analyzed.resize(batch.size());
  const auto join = [&](std::size_t i) {
    analyzed[i] = core::estimate_event_power(batch[i].bundle);
  };
  if (shard.step1_pool.has_value() && batch.size() > 1) {
    shard.step1_pool->parallel_for(0, batch.size(), join);
  } else {
    for (std::size_t i = 0; i < batch.size(); ++i) join(i);
  }

  // Apply in queue order under each tenant's apply mutex: analyzer
  // arrival, applied-log entry, and the shard store's group-commit
  // queue move together, so the durable order equals the applied order.
  std::vector<Tenant*>& touched = shard.scratch_touched;
  touched.clear();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    Item& item = batch[i];
    Tenant& tenant = *item.tenant;
    {
      std::lock_guard lock(tenant.apply_mutex);
      if (shard.store != nullptr) {
        store::TenantId& id = tenant.store_ids[shard.index];
        if (id == store::kInvalidTenant) {
          id = shard.store->ensure_tenant(tenant.key);
        }
        const std::uint64_t seq = shard.store->append_async(id, item.bundle);
        tenant.store_seq.store(seq, std::memory_order_relaxed);
      }
      tenant.analyzer.add_analyzed(std::move(analyzed[i]));
      tenant.applied_log.push_back(item.id);
      tenant.applied.store(tenant.analyzer.arrivals(),
                           std::memory_order_relaxed);
    }
    if (std::find(touched.begin(), touched.end(), &tenant) == touched.end()) {
      touched.push_back(&tenant);
    }
  }

  // One epoch publication per touched tenant, fanned across the shard's
  // pool — the snapshot recompute is the serial tail of a multi-tenant
  // drain once the fsync below is shared.  Each publish still runs
  // under its tenant's apply mutex, so epochs stay monotone even for a
  // hot tenant two shards publish concurrently.
  const auto publish_one = [&](std::size_t t) {
    Tenant& tenant = *touched[t];
    std::lock_guard lock(tenant.apply_mutex);
    publish_locked(tenant);
  };
  if (shard.step1_pool.has_value() && touched.size() > 1) {
    shard.step1_pool->parallel_for(0, touched.size(), publish_one);
  } else {
    for (std::size_t t = 0; t < touched.size(); ++t) publish_one(t);
  }

  // ONE durability sync for the whole batch — every touched tenant's
  // records share this shard's WAL, so a K-tenant batch costs one
  // fdatasync, not K.  (flush runs outside every apply mutex: appliers
  // on other shards are not held up by this shard's fsync.)
  if (shard.store != nullptr) shard.store->flush();
}

void FleetService::publish_locked(Tenant& tenant) {
  auto snapshot = std::make_shared<FleetSnapshot>();
  snapshot->app = tenant.key;
  snapshot->image = tenant.analyzer.publish(options_.self_estimate_fraction);
  snapshot->epoch = tenant.epoch.fetch_add(1, std::memory_order_relaxed) + 1;
  tenant.published_arrivals.store(snapshot->image->arrivals,
                                  std::memory_order_relaxed);
  tenant.published.store(std::move(snapshot));
}

std::shared_ptr<const FleetSnapshot> FleetService::snapshot(
    const AppKey& app) const {
  const Tenant* tenant = find_tenant(app);
  require(tenant != nullptr, "FleetService: unknown app '" + app +
                                 "' (open() or submit() it first)");
  return tenant->published.load();
}

std::string FleetService::report(const AppKey& app,
                                 const ReportOptions& options) const {
  const std::shared_ptr<const FleetSnapshot> snap = snapshot(app);
  if (snap == nullptr) {
    throw AnalysisError("FleetService: no published snapshot for app '" +
                        app + "' yet");
  }
  core::ReportRenderOptions render;
  render.max_events = options.max_events;
  render.developer_reported_fraction = snap->image->reported_fraction;
  render.app_name = options.app_name;
  return options.as_json
             ? core::report_to_json(snap->image->report, nullptr, render)
             : core::report_to_text(snap->image->report, nullptr, render);
}

void FleetService::drain() {
  std::exception_ptr failure;
  for (const std::unique_ptr<Shard>& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::unique_lock lock(shard.mutex);
    shard.idle.wait(lock, [&] { return shard.queue.empty() && !shard.busy; });
    if (shard.error != nullptr && failure == nullptr) {
      failure = std::exchange(shard.error, nullptr);
    }
  }
  if (failure != nullptr) std::rethrow_exception(failure);
}

ServiceStats FleetService::stats() const {
  ServiceStats stats;
  stats.shards = shards_.size();
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    stats.batches += shard->batches;
    stats.queue_peak = std::max(stats.queue_peak, shard->queue_peak);
  }
  for (const std::unique_ptr<Shard>& shard : shards_) {
    if (shard->store != nullptr) {
      stats.store_fsyncs += shard->store->fsync_count();
    }
  }
  std::shared_lock lock(tenants_mutex_);
  stats.apps = tenants_.size();
  stats.per_app.reserve(tenants_.size());
  for (const auto& [key, tenant] : tenants_) {
    AppServiceStats row = tenant_row(key, *tenant);
    stats.submitted += row.submitted;
    stats.per_app.push_back(std::move(row));
  }
  std::sort(stats.per_app.begin(), stats.per_app.end(),
            [](const AppServiceStats& a, const AppServiceStats& b) {
              return a.app < b.app;
            });
  return stats;
}

AppServiceStats FleetService::tenant_row(const AppKey& key,
                                         const Tenant& tenant) {
  AppServiceStats row;
  row.app = key;
  row.hot = tenant.hot;
  row.submitted = tenant.submitted.load(std::memory_order_relaxed);
  row.applied = tenant.applied.load(std::memory_order_relaxed);
  row.epoch = tenant.epoch.load(std::memory_order_relaxed);
  row.published_arrivals =
      tenant.published_arrivals.load(std::memory_order_relaxed);
  if (const auto snap = tenant.published.load()) {
    row.fleet_size = snap->image->fleet_size;
  }
  row.store_last_seq = tenant.store_seq.load(std::memory_order_relaxed);
  return row;
}

AppServiceStats FleetService::app_stats(const AppKey& app) const {
  const Tenant* tenant = find_tenant(app);
  require(tenant != nullptr, "FleetService: unknown app '" + app + "'");
  return tenant_row(app, *tenant);
}

std::vector<std::uint64_t> FleetService::applied_log(
    const AppKey& app) const {
  const Tenant* tenant = find_tenant(app);
  require(tenant != nullptr,
          "FleetService: unknown app '" + app + "'");
  std::lock_guard lock(tenant->apply_mutex);
  return tenant->applied_log;
}

}  // namespace edx::service
