// ShardRouter — deterministic placement of arrivals onto ingest shards.
//
// The FleetService runs one ingest worker per shard; the router decides,
// for every (app, fleet-key) arrival, which shard's queue it joins.  Two
// rules, both forced by the byte-equivalence contract:
//
//   * an app's home shard is a pure function of its key
//     (FNV-1a 64 of the key, mod shard count), so every arrival for a
//     cold app lands on one worker and applies in queue order — the
//     single-writer order the FleetAnalyzer equivalence proof needs;
//   * a *hot* app fans out across `hot_fanout` consecutive shards by
//     fleet-key range: the key is mixed through a splitmix64 finalizer
//     and the top 64 bits of (hash x fanout) pick the lane.  Same key ->
//     same lane -> same shard, always, so a user's re-uploads stay
//     totally ordered even while different users of the same app ingest
//     on different workers in parallel.  (Re-uploads of *different*
//     users commute in the final report — the fleet state is a per-user
//     last-write map and Steps 2-5 read it as a multiset — so per-key
//     FIFO is exactly the ordering the equivalence contract requires,
//     and no more.)
//
// Range partitioning (multiply-shift on the mixed hash) rather than
// `hash % fanout` keeps the lane computation one multiply and makes the
// lane boundaries contiguous in hash space — the same fixed-point trick
// the store's segment router idiom uses, and trivially uniform for a
// well-mixed input.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/types.h"

namespace edx::service {

class ShardRouter {
 public:
  /// `num_shards` ingest workers; hot apps spread over `hot_fanout`
  /// consecutive shards (clamped to num_shards; 0 and 1 both mean "no
  /// fan-out").  Throws InvalidArgument when num_shards is 0.
  ShardRouter(std::size_t num_shards, std::size_t hot_fanout);

  [[nodiscard]] std::size_t num_shards() const { return num_shards_; }
  [[nodiscard]] std::size_t hot_fanout() const { return hot_fanout_; }

  /// The shard every cold-app arrival for `app` lands on, and the first
  /// lane of a hot app's range.
  [[nodiscard]] std::size_t home_shard(std::string_view app) const;

  /// Lane in [0, hot_fanout) for one fleet key of a hot app.
  [[nodiscard]] std::size_t lane_of(UserId fleet_key) const;

  /// Full routing decision: home shard for cold apps, home + lane
  /// (mod num_shards) for hot ones.
  [[nodiscard]] std::size_t route(std::string_view app, UserId fleet_key,
                                  bool hot) const;

  /// FNV-1a 64 over the key bytes (the app-key hash).
  static std::uint64_t hash_key(std::string_view key);
  /// splitmix64 finalizer — turns the low-entropy fleet key into a
  /// uniformly mixed 64-bit value for range partitioning.
  static std::uint64_t mix(std::uint64_t value);

 private:
  std::size_t num_shards_;
  std::size_t hot_fanout_;
};

}  // namespace edx::service
