// Epoch publication — the RCU-flavored pointer swap behind FleetService
// snapshots.
//
// The service's reader contract is "zero stalls": a reader asking for an
// app's current report must never wait on a writer mid-ingest, and a
// writer publishing a fresh snapshot must never wait for readers to
// finish rendering the old one.  The classic RCU shape specialized to
// one slot gives both:
//
//   * the published object is immutable — once a SnapshotImage (or any
//     T) goes in, nobody writes through it again;
//   * publication swaps one shared_ptr inside a critical section that
//     only ever copies or moves the pointer (a refcount bump, no
//     allocation, no payload work), so a reader either sees the whole
//     old epoch or the whole new one, never a torn in-between;
//   * reclamation is the shared_ptr refcount: readers pin the epoch they
//     loaded for exactly as long as they use it, and the last reference
//     — reader or slot — frees it.  No grace periods to track, because
//     the refcount IS the grace period.
//
// Why a mutex and not C++20 std::atomic<std::shared_ptr<T>>: libstdc++'s
// _Sp_atomic guards its pointer word with an embedded lock bit, but
// load() releases that lock with a *relaxed* fetch_sub — so a reader's
// unlock does not happens-before the next writer's pointer write, which
// is a formal data race (and ThreadSanitizer reports it as one).  A
// plain mutex around the pointer copy costs nanoseconds, is
// TSan-provable, and preserves the contract that matters: the critical
// section never contains snapshot *construction* or *rendering* — those
// happen entirely off to the side — so readers never wait on a writer's
// real work, only (rarely) on another pointer copy.
#pragma once

#include <memory>
#include <mutex>
#include <utility>

namespace edx::service {

/// One atomically published, immutable value.  load() is the reader
/// path; store() the writer path; both are safe from any thread at any
/// time.  An empty slot (nothing published yet) loads as nullptr.
template <typename T>
class Published {
 public:
  Published() = default;
  Published(const Published&) = delete;
  Published& operator=(const Published&) = delete;

  /// The current epoch's value (nullptr before the first store()).  The
  /// returned shared_ptr keeps that epoch alive for as long as the
  /// caller holds it, regardless of later store() calls.
  [[nodiscard]] std::shared_ptr<const T> load() const {
    const std::lock_guard<std::mutex> hold(gate_);
    return slot_;
  }

  /// Publishes `next` as the new epoch.  The previous epoch is released
  /// (and freed once its last reader drops it) — outside the critical
  /// section, so a teardown-heavy old snapshot never holds the gate.
  void store(std::shared_ptr<const T> next) {
    std::shared_ptr<const T> previous;
    {
      const std::lock_guard<std::mutex> hold(gate_);
      previous = std::exchange(slot_, std::move(next));
    }
  }

 private:
  mutable std::mutex gate_;
  std::shared_ptr<const T> slot_;
};

}  // namespace edx::service
