#include "service/shard_router.h"

#include "common/error.h"

namespace edx::service {

ShardRouter::ShardRouter(std::size_t num_shards, std::size_t hot_fanout)
    : num_shards_(num_shards),
      hot_fanout_(hot_fanout == 0 ? 1 : hot_fanout) {
  require(num_shards_ > 0, "ShardRouter: need at least one shard");
  if (hot_fanout_ > num_shards_) hot_fanout_ = num_shards_;
}

std::uint64_t ShardRouter::hash_key(std::string_view key) {
  std::uint64_t hash = 1469598103934665603ull;  // FNV-1a offset basis
  for (const char c : key) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 1099511628211ull;  // FNV-1a prime
  }
  return hash;
}

std::uint64_t ShardRouter::mix(std::uint64_t value) {
  value += 0x9e3779b97f4a7c15ull;
  value = (value ^ (value >> 30)) * 0xbf58476d1ce4e5b9ull;
  value = (value ^ (value >> 27)) * 0x94d049bb133111ebull;
  return value ^ (value >> 31);
}

std::size_t ShardRouter::home_shard(std::string_view app) const {
  return static_cast<std::size_t>(hash_key(app) % num_shards_);
}

std::size_t ShardRouter::lane_of(UserId fleet_key) const {
  // Multiply-shift range partition: the mixed hash's position in
  // [0, 2^64) scaled into [0, hot_fanout).  Contiguous hash ranges map
  // to one lane, and a uniform hash gives uniform lanes.
  const std::uint64_t mixed =
      mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(fleet_key)));
  return static_cast<std::size_t>(
      (static_cast<unsigned __int128>(mixed) * hot_fanout_) >> 64);
}

std::size_t ShardRouter::route(std::string_view app, UserId fleet_key,
                               bool hot) const {
  const std::size_t home = home_shard(app);
  if (!hot || hot_fanout_ <= 1) return home;
  return (home + lane_of(fleet_key)) % num_shards_;
}

}  // namespace edx::service
