// FleetService — the long-running multi-tenant fleet diagnosis server.
//
// The paper's deployment is a service: instrumented phones from many
// apps upload trace bundles continuously, and developers pull the
// current diagnosis report whenever they look at the dashboard.  Until
// now the repo only had the parts — a per-app incremental engine
// (core/fleet_analyzer.h) and the durable stores (store/fleet_store.h,
// store/shard_store.h) — hand-wired per CLI command.  This facade is
// the redesigned surface that owns them:
//
//   open(app)                 registers a tenant (idempotent); stored
//                             tenants are recovered at construction,
//                             before the first open();
//   submit(app, bundle)       routes the arrival to its ingest shard and
//                             returns a submission id once queued
//                             (backpressure: blocks while the shard
//                             queue is at capacity);
//   submit_batch(app, span)   same, one routing pass for a whole batch;
//   snapshot(app)             the current epoch's immutable
//                             SnapshotImage-backed FleetSnapshot —
//                             lock-free, never blocks on writers;
//   report(app)               renders that snapshot as text or JSON;
//   stats()                   per-app and per-shard ingest counters;
//   drain()                   blocks until every submission made before
//                             the call is applied AND published (the
//                             test/shutdown barrier).
//
// Ingest pipeline (per shard, one worker thread each — the PR-7
// group-commit MPSC idiom lifted from the WAL writer to the analysis
// layer):
//
//   submit -> [bounded MPSC queue] -> worker drains the whole queue as
//   one batch -> Step 1 (the expensive power join) for every queued
//   bundle, fanned across the shard's private ThreadPool -> results
//   applied in queue order to each tenant's FleetAnalyzer under that
//   tenant's apply mutex (and appended, tenant-tagged, to the SHARD's
//   store) -> one epoch publication per touched tenant, fanned across
//   the same pool -> ONE store flush for the whole batch.
//
// Batching is what makes the economics work: N arrivals in a burst cost
// one queue hand-off each but only ONE snapshot recompute per tenant
// and — because the shard's tenants share one ShardStore WAL — ONE
// fdatasync per shard per drain, no matter how many tenants the batch
// touched.  Before the partitioned store each touched tenant paid its
// own fsync, so multi-tenant ingest throughput fell off linearly in
// tenant count; now it is roughly flat.  The per-batch working set
// (Step-1 slots, the touched list, encode buffers inside the store) is
// pooled and reused across batches, so a warmed-up drain loop stays off
// the allocator.
//
// Sharding (service/shard_router.h): an app's arrivals land on its home
// shard — hash(app) mod shards — so per-app arrival order is queue
// order.  Apps listed in ServiceOptions::hot_apps additionally fan out
// across hot_fanout consecutive shards by fleet-key range; a given
// user's re-uploads still serialize on one shard, and cross-user
// interleaving commutes in the report (the fleet is a per-user
// last-write map), so the published snapshot remains byte-identical to
// a single-threaded batch run over the applied order.
//
// Publication (service/epoch.h): workers build each snapshot off to the
// side (FleetAnalyzer::publish) and swap it in with one atomic
// shared_ptr store.  Readers load the pointer and render at leisure —
// zero reader stalls, and writers never wait on readers.
//
// Equivalence contract: every FleetSnapshot a reader ever observes, for
// any shard count and any number of concurrent writers, is
// byte-identical (rendered text and JSON) to a single-threaded batch
// ManifestationAnalyzer run over that tenant's first
// `FleetSnapshot::arrivals` applied uploads — the prefix applied_log()
// records.  tests/service/ holds the suites; DESIGN.md §14 the design.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.h"
#include "core/fleet_analyzer.h"
#include "service/epoch.h"
#include "service/shard_router.h"
#include "store/shard_store.h"

namespace edx::service {

/// Tenant key: the app's stable identifier (package name, catalog id...).
using AppKey = std::string;

/// How the service runs.  The defaults suit tests and a small host; a
/// real deployment tunes shards/queue depth to core count and burst
/// size.
struct ServiceOptions {
  /// Ingest shards (each with one worker thread).  0 = one per hardware
  /// thread, capped at 4.
  std::size_t num_shards{0};
  /// Threads of each shard's private Step-1 pool.  1 = join inline on
  /// the worker (the default; shard-level parallelism usually
  /// saturates first).
  std::size_t step1_threads{1};
  /// Per-shard queue bound: submit() blocks once a shard holds this
  /// many undrained bundles.  Also bounds snapshot staleness — a reader
  /// can lag the submitted count by at most queue_capacity + one
  /// in-flight batch per shard.
  std::size_t queue_capacity{1024};
  /// Apps in hot_apps fan out across this many consecutive shards by
  /// fleet-key range (see ShardRouter); <= 1 disables fan-out.
  std::size_t hot_fanout{1};
  std::vector<AppKey> hot_apps;
  /// Per-tenant analysis config.  num_threads 0 (the AnalysisConfig
  /// default, "one per core") is overridden to 1: the service
  /// parallelizes across shards, not inside one tenant's snapshot.
  core::AnalysisConfig analysis;
  /// Build reports with the self-estimated impacted fraction (the CLI's
  /// no---reported-fraction behavior).  When false, the fraction in
  /// `analysis.reporting` is used as given.
  bool self_estimate_fraction{true};
  /// When non-empty, the service root of a PARTITIONED store: one
  /// tenant-tagged ShardStore per ingest shard at <store_root>/shard-<i>,
  /// with the shard count pinned by <store_root>/layout.edx.  All
  /// tenants are recovered at construction; a pre-partition root (one
  /// FleetStore directory per tenant) is migrated in place on first
  /// open.  num_shards 0 adopts an existing layout's count; a non-zero
  /// num_shards that contradicts the layout is an error.
  std::string store_root;
  store::StoreOptions store;
};

/// What snapshot(app) hands a reader: one immutable epoch of one
/// tenant's diagnosis.  Everything here is frozen at publication.
struct FleetSnapshot {
  AppKey app;
  /// Publication counter for this tenant (1 = first publish).  Strictly
  /// increasing; arrivals is non-decreasing in it.
  std::uint64_t epoch{0};
  /// The report below equals a batch run over the tenant's first
  /// `image->arrivals` applied uploads.
  std::shared_ptr<const core::FleetAnalyzer::SnapshotImage> image;
};

/// How report(app) renders the current snapshot.
struct ReportOptions {
  bool as_json{false};
  std::size_t max_events{10};
  /// Echoed into the report header (empty = omitted), like the CLI's
  /// --app display name.
  std::string app_name;
};

/// stats() — one row per tenant plus service-wide ingest counters.
struct AppServiceStats {
  AppKey app;
  bool hot{false};
  std::uint64_t submitted{0};   ///< accepted by submit()
  std::uint64_t applied{0};     ///< applied to the analyzer
  std::uint64_t epoch{0};       ///< publications so far
  std::uint64_t published_arrivals{0};  ///< arrivals of the live epoch
  std::size_t fleet_size{0};    ///< distinct users in the live epoch
  /// Shard-store sequence of the tenant's newest durable record (its
  /// home shard's sequence space; the last writing shard's for a hot
  /// app).  0 when the service has no store.
  std::uint64_t store_last_seq{0};
};

struct ServiceStats {
  std::size_t shards{0};
  std::size_t apps{0};
  std::uint64_t submitted{0};
  std::uint64_t batches{0};     ///< worker drains that did work
  std::size_t queue_peak{0};    ///< max bundles seen in any one queue
  /// Total fdatasync calls across every shard store — the group-commit
  /// receipt: bounded by batches x shards, NOT by touched tenants.
  std::uint64_t store_fsyncs{0};
  std::vector<AppServiceStats> per_app;  ///< sorted by app key
};

class FleetService {
 public:
  explicit FleetService(ServiceOptions options = {});
  FleetService(const FleetService&) = delete;
  FleetService& operator=(const FleetService&) = delete;
  /// close() that must not throw: failures are noted on stderr and
  /// swallowed.
  ~FleetService();

  /// Stops accepting, drains every queue (applying and publishing what
  /// was still queued), joins the workers, closes the shard stores, and
  /// rethrows the first worker or store failure — so an error raised
  /// while the final batch commits is surfaced instead of dying with
  /// the worker thread.  Idempotent; submit() after close() throws.
  void close();

  [[nodiscard]] const ServiceOptions& options() const { return options_; }
  [[nodiscard]] const ShardRouter& router() const { return router_; }

  /// Registers `app` (idempotent).  Stored tenants are recovered at
  /// construction — a recovered non-empty fleet publishes its snapshot
  /// immediately, so readers see the pre-restart state before the first
  /// new arrival — making open() on a recovered app a no-op.
  void open(const AppKey& app);

  /// Queues one upload for `app` (auto-opens unknown apps) and returns
  /// its submission id.  Blocks only on shard-queue backpressure.
  /// Thread-safe; arrivals from one thread to one app keep their order.
  std::uint64_t submit(const AppKey& app, const trace::TraceBundle& bundle);

  /// submit() for a whole batch with one routing pass; ids are returned
  /// in `bundles` order and per-user order is preserved.
  std::vector<std::uint64_t> submit_batch(
      const AppKey& app, std::span<const trace::TraceBundle> bundles);

  /// The live epoch for `app`, or nullptr when nothing has been
  /// published yet.  Lock-free with respect to writers: never blocks on
  /// an ingest batch, and the returned snapshot stays valid for as long
  /// as the caller holds it.  Throws InvalidArgument for an unknown app.
  [[nodiscard]] std::shared_ptr<const FleetSnapshot> snapshot(
      const AppKey& app) const;

  /// Renders the live epoch.  Throws AnalysisError when nothing has
  /// been published yet (no arrivals applied).
  [[nodiscard]] std::string report(const AppKey& app,
                                   const ReportOptions& options = {}) const;

  /// Blocks until every submission accepted before the call is applied
  /// and published, then rethrows the first worker failure, if any.
  /// Callers racing drain() with new submit()s get a barrier for their
  /// own prior submissions only.
  void drain();

  [[nodiscard]] ServiceStats stats() const;

  /// One tenant's stats() row without the full-service sweep — the
  /// cheap per-submit/per-read probe the loadgen driver samples
  /// snapshot staleness from.  Throws InvalidArgument for an unknown
  /// app.
  [[nodiscard]] AppServiceStats app_stats(const AppKey& app) const;

  /// The tenant's applied order: submission ids in the order the worker
  /// applied them — the prefix order every published snapshot is
  /// byte-identical to a batch run over.  Meant for equivalence tests
  /// and debugging; take it drained (it copies under the apply lock).
  [[nodiscard]] std::vector<std::uint64_t> applied_log(
      const AppKey& app) const;

 private:
  /// One registered app: analyzer + per-shard store ids + publication
  /// slot.
  struct Tenant;
  /// One ingest lane: queue + worker + private Step-1 pool + the
  /// shard's partition of the store.
  struct Shard;
  /// One queued arrival.
  struct Item;

  Tenant& ensure_tenant(const AppKey& app);
  /// Construction-time store bring-up: opens (or creates) the
  /// partitioned root, finishes any interrupted legacy migration, and
  /// warm-starts every stored tenant.
  void open_stores();
  /// Re-appends one legacy per-tenant FleetStore's fleet into the shard
  /// stores (routing each bundle as a fresh submit would).
  void migrate_legacy_tenant(const AppKey& app);
  [[nodiscard]] const Tenant* find_tenant(const AppKey& app) const;
  /// Builds one stats row from a tenant's counters (callers hold no
  /// tenant lock; every field loads an atomic or the published epoch).
  [[nodiscard]] static AppServiceStats tenant_row(const AppKey& key,
                                                  const Tenant& tenant);
  /// Builds and swaps in one epoch for `tenant`; apply mutex held.
  void publish_locked(Tenant& tenant);
  void worker_loop(Shard& shard);
  void process_batch(Shard& shard, std::vector<Item>& batch);
  void enqueue(Shard& shard, Tenant& tenant,
               const trace::TraceBundle& bundle, std::uint64_t id);

  ServiceOptions options_;
  ShardRouter router_;

  mutable std::shared_mutex tenants_mutex_;
  /// Values are pointer-stable across rehash (workers hold Tenant*).
  std::unordered_map<AppKey, std::unique_ptr<Tenant>> tenants_;

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> next_submission_{1};
};

}  // namespace edx::service
