// Activity lifecycle state machine.
//
// Computes the exact callback sequences the Android framework dispatches on
// user navigation.  The paper leans on the framework invariant that "five
// events will typically be generated when a user simply switches from one
// activity to another" (A.onPause, B.onCreate, B.onStart, B.onResume,
// A.onStop) — the sequences here preserve that invariant, which the event-
// distance analysis of Figure 1 depends on.
#pragma once

#include <string>
#include <vector>

namespace edx::android {

/// Lifecycle states of one activity.
enum class ActivityState {
  kDestroyed,
  kCreated,
  kStarted,
  kResumed,
  kPaused,
  kStopped,
};

std::string activity_state_name(ActivityState state);

/// One framework dispatch: which class gets which callback.
struct Dispatch {
  std::string class_name;
  std::string callback_name;

  friend bool operator==(const Dispatch&, const Dispatch&) = default;
};

/// Tracks the state of every activity in an app and yields the dispatch
/// sequences for navigation operations.  Class names are opaque keys.
class LifecycleMachine {
 public:
  /// State of `class_name` (kDestroyed if never seen).
  [[nodiscard]] ActivityState state(const std::string& class_name) const;

  /// The activity currently resumed, or empty if none.
  [[nodiscard]] const std::string& resumed_activity() const {
    return resumed_;
  }

  /// The back stack, bottom first, including the resumed activity.
  [[nodiscard]] const std::vector<std::string>& back_stack() const {
    return back_stack_;
  }

  /// Cold-starts `class_name` as the task root:
  /// [onCreate, onStart, onResume].
  std::vector<Dispatch> launch(const std::string& class_name);

  /// Navigates from the resumed activity to `class_name`
  /// (the canonical 5-event sequence; fewer when the target was stopped and
  /// restarts instead of being created).
  std::vector<Dispatch> navigate_to(const std::string& class_name);

  /// Back-press: finishes the resumed activity and restores the one below
  /// it on the stack.  Throws InvalidArgument if the stack is empty.
  std::vector<Dispatch> back();

  /// Home-press: [onPause, onStop] of the resumed activity.
  /// No-op (empty) when already backgrounded.
  std::vector<Dispatch> background();

  /// Returning to the app: [onRestart, onStart, onResume] of the top
  /// activity.  No-op when already foregrounded.
  std::vector<Dispatch> foreground();

  /// Process death: destroys every activity on the stack (top first):
  /// per activity [onPause?, onStop?, onDestroy] depending on state.
  std::vector<Dispatch> terminate();

  /// True if some activity is resumed (app visible).
  [[nodiscard]] bool is_foreground() const { return !resumed_.empty(); }

 private:
  void set_state(const std::string& class_name, ActivityState state);

  std::vector<std::pair<std::string, ActivityState>> states_;
  std::vector<std::string> back_stack_;
  std::string resumed_;
};

}  // namespace edx::android
