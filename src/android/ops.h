// The behavior DSL of simulated callbacks.
//
// Each callback body is a short script of Ops.  Executing an Op advances the
// virtual clock (for synchronous work) and/or registers hardware utilization
// on the power timeline through the system services.  Ops can be *guarded*
// on the app's configuration store — this is how misconfiguration ABDs are
// modeled: the expensive retry path only runs when the user has written a
// bad value into the config.
//
// Periodic tasks carry their own (non-nested) scripts of SimpleOps, so
// background services can do recurring work without user interaction.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"

namespace edx::android {

/// What a behavior step does.
enum class OpKind {
  kCpuWork,        ///< synchronous CPU burst (duration, utilization)
  kNetwork,        ///< radio transfer (duration, utilization, wifi flag)
  kGpsStart,       ///< request location updates (stays on until kGpsStop)
  kGpsStop,
  kSensorStart,    ///< register a sensor listener
  kSensorStop,
  kAudioStart,     ///< start audio playback/recording
  kAudioStop,
  kWakeLockAcquire,  ///< acquire named wakelock (id)
  kWakeLockRelease,  ///< release named wakelock (id)
  kSetConfig,        ///< write config[id] = value
  kStartPeriodicTask,  ///< schedule task `id` every period_ms running `work`
  kCancelPeriodicTask, ///< cancel task `id`
  kSleep,              ///< idle wait (duration only, no utilization)
};

/// A non-task op, also usable inside a periodic task's work list.
struct SimpleOp {
  OpKind kind{OpKind::kSleep};
  DurationMs duration_ms{0};   ///< for kCpuWork / kNetwork / kSleep
  double utilization{0.0};     ///< for kCpuWork / kNetwork
  bool over_wifi{true};        ///< for kNetwork
  std::string id;              ///< lock id / config key / task id
  std::string value;           ///< config value for kSetConfig
  /// Guard: if guard_key is non-empty the op executes only when
  /// config[guard_key] == guard_value (or != when guard_negate).
  std::string guard_key;
  std::string guard_value;
  bool guard_negate{false};
};

/// A full behavior op: a SimpleOp plus periodic-task parameters.
struct Op : SimpleOp {
  DurationMs period_ms{0};          ///< for kStartPeriodicTask
  std::vector<SimpleOp> task_work;  ///< executed at each task firing
};

/// A callback body.
using Behavior = std::vector<Op>;

// ---- Convenience constructors (used heavily by the app catalog) ----

SimpleOp cpu_work(DurationMs duration_ms, double utilization);
SimpleOp network(DurationMs duration_ms, double utilization,
                 bool over_wifi = true);
SimpleOp sleep_op(DurationMs duration_ms);
SimpleOp gps_start();
SimpleOp gps_stop();
SimpleOp sensor_start();
SimpleOp sensor_stop();
SimpleOp audio_start();
SimpleOp audio_stop();
SimpleOp wakelock_acquire(std::string id);
SimpleOp wakelock_release(std::string id);
SimpleOp set_config(std::string key, std::string value);

Op start_periodic_task(std::string id, DurationMs period_ms,
                       std::vector<SimpleOp> work);
Op cancel_periodic_task(std::string id);

/// Wraps any SimpleOp-derived op with a config guard.
template <typename OpT>
OpT guarded(OpT op, std::string key, std::string value, bool negate = false) {
  op.guard_key = std::move(key);
  op.guard_value = std::move(value);
  op.guard_negate = negate;
  return op;
}

/// Lifts a SimpleOp into an Op (no task fields).
Op lift(SimpleOp op);

/// Total synchronous latency of a behavior: the time the callback blocks
/// the UI thread (cpu + network + sleep durations; task firings excluded).
DurationMs synchronous_latency_ms(const Behavior& behavior);

}  // namespace edx::android
