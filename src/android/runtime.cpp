#include "android/runtime.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace edx::android {

using power::Component;

ScriptStep launch(DurationMs think_time_ms) {
  return {StepKind::kLaunch, "", 0, think_time_ms};
}
ScriptStep interact(std::string callback, DurationMs think_time_ms) {
  return {StepKind::kInteract, std::move(callback), 0, think_time_ms};
}
ScriptStep dialog(std::string callback, DurationMs think_time_ms) {
  return {StepKind::kDialog, std::move(callback), 0, think_time_ms};
}
ScriptStep navigate(std::string activity_class, DurationMs think_time_ms) {
  return {StepKind::kNavigate, std::move(activity_class), 0, think_time_ms};
}
ScriptStep back_press(DurationMs think_time_ms) {
  return {StepKind::kBack, "", 0, think_time_ms};
}
ScriptStep background_app(DurationMs think_time_ms) {
  return {StepKind::kBackground, "", 0, think_time_ms};
}
ScriptStep foreground_app(DurationMs think_time_ms) {
  return {StepKind::kForeground, "", 0, think_time_ms};
}
ScriptStep idle(DurationMs duration_ms, DurationMs think_time_ms) {
  return {StepKind::kIdle, "", duration_ms, think_time_ms};
}
ScriptStep start_service(std::string service_class, DurationMs think_time_ms) {
  return {StepKind::kStartService, std::move(service_class), 0, think_time_ms};
}
ScriptStep stop_service(std::string service_class, DurationMs think_time_ms) {
  return {StepKind::kStopService, std::move(service_class), 0, think_time_ms};
}

std::optional<std::size_t> RunResult::find_event(const EventName& name,
                                                 bool last) const {
  std::optional<std::size_t> found;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i].name == name) {
      found = i;
      if (!last) return found;
    }
  }
  return found;
}

AppRuntime::AppRuntime(const AppSpec& app, const Apk* apk,
                       power::UtilizationTimeline& timeline, Pid pid,
                       RunConfig config)
    : app_(app), apk_(apk), timeline_(timeline), pid_(pid), config_(config) {
  require(!app_.main_activity.empty(), "AppRuntime: app has no main activity");
  require(app_.find_component(app_.main_activity) != nullptr,
          "AppRuntime: main activity not found in app spec");
}

const SystemServices& AppRuntime::services() const {
  require(services_.has_value(), "AppRuntime::services: no run yet");
  return *services_;
}

bool AppRuntime::is_instrumented(const std::string& class_name,
                                 const std::string& callback_name) const {
  if (apk_ == nullptr) return false;
  const DexClass* dex_class = apk_->dex.find_class(class_name);
  if (dex_class == nullptr) return false;
  const Method* method = dex_class->find_method(callback_name);
  return method != nullptr && method->instrumented;
}

void AppRuntime::advance_to(TimestampMs t) {
  require(t >= now_, "AppRuntime::advance_to: time cannot go backwards");
  services_->run_tasks_until(t);
  now_ = t;
}

void AppRuntime::set_foreground(bool foreground) {
  if (foreground) {
    if (!display_handle_) {
      display_handle_ = timeline_.open(pid_, Component::kDisplay, now_,
                                       config_.foreground_display_util);
    }
    background_since_ = kNoTimestamp;
    services_->exit_doze(now_);  // user picked the phone up
  } else {
    if (display_handle_) {
      timeline_.close(*display_handle_, now_);
      display_handle_.reset();
    }
    background_since_ = now_;
  }
}

void AppRuntime::emit_idle_events(TimestampMs until) {
  // Synthesize Idle(No_Display) markers while the app sits in background.
  // The EnergyDx background service emits them, so they are "logged"
  // whenever instrumentation is installed.
  if (background_since_ == kNoTimestamp) {
    advance_to(until);
    return;
  }
  // Doze: once backgrounded long enough, the OS suspends periodic work —
  // a held wakelock blocks it (enter_doze keeps failing), so we re-try at
  // each idle chunk in case the lock situation changed.
  const auto maybe_doze = [&](TimestampMs at) {
    if (config_.doze_after_background_ms <= 0) return;
    if (at - background_since_ >= config_.doze_after_background_ms) {
      services_->enter_doze(at);
    }
  };
  maybe_doze(now_);
  while (now_ + config_.idle_event_period_ms <= until) {
    const TimestampMs chunk_begin = now_;
    const TimestampMs chunk_end = now_ + config_.idle_event_period_ms;
    advance_to(chunk_end);
    maybe_doze(now_);
    RawEvent event;
    event.name = std::string(kIdleEventName);
    event.callback_name = std::string(kIdleEventName);
    event.kind = EventKind::kIdle;
    event.interval = {chunk_begin, chunk_end};
    event.logged = apk_ != nullptr;
    events_.push_back(std::move(event));
  }
  advance_to(until);
}

void AppRuntime::dispatch_callback(const std::string& class_name,
                                   const std::string& callback_name) {
  const ComponentSpec* component = app_.find_component(class_name);
  require(component != nullptr,
          "AppRuntime: dispatch to unknown component " + class_name);
  const CallbackSpec* callback = component->find_callback(callback_name);
  require(callback != nullptr, "AppRuntime: component " + class_name +
                                   " has no callback " + callback_name);

  const bool logged = is_instrumented(class_name, callback_name);
  const TimestampMs entry = now_;

  // Framework dispatch overhead.
  timeline_.add(pid_, Component::kCpu,
                {now_, now_ + config_.base_callback_latency_ms},
                config_.base_callback_cpu);
  advance_to(now_ + config_.base_callback_latency_ms);

  // Instrumentation cost: entry log point now, exit log point at return.
  if (logged) {
    advance_to(now_ + static_cast<DurationMs>(
                          std::llround(config_.log_point_latency_ms)));
  }

  for (const Op& op : callback->behavior) {
    const DurationMs consumed = services_->execute(op, now_);
    advance_to(now_ + consumed);
  }

  if (logged) {
    advance_to(now_ + static_cast<DurationMs>(
                          std::llround(config_.log_point_latency_ms)));
  }

  RawEvent event;
  event.name = qualified_event_name(class_name, callback_name);
  event.class_name = class_name;
  event.callback_name = callback_name;
  event.kind = classify_callback(callback_name);
  event.interval = {entry, now_};
  event.logged = logged;
  events_.push_back(std::move(event));
}

RunResult AppRuntime::run(const UserScript& script, TimestampMs start_time,
                          DurationMs trailing_ms,
                          const std::map<std::string, std::string>*
                              initial_config) {
  require(!script.empty(), "AppRuntime::run: empty script");
  require(script.front().kind == StepKind::kLaunch,
          "AppRuntime::run: scripts must begin with kLaunch");

  // Reset per-run state.
  services_.emplace(timeline_, pid_,
                    ConfigStore(initial_config != nullptr
                                    ? *initial_config
                                    : app_.default_config));
  lifecycle_ = LifecycleMachine{};
  events_.clear();
  now_ = start_time;
  display_handle_.reset();
  logging_handle_.reset();
  background_since_ = kNoTimestamp;

  if (apk_ != nullptr && config_.logging_cpu_utilization > 0.0) {
    logging_handle_ = timeline_.open(pid_, Component::kCpu, now_,
                                     config_.logging_cpu_utilization);
  }

  bool terminated = false;
  for (const ScriptStep& step : script) {
    // User think time before acting; idle markers accumulate if backgrounded.
    if (step.think_time_ms > 0) emit_idle_events(now_ + step.think_time_ms);

    switch (step.kind) {
      case StepKind::kLaunch: {
        for (const Dispatch& d : lifecycle_.launch(app_.main_activity)) {
          dispatch_callback(d.class_name, d.callback_name);
        }
        set_foreground(true);
        break;
      }
      case StepKind::kInteract: {
        require(lifecycle_.is_foreground(),
                "AppRuntime: interact while backgrounded");
        dispatch_callback(lifecycle_.resumed_activity(), step.target);
        break;
      }
      case StepKind::kDialog: {
        require(lifecycle_.is_foreground(),
                "AppRuntime: dialog while backgrounded");
        const std::string current = lifecycle_.resumed_activity();
        dispatch_callback(current, "onPause");
        dispatch_callback(current, step.target);
        dispatch_callback(current, "onResume");
        break;
      }
      case StepKind::kNavigate: {
        for (const Dispatch& d : lifecycle_.navigate_to(step.target)) {
          dispatch_callback(d.class_name, d.callback_name);
        }
        break;
      }
      case StepKind::kBack: {
        for (const Dispatch& d : lifecycle_.back()) {
          dispatch_callback(d.class_name, d.callback_name);
        }
        if (!lifecycle_.is_foreground()) set_foreground(false);
        break;
      }
      case StepKind::kBackground: {
        for (const Dispatch& d : lifecycle_.background()) {
          dispatch_callback(d.class_name, d.callback_name);
        }
        set_foreground(false);
        break;
      }
      case StepKind::kForeground: {
        for (const Dispatch& d : lifecycle_.foreground()) {
          dispatch_callback(d.class_name, d.callback_name);
        }
        set_foreground(true);
        break;
      }
      case StepKind::kIdle: {
        emit_idle_events(now_ + step.duration_ms);
        break;
      }
      case StepKind::kStartService: {
        const ComponentSpec* service = app_.find_component(step.target);
        require(service != nullptr && service->kind == ClassKind::kService,
                "AppRuntime: kStartService target is not a service");
        dispatch_callback(step.target, "onCreate");
        if (service->find_callback("onStartCommand") != nullptr) {
          dispatch_callback(step.target, "onStartCommand");
        }
        break;
      }
      case StepKind::kStopService: {
        dispatch_callback(step.target, "onDestroy");
        break;
      }
      case StepKind::kTerminate: {
        for (const Dispatch& d : lifecycle_.terminate()) {
          dispatch_callback(d.class_name, d.callback_name);
        }
        set_foreground(false);
        terminated = true;
        break;
      }
    }
    if (terminated) break;
  }

  // Trailing window: the phone keeps running; leaked resources keep
  // draining.  Idle markers continue if the app is backgrounded.
  if (trailing_ms > 0) emit_idle_events(now_ + trailing_ms);

  if (!terminated) {
    // Process death without lifecycle callbacks (user swipes the app away /
    // simulation ends); resources are force-closed *at this moment*, having
    // drained the whole time.
    set_foreground(false);
  }
  services_->shutdown(now_);
  if (logging_handle_) {
    timeline_.close(*logging_handle_, now_);
    logging_handle_.reset();
  }

  RunResult result;
  result.events = events_;
  result.start_time = start_time;
  result.end_time = now_;
  result.pid = pid_;
  result.final_config = services_->config().all();
  return result;
}

}  // namespace edx::android
