#include "android/event.h"

#include "common/error.h"
#include "common/strings.h"

namespace edx::android {

std::string_view event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kLifecycle: return "lifecycle";
    case EventKind::kUi: return "ui";
    case EventKind::kIdle: return "idle";
    case EventKind::kOther: return "other";
  }
  throw InvalidArgument("event_kind_name: unknown kind");
}

const std::vector<std::string>& lifecycle_callback_names() {
  static const std::vector<std::string> kNames = {
      // android.app.Activity
      "onCreate", "onStart", "onResume", "onPause", "onStop", "onRestart",
      "onDestroy",
      // android.app.Service
      "onStartCommand", "onBind", "onUnbind", "onRebind",
  };
  return kNames;
}

const std::vector<std::string>& ui_callback_prefixes() {
  static const std::vector<std::string> kPrefixes = {
      "onClick", "onLongClick", "onItemClick", "onItemLongClick", "onTouch",
      "onKey",   "onFocusChange", "onScroll", "onMenuItemClick",
  };
  return kPrefixes;
}

EventKind classify_callback(std::string_view callback_name) {
  if (callback_name == kIdleEventName) return EventKind::kIdle;
  for (const std::string& name : lifecycle_callback_names()) {
    if (callback_name == name) return EventKind::kLifecycle;
  }
  for (const std::string& prefix : ui_callback_prefixes()) {
    if (strings::starts_with(callback_name, prefix)) return EventKind::kUi;
  }
  // Widget-handler convention used by the case-study apps: menu items and
  // named buttons compile to onOptionsItemSelected dispatch targets; the
  // instrumenter recognizes them by the "menu" prefix (e.g. "menuDeleted",
  // "menu_item_newsfeed", "menu_about").
  if (strings::starts_with(callback_name, "menu")) return EventKind::kUi;
  return EventKind::kOther;
}

bool is_instrumentable(std::string_view callback_name) {
  const EventKind kind = classify_callback(callback_name);
  return kind == EventKind::kLifecycle || kind == EventKind::kUi;
}

EventName qualified_event_name(std::string_view class_name,
                               std::string_view callback_name) {
  if (class_name.empty()) return std::string(callback_name);
  return std::string(class_name) + "." + std::string(callback_name);
}

SplitEventName split_event_name(const EventName& event_name) {
  // Class names are JVM-style "L<path>;", so the separator is the first '.'
  // after the closing ';'.  Events with no class (Idle) have no ';'.
  const std::size_t semicolon = event_name.find(';');
  if (semicolon == std::string::npos) {
    return SplitEventName{"", event_name};
  }
  if (semicolon + 1 >= event_name.size() ||
      event_name[semicolon + 1] != '.') {
    throw ParseError("split_event_name: malformed event name '" + event_name +
                     "'");
  }
  return SplitEventName{event_name.substr(0, semicolon + 1),
                        event_name.substr(semicolon + 2)};
}

std::string short_event_name(const EventName& event_name) {
  const SplitEventName parts = split_event_name(event_name);
  if (parts.class_name.empty()) return parts.callback_name;
  // "Lcom/fsck/k9/activity/MessageList;" -> "MessageList"
  std::string cls = parts.class_name;
  if (!cls.empty() && cls.back() == ';') cls.pop_back();
  const std::size_t slash = cls.find_last_of('/');
  if (slash != std::string::npos) cls = cls.substr(slash + 1);
  if (!cls.empty() && cls.front() == 'L' && slash == std::string::npos) {
    cls = cls.substr(1);
  }
  return cls + ":" + parts.callback_name;
}

}  // namespace edx::android
