// APK container model with pack/unpack.
//
// The paper's instrumenter "unpacks the APK file and disassembles the Dalvik
// byte code files into assembly-like format ... then packages them back to a
// new APK file".  We mirror that workflow: an Apk is a dex plus resources,
// and pack()/unpack() round-trip it through a textual smali-like format so
// the instrumenter genuinely operates on a serialized artifact.
#pragma once

#include <map>
#include <string>

#include "android/dex.h"

namespace edx::android {

/// An Android application package.
struct Apk {
  std::string package_name;  ///< e.g. "com.fsck.k9"
  DexFile dex;
  /// Non-code resources (name -> size in bytes); carried through repacking.
  std::map<std::string, std::size_t> resources;

  /// Source lines in the whole app (code model only).
  [[nodiscard]] int total_loc() const { return dex.total_loc(); }
};

/// Serializes `apk` into the textual package format.
std::string pack(const Apk& apk);

/// Parses a packed blob back into an Apk.  Throws ParseError on malformed
/// input.  pack(unpack(pack(a))) == pack(a) for every valid Apk.
Apk unpack(const std::string& blob);

}  // namespace edx::android
