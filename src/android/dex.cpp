#include "android/dex.h"

#include <algorithm>
#include <set>

#include "common/error.h"

namespace edx::android {

std::string opcode_name(Opcode opcode) {
  switch (opcode) {
    case Opcode::kNop: return "nop";
    case Opcode::kConst: return "const";
    case Opcode::kMove: return "move";
    case Opcode::kInvoke: return "invoke";
    case Opcode::kIfEqz: return "if-eqz";
    case Opcode::kGoto: return "goto";
    case Opcode::kReturn: return "return";
    case Opcode::kThrow: return "throw";
    case Opcode::kLogEntry: return "log-entry";
    case Opcode::kLogExit: return "log-exit";
  }
  throw InvalidArgument("opcode_name: unknown opcode");
}

Instruction Instruction::nop() { return {Opcode::kNop, "", 0}; }
Instruction Instruction::constant() { return {Opcode::kConst, "", 0}; }
Instruction Instruction::move() { return {Opcode::kMove, "", 0}; }
Instruction Instruction::invoke(std::string target) {
  return {Opcode::kInvoke, std::move(target), 0};
}
Instruction Instruction::if_eqz(std::size_t branch_target) {
  return {Opcode::kIfEqz, "", branch_target};
}
Instruction Instruction::jump(std::size_t branch_target) {
  return {Opcode::kGoto, "", branch_target};
}
Instruction Instruction::ret() { return {Opcode::kReturn, "", 0}; }
Instruction Instruction::throw_up() { return {Opcode::kThrow, "", 0}; }
Instruction Instruction::log_entry() { return {Opcode::kLogEntry, "", 0}; }
Instruction Instruction::log_exit() { return {Opcode::kLogExit, "", 0}; }

std::vector<std::size_t> Method::find_invokes(
    const std::string& target) const {
  std::vector<std::size_t> result;
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (code[i].opcode == Opcode::kInvoke && code[i].target == target) {
      result.push_back(i);
    }
  }
  return result;
}

std::vector<BasicBlock> build_cfg(const Method& method) {
  if (method.code.empty()) return {};

  const std::size_t size = method.code.size();
  const auto check_target = [&](std::size_t target) {
    if (target >= size) {
      throw ParseError("build_cfg: branch target out of range in method '" +
                       method.name + "'");
    }
  };

  // Leaders: instruction 0, every branch target, and every instruction
  // following a branch / goto / return.
  std::set<std::size_t> leaders{0};
  for (std::size_t i = 0; i < size; ++i) {
    const Instruction& instruction = method.code[i];
    switch (instruction.opcode) {
      case Opcode::kIfEqz:
        check_target(instruction.branch_target);
        leaders.insert(instruction.branch_target);
        if (i + 1 < size) leaders.insert(i + 1);
        break;
      case Opcode::kGoto:
        check_target(instruction.branch_target);
        leaders.insert(instruction.branch_target);
        if (i + 1 < size) leaders.insert(i + 1);
        break;
      case Opcode::kReturn:
      case Opcode::kThrow:
        if (i + 1 < size) leaders.insert(i + 1);
        break;
      default:
        break;
    }
  }

  std::vector<BasicBlock> blocks;
  for (auto it = leaders.begin(); it != leaders.end(); ++it) {
    BasicBlock block;
    block.first = *it;
    const auto next = std::next(it);
    block.last = (next == leaders.end() ? size : *next) - 1;
    blocks.push_back(block);
  }

  const auto block_of = [&](std::size_t instruction_index) {
    const auto it =
        std::upper_bound(blocks.begin(), blocks.end(), instruction_index,
                         [](std::size_t index, const BasicBlock& block) {
                           return index < block.first;
                         });
    return static_cast<std::size_t>(std::distance(blocks.begin(), it)) - 1;
  };

  for (std::size_t b = 0; b < blocks.size(); ++b) {
    BasicBlock& block = blocks[b];
    const Instruction& terminator = method.code[block.last];
    switch (terminator.opcode) {
      case Opcode::kReturn:
      case Opcode::kThrow:
        break;  // no successors (throw propagates out of the method)
      case Opcode::kGoto:
        block.successors.push_back(block_of(terminator.branch_target));
        break;
      case Opcode::kIfEqz:
        if (block.last + 1 < size) {
          block.successors.push_back(block_of(block.last + 1));
        }
        block.successors.push_back(block_of(terminator.branch_target));
        break;
      default:
        if (block.last + 1 < size) {
          block.successors.push_back(block_of(block.last + 1));
        }
        break;
    }
    // Deduplicate (an if whose target is the fallthrough).
    std::sort(block.successors.begin(), block.successors.end());
    block.successors.erase(
        std::unique(block.successors.begin(), block.successors.end()),
        block.successors.end());
  }
  return blocks;
}

std::string class_kind_name(ClassKind kind) {
  switch (kind) {
    case ClassKind::kActivity: return "activity";
    case ClassKind::kService: return "service";
    case ClassKind::kOther: return "other";
  }
  throw InvalidArgument("class_kind_name: unknown kind");
}

const Method* DexClass::find_method(const std::string& method_name) const {
  for (const Method& method : methods) {
    if (method.name == method_name) return &method;
  }
  return nullptr;
}

Method* DexClass::find_method(const std::string& method_name) {
  return const_cast<Method*>(
      static_cast<const DexClass*>(this)->find_method(method_name));
}

const DexClass* DexFile::find_class(const std::string& class_name) const {
  for (const DexClass& dex_class : classes) {
    if (dex_class.name == class_name) return &dex_class;
  }
  return nullptr;
}

DexClass* DexFile::find_class(const std::string& class_name) {
  return const_cast<DexClass*>(
      static_cast<const DexFile*>(this)->find_class(class_name));
}

int DexFile::total_loc() const {
  int total = 0;
  for (const DexClass& dex_class : classes) {
    for (const Method& method : dex_class.methods) {
      total += method.lines_of_code;
    }
  }
  return total;
}

std::size_t DexFile::total_instructions() const {
  std::size_t total = 0;
  for (const DexClass& dex_class : classes) {
    for (const Method& method : dex_class.methods) {
      total += method.code.size();
    }
  }
  return total;
}

}  // namespace edx::android
