// The EnergyDx APK instrumenter.
//
// Rewrites every method whose name matches the event pool (lifecycle and UI
// callbacks, Table I of the paper) by injecting a log-entry instruction at
// the method prologue and a log-exit before every return.  Non-pool methods
// are untouched — the paper keeps the pool coarse on purpose to bound the
// runtime logging overhead.
//
// The instrumenter works on the packed representation (unpack -> rewrite ->
// pack), mirroring the real pipeline of apktool-style rewriting.
#pragma once

#include <cstddef>
#include <string>

#include "android/apk.h"
#include "common/types.h"

namespace edx::android {

/// Result of one instrumentation run.
struct InstrumentationReport {
  std::size_t methods_seen{0};
  std::size_t methods_instrumented{0};
  std::size_t log_points_injected{0};
};

/// Latency cost of one injected log point at runtime.  Each instrumented
/// callback pays 2+ of these (entry + every exit); the §IV-F performance
/// experiment measures the resulting event-latency increase.  The virtual
/// clock is millisecond-resolution, so the cost is modeled as a whole ms
/// (a timestamp read + buffered write, exaggerated ~3x; see EXPERIMENTS.md).
inline constexpr double kLogPointLatencyMs = 1.0;

/// CPU utilization cost of the in-app event logging while the app runs;
/// together with the tracker's own cost this forms the paper's 32 mW
/// EnergyDx power overhead.
inline constexpr double kLoggingCpuUtilization = 0.012;

class Instrumenter {
 public:
  Instrumenter() = default;

  /// Instruments all pool methods in `apk`; returns the rewritten package.
  [[nodiscard]] Apk instrument(const Apk& apk) const;

  /// Same, but over the packed textual form — the full unpack/rewrite/pack
  /// pipeline the paper describes.
  [[nodiscard]] std::string instrument_packed(const std::string& blob) const;

  /// Report of the most recent instrument() call.
  [[nodiscard]] const InstrumentationReport& last_report() const {
    return last_report_;
  }

 private:
  mutable InstrumentationReport last_report_;
};

}  // namespace edx::android
