// AppRuntime — executes a user interaction script against an app model.
//
// This is the "users download and run the instrumented app" stage of the
// paper's workflow.  The runtime drives the lifecycle machine, dispatches
// widget callbacks, executes each callback's behavior ops through the
// system services (producing hardware utilization on the power timeline),
// and emits the raw event stream.  Events are marked `logged` only when the
// corresponding method was instrumented — un-instrumented framework work
// (e.g. a Socket.connect inside a background task) affects power but never
// shows up in the event trace, exactly the situation that makes
// manifestation-point identification non-trivial.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "android/apk.h"
#include "android/app.h"
#include "android/event.h"
#include "android/lifecycle.h"
#include "android/services.h"
#include "common/types.h"
#include "power/timeline.h"

namespace edx::android {

/// One step of a user interaction script.
enum class StepKind {
  kLaunch,      ///< cold-start the main activity (first step of any script)
  kInteract,    ///< trigger a UI callback on the resumed activity
  kDialog,      ///< open a dialog over the resumed activity: onPause,
                ///< the UI callback, then onResume (settings pickers etc.)
  kNavigate,    ///< switch to another activity
  kBack,        ///< back-press
  kBackground,  ///< home-press
  kForeground,  ///< return to the app
  kIdle,        ///< do nothing for duration_ms (phone may be pocketed)
  kStartService,  ///< start a service component
  kStopService,   ///< stop a service component
  kTerminate,   ///< kill the app (implicit at script end)
};

struct ScriptStep {
  StepKind kind{StepKind::kIdle};
  /// kNavigate / kStartService / kStopService: component class name.
  /// kInteract: callback name on the resumed activity.
  std::string target;
  DurationMs duration_ms{0};       ///< kIdle only
  DurationMs think_time_ms{800};   ///< user pause before this step
};

using UserScript = std::vector<ScriptStep>;

// Convenience constructors for script building.
ScriptStep launch(DurationMs think_time_ms = 0);
ScriptStep interact(std::string callback, DurationMs think_time_ms = 800);
ScriptStep dialog(std::string callback, DurationMs think_time_ms = 800);
ScriptStep navigate(std::string activity_class, DurationMs think_time_ms = 800);
ScriptStep back_press(DurationMs think_time_ms = 800);
ScriptStep background_app(DurationMs think_time_ms = 800);
ScriptStep foreground_app(DurationMs think_time_ms = 800);
ScriptStep idle(DurationMs duration_ms, DurationMs think_time_ms = 0);
ScriptStep start_service(std::string service_class,
                         DurationMs think_time_ms = 200);
ScriptStep stop_service(std::string service_class,
                        DurationMs think_time_ms = 200);

/// One dispatched event instance, with ground-truth fields the trace layer
/// and the evaluation use.
struct RawEvent {
  EventName name;             ///< qualified "Lpkg/Cls;.callback" or idle name
  std::string class_name;
  std::string callback_name;
  EventKind kind{EventKind::kOther};
  TimeInterval interval;      ///< entry/exit timestamps
  bool logged{false};         ///< true iff the method was instrumented
};

/// Result of running one script.
struct RunResult {
  std::vector<RawEvent> events;
  TimestampMs start_time{0};
  TimestampMs end_time{0};
  Pid pid{0};
  /// Config store at process death — persisted like SharedPreferences, so
  /// a follow-up session can resume from it (misconfigurations survive
  /// restarts; that is what makes configuration ABDs so persistent).
  std::map<std::string, std::string> final_config;

  /// Index of the first/last event named `name`; nullopt if absent.
  [[nodiscard]] std::optional<std::size_t> find_event(
      const EventName& name, bool last = false) const;
};

/// Runtime tuning knobs.
struct RunConfig {
  double foreground_display_util{0.80};
  DurationMs idle_event_period_ms{5000};  ///< Idle(No_Display) cadence
  DurationMs base_callback_latency_ms{3};
  double base_callback_cpu{0.30};
  /// Per-log-point latency; see android/instrumenter.h.
  double log_point_latency_ms{1.0};
  /// In-app logging CPU cost, active launch..terminate when instrumented.
  double logging_cpu_utilization{0.012};
  /// Doze (extension; 0 = disabled, matching the paper's Android 4.4):
  /// after this long in the background the OS suspends periodic tasks —
  /// unless the app holds a wakelock, which is why wakelock leaks defeat
  /// the mitigation.  Long-running hardware (GPS already acquired, audio)
  /// is modeled as unaffected.
  DurationMs doze_after_background_ms{0};
};

/// Executes scripts for one app installation on one (simulated) phone.
class AppRuntime {
 public:
  /// `apk` may be null for an uninstrumented (original) build: power
  /// behaviour is identical but no event is logged.  When non-null it must
  /// outlive the runtime.
  AppRuntime(const AppSpec& app, const Apk* apk,
             power::UtilizationTimeline& timeline, Pid pid,
             RunConfig config = {});

  /// Runs `script` starting at virtual time `start_time`.  The script must
  /// begin with kLaunch.  A terminating step is implied at the end unless
  /// the script ends with kTerminate; system services shut down at script
  /// end + `trailing_ms` (leaked resources drain for the whole trailing
  /// window — the symptom users report).  `initial_config`, when non-null,
  /// replaces the app's default configuration — pass a previous run's
  /// `final_config` to chain sessions like persisted SharedPreferences.
  RunResult run(const UserScript& script, TimestampMs start_time,
                DurationMs trailing_ms = 0,
                const std::map<std::string, std::string>* initial_config =
                    nullptr);

  [[nodiscard]] const SystemServices& services() const;

 private:
  void advance_to(TimestampMs t);
  void dispatch_callback(const std::string& class_name,
                         const std::string& callback_name);
  void emit_idle_events(TimestampMs until);
  void set_foreground(bool foreground);
  [[nodiscard]] bool is_instrumented(const std::string& class_name,
                                     const std::string& callback_name) const;

  const AppSpec& app_;
  const Apk* apk_;
  power::UtilizationTimeline& timeline_;
  Pid pid_;
  RunConfig config_;

  // Per-run state (reset by run()).
  std::optional<SystemServices> services_;
  LifecycleMachine lifecycle_;
  std::vector<RawEvent> events_;
  TimestampMs now_{0};
  std::optional<std::size_t> display_handle_;
  std::optional<std::size_t> logging_handle_;
  TimestampMs background_since_{kNoTimestamp};
};

}  // namespace edx::android
