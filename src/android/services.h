// Simulated Android system services.
//
// The services turn behavior Ops into hardware utilization on the power
// timeline: wakelocks keep the CPU partially awake, the location service
// turns the GPS on, the network service drives the radio, and the task
// scheduler fires periodic background work.  Resources opened and never
// closed keep draining until the simulation ends — that *is* the no-sleep
// bug class.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "android/ops.h"
#include "common/types.h"
#include "power/timeline.h"

namespace edx::android {

/// Utilization footprints of long-running resources.
struct ResourceCosts {
  double wakelock_cpu{0.10};  ///< partial CPU wakeup per held wakelock
  double gps{1.00};           ///< GPS is effectively on/off
  double sensor{0.55};
  double audio{0.70};
  double audio_cpu{0.08};     ///< decode cost while audio plays
  double network_cpu{0.30};   ///< CPU share of an active transfer
};

/// Per-app configuration store (SharedPreferences stand-in).
class ConfigStore {
 public:
  explicit ConfigStore(std::map<std::string, std::string> initial = {});

  void set(const std::string& key, const std::string& value);
  [[nodiscard]] std::string get(const std::string& key) const;  // "" if unset
  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] const std::map<std::string, std::string>& all() const {
    return values_;
  }

 private:
  std::map<std::string, std::string> values_;
};

/// A scheduled periodic task.
struct ScheduledTask {
  std::string id;
  DurationMs period_ms{0};
  std::vector<SimpleOp> work;
  TimestampMs next_fire{0};
  bool cancelled{false};
};

/// The service hub for one app process.
class SystemServices {
 public:
  SystemServices(power::UtilizationTimeline& timeline, Pid pid,
                 ConfigStore config, ResourceCosts costs = {});

  [[nodiscard]] const ConfigStore& config() const { return config_; }
  [[nodiscard]] ConfigStore& config() { return config_; }

  /// Evaluates an op's guard against the config store.
  [[nodiscard]] bool guard_allows(const SimpleOp& op) const;

  /// Executes one non-task op at time `now`.  Synchronous ops (cpu,
  /// network, sleep) return the time consumed; resource toggles return 0.
  /// Guarded-out ops are skipped (return 0).
  DurationMs execute(const SimpleOp& op, TimestampMs now);

  /// Executes a full behavior op (including task scheduling) at `now`.
  DurationMs execute(const Op& op, TimestampMs now);

  /// Fires every scheduled task due up to and including `now`.  Tasks do
  /// not fire while the device dozes; their next_fire advances past the
  /// doze window (deferred, like JobScheduler under Doze).
  void run_tasks_until(TimestampMs now);

  /// Enters Doze at `now`: periodic tasks are suspended until exit_doze().
  /// Holding a wakelock prevents Doze — the call is then ignored (which is
  /// exactly why wakelock leaks defeat modern Android's mitigation).
  /// Returns whether Doze was actually entered.
  bool enter_doze(TimestampMs now);

  /// Leaves Doze at `now` (device picked up / maintenance window).
  void exit_doze(TimestampMs now);

  [[nodiscard]] bool dozing() const { return dozing_; }

  /// Closes every open resource at `end` (end of simulation); leaked
  /// resources stay open — and draining — until exactly this moment.
  void shutdown(TimestampMs end);

  // Introspection for tests and ground truth.
  [[nodiscard]] bool wakelock_held(const std::string& id) const;
  [[nodiscard]] std::size_t held_wakelock_count() const;
  [[nodiscard]] bool gps_active() const { return gps_handle_.has_value(); }
  [[nodiscard]] bool sensor_active() const {
    return sensor_handle_.has_value();
  }
  [[nodiscard]] bool audio_active() const { return audio_handle_.has_value(); }
  [[nodiscard]] std::size_t active_task_count() const;
  [[nodiscard]] const std::vector<ScheduledTask>& tasks() const {
    return tasks_;
  }

 private:
  void fire_task(ScheduledTask& task, TimestampMs now);

  power::UtilizationTimeline& timeline_;
  Pid pid_;
  ConfigStore config_;
  ResourceCosts costs_;

  std::map<std::string, std::size_t> wakelocks_;  // id -> open handle
  std::optional<std::size_t> gps_handle_;
  std::optional<std::size_t> sensor_handle_;
  std::optional<std::size_t> audio_handle_;
  std::optional<std::size_t> audio_cpu_handle_;
  std::vector<ScheduledTask> tasks_;
  bool dozing_{false};
};

}  // namespace edx::android
