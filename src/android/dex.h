// Mini-Dalvik code model.
//
// EnergyDx's instrumenter unpacks an APK, disassembles the Dalvik bytecode,
// injects logging at the event callbacks, and repacks.  The no-sleep
// baseline ([9]) runs a dataflow analysis over the same bytecode.  We model
// the parts of Dalvik both consumers need: classes, methods, a linear
// instruction stream with branches, and a control-flow graph.
//
// The instruction set is deliberately small; `kInvoke` carries the JVM-style
// target descriptor (e.g. "Landroid/os/PowerManager$WakeLock;->acquire()V"),
// which is all the resource-leak analysis keys on.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"

namespace edx::android {

/// Dalvik-ish opcodes.
enum class Opcode {
  kNop,
  kConst,     ///< load a constant into a register
  kMove,      ///< register copy (creates aliases the simple analysis misses)
  kInvoke,    ///< call `target`
  kIfEqz,     ///< conditional branch to `branch_target`
  kGoto,      ///< unconditional branch to `branch_target`
  kReturn,    ///< method exit
  kThrow,     ///< exceptional method exit (uncaught: propagates out)
  kLogEntry,  ///< injected by the instrumenter: event entry timestamp
  kLogExit,   ///< injected by the instrumenter: event exit timestamp
};

std::string opcode_name(Opcode opcode);

/// One instruction.
struct Instruction {
  Opcode opcode{Opcode::kNop};
  std::string target;          ///< invoke descriptor (kInvoke only)
  std::size_t branch_target{0};  ///< instruction index (kIfEqz / kGoto)

  static Instruction nop();
  static Instruction constant();
  static Instruction move();
  static Instruction invoke(std::string target);
  static Instruction if_eqz(std::size_t branch_target);
  static Instruction jump(std::size_t branch_target);
  static Instruction ret();
  static Instruction throw_up();
  static Instruction log_entry();
  static Instruction log_exit();

  friend bool operator==(const Instruction&, const Instruction&) = default;
};

/// Well-known framework API descriptors referenced by generated code and
/// matched by the baselines.
namespace api {
inline constexpr const char* kWakeLockAcquire =
    "Landroid/os/PowerManager$WakeLock;->acquire()V";
inline constexpr const char* kWakeLockRelease =
    "Landroid/os/PowerManager$WakeLock;->release()V";
inline constexpr const char* kGpsRequestUpdates =
    "Landroid/location/LocationManager;->requestLocationUpdates()V";
inline constexpr const char* kGpsRemoveUpdates =
    "Landroid/location/LocationManager;->removeUpdates()V";
inline constexpr const char* kSensorRegister =
    "Landroid/hardware/SensorManager;->registerListener()Z";
inline constexpr const char* kSensorUnregister =
    "Landroid/hardware/SensorManager;->unregisterListener()V";
inline constexpr const char* kAudioStart =
    "Landroid/media/MediaPlayer;->start()V";
inline constexpr const char* kAudioStop =
    "Landroid/media/MediaPlayer;->stop()V";
inline constexpr const char* kSocketConnect =
    "Ljava/net/Socket;->connect()V";
inline constexpr const char* kHandlerPostDelayed =
    "Landroid/os/Handler;->postDelayed()Z";
inline constexpr const char* kHandlerRemoveCallbacks =
    "Landroid/os/Handler;->removeCallbacks()V";
inline constexpr const char* kPrefsPutString =
    "Landroid/content/SharedPreferences$Editor;->putString()V";
}  // namespace api

/// A method: name, source-line budget, and code.
struct Method {
  std::string name;              ///< bare callback name, e.g. "onResume"
  std::vector<Instruction> code;
  int lines_of_code{0};          ///< source lines attributed to this method
  bool instrumented{false};      ///< set by the Instrumenter

  /// Index of every kInvoke whose target equals `target`.
  [[nodiscard]] std::vector<std::size_t> find_invokes(
      const std::string& target) const;
};

/// One basic block of a method CFG.
struct BasicBlock {
  std::size_t first{0};  ///< index of the first instruction
  std::size_t last{0};   ///< index of the last instruction (inclusive)
  std::vector<std::size_t> successors;  ///< indices into the block vector
};

/// Builds the CFG of `method`; blocks are ordered by first instruction.
/// Throws ParseError on branch targets outside the method.
std::vector<BasicBlock> build_cfg(const Method& method);

/// Class kind; drives lifecycle handling in the runtime.
enum class ClassKind { kActivity, kService, kOther };

std::string class_kind_name(ClassKind kind);

/// A class: JVM-style name plus methods.
struct DexClass {
  std::string name;  ///< e.g. "Lcom/fsck/k9/activity/MessageList;"
  ClassKind kind{ClassKind::kOther};
  std::vector<Method> methods;

  [[nodiscard]] const Method* find_method(const std::string& name) const;
  [[nodiscard]] Method* find_method(const std::string& name);
};

/// A whole dex file.
struct DexFile {
  std::vector<DexClass> classes;

  [[nodiscard]] const DexClass* find_class(const std::string& name) const;
  [[nodiscard]] DexClass* find_class(const std::string& name);

  /// Total lines of code across all methods.
  [[nodiscard]] int total_loc() const;
  /// Total number of instructions.
  [[nodiscard]] std::size_t total_instructions() const;
};

}  // namespace edx::android
