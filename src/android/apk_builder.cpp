#include "android/apk_builder.h"

#include "common/error.h"
#include "common/strings.h"

namespace edx::android {

namespace {

/// Appends the instructions of one SimpleOp (without guard) to `code`.
void append_op_body(std::vector<Instruction>& code, const SimpleOp& op) {
  switch (op.kind) {
    case OpKind::kCpuWork:
      code.push_back(Instruction::constant());
      code.push_back(Instruction::nop());
      break;
    case OpKind::kNetwork:
      code.push_back(Instruction::invoke(api::kSocketConnect));
      break;
    case OpKind::kGpsStart:
      code.push_back(Instruction::invoke(api::kGpsRequestUpdates));
      break;
    case OpKind::kGpsStop:
      code.push_back(Instruction::invoke(api::kGpsRemoveUpdates));
      break;
    case OpKind::kSensorStart:
      code.push_back(Instruction::invoke(api::kSensorRegister));
      break;
    case OpKind::kSensorStop:
      code.push_back(Instruction::invoke(api::kSensorUnregister));
      break;
    case OpKind::kAudioStart:
      code.push_back(Instruction::invoke(api::kAudioStart));
      break;
    case OpKind::kAudioStop:
      code.push_back(Instruction::invoke(api::kAudioStop));
      break;
    case OpKind::kWakeLockAcquire:
      // "#<id>" records which lock object the register holds; syntactic
      // API matching sees only the descriptor prefix.
      code.push_back(
          Instruction::invoke(std::string(api::kWakeLockAcquire) + "#" +
                              op.id));
      break;
    case OpKind::kWakeLockRelease:
      // The *code* always shows a WakeLock.release call — whether it
      // releases the right lock at runtime depends on the receiver (the
      // "#<id>" suffix).  A release of the wrong lock is precisely the
      // aliasing bug that fools descriptor-level acquire/release matching.
      code.push_back(Instruction::move());
      code.push_back(
          Instruction::invoke(std::string(api::kWakeLockRelease) + "#" +
                              op.id));
      break;
    case OpKind::kSetConfig:
      // The stored key/value pair is part of the code (a string constant in
      // real dex); encoding it in the descriptor keeps buggy and fixed
      // builds distinguishable artifacts.
      code.push_back(Instruction::constant());
      code.push_back(Instruction::invoke(std::string(api::kPrefsPutString) +
                                         "#" + op.id + "=" + op.value));
      break;
    case OpKind::kStartPeriodicTask:
      code.push_back(Instruction::invoke(api::kHandlerPostDelayed));
      break;
    case OpKind::kCancelPeriodicTask:
      code.push_back(Instruction::invoke(api::kHandlerRemoveCallbacks));
      break;
    case OpKind::kSleep:
      code.push_back(Instruction::nop());
      break;
  }
}

/// Appends one op, wrapping it in a conditional branch when guarded.
void append_op(std::vector<Instruction>& code, const SimpleOp& op) {
  if (op.guard_key.empty()) {
    append_op_body(code, op);
    return;
  }
  // const (load config value) ; if-eqz skip ; <body> ; skip:
  code.push_back(Instruction::constant());
  const std::size_t branch_index = code.size();
  code.push_back(Instruction::if_eqz(0));  // patched below
  append_op_body(code, op);
  code[branch_index].branch_target = code.size();
  // The branch target must exist; a trailing nop guarantees it even when
  // the guarded op is the last one before the return (the return is
  // appended by the caller *after* all ops).
  code.push_back(Instruction::nop());
}

}  // namespace

std::vector<Instruction> compile_behavior(const Behavior& behavior) {
  std::vector<Instruction> code;
  code.push_back(Instruction::constant());  // prologue: load `this` fields
  for (const Op& op : behavior) append_op(code, op);
  code.push_back(Instruction::ret());
  return code;
}

std::vector<Instruction> compile_task_work(const std::vector<SimpleOp>& work) {
  std::vector<Instruction> code;
  code.push_back(Instruction::constant());
  for (const SimpleOp& op : work) append_op(code, op);
  code.push_back(Instruction::ret());
  return code;
}

namespace {

/// Synthesizes a plausible non-callback helper method with branching code.
Method make_helper(const std::string& name, int lines_of_code) {
  Method method;
  method.name = name;
  method.lines_of_code = lines_of_code;
  // const ; if-eqz L ; const ; goto M ; L: const ; M: return
  method.code = {
      Instruction::constant(), Instruction::if_eqz(4),
      Instruction::constant(), Instruction::jump(5),
      Instruction::constant(), Instruction::ret(),
  };
  return method;
}

constexpr int kHelperMethodLoc = 40;

void add_helper_methods(DexClass& dex_class, int helper_loc) {
  int remaining = helper_loc;
  int index = 0;
  while (remaining > 0) {
    const int lines = remaining >= kHelperMethodLoc ? kHelperMethodLoc
                                                    : remaining;
    dex_class.methods.push_back(
        make_helper("helper" + std::to_string(index++), lines));
    remaining -= lines;
  }
}

}  // namespace

Apk build_apk(const AppSpec& app) {
  require(!app.package_name.empty(), "build_apk: app has no package name");
  Apk apk;
  apk.package_name = app.package_name;
  apk.resources = {{"AndroidManifest.xml", 2048},
                   {"res/layout/main.xml", 4096},
                   {"res/drawable/icon.png", 8192}};

  for (const ComponentSpec& component : app.components) {
    DexClass dex_class;
    dex_class.name = component.class_name;
    dex_class.kind = component.kind;
    for (const CallbackSpec& callback : component.callbacks) {
      Method method;
      method.name = callback.name;
      method.lines_of_code = callback.lines_of_code;
      method.code = compile_behavior(callback.behavior);
      dex_class.methods.push_back(std::move(method));

      // Periodic-task bodies become Runnable.run methods of the same class.
      for (const Op& op : callback.behavior) {
        if (op.kind != OpKind::kStartPeriodicTask) continue;
        Method run_method;
        run_method.name = op.id + "$run";
        run_method.lines_of_code = 6;
        run_method.code = compile_task_work(op.task_work);
        dex_class.methods.push_back(std::move(run_method));
      }
    }
    add_helper_methods(dex_class, component.helper_loc);
    apk.dex.classes.push_back(std::move(dex_class));
  }

  if (app.glue_loc > 0) {
    DexClass glue;
    glue.name = make_class_name(app.package_name, "internal", "Glue");
    glue.kind = ClassKind::kOther;
    add_helper_methods(glue, app.glue_loc);
    apk.dex.classes.push_back(std::move(glue));
  }
  return apk;
}

}  // namespace edx::android
