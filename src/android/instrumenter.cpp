#include "android/instrumenter.h"

#include "android/event.h"

namespace edx::android {

namespace {

/// Injects log-entry/log-exit into one method; returns log points added.
std::size_t instrument_method(Method& method) {
  std::vector<Instruction> rewritten;
  rewritten.reserve(method.code.size() + 4);

  // Old instruction index -> new index, for branch retargeting.
  std::vector<std::size_t> remap(method.code.size());

  // Every method exit — normal return or uncaught throw — gets a log-exit
  // (the real rewriter wraps the body in try/finally for the same effect).
  const auto is_exit = [](Opcode opcode) {
    return opcode == Opcode::kReturn || opcode == Opcode::kThrow;
  };

  rewritten.push_back(Instruction::log_entry());
  std::size_t log_points = 1;
  for (std::size_t i = 0; i < method.code.size(); ++i) {
    if (is_exit(method.code[i].opcode)) {
      rewritten.push_back(Instruction::log_exit());
      ++log_points;
    }
    remap[i] = rewritten.size();
    rewritten.push_back(method.code[i]);
  }

  // Branches recorded old targets; point them at the remapped locations.
  // A branch that targeted an exit now targets the log-exit *before* it,
  // so every exit path is logged.
  for (Instruction& instruction : rewritten) {
    if (instruction.opcode == Opcode::kIfEqz ||
        instruction.opcode == Opcode::kGoto) {
      const std::size_t old_target = instruction.branch_target;
      std::size_t new_target = remap[old_target];
      if (is_exit(method.code[old_target].opcode)) {
        new_target -= 1;  // land on the injected log-exit
      }
      instruction.branch_target = new_target;
    }
  }

  method.code = std::move(rewritten);
  method.instrumented = true;
  return log_points;
}

}  // namespace

Apk Instrumenter::instrument(const Apk& apk) const {
  last_report_ = InstrumentationReport{};
  Apk result = apk;
  for (DexClass& dex_class : result.dex.classes) {
    for (Method& method : dex_class.methods) {
      ++last_report_.methods_seen;
      if (!is_instrumentable(method.name)) continue;
      if (method.instrumented) continue;  // idempotent
      last_report_.log_points_injected += instrument_method(method);
      ++last_report_.methods_instrumented;
    }
  }
  return result;
}

std::string Instrumenter::instrument_packed(const std::string& blob) const {
  return pack(instrument(unpack(blob)));
}

}  // namespace edx::android
