#include "android/ops.h"

#include "common/error.h"

namespace edx::android {

namespace {
SimpleOp make(OpKind kind) {
  SimpleOp op;
  op.kind = kind;
  return op;
}
}  // namespace

SimpleOp cpu_work(DurationMs duration_ms, double utilization) {
  require(duration_ms >= 0, "cpu_work: duration must be non-negative");
  SimpleOp op = make(OpKind::kCpuWork);
  op.duration_ms = duration_ms;
  op.utilization = utilization;
  return op;
}

SimpleOp network(DurationMs duration_ms, double utilization, bool over_wifi) {
  require(duration_ms >= 0, "network: duration must be non-negative");
  SimpleOp op = make(OpKind::kNetwork);
  op.duration_ms = duration_ms;
  op.utilization = utilization;
  op.over_wifi = over_wifi;
  return op;
}

SimpleOp sleep_op(DurationMs duration_ms) {
  require(duration_ms >= 0, "sleep_op: duration must be non-negative");
  SimpleOp op = make(OpKind::kSleep);
  op.duration_ms = duration_ms;
  return op;
}

SimpleOp gps_start() { return make(OpKind::kGpsStart); }
SimpleOp gps_stop() { return make(OpKind::kGpsStop); }
SimpleOp sensor_start() { return make(OpKind::kSensorStart); }
SimpleOp sensor_stop() { return make(OpKind::kSensorStop); }
SimpleOp audio_start() { return make(OpKind::kAudioStart); }
SimpleOp audio_stop() { return make(OpKind::kAudioStop); }

SimpleOp wakelock_acquire(std::string id) {
  SimpleOp op = make(OpKind::kWakeLockAcquire);
  op.id = std::move(id);
  return op;
}

SimpleOp wakelock_release(std::string id) {
  SimpleOp op = make(OpKind::kWakeLockRelease);
  op.id = std::move(id);
  return op;
}

SimpleOp set_config(std::string key, std::string value) {
  SimpleOp op = make(OpKind::kSetConfig);
  op.id = std::move(key);
  op.value = std::move(value);
  return op;
}

Op start_periodic_task(std::string id, DurationMs period_ms,
                       std::vector<SimpleOp> work) {
  require(period_ms > 0, "start_periodic_task: period must be positive");
  Op op;
  op.kind = OpKind::kStartPeriodicTask;
  op.id = std::move(id);
  op.period_ms = period_ms;
  op.task_work = std::move(work);
  return op;
}

Op cancel_periodic_task(std::string id) {
  Op op;
  op.kind = OpKind::kCancelPeriodicTask;
  op.id = std::move(id);
  return op;
}

Op lift(SimpleOp op) {
  Op lifted;
  static_cast<SimpleOp&>(lifted) = std::move(op);
  return lifted;
}

DurationMs synchronous_latency_ms(const Behavior& behavior) {
  DurationMs total = 0;
  for (const Op& op : behavior) {
    switch (op.kind) {
      // Network transfers are asynchronous (see SystemServices::execute)
      // and do not contribute to UI-thread latency.
      case OpKind::kCpuWork:
      case OpKind::kSleep:
        total += op.duration_ms;
        break;
      default:
        break;
    }
  }
  return total;
}

}  // namespace edx::android
