#include "android/lifecycle.h"

#include <algorithm>

#include "common/error.h"

namespace edx::android {

std::string activity_state_name(ActivityState state) {
  switch (state) {
    case ActivityState::kDestroyed: return "destroyed";
    case ActivityState::kCreated: return "created";
    case ActivityState::kStarted: return "started";
    case ActivityState::kResumed: return "resumed";
    case ActivityState::kPaused: return "paused";
    case ActivityState::kStopped: return "stopped";
  }
  throw InvalidArgument("activity_state_name: unknown state");
}

ActivityState LifecycleMachine::state(const std::string& class_name) const {
  for (const auto& [name, state] : states_) {
    if (name == class_name) return state;
  }
  return ActivityState::kDestroyed;
}

void LifecycleMachine::set_state(const std::string& class_name,
                                 ActivityState state) {
  for (auto& [name, existing] : states_) {
    if (name == class_name) {
      existing = state;
      return;
    }
  }
  states_.emplace_back(class_name, state);
}

std::vector<Dispatch> LifecycleMachine::launch(const std::string& class_name) {
  require(back_stack_.empty(),
          "LifecycleMachine::launch: app already running; use navigate_to");
  std::vector<Dispatch> dispatches = {{class_name, "onCreate"},
                                      {class_name, "onStart"},
                                      {class_name, "onResume"}};
  set_state(class_name, ActivityState::kResumed);
  back_stack_.push_back(class_name);
  resumed_ = class_name;
  return dispatches;
}

std::vector<Dispatch> LifecycleMachine::navigate_to(
    const std::string& class_name) {
  require(!resumed_.empty(),
          "LifecycleMachine::navigate_to: no resumed activity");
  require(class_name != resumed_,
          "LifecycleMachine::navigate_to: already resumed");
  const std::string previous = resumed_;

  std::vector<Dispatch> dispatches;
  dispatches.push_back({previous, "onPause"});

  // Re-launching an activity that is already on the back stack brings the
  // stopped instance forward (standard singleTop-ish behaviour keeps the
  // model simple and the event counts right).
  if (state(class_name) == ActivityState::kStopped) {
    dispatches.push_back({class_name, "onRestart"});
    dispatches.push_back({class_name, "onStart"});
    dispatches.push_back({class_name, "onResume"});
    std::erase(back_stack_, class_name);
  } else {
    dispatches.push_back({class_name, "onCreate"});
    dispatches.push_back({class_name, "onStart"});
    dispatches.push_back({class_name, "onResume"});
  }
  dispatches.push_back({previous, "onStop"});

  set_state(previous, ActivityState::kStopped);
  set_state(class_name, ActivityState::kResumed);
  back_stack_.push_back(class_name);
  resumed_ = class_name;
  return dispatches;
}

std::vector<Dispatch> LifecycleMachine::back() {
  require(!resumed_.empty(), "LifecycleMachine::back: app is backgrounded");
  require(!back_stack_.empty(), "LifecycleMachine::back: empty back stack");
  const std::string finishing = back_stack_.back();

  std::vector<Dispatch> dispatches;
  dispatches.push_back({finishing, "onPause"});
  back_stack_.pop_back();
  if (!back_stack_.empty()) {
    const std::string& below = back_stack_.back();
    dispatches.push_back({below, "onRestart"});
    dispatches.push_back({below, "onStart"});
    dispatches.push_back({below, "onResume"});
    set_state(below, ActivityState::kResumed);
    resumed_ = below;
  } else {
    resumed_.clear();
  }
  dispatches.push_back({finishing, "onStop"});
  dispatches.push_back({finishing, "onDestroy"});
  set_state(finishing, ActivityState::kDestroyed);
  return dispatches;
}

std::vector<Dispatch> LifecycleMachine::background() {
  if (resumed_.empty()) return {};
  const std::string current = resumed_;
  std::vector<Dispatch> dispatches = {{current, "onPause"},
                                      {current, "onStop"}};
  set_state(current, ActivityState::kStopped);
  resumed_.clear();
  return dispatches;
}

std::vector<Dispatch> LifecycleMachine::foreground() {
  if (!resumed_.empty()) return {};
  require(!back_stack_.empty(),
          "LifecycleMachine::foreground: nothing to bring forward");
  const std::string& top = back_stack_.back();
  std::vector<Dispatch> dispatches = {
      {top, "onRestart"}, {top, "onStart"}, {top, "onResume"}};
  set_state(top, ActivityState::kResumed);
  resumed_ = top;
  return dispatches;
}

std::vector<Dispatch> LifecycleMachine::terminate() {
  std::vector<Dispatch> dispatches;
  for (auto it = back_stack_.rbegin(); it != back_stack_.rend(); ++it) {
    const std::string& class_name = *it;
    const ActivityState current = state(class_name);
    if (current == ActivityState::kResumed) {
      dispatches.push_back({class_name, "onPause"});
      dispatches.push_back({class_name, "onStop"});
    } else if (current == ActivityState::kStarted ||
               current == ActivityState::kPaused) {
      dispatches.push_back({class_name, "onStop"});
    }
    dispatches.push_back({class_name, "onDestroy"});
    set_state(class_name, ActivityState::kDestroyed);
  }
  back_stack_.clear();
  resumed_.clear();
  return dispatches;
}

}  // namespace edx::android
