// Lowers an AppSpec to an Apk (dex codegen).
//
// Every callback's behavior script compiles to a small Dalvik method whose
// invoke targets are the real framework descriptors (WakeLock.acquire,
// LocationManager.requestLocationUpdates, Socket.connect, ...), guards
// compile to conditional branches, and periodic-task bodies compile to
// separate Runnable.run methods.  The static no-sleep baseline analyzes
// exactly this code — so whether it detects a bug is decided by the same
// artifact that produces the runtime power behaviour.
#pragma once

#include "android/apk.h"
#include "android/app.h"

namespace edx::android {

/// Builds the (uninstrumented) APK of `app`.
Apk build_apk(const AppSpec& app);

/// Compiles one behavior into method code (exposed for tests).
std::vector<Instruction> compile_behavior(const Behavior& behavior);

/// Compiles a periodic task's work list into a Runnable.run body.
std::vector<Instruction> compile_task_work(const std::vector<SimpleOp>& work);

}  // namespace edx::android
