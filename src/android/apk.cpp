#include "android/apk.h"

#include <sstream>

#include "common/error.h"
#include "common/strings.h"

namespace edx::android {

// Packed format, line-oriented:
//   APK <package>
//   RES <size> <name>
//   CLASS <kind> <name>
//   METHOD <loc> <instrumented:0|1> <name>
//   I <opcode> [operand]
//   END-METHOD / END-CLASS / END-APK
// Invoke operands are the raw descriptor; branch operands are the decimal
// instruction index.

std::string pack(const Apk& apk) {
  std::ostringstream out;
  out << "APK " << apk.package_name << '\n';
  for (const auto& [name, size] : apk.resources) {
    out << "RES " << size << ' ' << name << '\n';
  }
  for (const DexClass& dex_class : apk.dex.classes) {
    out << "CLASS " << class_kind_name(dex_class.kind) << ' '
        << dex_class.name << '\n';
    for (const Method& method : dex_class.methods) {
      out << "METHOD " << method.lines_of_code << ' '
          << (method.instrumented ? 1 : 0) << ' ' << method.name << '\n';
      for (const Instruction& instruction : method.code) {
        out << "I " << opcode_name(instruction.opcode);
        switch (instruction.opcode) {
          case Opcode::kInvoke:
            out << ' ' << instruction.target;
            break;
          case Opcode::kIfEqz:
          case Opcode::kGoto:
            out << ' ' << instruction.branch_target;
            break;
          default:
            break;
        }
        out << '\n';
      }
      out << "END-METHOD\n";
    }
    out << "END-CLASS\n";
  }
  out << "END-APK\n";
  return out.str();
}

namespace {

Opcode opcode_from_name(const std::string& name) {
  static const std::pair<const char*, Opcode> kTable[] = {
      {"nop", Opcode::kNop},         {"const", Opcode::kConst},
      {"move", Opcode::kMove},       {"invoke", Opcode::kInvoke},
      {"if-eqz", Opcode::kIfEqz},    {"goto", Opcode::kGoto},
      {"return", Opcode::kReturn},   {"throw", Opcode::kThrow},
      {"log-entry", Opcode::kLogEntry},
      {"log-exit", Opcode::kLogExit},
  };
  for (const auto& [text, opcode] : kTable) {
    if (name == text) return opcode;
  }
  throw ParseError("unpack: unknown opcode '" + name + "'");
}

ClassKind class_kind_from_name(const std::string& name) {
  if (name == "activity") return ClassKind::kActivity;
  if (name == "service") return ClassKind::kService;
  if (name == "other") return ClassKind::kOther;
  throw ParseError("unpack: unknown class kind '" + name + "'");
}

}  // namespace

Apk unpack(const std::string& blob) {
  std::istringstream in(blob);
  std::string line;

  const auto next_line = [&]() -> bool {
    while (std::getline(in, line)) {
      line = strings::trim(line);
      if (!line.empty()) return true;
    }
    return false;
  };
  const auto fail = [](const std::string& why) -> void {
    throw ParseError("unpack: " + why);
  };

  if (!next_line() || !strings::starts_with(line, "APK ")) {
    fail("missing APK header");
  }
  Apk apk;
  apk.package_name = strings::trim(line.substr(4));

  DexClass* current_class = nullptr;
  Method* current_method = nullptr;
  while (next_line()) {
    if (line == "END-APK") return apk;
    if (strings::starts_with(line, "RES ")) {
      std::istringstream fields(line.substr(4));
      std::size_t size = 0;
      std::string name;
      if (!(fields >> size >> name)) fail("malformed RES line");
      apk.resources[name] = size;
    } else if (strings::starts_with(line, "CLASS ")) {
      std::istringstream fields(line.substr(6));
      std::string kind, name;
      if (!(fields >> kind >> name)) fail("malformed CLASS line");
      apk.dex.classes.push_back(
          DexClass{name, class_kind_from_name(kind), {}});
      current_class = &apk.dex.classes.back();
      current_method = nullptr;
    } else if (strings::starts_with(line, "METHOD ")) {
      if (current_class == nullptr) fail("METHOD outside CLASS");
      std::istringstream fields(line.substr(7));
      int loc = 0;
      int instrumented = 0;
      std::string name;
      if (!(fields >> loc >> instrumented >> name)) {
        fail("malformed METHOD line");
      }
      Method method;
      method.name = name;
      method.lines_of_code = loc;
      method.instrumented = instrumented != 0;
      current_class->methods.push_back(std::move(method));
      current_method = &current_class->methods.back();
    } else if (strings::starts_with(line, "I ")) {
      if (current_method == nullptr) fail("instruction outside METHOD");
      std::istringstream fields(line.substr(2));
      std::string opcode_text;
      if (!(fields >> opcode_text)) fail("malformed instruction line");
      Instruction instruction;
      instruction.opcode = opcode_from_name(opcode_text);
      if (instruction.opcode == Opcode::kInvoke) {
        std::string target;
        if (!(fields >> target)) fail("invoke without target");
        instruction.target = target;
      } else if (instruction.opcode == Opcode::kIfEqz ||
                 instruction.opcode == Opcode::kGoto) {
        if (!(fields >> instruction.branch_target)) {
          fail("branch without target index");
        }
      }
      current_method->code.push_back(std::move(instruction));
    } else if (line == "END-METHOD") {
      if (current_method == nullptr) fail("stray END-METHOD");
      current_method = nullptr;
    } else if (line == "END-CLASS") {
      if (current_class == nullptr) fail("stray END-CLASS");
      current_class = nullptr;
    } else {
      fail("unrecognized line '" + line + "'");
    }
  }
  fail("missing END-APK");
  return apk;  // unreachable
}

}  // namespace edx::android
