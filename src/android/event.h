// Event vocabulary of the simulated Android framework.
//
// EnergyDx only instruments events "related to user interaction and
// activity lifecycle" (Table I of the paper): the activity/service
// lifecycle callbacks and the View interaction callbacks.  This header
// defines that pool plus the naming scheme used across the traces
// ("Lcom/fsck/k9/activity/MessageList;.onResume").
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace edx::android {

/// Category of an event, mirroring Table I plus the synthesized idle event.
enum class EventKind {
  kLifecycle,  ///< android.app.Activity / android.app.Service lifecycle
  kUi,         ///< android.View interaction callbacks
  kIdle,       ///< synthesized Idle(No_Display) background marker
  kOther,      ///< app-internal methods, never instrumented
};

std::string_view event_kind_name(EventKind kind);

/// The activity-lifecycle callback names the instrumenter matches.
const std::vector<std::string>& lifecycle_callback_names();

/// The UI callback name *prefixes* the instrumenter matches.  A UI callback
/// may carry a widget suffix ("onClick:btnSend", "menu_item_newsfeed"), so
/// matching is prefix-based for the onX family plus an explicit menu/widget
/// convention.
const std::vector<std::string>& ui_callback_prefixes();

/// Classifies a bare callback name ("onResume", "onClick:btnSend",
/// "menuDeleted", "Idle(No_Display)") into its EventKind.  Names that match
/// neither the lifecycle set, the UI prefixes, a "menu*" widget convention,
/// nor the idle marker are kOther.
EventKind classify_callback(std::string_view callback_name);

/// The pool of events the instrumenter rewrites: lifecycle + UI.
bool is_instrumentable(std::string_view callback_name);

/// Joins a JVM-style class name and callback into the canonical event name
/// used throughout traces and reports, e.g.
/// qualified_event_name("Lcom/fsck/k9/activity/MessageList;", "onResume")
///   == "Lcom/fsck/k9/activity/MessageList;.onResume".
EventName qualified_event_name(std::string_view class_name,
                               std::string_view callback_name);

/// Splits a canonical event name back into {class, callback}.  Throws
/// ParseError if there is no '.' separator after the ';'.
struct SplitEventName {
  std::string class_name;
  std::string callback_name;
};
SplitEventName split_event_name(const EventName& event_name);

/// Short human form used in the paper's tables: "MessageList:onResume".
std::string short_event_name(const EventName& event_name);

/// The synthesized background event name; appears in traces as a regular
/// event with an empty class.
inline constexpr std::string_view kIdleEventName = "Idle(No_Display)";

}  // namespace edx::android
