#include "android/app.h"

#include <algorithm>

#include "common/error.h"
#include "common/strings.h"

namespace edx::android {

const CallbackSpec* ComponentSpec::find_callback(
    const std::string& name) const {
  for (const CallbackSpec& callback : callbacks) {
    if (callback.name == name) return &callback;
  }
  return nullptr;
}

CallbackSpec* ComponentSpec::find_callback(const std::string& name) {
  return const_cast<CallbackSpec*>(
      static_cast<const ComponentSpec*>(this)->find_callback(name));
}

void ComponentSpec::set_callback(CallbackSpec callback) {
  if (CallbackSpec* existing = find_callback(callback.name)) {
    *existing = std::move(callback);
    return;
  }
  callbacks.push_back(std::move(callback));
}

const ComponentSpec* AppSpec::find_component(
    const std::string& class_name) const {
  for (const ComponentSpec& component : components) {
    if (component.class_name == class_name) return &component;
  }
  return nullptr;
}

ComponentSpec* AppSpec::find_component(const std::string& class_name) {
  return const_cast<ComponentSpec*>(
      static_cast<const AppSpec*>(this)->find_component(class_name));
}

const ComponentSpec* AppSpec::find_component_by_simple_name(
    const std::string& simple_name) const {
  for (const ComponentSpec& component : components) {
    if (component.simple_name == simple_name) return &component;
  }
  return nullptr;
}

int AppSpec::total_loc() const {
  int total = glue_loc;
  for (const ComponentSpec& component : components) {
    total += component.helper_loc;
    for (const CallbackSpec& callback : component.callbacks) {
      total += callback.lines_of_code;
    }
  }
  return total;
}

void AppSpec::ensure_lifecycle_callbacks() {
  const auto default_callback = [](const std::string& name) {
    CallbackSpec callback;
    callback.name = name;
    // A typical real-world lifecycle override plus the private helpers it
    // calls — the unit of code a developer reads when the event is
    // reported to them.
    callback.lines_of_code = 24;
    callback.behavior = {lift(cpu_work(4, 0.25))};
    return callback;
  };

  for (ComponentSpec& component : components) {
    const std::vector<std::string> needed =
        component.kind == ClassKind::kActivity
            ? std::vector<std::string>{"onCreate", "onStart", "onResume",
                                       "onPause", "onStop", "onRestart",
                                       "onDestroy"}
            : std::vector<std::string>{"onCreate", "onStartCommand",
                                       "onDestroy"};
    if (component.kind == ClassKind::kOther) continue;
    for (const std::string& name : needed) {
      if (component.find_callback(name) == nullptr) {
        component.callbacks.push_back(default_callback(name));
      }
    }
  }
}

std::string make_class_name(const std::string& package_name,
                            const std::string& subpackage,
                            const std::string& simple_name) {
  require(!package_name.empty() && !simple_name.empty(),
          "make_class_name: package and simple name must be non-empty");
  std::string path = strings::replace_all(package_name, ".", "/");
  if (!subpackage.empty()) path += "/" + subpackage;
  return "L" + path + "/" + simple_name + ";";
}

}  // namespace edx::android
