// Declarative app model.
//
// An AppSpec describes a simulated app the way its manifest + source tree
// would: components (activities/services), their callbacks with behavior
// scripts and source-line budgets, default configuration, and the bulk
// "everything else" code that is not in any instrumented callback.  The
// catalog in src/workload builds AppSpecs; apk_builder lowers them to dex.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "android/dex.h"
#include "android/event.h"
#include "android/ops.h"

namespace edx::android {

/// One callback of a component.
struct CallbackSpec {
  std::string name;        ///< "onResume", "onClick:btnSend", "menuDeleted"
  int lines_of_code{12};   ///< handler + directly-invoked private helpers
  Behavior behavior;
};

/// One activity or service.
struct ComponentSpec {
  std::string class_name;   ///< "Lcom/fsck/k9/activity/MessageList;"
  std::string simple_name;  ///< "MessageList"
  ClassKind kind{ClassKind::kActivity};
  std::vector<CallbackSpec> callbacks;
  /// Source lines in this component *outside* any callback (private
  /// helpers, adapters, layouts); lowered to helper methods in the dex.
  int helper_loc{0};

  [[nodiscard]] const CallbackSpec* find_callback(
      const std::string& name) const;
  [[nodiscard]] CallbackSpec* find_callback(const std::string& name);

  /// Adds a callback, replacing any existing one with the same name.
  void set_callback(CallbackSpec callback);
};

/// A whole app.
struct AppSpec {
  std::string package_name;  ///< "com.fsck.k9"
  std::string display_name;  ///< "K-9 Mail"
  std::vector<ComponentSpec> components;
  std::string main_activity;  ///< class_name of the launcher activity
  std::map<std::string, std::string> default_config;
  /// App-level code outside all components (build glue, libraries vendored
  /// into the app, resources' code-behind).
  int glue_loc{0};

  [[nodiscard]] const ComponentSpec* find_component(
      const std::string& class_name) const;
  [[nodiscard]] ComponentSpec* find_component(const std::string& class_name);
  [[nodiscard]] const ComponentSpec* find_component_by_simple_name(
      const std::string& simple_name) const;

  /// Total source lines: callbacks + helpers + glue.
  [[nodiscard]] int total_loc() const;

  /// Gives every activity the full lifecycle set and every service
  /// onCreate/onStartCommand/onDestroy, adding default lightweight
  /// callbacks where the builder did not specify one.  Idempotent.
  void ensure_lifecycle_callbacks();
};

/// Builds the canonical JVM class name for a component of `package`:
/// make_class_name("com.fsck.k9", "activity", "MessageList")
///   == "Lcom/fsck/k9/activity/MessageList;".
std::string make_class_name(const std::string& package_name,
                            const std::string& subpackage,
                            const std::string& simple_name);

}  // namespace edx::android
