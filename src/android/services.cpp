#include "android/services.h"

#include <algorithm>

#include "common/error.h"

namespace edx::android {

using power::Component;

ConfigStore::ConfigStore(std::map<std::string, std::string> initial)
    : values_(std::move(initial)) {}

void ConfigStore::set(const std::string& key, const std::string& value) {
  values_[key] = value;
}

std::string ConfigStore::get(const std::string& key) const {
  const auto it = values_.find(key);
  return it == values_.end() ? std::string{} : it->second;
}

bool ConfigStore::has(const std::string& key) const {
  return values_.contains(key);
}

SystemServices::SystemServices(power::UtilizationTimeline& timeline, Pid pid,
                               ConfigStore config, ResourceCosts costs)
    : timeline_(timeline),
      pid_(pid),
      config_(std::move(config)),
      costs_(costs) {}

bool SystemServices::guard_allows(const SimpleOp& op) const {
  if (op.guard_key.empty()) return true;
  const bool matches = config_.get(op.guard_key) == op.guard_value;
  return op.guard_negate ? !matches : matches;
}

DurationMs SystemServices::execute(const SimpleOp& op, TimestampMs now) {
  if (!guard_allows(op)) return 0;

  switch (op.kind) {
    case OpKind::kCpuWork:
      timeline_.add(pid_, Component::kCpu, {now, now + op.duration_ms},
                    op.utilization);
      return op.duration_ms;

    case OpKind::kNetwork: {
      // Transfers run on a binder/network thread: the radio and its CPU
      // cost occupy the timeline for the transfer duration, but the
      // calling callback does not block (returns 0 consumed time).
      const Component radio =
          op.over_wifi ? Component::kWifi : Component::kCellular;
      timeline_.add(pid_, radio, {now, now + op.duration_ms}, op.utilization);
      timeline_.add(pid_, Component::kCpu, {now, now + op.duration_ms},
                    costs_.network_cpu * op.utilization);
      return 0;
    }

    case OpKind::kSleep:
      return op.duration_ms;

    case OpKind::kGpsStart:
      if (!gps_handle_) {
        gps_handle_ = timeline_.open(pid_, Component::kGps, now, costs_.gps);
      }
      return 0;
    case OpKind::kGpsStop:
      if (gps_handle_) {
        timeline_.close(*gps_handle_, now);
        gps_handle_.reset();
      }
      return 0;

    case OpKind::kSensorStart:
      if (!sensor_handle_) {
        sensor_handle_ =
            timeline_.open(pid_, Component::kSensor, now, costs_.sensor);
      }
      return 0;
    case OpKind::kSensorStop:
      if (sensor_handle_) {
        timeline_.close(*sensor_handle_, now);
        sensor_handle_.reset();
      }
      return 0;

    case OpKind::kAudioStart:
      if (!audio_handle_) {
        audio_handle_ =
            timeline_.open(pid_, Component::kAudio, now, costs_.audio);
        audio_cpu_handle_ =
            timeline_.open(pid_, Component::kCpu, now, costs_.audio_cpu);
      }
      return 0;
    case OpKind::kAudioStop:
      if (audio_handle_) {
        timeline_.close(*audio_handle_, now);
        audio_handle_.reset();
      }
      if (audio_cpu_handle_) {
        timeline_.close(*audio_cpu_handle_, now);
        audio_cpu_handle_.reset();
      }
      return 0;

    case OpKind::kWakeLockAcquire:
      if (!wakelocks_.contains(op.id)) {
        wakelocks_[op.id] =
            timeline_.open(pid_, Component::kCpu, now, costs_.wakelock_cpu);
      }
      return 0;
    case OpKind::kWakeLockRelease: {
      // Releasing a lock that is not held is a silent no-op, exactly like
      // releasing the wrong WakeLock object in real code — this is the
      // aliased-release false-negative pattern for the no-sleep baseline.
      const auto it = wakelocks_.find(op.id);
      if (it != wakelocks_.end()) {
        timeline_.close(it->second, now);
        wakelocks_.erase(it);
      }
      return 0;
    }

    case OpKind::kSetConfig:
      config_.set(op.id, op.value);
      return 0;

    case OpKind::kStartPeriodicTask:
    case OpKind::kCancelPeriodicTask:
      throw InvalidArgument(
          "SystemServices::execute(SimpleOp): task ops require the Op "
          "overload");
  }
  throw InvalidArgument("SystemServices::execute: unknown op kind");
}

DurationMs SystemServices::execute(const Op& op, TimestampMs now) {
  if (!guard_allows(op)) return 0;

  switch (op.kind) {
    case OpKind::kStartPeriodicTask: {
      // Re-scheduling an existing id restarts it (Handler semantics).
      for (ScheduledTask& task : tasks_) {
        if (task.id == op.id && !task.cancelled) task.cancelled = true;
      }
      ScheduledTask task;
      task.id = op.id;
      task.period_ms = op.period_ms;
      task.work = op.task_work;
      task.next_fire = now + op.period_ms;
      tasks_.push_back(std::move(task));
      return 0;
    }
    case OpKind::kCancelPeriodicTask:
      for (ScheduledTask& task : tasks_) {
        if (task.id == op.id) task.cancelled = true;
      }
      return 0;
    default:
      return execute(static_cast<const SimpleOp&>(op), now);
  }
}

void SystemServices::fire_task(ScheduledTask& task, TimestampMs now) {
  TimestampMs cursor = now;
  for (const SimpleOp& op : task.work) {
    cursor += execute(op, cursor);
  }
}

void SystemServices::run_tasks_until(TimestampMs now) {
  if (dozing_) return;  // deferred until exit_doze advances the schedules
  // Tasks can be added while firing (a task op could in principle schedule);
  // index loop keeps iterators valid.
  bool fired = true;
  while (fired) {
    fired = false;
    for (std::size_t i = 0; i < tasks_.size(); ++i) {
      ScheduledTask& task = tasks_[i];
      if (task.cancelled || task.next_fire > now) continue;
      const TimestampMs fire_time = task.next_fire;
      task.next_fire += task.period_ms;
      fire_task(task, fire_time);
      fired = true;
    }
  }
}

bool SystemServices::enter_doze(TimestampMs now) {
  if (dozing_) return true;
  if (!wakelocks_.empty()) return false;  // a held wakelock defeats Doze
  run_tasks_until(now);  // settle everything due before suspension
  dozing_ = true;
  return true;
}

void SystemServices::exit_doze(TimestampMs now) {
  if (!dozing_) return;
  dozing_ = false;
  // Deferred tasks do not back-fill the doze window; they resume their
  // cadence from now.
  for (ScheduledTask& task : tasks_) {
    if (!task.cancelled && task.next_fire < now) {
      task.next_fire = now + task.period_ms;
    }
  }
}

void SystemServices::shutdown(TimestampMs end) {
  run_tasks_until(end);
  for (auto& [id, handle] : wakelocks_) timeline_.close(handle, end);
  wakelocks_.clear();
  if (gps_handle_) timeline_.close(*gps_handle_, end);
  gps_handle_.reset();
  if (sensor_handle_) timeline_.close(*sensor_handle_, end);
  sensor_handle_.reset();
  if (audio_handle_) timeline_.close(*audio_handle_, end);
  audio_handle_.reset();
  if (audio_cpu_handle_) timeline_.close(*audio_cpu_handle_, end);
  audio_cpu_handle_.reset();
  for (ScheduledTask& task : tasks_) task.cancelled = true;
}

bool SystemServices::wakelock_held(const std::string& id) const {
  return wakelocks_.contains(id);
}

std::size_t SystemServices::held_wakelock_count() const {
  return wakelocks_.size();
}

std::size_t SystemServices::active_task_count() const {
  return static_cast<std::size_t>(
      std::count_if(tasks_.begin(), tasks_.end(),
                    [](const ScheduledTask& task) { return !task.cancelled; }));
}

}  // namespace edx::android
