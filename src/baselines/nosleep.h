// No-sleep Detection baseline (Pathak et al. [9]).
//
// A static dataflow analysis over the app's Dalvik code: for every
// power-encumbered resource (wakelock, GPS updates, sensor listener, media
// playback), check whether a resource acquired by a component can reach a
// suspension point without being released — i.e. whether there exists a
// control-flow path on which the matching release never executes.
//
// The analysis is path-sensitive within methods (CFG reachability over
// release-free paths) and protocol-aware across a component's lifecycle
// (an activity must release by the end of onPause; a service by onDestroy).
// It is *syntactic* about receivers, matching the published tool: a
// release call on the wrong lock object still looks like a release — which
// yields exactly the aliased-lock false negatives discussed in DESIGN.md.
#pragma once

#include <string>
#include <vector>

#include "android/apk.h"

namespace edx::baselines {

/// The resource protocols the detector checks.
struct ResourceProtocol {
  std::string name;             ///< "wakelock", "gps", ...
  std::string acquire_target;   ///< invoke descriptor that acquires
  std::string release_target;   ///< invoke descriptor that releases
};

/// The four built-in protocols.
const std::vector<ResourceProtocol>& default_protocols();

/// One potential no-sleep bug.
struct NoSleepFinding {
  std::string class_name;     ///< component that acquires
  std::string method_name;    ///< method containing the acquire
  std::string resource;       ///< protocol name
  std::string reason;         ///< human-readable explanation
};

struct NoSleepReport {
  std::vector<NoSleepFinding> findings;
  [[nodiscard]] bool detected() const { return !findings.empty(); }
};

class NoSleepDetector {
 public:
  /// Analyzes `apk` with the default protocols.
  [[nodiscard]] NoSleepReport analyze(const android::Apk& apk) const;

  /// Analyzes with custom protocols.
  [[nodiscard]] NoSleepReport analyze(
      const android::Apk& apk,
      const std::vector<ResourceProtocol>& protocols) const;
};

/// True if `invoke_target` refers to the API `descriptor` — matching is
/// *syntactic* on the descriptor prefix; a "#<receiver>" suffix (which
/// object the call is on) is invisible, exactly like the published tools.
bool invokes_api(const std::string& invoke_target,
                 const std::string& descriptor);

/// True if every control-flow path from the method entry to any return
/// passes an invoke of `release_target`.  Exposed for tests.
bool releases_on_all_paths(const android::Method& method,
                           const std::string& release_target);

/// Same, but only considering paths that start *after* the invoke at
/// `acquire_index` (does the method clean up what it just acquired?).
bool releases_after_acquire(const android::Method& method,
                            std::size_t acquire_index,
                            const std::string& release_target);

}  // namespace edx::baselines
