// eDelta baseline (Li et al. [10]).
//
// eDelta pinpoints "high energy deviation APIs" by comparative trace
// analysis: for each instrumented API (event), it compares the power
// attributed to its instances across traces — an instance owns the window
// from its start until the next event begins, so a drain that an API kicks
// off and leaves running is charged to that API.  An API is flagged when
// its worst instance's power deviates from the typical (median) instance
// by more than a *fixed* threshold.
//
// Its stated weakness — inherited here — is exactly that fixed threshold:
// an ABD whose power deviation is small but long-lasting (a held partial
// wakelock, a leaked sensor listener) stays below the bar, while
// EnergyDx's per-trace IQR fence adapts to however flat the rest of the
// trace is.  The synthesized Idle(No_Display) markers are EnergyDx
// instrumentation, not app APIs, so eDelta neither reports them nor sees
// them as boundaries.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/types.h"
#include "power/power_model.h"
#include "trace/recorder.h"

namespace edx::baselines {

struct EDeltaConfig {
  /// Flag an API when (high-percentile instance power - median instance
  /// power) exceeds this many mW.
  PowerMw power_deviation_threshold_mw{150.0};
  /// Percentile representing the API's deviant instances.  90 (rather
  /// than the maximum) keeps one or two instances that merely overlapped
  /// somebody else's radio burst from flagging an innocent API.
  double high_percentile{90.0};
  /// APIs with fewer instances than this across the collection are skipped
  /// (deviation of a singleton is meaningless).
  std::size_t min_instances{4};
};

/// One flagged API.
struct EDeltaFinding {
  EventName api;
  PowerMw median_power_mw{0.0};
  PowerMw high_power_mw{0.0};  ///< the config's high percentile
  PowerMw deviation_mw{0.0};   ///< high - median
};

struct EDeltaReport {
  std::vector<EDeltaFinding> findings;  ///< sorted by deviation, descending
  [[nodiscard]] bool detected() const { return !findings.empty(); }
};

class EDelta {
 public:
  /// `model` is the (reference-device) power model eDelta uses to
  /// recompute per-API power from the recorded component utilization with
  /// the display excluded — its fine-grained instrumentation charges an
  /// API for the hardware *it* drives, not for the screen being on.
  explicit EDelta(EDeltaConfig config = {},
                  power::PowerModel model = power::PowerModel(power::nexus6()));

  /// Takes a span only (vectors convert implicitly; wrap a single
  /// bundle as `std::span(&bundle, 1)`).
  [[nodiscard]] EDeltaReport run(
      std::span<const trace::TraceBundle> bundles) const;

 private:
  EDeltaConfig config_;
  power::PowerModel model_;
};

}  // namespace edx::baselines
