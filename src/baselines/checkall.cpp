#include "baselines/checkall.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "core/event_power.h"

namespace edx::baselines {

CheckAll::CheckAll(CheckAllConfig config) : config_(config) {}

CheckAllReport CheckAll::run(
    std::span<const trace::TraceBundle> bundles) const {
  CheckAllReport report;
  report.total_traces = bundles.size();

  std::set<EventName> reported;
  for (const trace::TraceBundle& bundle : bundles) {
    const core::AnalyzedTrace trace = core::estimate_event_power(bundle);
    const std::size_t count = trace.events.size();
    for (std::size_t i = 0; i + 1 < count; ++i) {
      // Any abrupt raw-power change is a "transition point" to CheckAll —
      // it cannot tell a camera turning on from a screen turning off.
      const double change = std::abs(
          trace.events[i + 1].raw_power - trace.events[i].raw_power);
      if (change < config_.transition_threshold_mw) continue;
      ++report.transition_points;
      const std::size_t lo =
          i >= config_.window_size ? i - config_.window_size : 0;
      const std::size_t hi = std::min(count, i + config_.window_size + 1);
      for (std::size_t j = lo; j < hi; ++j) {
        reported.insert(trace.events[j].name());
      }
    }
  }
  report.reported_events.assign(reported.begin(), reported.end());
  return report;
}

}  // namespace edx::baselines
