#include "baselines/nosleep.h"

#include <algorithm>
#include <set>

#include "common/error.h"

namespace edx::baselines {

using android::BasicBlock;
using android::ClassKind;
using android::DexClass;
using android::Instruction;
using android::Method;
using android::Opcode;

const std::vector<ResourceProtocol>& default_protocols() {
  static const std::vector<ResourceProtocol> kProtocols = {
      {"wakelock", android::api::kWakeLockAcquire,
       android::api::kWakeLockRelease},
      {"gps", android::api::kGpsRequestUpdates,
       android::api::kGpsRemoveUpdates},
      {"sensor", android::api::kSensorRegister,
       android::api::kSensorUnregister},
      {"audio", android::api::kAudioStart, android::api::kAudioStop},
  };
  return kProtocols;
}

bool invokes_api(const std::string& invoke_target,
                 const std::string& descriptor) {
  if (invoke_target == descriptor) return true;
  return invoke_target.size() > descriptor.size() &&
         invoke_target.compare(0, descriptor.size(), descriptor) == 0 &&
         invoke_target[descriptor.size()] == '#';
}

namespace {

/// True if `block` of `method` contains an invoke of `target` at an
/// instruction index strictly greater than `after` (pass -1 for "anywhere").
bool block_has_release(const Method& method, const BasicBlock& block,
                       const std::string& target, std::ptrdiff_t after) {
  for (std::size_t i = block.first; i <= block.last; ++i) {
    if (static_cast<std::ptrdiff_t>(i) <= after) continue;
    const Instruction& instruction = method.code[i];
    if (instruction.opcode == Opcode::kInvoke &&
        invokes_api(instruction.target, target)) {
      return true;
    }
  }
  return false;
}

/// DFS over release-free paths.  Returns true if a return is reachable from
/// `start_block` without passing a release of `target`.  `after` restricts
/// the *start block only*: instructions at or before that index are ignored
/// (we begin just after the acquire).
bool leak_path_exists(const Method& method,
                      const std::vector<BasicBlock>& cfg,
                      std::size_t start_block, const std::string& target,
                      std::ptrdiff_t after) {
  std::vector<bool> visited(cfg.size(), false);
  std::vector<std::pair<std::size_t, std::ptrdiff_t>> stack;
  stack.emplace_back(start_block, after);
  while (!stack.empty()) {
    const auto [block_index, skip_until] = stack.back();
    stack.pop_back();
    const BasicBlock& block = cfg[block_index];

    if (block_has_release(method, block, target, skip_until)) {
      continue;  // this path is covered; do not extend it
    }
    // Both normal returns and uncaught throws leave the method; a resource
    // still held on either is leaked (the classic "exception between
    // acquire and release" no-sleep bug).
    if (method.code[block.last].opcode == Opcode::kReturn ||
        method.code[block.last].opcode == Opcode::kThrow) {
      return true;  // reached an exit without a release
    }
    if (visited[block_index] && skip_until < 0) continue;
    if (skip_until < 0) visited[block_index] = true;
    for (std::size_t successor : block.successors) {
      stack.emplace_back(successor, -1);
    }
  }
  return false;
}

std::size_t block_containing(const std::vector<BasicBlock>& cfg,
                             std::size_t instruction_index) {
  for (std::size_t b = 0; b < cfg.size(); ++b) {
    if (cfg[b].first <= instruction_index && instruction_index <= cfg[b].last) {
      return b;
    }
  }
  throw InvalidArgument("block_containing: index outside method");
}

/// Teardown callbacks whose completion must leave the resource released.
std::vector<std::string> teardown_methods(ClassKind kind) {
  switch (kind) {
    case ClassKind::kActivity:
      return {"onPause"};
    case ClassKind::kService:
      return {"onDestroy"};
    case ClassKind::kOther:
      return {};
  }
  return {};
}

}  // namespace

bool releases_on_all_paths(const Method& method,
                           const std::string& release_target) {
  if (method.code.empty()) return false;
  const std::vector<BasicBlock> cfg = android::build_cfg(method);
  return !leak_path_exists(method, cfg, 0, release_target, /*after=*/-1);
}

bool releases_after_acquire(const Method& method, std::size_t acquire_index,
                            const std::string& release_target) {
  require(acquire_index < method.code.size(),
          "releases_after_acquire: index out of range");
  const std::vector<BasicBlock> cfg = android::build_cfg(method);
  const std::size_t start = block_containing(cfg, acquire_index);
  return !leak_path_exists(method, cfg, start, release_target,
                           static_cast<std::ptrdiff_t>(acquire_index));
}

NoSleepReport NoSleepDetector::analyze(const android::Apk& apk) const {
  return analyze(apk, default_protocols());
}

NoSleepReport NoSleepDetector::analyze(
    const android::Apk& apk,
    const std::vector<ResourceProtocol>& protocols) const {
  NoSleepReport report;
  for (const DexClass& dex_class : apk.dex.classes) {
    for (const ResourceProtocol& protocol : protocols) {
      // Gather acquire sites in this class (prefix-matched: the receiver
      // suffix is invisible to syntactic analysis).
      for (const Method& method : dex_class.methods) {
        std::vector<std::size_t> acquires;
        for (std::size_t i = 0; i < method.code.size(); ++i) {
          if (method.code[i].opcode == Opcode::kInvoke &&
              invokes_api(method.code[i].target, protocol.acquire_target)) {
            acquires.push_back(i);
          }
        }
        for (std::size_t acquire : acquires) {
          // Case 1: the acquiring method itself releases on every path
          // after the acquire -> tight critical section, fine.
          if (releases_after_acquire(method, acquire,
                                     protocol.release_target)) {
            continue;
          }
          // Case 2: the resource is meant to outlive the method; then
          // every teardown callback of the component must release it on
          // all paths.
          const std::vector<std::string> teardowns =
              teardown_methods(dex_class.kind);
          bool released_at_teardown = !teardowns.empty();
          std::string missing;
          for (const std::string& teardown_name : teardowns) {
            const Method* teardown = dex_class.find_method(teardown_name);
            if (teardown == nullptr ||
                !releases_on_all_paths(*teardown, protocol.release_target)) {
              released_at_teardown = false;
              missing = teardown_name;
              break;
            }
          }
          if (released_at_teardown) continue;

          NoSleepFinding finding;
          finding.class_name = dex_class.name;
          finding.method_name = method.name;
          finding.resource = protocol.name;
          finding.reason =
              teardowns.empty()
                  ? "acquired in a non-lifecycle class and not released on "
                    "all paths"
                  : "not released on all paths of " +
                        (missing.empty() ? teardowns.front() : missing);
          report.findings.push_back(std::move(finding));
        }
      }
    }
  }
  return report;
}

}  // namespace edx::baselines
