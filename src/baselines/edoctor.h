// eDoctor-style app-level impact estimation (Ma et al. [3]).
//
// EnergyDx's Step 5 needs the fraction of users impacted by the ABD; the
// paper says developers obtain it from forum reports or "app-level
// detection tools, such as eDoctor".  This module is that tool: it
// clusters each trace's power samples into usage phases (k-means, k=3:
// idle / active / heavy), extracts the *idle-phase* power — what the app
// draws when the user is doing nothing — and flags the traces whose idle
// draw is a fleet-level outlier.  An app that drains while idle is exactly
// what users report as abnormal battery drain.
//
// Unlike EnergyDx it knows nothing about events or code: its verdict is
// per *user*, which is why the paper calls this class of tool too
// coarse-grained for developers — but exactly right for estimating the
// impacted fraction.
#pragma once

#include <span>
#include <vector>

#include "common/types.h"
#include "trace/recorder.h"

namespace edx::baselines {

struct EDoctorConfig {
  /// Number of usage phases to cluster power samples into.
  std::size_t phases{3};
  /// k-means iterations (convergence is fast in 1-D).
  std::size_t iterations{32};
  /// A trace is impacted when its idle-phase power exceeds the fleet
  /// median idle-phase power by more than `fence_iqr_multiplier` IQRs
  /// (same Tukey machinery as the manifestation detector) and by at least
  /// `min_excess_mw` absolutely.
  double fence_iqr_multiplier{3.0};
  PowerMw min_excess_mw{15.0};
};

/// Per-trace phase summary.
struct PhaseSummary {
  UserId user{0};
  PowerMw idle_phase_mw{0.0};    ///< centroid of the lowest phase
  PowerMw active_phase_mw{0.0};  ///< centroid of the highest phase
  double idle_share{0.0};        ///< fraction of samples in the idle phase
  bool impacted{false};
};

struct EDoctorReport {
  std::vector<PhaseSummary> summaries;  ///< one per trace, input order
  std::size_t impacted_users{0};
  double impacted_fraction{0.0};
  PowerMw fleet_idle_median_mw{0.0};
  PowerMw fence_mw{0.0};
};

class EDoctor {
 public:
  explicit EDoctor(EDoctorConfig config = {});

  /// Estimates which users' traces carry an ABD.
  /// Takes a span only (vectors convert implicitly; wrap a single
  /// bundle as `std::span(&bundle, 1)`).
  [[nodiscard]] EDoctorReport run(
      std::span<const trace::TraceBundle> bundles) const;

 private:
  EDoctorConfig config_;
};

/// 1-D k-means (Lloyd's algorithm) used by the phase clustering; exposed
/// for tests.  Returns the sorted centroids; `assignments[i]` indexes into
/// them.  Deterministic: centroids initialize from evenly-spaced quantiles.
std::vector<double> kmeans_1d(const std::vector<double>& values, std::size_t k,
                              std::size_t iterations,
                              std::vector<std::size_t>* assignments = nullptr);

}  // namespace edx::baselines
