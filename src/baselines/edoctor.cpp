#include "baselines/edoctor.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/stats.h"

namespace edx::baselines {

std::vector<double> kmeans_1d(const std::vector<double>& values, std::size_t k,
                              std::size_t iterations,
                              std::vector<std::size_t>* assignments) {
  require(k >= 1, "kmeans_1d: k must be positive");
  require(!values.empty(), "kmeans_1d: empty input");

  // Deterministic init: evenly spaced quantiles.
  std::vector<double> centroids(k);
  for (std::size_t c = 0; c < k; ++c) {
    const double p = k == 1 ? 50.0
                            : 100.0 * static_cast<double>(c) /
                                  static_cast<double>(k - 1);
    centroids[c] = stats::percentile(values, p);
  }

  std::vector<std::size_t> labels(values.size(), 0);
  for (std::size_t iteration = 0; iteration < iterations; ++iteration) {
    // Assign.
    bool moved = false;
    for (std::size_t i = 0; i < values.size(); ++i) {
      std::size_t best = 0;
      double best_distance = std::abs(values[i] - centroids[0]);
      for (std::size_t c = 1; c < k; ++c) {
        const double distance = std::abs(values[i] - centroids[c]);
        if (distance < best_distance) {
          best_distance = distance;
          best = c;
        }
      }
      if (labels[i] != best) {
        labels[i] = best;
        moved = true;
      }
    }
    // Update.
    std::vector<double> totals(k, 0.0);
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t i = 0; i < values.size(); ++i) {
      totals[labels[i]] += values[i];
      ++counts[labels[i]];
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] > 0) centroids[c] = totals[c] / counts[c];
    }
    if (!moved && iteration > 0) break;
  }

  // Sort centroids ascending and remap labels.
  std::vector<std::size_t> order(k);
  for (std::size_t c = 0; c < k; ++c) order[c] = c;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return centroids[a] < centroids[b];
  });
  std::vector<double> sorted(k);
  std::vector<std::size_t> remap(k);
  for (std::size_t rank = 0; rank < k; ++rank) {
    sorted[rank] = centroids[order[rank]];
    remap[order[rank]] = rank;
  }
  if (assignments != nullptr) {
    assignments->resize(values.size());
    for (std::size_t i = 0; i < values.size(); ++i) {
      (*assignments)[i] = remap[labels[i]];
    }
  }
  return sorted;
}

EDoctor::EDoctor(EDoctorConfig config) : config_(config) {}

EDoctorReport EDoctor::run(
    std::span<const trace::TraceBundle> bundles) const {
  EDoctorReport report;
  for (const trace::TraceBundle& bundle : bundles) {
    PhaseSummary summary;
    summary.user = bundle.user;
    std::vector<double> powers;
    for (const power::UtilizationSample& sample :
         bundle.utilization.samples()) {
      powers.push_back(sample.estimated_app_power_mw);
    }
    if (!powers.empty()) {
      std::vector<std::size_t> labels;
      const std::size_t k = std::min(config_.phases, powers.size());
      const std::vector<double> centroids =
          kmeans_1d(powers, k, config_.iterations, &labels);
      summary.idle_phase_mw = centroids.front();
      summary.active_phase_mw = centroids.back();
      summary.idle_share =
          static_cast<double>(std::count(labels.begin(), labels.end(), 0u)) /
          static_cast<double>(labels.size());
    }
    report.summaries.push_back(summary);
  }

  // Fleet-level outlier fence over idle-phase power.
  std::vector<double> idle_powers;
  for (const PhaseSummary& summary : report.summaries) {
    idle_powers.push_back(summary.idle_phase_mw);
  }
  if (idle_powers.empty()) return report;
  const stats::Quartiles quartiles = stats::quartiles(idle_powers);
  report.fleet_idle_median_mw = quartiles.q2;
  report.fence_mw = std::max(
      quartiles.q3 + config_.fence_iqr_multiplier * quartiles.iqr(),
      quartiles.q2 + config_.min_excess_mw);

  for (PhaseSummary& summary : report.summaries) {
    summary.impacted = summary.idle_phase_mw > report.fence_mw;
    report.impacted_users += summary.impacted ? 1 : 0;
  }
  report.impacted_fraction =
      static_cast<double>(report.impacted_users) /
      static_cast<double>(report.summaries.size());
  return report;
}

}  // namespace edx::baselines
