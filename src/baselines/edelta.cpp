#include "baselines/edelta.h"

#include <algorithm>
#include <map>

#include "android/event.h"
#include "common/stats.h"

namespace edx::baselines {

EDelta::EDelta(EDeltaConfig config, power::PowerModel model)
    : config_(config), model_(std::move(model)) {}

EDeltaReport EDelta::run(
    const std::vector<trace::TraceBundle>& bundles) const {
  // API -> per-instance attributed power (mW) across all traces.
  std::map<EventName, std::vector<double>> powers;

  for (const trace::TraceBundle& raw_bundle : bundles) {
    // Recompute sample power from the recorded utilization with the
    // display zeroed: eDelta charges an API for the hardware it drives.
    trace::TraceBundle bundle = raw_bundle;
    std::vector<power::UtilizationSample> samples =
        bundle.utilization.samples();
    for (power::UtilizationSample& sample : samples) {
      power::UtilizationVector adjusted = sample.utilization;
      adjusted.set(power::Component::kDisplay, 0.0);
      sample.estimated_app_power_mw = model_.app_power(adjusted);
    }
    bundle.utilization = trace::UtilizationTrace(
        bundle.utilization.device_name(), std::move(samples));
    // eDelta's instrumentation has no idle markers: its event stream is the
    // API calls only, and an API owns everything up to the next API call.
    std::vector<trace::EventInstance> instances;
    for (const trace::EventInstance& instance : bundle.events.instances()) {
      if (android::classify_callback(
              android::split_event_name(instance.event).callback_name) ==
          android::EventKind::kIdle) {
        continue;
      }
      instances.push_back(instance);
    }

    for (std::size_t i = 0; i < instances.size(); ++i) {
      const trace::EventInstance& instance = instances[i];
      TimestampMs attribution_end = instance.interval.end;
      if (i + 1 < instances.size()) {
        attribution_end =
            std::max(attribution_end, instances[i + 1].interval.begin);
      } else if (!bundle.utilization.samples().empty()) {
        attribution_end = std::max(
            attribution_end, bundle.utilization.samples().back().timestamp);
      }
      const TimeInterval attribution{instance.interval.begin, attribution_end};
      if (attribution.empty()) continue;
      powers[instance.event].push_back(
          bundle.utilization.average_power(attribution));
    }
  }

  EDeltaReport report;
  for (const auto& [api, values] : powers) {
    if (values.size() < config_.min_instances) continue;
    const double median = stats::median(values);
    const double high = stats::percentile(values, config_.high_percentile);
    const double deviation = high - median;
    if (deviation > config_.power_deviation_threshold_mw) {
      report.findings.push_back({api, median, high, deviation});
    }
  }
  std::sort(report.findings.begin(), report.findings.end(),
            [](const EDeltaFinding& a, const EDeltaFinding& b) {
              return a.deviation_mw > b.deviation_mw;
            });
  return report;
}

}  // namespace edx::baselines
