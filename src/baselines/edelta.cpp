#include "baselines/edelta.h"

#include <algorithm>
#include <cstdint>

#include "android/event.h"
#include "common/event_symbols.h"
#include "common/stats.h"

namespace edx::baselines {

EDelta::EDelta(EDeltaConfig config, power::PowerModel model)
    : config_(config), model_(std::move(model)) {}

EDeltaReport EDelta::run(
    std::span<const trace::TraceBundle> bundles) const {
  // API -> per-instance attributed power (mW) across all traces, as a flat
  // id-indexed table (`touched` lists the live slots).  The idle
  // classification depends only on the event name, so it is computed once
  // per distinct id instead of once per instance.
  std::vector<std::vector<double>> powers(EventSymbolTable::global().size());
  std::vector<EventId> touched;
  enum class IdleClass : std::uint8_t { kUnknown, kIdle, kNotIdle };
  std::vector<IdleClass> idle_class(powers.size(), IdleClass::kUnknown);
  const auto is_idle = [&idle_class](EventId id) {
    IdleClass& cached = idle_class[id];
    if (cached == IdleClass::kUnknown) {
      cached = android::classify_callback(
                   android::split_event_name(event_name(id)).callback_name) ==
                       android::EventKind::kIdle
                   ? IdleClass::kIdle
                   : IdleClass::kNotIdle;
    }
    return cached == IdleClass::kIdle;
  };

  for (const trace::TraceBundle& raw_bundle : bundles) {
    // Recompute sample power from the recorded utilization with the
    // display zeroed: eDelta charges an API for the hardware it drives.
    trace::TraceBundle bundle = raw_bundle;
    std::vector<power::UtilizationSample> samples =
        bundle.utilization.samples();
    for (power::UtilizationSample& sample : samples) {
      power::UtilizationVector adjusted = sample.utilization;
      adjusted.set(power::Component::kDisplay, 0.0);
      sample.estimated_app_power_mw = model_.app_power(adjusted);
    }
    bundle.utilization = trace::UtilizationTrace(
        bundle.utilization.device_name(), std::move(samples));
    // eDelta's instrumentation has no idle markers: its event stream is the
    // API calls only, and an API owns everything up to the next API call.
    std::vector<trace::EventInstance> instances;
    for (const trace::EventInstance& instance : bundle.events.instances()) {
      if (is_idle(instance.event)) continue;
      instances.push_back(instance);
    }

    for (std::size_t i = 0; i < instances.size(); ++i) {
      const trace::EventInstance& instance = instances[i];
      TimestampMs attribution_end = instance.interval.end;
      if (i + 1 < instances.size()) {
        attribution_end =
            std::max(attribution_end, instances[i + 1].interval.begin);
      } else if (!bundle.utilization.samples().empty()) {
        attribution_end = std::max(
            attribution_end, bundle.utilization.samples().back().timestamp);
      }
      const TimeInterval attribution{instance.interval.begin, attribution_end};
      if (attribution.empty()) continue;
      if (powers[instance.event].empty()) touched.push_back(instance.event);
      powers[instance.event].push_back(
          bundle.utilization.average_power(attribution));
    }
  }

  // Candidates are visited in name order (as the old name-keyed map did)
  // before the unstable deviation sort, so findings order is unchanged.
  std::sort(touched.begin(), touched.end(), [](EventId a, EventId b) {
    return event_name(a) < event_name(b);
  });

  EDeltaReport report;
  for (EventId id : touched) {
    const std::vector<double>& values = powers[id];
    if (values.size() < config_.min_instances) continue;
    const double median = stats::median(values);
    const double high = stats::percentile(values, config_.high_percentile);
    const double deviation = high - median;
    if (deviation > config_.power_deviation_threshold_mw) {
      report.findings.push_back({event_name(id), median, high, deviation});
    }
  }
  std::sort(report.findings.begin(), report.findings.end(),
            [](const EDeltaFinding& a, const EDeltaFinding& b) {
              return a.deviation_mw > b.deviation_mw;
            });
  return report;
}

}  // namespace edx::baselines
