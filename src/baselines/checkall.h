// CheckAll baseline (§IV-D of the paper).
//
// CheckAll performs Step 1 of EnergyDx (per-event power estimation) and
// then reports every event around every *raw* power transition point,
// without ranking, normalization, or outlier discipline.  Because raw
// power differs legitimately between events (a mail refresh vs. a
// keystroke), it floods the developer with windows around ordinary
// functionality changes — the comparison that motivates Steps 2-4.
#pragma once

#include <span>
#include <vector>

#include "core/analysis_types.h"
#include "trace/recorder.h"

namespace edx::baselines {

struct CheckAllConfig {
  /// A raw power rise of at least this many mW counts as a transition.
  PowerMw transition_threshold_mw{50.0};
  /// Events on each side of a transition included in its report window.
  std::size_t window_size{3};
};

/// CheckAll's output: every event name it asks the developer to read.
struct CheckAllReport {
  std::vector<EventName> reported_events;  ///< unique, sorted
  std::size_t transition_points{0};        ///< across all traces
  std::size_t total_traces{0};
};

class CheckAll {
 public:
  explicit CheckAll(CheckAllConfig config = {});

  /// Takes a span only (vectors convert implicitly; wrap a single
  /// bundle as `std::span(&bundle, 1)`).
  [[nodiscard]] CheckAllReport run(
      std::span<const trace::TraceBundle> bundles) const;

 private:
  CheckAllConfig config_;
};

}  // namespace edx::baselines
