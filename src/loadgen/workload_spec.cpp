#include "loadgen/workload_spec.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "common/error.h"
#include "common/strings.h"

namespace edx::loadgen {

namespace {

constexpr std::array<std::string_view, kOpKindCount> kOpNames{
    "ingest", "reupload", "snapshot", "report"};

/// Round-trip double formatting (%.17g parses back bit-exact), trimmed
/// of the noise ("1.0" stays "1", "0.5" stays "0.5").
std::string format_exact(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  // %.17g over-prints plain fractions ("0.10000000000000001"); prefer the
  // shortest spelling that still parses back to the same bits.
  for (int precision = 1; precision < 17; ++precision) {
    char shorter[64];
    std::snprintf(shorter, sizeof shorter, "%.*g", precision, value);
    if (std::strtod(shorter, nullptr) == value) return shorter;
  }
  return buffer;
}

/// One line being parsed; every failure throws ParseError citing it.
class LineParser {
 public:
  LineParser(std::string_view source, std::size_t line_number,
             std::string_view line)
      : source_(source), line_number_(line_number), rest_(line) {}

  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError(std::string(source_) + ":" +
                     std::to_string(line_number_) + ": " + message);
  }

  /// Next whitespace-delimited token; empty when the line is exhausted.
  std::string_view token() {
    rest_ = strings::trim_view(rest_);
    std::size_t end = 0;
    while (end < rest_.size() && rest_[end] != ' ' && rest_[end] != '\t') {
      ++end;
    }
    const std::string_view tok = rest_.substr(0, end);
    rest_.remove_prefix(end);
    return tok;
  }

  std::string_view required_token(const std::string& what) {
    const std::string_view tok = token();
    if (tok.empty()) fail("missing " + what);
    return tok;
  }

  void expect_end(const std::string& directive) {
    const std::string_view extra = token();
    if (!extra.empty()) {
      fail("unexpected trailing '" + std::string(extra) + "' after " +
           directive);
    }
  }

  std::uint64_t parse_u64(std::string_view tok, const std::string& what) {
    std::int64_t value = 0;
    std::string_view view = tok;
    if (!strings::consume_int64(view, value) || !view.empty() || value < 0) {
      fail(what + " needs a non-negative integer, got '" + std::string(tok) +
           "'");
    }
    return static_cast<std::uint64_t>(value);
  }

  double parse_double(std::string_view tok, const std::string& what) {
    const std::string text(tok);
    char* end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    if (end != text.c_str() + text.size() || text.empty()) {
      fail(what + " needs a number, got '" + text + "'");
    }
    return value;
  }

 private:
  std::string_view source_;
  std::size_t line_number_;
  std::string_view rest_;
};

bool valid_name(std::string_view name) {
  if (name.empty()) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.';
    if (!ok) return false;
  }
  return true;
}

}  // namespace

std::string_view op_kind_name(OpKind kind) {
  return kOpNames[static_cast<std::size_t>(kind)];
}

std::optional<OpKind> op_kind_from_name(std::string_view name) {
  for (std::size_t i = 0; i < kOpKindCount; ++i) {
    if (kOpNames[i] == name) return static_cast<OpKind>(i);
  }
  return std::nullopt;
}

WorkloadSpec WorkloadSpec::parse(std::string_view text,
                                 std::string_view source) {
  WorkloadSpec spec;
  bool saw_mix = false;
  std::size_t line_number = 0;
  std::size_t last_directive_line = 1;
  while (!text.empty()) {
    std::string_view line = strings::next_line(text);
    ++line_number;
    if (const std::size_t hash = line.find('#'); hash != std::string::npos) {
      line = line.substr(0, hash);
    }
    line = strings::trim_view(line);
    if (line.empty()) continue;
    last_directive_line = line_number;

    LineParser parser(source, line_number, line);
    const std::string_view key = parser.token();
    if (key == "workload") {
      const std::string_view name = parser.required_token("workload name");
      if (!valid_name(name)) {
        parser.fail("workload name must match [A-Za-z0-9_.-]+, got '" +
                    std::string(name) + "'");
      }
      spec.name = std::string(name);
      parser.expect_end("workload");
    } else if (key == "apps") {
      spec.apps = parser.parse_u64(parser.required_token("app count"),
                                   "apps");
      parser.expect_end("apps");
    } else if (key == "users") {
      spec.users = parser.parse_u64(parser.required_token("user count"),
                                    "users");
      parser.expect_end("users");
    } else if (key == "streams") {
      spec.streams = parser.parse_u64(parser.required_token("stream count"),
                                      "streams");
      parser.expect_end("streams");
    } else if (key == "seed") {
      spec.seed = parser.parse_u64(parser.required_token("seed"), "seed");
      parser.expect_end("seed");
    } else if (key == "ops") {
      spec.ops_per_stream =
          parser.parse_u64(parser.required_token("op budget"), "ops");
      parser.expect_end("ops");
    } else if (key == "events") {
      const std::uint64_t events =
          parser.parse_u64(parser.required_token("event count"), "events");
      if (events == 0 || events > 1'000'000) {
        parser.fail("events must be in [1, 1000000]");
      }
      spec.events_per_bundle = static_cast<int>(events);
      parser.expect_end("events");
    } else if (key == "hot-apps") {
      spec.hot_apps = parser.parse_u64(
          parser.required_token("hot app count"), "hot-apps");
      spec.hot_fraction = parser.parse_double(
          parser.required_token("hot traffic fraction"), "hot-apps fraction");
      if (spec.hot_fraction < 0.0 || spec.hot_fraction > 1.0) {
        parser.fail("hot-apps fraction must be in [0, 1]");
      }
      parser.expect_end("hot-apps");
    } else if (key == "user-skew") {
      spec.user_skew = parser.parse_double(
          parser.required_token("skew exponent"), "user-skew");
      if (spec.user_skew < 0.0) parser.fail("user-skew must be >= 0");
      parser.expect_end("user-skew");
    } else if (key == "mix") {
      spec.mix = {0.0, 0.0, 0.0, 0.0};
      saw_mix = false;
      for (std::string_view entry = parser.token(); !entry.empty();
           entry = parser.token()) {
        const std::size_t eq = entry.find('=');
        if (eq == std::string::npos) {
          parser.fail("mix entries are <op>=<weight>, got '" +
                      std::string(entry) + "'");
        }
        const auto kind = op_kind_from_name(entry.substr(0, eq));
        if (!kind.has_value()) {
          parser.fail("unknown mix op '" + std::string(entry.substr(0, eq)) +
                      "' (ingest, reupload, snapshot, report)");
        }
        const double weight = parser.parse_double(
            entry.substr(eq + 1), "mix weight for " +
                                      std::string(entry.substr(0, eq)));
        if (weight < 0.0) parser.fail("mix weights must be >= 0");
        spec.mix[static_cast<std::size_t>(*kind)] = weight;
        saw_mix = true;
      }
      if (!saw_mix) parser.fail("mix needs at least one <op>=<weight>");
      if (spec.mix[0] + spec.mix[1] + spec.mix[2] + spec.mix[3] <= 0.0) {
        parser.fail("mix weights must sum to a positive total");
      }
    } else if (key == "arrival") {
      const std::string_view mode = parser.required_token("arrival mode");
      if (mode == "closed") {
        spec.arrival = ArrivalMode::kClosed;
        spec.rate = 0.0;
        parser.expect_end("arrival closed");
      } else if (mode == "open") {
        const std::string_view process =
            parser.required_token("open-loop process (poisson | uniform)");
        if (process == "poisson") {
          spec.arrival = ArrivalMode::kOpenPoisson;
        } else if (process == "uniform") {
          spec.arrival = ArrivalMode::kOpenUniform;
        } else {
          parser.fail("open-loop process must be poisson or uniform, got '" +
                      std::string(process) + "'");
        }
        spec.rate = parser.parse_double(
            parser.required_token("target rate (ops/s)"), "arrival rate");
        if (spec.rate <= 0.0) parser.fail("arrival rate must be > 0");
        parser.expect_end("arrival open");
      } else {
        parser.fail("arrival mode must be closed or open, got '" +
                    std::string(mode) + "'");
      }
    } else if (key == "phase") {
      PhaseSpec phase;
      const std::string_view name = parser.required_token("phase name");
      if (!valid_name(name)) {
        parser.fail("phase name must match [A-Za-z0-9_.-]+");
      }
      phase.name = std::string(name);
      phase.duration_ms = parser.parse_u64(
          parser.required_token("phase duration (ms)"), "phase duration");
      if (phase.duration_ms == 0) parser.fail("phase duration must be > 0");
      for (std::string_view entry = parser.token(); !entry.empty();
           entry = parser.token()) {
        const std::size_t eq = entry.find('=');
        const std::string_view option =
            eq == std::string::npos ? entry : entry.substr(0, eq);
        if (eq == std::string::npos ||
            (option != "rate" && option != "fleet")) {
          parser.fail("phase options are rate=<F> and fleet=<F>, got '" +
                      std::string(entry) + "'");
        }
        const double value = parser.parse_double(
            entry.substr(eq + 1), "phase " + std::string(option));
        if (option == "rate") {
          if (value < 0.0) parser.fail("phase rate scale must be >= 0");
          phase.rate_scale = value;
        } else {
          if (value <= 0.0 || value > 1.0) {
            parser.fail("phase fleet scale must be in (0, 1]");
          }
          phase.fleet_scale = value;
        }
      }
      spec.phases.push_back(std::move(phase));
    } else if (key == "slo") {
      const std::string_view subject = parser.required_token("slo subject");
      if (subject == "throughput") {
        const double floor = parser.parse_double(
            parser.required_token("throughput floor (ops/s)"),
            "slo throughput");
        if (floor <= 0.0) parser.fail("slo throughput must be > 0");
        spec.slo_throughput = floor;
        parser.expect_end("slo throughput");
      } else {
        const auto kind = op_kind_from_name(subject);
        if (!kind.has_value()) {
          parser.fail("slo subject must be an op name or throughput, got '" +
                      std::string(subject) + "'");
        }
        const std::string_view metric = parser.required_token("slo metric");
        if (metric != "p99") {
          parser.fail("only p99 latency SLOs are supported, got '" +
                      std::string(metric) + "'");
        }
        const double ceiling = parser.parse_double(
            parser.required_token("p99 ceiling (ms)"), "slo p99");
        if (ceiling <= 0.0) parser.fail("slo p99 must be > 0");
        spec.slo_p99_ms[static_cast<std::size_t>(*kind)] = ceiling;
        parser.expect_end("slo");
      }
    } else {
      parser.fail("unknown directive '" + std::string(key) + "'");
    }
  }

  try {
    spec.validate();
  } catch (const InvalidArgument& error) {
    // Cross-field validation failures are still the spec author's parse
    // errors; cite the last directive so the message lands in the file.
    throw ParseError(std::string(source) + ":" +
                     std::to_string(last_directive_line) + ": " +
                     error.what());
  }
  return spec;
}

void WorkloadSpec::validate() const {
  require(valid_name(name), "workload name must match [A-Za-z0-9_.-]+");
  require(apps >= 1, "workload needs at least one app");
  require(users >= 1, "workload needs at least one user per app");
  require(streams >= 1, "workload needs at least one stream");
  require(events_per_bundle >= 1, "events per bundle must be >= 1");
  require(hot_apps <= apps, "hot-apps cannot exceed the app count");
  require(hot_fraction >= 0.0 && hot_fraction <= 1.0,
          "hot-apps fraction must be in [0, 1]");
  require(user_skew >= 0.0, "user-skew must be >= 0");
  double total = 0.0;
  for (const double weight : mix) {
    require(weight >= 0.0, "mix weights must be >= 0");
    total += weight;
  }
  require(total > 0.0, "mix weights must sum to a positive total");
  if (arrival != ArrivalMode::kClosed) {
    require(rate > 0.0, "open-loop arrivals need a positive rate");
  }
  for (const PhaseSpec& phase : phases) {
    require(phase.duration_ms > 0, "phase durations must be > 0");
    require(phase.rate_scale >= 0.0, "phase rate scales must be >= 0");
    require(phase.fleet_scale > 0.0 && phase.fleet_scale <= 1.0,
            "phase fleet scales must be in (0, 1]");
  }
}

std::string WorkloadSpec::to_text() const {
  std::string out;
  out += "workload " + name + "\n";
  out += "apps " + std::to_string(apps) + "\n";
  out += "users " + std::to_string(users) + "\n";
  out += "streams " + std::to_string(streams) + "\n";
  out += "seed " + std::to_string(seed) + "\n";
  if (ops_per_stream != 0) {
    out += "ops " + std::to_string(ops_per_stream) + "\n";
  }
  out += "events " + std::to_string(events_per_bundle) + "\n";
  if (hot_apps != 0) {
    out += "hot-apps " + std::to_string(hot_apps) + " " +
           format_exact(hot_fraction) + "\n";
  }
  if (user_skew != 0.0) {
    out += "user-skew " + format_exact(user_skew) + "\n";
  }
  out += "mix";
  for (std::size_t i = 0; i < kOpKindCount; ++i) {
    if (mix[i] != 0.0) {
      out += " " + std::string(op_kind_name(static_cast<OpKind>(i))) + "=" +
             format_exact(mix[i]);
    }
  }
  out += "\n";
  switch (arrival) {
    case ArrivalMode::kClosed:
      out += "arrival closed\n";
      break;
    case ArrivalMode::kOpenPoisson:
      out += "arrival open poisson " + format_exact(rate) + "\n";
      break;
    case ArrivalMode::kOpenUniform:
      out += "arrival open uniform " + format_exact(rate) + "\n";
      break;
  }
  for (const PhaseSpec& phase : phases) {
    out += "phase " + phase.name + " " + std::to_string(phase.duration_ms);
    if (phase.rate_scale != 1.0) {
      out += " rate=" + format_exact(phase.rate_scale);
    }
    if (phase.fleet_scale != 1.0) {
      out += " fleet=" + format_exact(phase.fleet_scale);
    }
    out += "\n";
  }
  for (std::size_t i = 0; i < kOpKindCount; ++i) {
    if (slo_p99_ms[i].has_value()) {
      out += "slo " + std::string(op_kind_name(static_cast<OpKind>(i))) +
             " p99 " + format_exact(*slo_p99_ms[i]) + "\n";
    }
  }
  if (slo_throughput.has_value()) {
    out += "slo throughput " + format_exact(*slo_throughput) + "\n";
  }
  return out;
}

}  // namespace edx::loadgen
