// The multi-threaded load driver.
//
// run_load() executes a WorkloadSpec against a FleetService and
// measures what the ISSUE's north star asks for: "sustains X
// arrivals/s at p99 < Y ms".  Execution model:
//
//   - the spec's logical streams are dealt across RunOptions::threads
//     driver threads (stream s runs on thread s % threads); each stream
//     generates its op sequence from its own OpStream, so sequences are
//     identical for any thread count (op_stream.h);
//   - closed loop: each stream issues back-to-back — concurrency equals
//     the stream count — and latency is measured from the call start;
//   - open loop: each stream paces arrivals at rate * rate_scale /
//     streams (Poisson or uniform gaps) from a pacing RNG separate from
//     the op-content RNG, and latency is measured from the *intended*
//     start time, which folds scheduler backlog into every sample — the
//     coordinated-omission correction (common/latency_histogram.h);
//   - phases run in spec order.  A fixed-ops run (ops_per_stream > 0)
//     splits each stream's budget across phases proportional to
//     duration * rate_scale — fully deterministic, what tests and CI
//     use; a timed run (ops_per_stream == 0) switches phases on the
//     wall clock and stops when they elapse.  The active-fleet bound
//     interpolates from the previous phase's fleet_scale to the
//     current one across each phase;
//   - the run ends with FleetService::drain(), inside the measured
//     wall time — achieved rate counts applied-and-published work, not
//     queued work.
//
// Metrics: per-op-kind issued/completed/failed counts and latency
// histograms (per-thread shards merged after the join — no shared
// mutable state on the hot path), snapshot staleness in arrivals
// sampled on every snapshot op via FleetService::app_stats, achieved
// vs offered rate, and one verdict per SLO the spec declares.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/latency_histogram.h"
#include "loadgen/op_stream.h"
#include "loadgen/workload_spec.h"
#include "service/fleet_service.h"

namespace edx::loadgen {

struct RunOptions {
  /// Driver threads; 0 = min(streams, hardware_concurrency).
  std::size_t threads{0};
  /// Timed-mode default phase length when the spec declares no phases
  /// and no op budget (ms).  Ignored for fixed-ops runs; for a timed
  /// run with spec phases it rescales their total to this duration.
  std::uint64_t duration_ms{0};
  /// Record every op per stream (LoadReport::op_trace) — determinism
  /// tests only; unbounded memory on long runs.
  bool capture_ops{false};
  /// Record every submission's identity (LoadReport::submissions) so
  /// equivalence tests can rebuild the exact bundle behind each
  /// submission id.  Same caveat.
  bool capture_submissions{false};
};

/// Counts and latency for one op kind (latencies in microseconds).
struct OpMetrics {
  std::uint64_t issued{0};
  std::uint64_t completed{0};
  /// Ops that raised (e.g. report() before the first publication).
  std::uint64_t failed{0};
  common::LatencyHistogram latency_us;
};

/// One SLO check from the spec, resolved against the measured run.
struct SloVerdict {
  std::string name;    ///< "ingest_p99_ms", "throughput_ops_per_second"
  double target{0.0};
  double actual{0.0};
  bool pass{false};
};

/// What an upload op actually submitted (capture_submissions).
struct SubmissionRecord {
  std::uint64_t id{0};  ///< FleetService submission id
  std::size_t app{0};
  UserId user{0};
  std::uint64_t ordinal{0};
};

struct LoadReport {
  std::string workload;
  std::size_t threads{0};
  std::size_t streams{0};
  ArrivalMode arrival{ArrivalMode::kClosed};
  double wall_seconds{0.0};
  /// Mean offered rate over the run (open loop; 0 for closed loop).
  double offered_ops_per_second{0.0};
  double achieved_ops_per_second{0.0};
  std::array<OpMetrics, kOpKindCount> per_op;
  /// Snapshot staleness in arrivals, sampled on snapshot ops.
  common::LatencyHistogram staleness_arrivals;
  std::vector<SloVerdict> slos;
  bool slo_pass{true};
  /// Per-stream op traces (capture_ops).
  std::vector<std::vector<Op>> op_trace;
  /// Upload identities by submission id (capture_submissions),
  /// unordered across streams.
  std::vector<SubmissionRecord> submissions;

  [[nodiscard]] std::uint64_t total_completed() const;
  /// The results document perf_smoke.py consumes ("energydx_loadgen"
  /// marker, rates, per-op percentiles, SLO verdicts).
  [[nodiscard]] std::string to_json() const;
  /// Human-readable summary for the CLI.
  [[nodiscard]] std::string to_text() const;
};

/// Runs `spec` against `service` (tenants are auto-opened).  The
/// service outlives the call; callers may inspect it afterwards
/// (equivalence tests replay applied_log()).
LoadReport run_load(const WorkloadSpec& spec,
                    service::FleetService& service,
                    const RunOptions& options = {});

}  // namespace edx::loadgen
