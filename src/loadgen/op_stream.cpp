#include "loadgen/op_stream.h"

#include <algorithm>
#include <cmath>

#include "power/tracker.h"

namespace edx::loadgen {

std::uint64_t substream_seed(std::uint64_t master, std::uint64_t stream,
                             std::uint64_t salt) {
  // Golden-ratio spacing (the splitmix64 increment) keeps nearby stream
  // indices far apart in seed space; the salt shifts the whole family so
  // op-content and pacing RNGs never collide.
  std::uint64_t state = master ^ (salt * 0xD1B54A32D192ED03ULL);
  state += (stream + 1) * 0x9E3779B97F4A7C15ULL;
  return splitmix64(state);
}

OpStream::OpStream(const WorkloadSpec& spec, std::size_t stream)
    : spec_(spec),
      stream_(stream),
      // Users of the slice {u : u % streams == stream}: one per full
      // block of `streams`, plus one more when stream < users % streams.
      slice_size_(spec.users / spec.streams +
                  (stream < spec.users % spec.streams ? 1 : 0)),
      rng_(substream_seed(spec.seed, stream)),
      mix_(spec.mix.begin(), spec.mix.end()),
      frontier_(spec.apps, 0),
      uploads_(spec.apps, std::vector<std::uint64_t>(slice_size_, 0)) {}

UserId OpStream::slice_user(std::size_t k) const {
  return static_cast<UserId>(k * spec_.streams + stream_);
}

std::size_t OpStream::pick_ingested(std::size_t app) {
  const std::size_t n = frontier_[app];
  // Power-law bias toward the earliest-ingested users: exponent 1 is
  // uniform; each unit of skew pushes more mass onto low indices.
  const double u = std::pow(rng_.uniform(), 1.0 + spec_.user_skew);
  const auto index = static_cast<std::size_t>(u * static_cast<double>(n));
  return std::min(index, n - 1);
}

Op OpStream::next(double fleet_scale) {
  Op op;

  if (spec_.apps > 1 && spec_.hot_apps > 0 &&
      rng_.bernoulli(spec_.hot_fraction)) {
    op.app = static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(spec_.hot_apps) - 1));
  } else if (spec_.hot_apps > 0 && spec_.hot_apps < spec_.apps) {
    op.app = static_cast<std::size_t>(
        rng_.uniform_int(static_cast<std::int64_t>(spec_.hot_apps),
                         static_cast<std::int64_t>(spec_.apps) - 1));
  } else {
    op.app = static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(spec_.apps) - 1));
  }

  op.kind = static_cast<OpKind>(rng_.weighted_index(mix_));

  // The ramp bound: how deep into the slice ingest may reach right now.
  const std::size_t allowed = std::clamp<std::size_t>(
      static_cast<std::size_t>(
          std::ceil(fleet_scale * static_cast<double>(slice_size_))),
      std::min<std::size_t>(1, slice_size_), slice_size_);

  // Degrade rather than fail: the choices below depend only on this
  // stream's own frontier, so they are thread-count invariant.
  if (op.kind == OpKind::kIngest && frontier_[op.app] >= allowed) {
    op.kind = slice_size_ == 0 ? OpKind::kSnapshot : OpKind::kReupload;
  }
  if (op.kind != OpKind::kIngest && frontier_[op.app] == 0 &&
      slice_size_ > 0) {
    op.kind = OpKind::kIngest;
  }

  switch (op.kind) {
    case OpKind::kIngest: {
      const std::size_t k = frontier_[op.app]++;
      op.user = slice_user(k);
      op.ordinal = uploads_[op.app][k]++;
      break;
    }
    case OpKind::kReupload: {
      const std::size_t k = pick_ingested(op.app);
      op.user = slice_user(k);
      op.ordinal = uploads_[op.app][k]++;
      break;
    }
    case OpKind::kSnapshot:
    case OpKind::kReport: {
      // Reads are fleet-wide; pick a (skewed) user anyway so the draw
      // count per op is uniform and future read shapes can use it.
      const std::size_t n = frontier_[op.app];
      op.user = n == 0 ? 0 : slice_user(pick_ingested(op.app));
      break;
    }
  }
  return op;
}

std::string app_key(std::size_t app) {
  return "app-" + std::to_string(app);
}

trace::TraceBundle synthetic_bundle(const WorkloadSpec& spec,
                                    std::size_t app, UserId user,
                                    std::uint64_t ordinal) {
  // The bundle is a pure function of its identity: hash the coordinates
  // into one seed, then draw the noise from a private Rng.
  std::uint64_t state = spec.seed;
  splitmix64(state);
  state += (app + 1) * 0x9E3779B97F4A7C15ULL;
  splitmix64(state);
  state += (static_cast<std::uint64_t>(user) + 1) * 0xD1B54A32D192ED03ULL;
  splitmix64(state);
  state += ordinal + 1;
  Rng rng(splitmix64(state));

  trace::TraceBundle bundle;
  bundle.user = user;
  bundle.device_name = "Nexus 6";
  const int events = spec.events_per_bundle;
  std::vector<power::UtilizationSample> samples;
  samples.reserve(static_cast<std::size_t>(events) * 2);
  for (int i = 0; i < events; ++i) {
    const TimestampMs t = static_cast<TimestampMs>(i) * 1000;
    bundle.events.add_instance("E" + std::to_string(i % 12),
                               {t + 10, t + 40});
    power::UtilizationSample sample;
    sample.timestamp = t + 500;
    // User 0 of every tenant carries an elevated-power tail, so each
    // tenant's diagnosis finds a manifestation (the bench_service shape).
    sample.estimated_app_power_mw =
        user == 0 && i > events / 2 ? 500.0 : 100.0 + rng.uniform(0, 5.0);
    samples.push_back(sample);
    sample.timestamp = t + 1000;
    samples.push_back(sample);
  }
  bundle.utilization = trace::UtilizationTrace("Nexus 6", samples);
  return bundle;
}

}  // namespace edx::loadgen
