// Deterministic logical op streams.
//
// The loadgen driver's reproducibility contract (genny's design) is
// that the sequence of operations each LOGICAL stream issues depends
// only on the WorkloadSpec and the master seed — never on how many
// driver threads execute the run or how they interleave.  The pieces:
//
//   - substream_seed(master, stream) splits one master seed into
//     well-separated per-stream seeds (splitmix64 over golden-ratio
//     spaced inputs), so streams draw independent sequences;
//   - each stream owns a slice of every app's user space — user u
//     belongs to stream u % streams — so "which user has been ingested"
//     is stream-local state, untouched by other streams' progress;
//   - OpStream::next() is a pure function of the stream's own RNG and
//     slice state, parameterized only by the (deterministic in
//     fixed-ops mode) fleet_scale bound.
//
// A driver thread executes streams s with s % threads == t, each
// independently; re-threading reassigns whole streams, never splits
// one, so every per-stream sequence is byte-stable across thread
// counts (tests/loadgen/loadgen_determinism_test.cpp pins this for
// threads {1, 2, 8}).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "loadgen/workload_spec.h"
#include "trace/recorder.h"

namespace edx::loadgen {

/// One operation a stream decided to issue.
struct Op {
  OpKind kind{OpKind::kIngest};
  std::size_t app{0};  ///< tenant index ("app-<app>")
  UserId user{0};      ///< uploading / queried user (reads ignore it)
  /// Per-(stream, app, user) upload counter: 0 for the first ingest,
  /// incremented by every re-upload.  Makes re-uploaded bundles differ
  /// from the originals deterministically.
  std::uint64_t ordinal{0};

  bool operator==(const Op&) const = default;
};

/// The per-stream seed: splitmix64 of master + (stream+1) * golden
/// ratio.  Streams get well-separated, order-free seeds; the driver
/// uses a different salt for its pacing RNGs so arrival timing never
/// perturbs op content.
std::uint64_t substream_seed(std::uint64_t master, std::uint64_t stream,
                             std::uint64_t salt = 0);

/// The deterministic op generator for one logical stream.
class OpStream {
 public:
  /// Stream `stream` of `spec.streams`, seeded from `spec.seed`.
  OpStream(const WorkloadSpec& spec, std::size_t stream);

  /// Decides the next op.  `fleet_scale` in (0, 1] bounds the fraction
  /// of this stream's user slice that ingest may have touched — the
  /// driver's ramp knob.  Choices degrade rather than fail: an ingest
  /// with the slice bound exhausted becomes a re-upload; a re-upload /
  /// read against an app with nothing ingested yet becomes an ingest.
  Op next(double fleet_scale = 1.0);

  [[nodiscard]] std::size_t stream() const { return stream_; }
  /// Users of this stream's slice per app (the ingest frontier bound).
  [[nodiscard]] std::size_t slice_size() const { return slice_size_; }

 private:
  /// kth user of this stream's slice: k * streams + stream.
  [[nodiscard]] UserId slice_user(std::size_t k) const;
  /// Skewed pick of an already-ingested slice index for app `app`.
  [[nodiscard]] std::size_t pick_ingested(std::size_t app);

  const WorkloadSpec& spec_;
  std::size_t stream_;
  std::size_t slice_size_;
  Rng rng_;
  std::vector<double> mix_;
  /// Per-app count of slice users ingested so far (the frontier: slice
  /// indices [0, frontier) have been uploaded at least once).
  std::vector<std::size_t> frontier_;
  /// Per-app, per-slice-index upload counts (ordinal bookkeeping).
  std::vector<std::vector<std::uint64_t>> uploads_;
};

/// The deterministic synthetic bundle for one upload: a function of
/// (seed, app, user, ordinal) only, so any stream — and the batch
/// equivalence test — can rebuild the exact bytes the driver submitted.
/// Shape follows bench_service.cpp's synthetic population: "E0".."E11"
/// cycling events on a Nexus 6, with an elevated-power tail for user 0
/// (so every tenant's diagnosis is non-trivial).
trace::TraceBundle synthetic_bundle(const WorkloadSpec& spec,
                                    std::size_t app, UserId user,
                                    std::uint64_t ordinal);

/// "app-<index>" — the tenant key scheme shared by driver and tests.
std::string app_key(std::size_t app);

}  // namespace edx::loadgen
