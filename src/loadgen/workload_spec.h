// Declarative workload specifications for the loadgen driver.
//
// A WorkloadSpec describes, in data, everything a load run needs —
// which operations hit the FleetService in what proportion, how
// arrivals are timed, how the simulated fleet ramps up, and which SLOs
// the run is judged against — so that a scenario is a small text file
// (examples/*.workload) or a registered name (workload_factory.h), not
// C++ (the YCSB / genny design).  The grammar is line-based:
//
//   # comment (to end of line; blank lines ignored)
//   workload <name>              display name, [A-Za-z0-9_.-]+
//   apps <N>                     tenants ("app-0" .. "app-<N-1>")
//   users <N>                    logical users (phones) per tenant
//   streams <N>                  logical op streams; also the closed-loop
//                                concurrency (see op_stream.h)
//   seed <N>                     master seed; stream RNGs split from it
//   ops <N>                      per-stream op budget; 0 = timed run
//   events <N>                   event instances per synthetic bundle
//   hot-apps <N> <F>             first N apps receive fraction F of traffic
//   user-skew <F>                power-law exponent biasing re-uploads and
//                                reads toward early users; 0 = uniform
//   mix ingest=<w> reupload=<w> snapshot=<w> report=<w>
//                                op weights (>= 0, positive sum; omitted
//                                ops get weight 0)
//   arrival closed               fixed-concurrency closed loop
//   arrival open poisson <R>     open loop, Poisson arrivals at R ops/s
//   arrival open uniform <R>     open loop, uniform arrivals at R ops/s
//   phase <name> <ms> [rate=<F>] [fleet=<F>]
//                                ramp phase: duration, offered-rate scale,
//                                active-fleet scale (see driver.h)
//   slo <op> p99 <ms>            per-op p99 latency ceiling
//   slo throughput <R>           achieved-rate floor, ops/s
//
// Every syntax or range error raises edx::ParseError whose message
// starts "<source>:<line>:" — the CLI maps ParseError to exit code 3.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace edx::loadgen {

/// The four operations a workload mixes, in mix-weight order.
enum class OpKind : std::uint8_t {
  kIngest = 0,    ///< submit a not-yet-seen user's bundle
  kReupload = 1,  ///< submit a fresh bundle for an already-seen user
  kSnapshot = 2,  ///< load the tenant's published snapshot
  kReport = 3,    ///< render the tenant's diagnosis report
};
inline constexpr std::size_t kOpKindCount = 4;

/// "ingest" / "reupload" / "snapshot" / "report".
std::string_view op_kind_name(OpKind kind);
/// Inverse of op_kind_name; nullopt for anything else.
std::optional<OpKind> op_kind_from_name(std::string_view name);

enum class ArrivalMode : std::uint8_t {
  kClosed = 0,       ///< streams issue back-to-back (concurrency = streams)
  kOpenPoisson = 1,  ///< exponential inter-arrival gaps at the target rate
  kOpenUniform = 2,  ///< constant inter-arrival gaps at the target rate
};

/// One ramp phase.  rate_scale multiplies the offered rate (open-loop
/// pacing); fleet_scale bounds the fraction of each stream's user slice
/// that ingest may touch — the driver interpolates linearly from the
/// previous phase's fleet_scale across the phase, so
/// warmup(0.25) -> ramp(1.0) grows the active fleet smoothly.
struct PhaseSpec {
  std::string name;  ///< conventionally warmup / ramp / steady / drain
  std::uint64_t duration_ms{0};
  double rate_scale{1.0};
  double fleet_scale{1.0};

  bool operator==(const PhaseSpec&) const = default;
};

struct WorkloadSpec {
  std::string name{"unnamed"};
  std::size_t apps{1};
  std::size_t users{100};
  std::size_t streams{4};
  std::uint64_t seed{42};
  /// Per-stream op budget; 0 means the run is timed (driver duration).
  std::uint64_t ops_per_stream{0};
  /// Event instances per synthetic bundle (bundle size knob).
  int events_per_bundle{24};
  /// First hot_apps tenants receive hot_fraction of the traffic.
  std::size_t hot_apps{0};
  double hot_fraction{0.0};
  /// Power-law exponent for re-upload / read user choice; 0 = uniform.
  double user_skew{0.0};
  /// Op weights indexed by OpKind; >= 0 each, positive sum.
  std::array<double, kOpKindCount> mix{1.0, 0.0, 0.0, 0.0};
  ArrivalMode arrival{ArrivalMode::kClosed};
  /// Target rate in ops/s (open-loop modes only).
  double rate{0.0};
  /// Ramp phases in order; empty = one steady phase at scale 1.
  std::vector<PhaseSpec> phases;
  /// Per-op p99 ceilings in milliseconds, indexed by OpKind.
  std::array<std::optional<double>, kOpKindCount> slo_p99_ms{};
  /// Achieved-rate floor in ops/s.
  std::optional<double> slo_throughput;

  bool operator==(const WorkloadSpec&) const = default;

  /// Parses the text grammar above.  `source` names the input in error
  /// messages (file path, "<builtin>", ...).  Throws ParseError with a
  /// "<source>:<line>:" prefix on any malformed line, and validates the
  /// assembled spec (range errors cite the offending line too).
  static WorkloadSpec parse(std::string_view text,
                            std::string_view source = "spec");

  /// Canonical serialization; parse(to_text()) reproduces this spec
  /// exactly (doubles render with round-trip precision).
  [[nodiscard]] std::string to_text() const;

  /// Cross-field validation (positive counts, weights, rates...).
  /// Throws InvalidArgument; parse() runs it for you.
  void validate() const;
};

}  // namespace edx::loadgen
