#include "loadgen/driver.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>
#include <utility>

#include "common/error.h"
#include "common/strings.h"

namespace edx::loadgen {

namespace {

using Clock = std::chrono::steady_clock;

/// One phase, resolved for execution: interpolation endpoints for the
/// fleet bound plus either a per-stream op budget (fixed-ops mode) or a
/// wall-clock duration (timed mode).
struct PhasePlan {
  std::string name;
  double rate_scale{1.0};
  double fleet_from{1.0};
  double fleet_to{1.0};
  std::uint64_t duration_ms{0};
  std::uint64_t ops_per_stream{0};
};

std::vector<PhasePlan> plan_phases(const WorkloadSpec& spec,
                                   const RunOptions& options) {
  std::vector<PhaseSpec> phases = spec.phases;
  if (phases.empty()) {
    PhaseSpec steady;
    steady.name = "steady";
    steady.duration_ms =
        options.duration_ms > 0 ? options.duration_ms : 1000;
    phases.push_back(std::move(steady));
  } else if (spec.ops_per_stream == 0 && options.duration_ms > 0) {
    // Timed run with an explicit --duration: rescale the spec's phase
    // shape to the requested total.
    std::uint64_t total = 0;
    for (const PhaseSpec& phase : phases) total += phase.duration_ms;
    for (PhaseSpec& phase : phases) {
      phase.duration_ms = std::max<std::uint64_t>(
          1, static_cast<std::uint64_t>(std::llround(
                 static_cast<double>(phase.duration_ms) *
                 static_cast<double>(options.duration_ms) /
                 static_cast<double>(total))));
    }
  }

  std::vector<PhasePlan> plan;
  plan.reserve(phases.size());
  for (std::size_t i = 0; i < phases.size(); ++i) {
    PhasePlan p;
    p.name = phases[i].name;
    p.rate_scale = phases[i].rate_scale;
    p.fleet_from = i == 0 ? phases[i].fleet_scale
                          : phases[i - 1].fleet_scale;
    p.fleet_to = phases[i].fleet_scale;
    p.duration_ms = phases[i].duration_ms;
    plan.push_back(std::move(p));
  }

  if (spec.ops_per_stream > 0) {
    // Split the budget proportional to duration x rate_scale (a drain
    // phase at rate 0 issues nothing); remainders go to the earliest
    // phases so the split is deterministic.
    double total_weight = 0.0;
    for (const PhasePlan& p : plan) {
      total_weight += static_cast<double>(p.duration_ms) * p.rate_scale;
    }
    std::uint64_t assigned = 0;
    for (PhasePlan& p : plan) {
      const double weight =
          total_weight > 0.0
              ? static_cast<double>(p.duration_ms) * p.rate_scale /
                    total_weight
              : 1.0 / static_cast<double>(plan.size());
      p.ops_per_stream = static_cast<std::uint64_t>(
          std::floor(weight * static_cast<double>(spec.ops_per_stream)));
      assigned += p.ops_per_stream;
    }
    for (std::size_t i = 0; assigned < spec.ops_per_stream; ++i) {
      PhasePlan& p = plan[i % plan.size()];
      if (total_weight > 0.0 && p.rate_scale == 0.0) continue;
      ++p.ops_per_stream;
      ++assigned;
    }
  }
  return plan;
}

/// Per-thread metric shard; merged after the join.
struct MetricShard {
  std::array<OpMetrics, kOpKindCount> per_op;
  common::LatencyHistogram staleness;
  std::vector<SubmissionRecord> submissions;
};

/// Everything one logical stream carries through the run.
struct StreamState {
  explicit StreamState(const WorkloadSpec& spec, std::size_t stream)
      : ops(spec, stream),
        pace(substream_seed(spec.seed, stream, /*salt=*/1)) {}

  OpStream ops;
  Rng pace;  ///< arrival gaps only; never touches op content
  std::size_t phase{0};
  std::uint64_t phase_ops{0};     ///< ops issued in the current phase
  double intended_us{0.0};        ///< open loop: next intended start
  bool done{false};
};

double lerp(double a, double b, double t) { return a + (b - a) * t; }

class Driver {
 public:
  Driver(const WorkloadSpec& spec, service::FleetService& service,
         const RunOptions& options)
      : spec_(spec),
        service_(service),
        options_(options),
        plan_(plan_phases(spec, options)) {
    for (std::size_t a = 0; a < spec.apps; ++a) keys_.push_back(app_key(a));
    total_duration_ms_ = 0;
    for (const PhasePlan& p : plan_) total_duration_ms_ += p.duration_ms;
  }

  LoadReport run() {
    for (const std::string& key : keys_) service_.open(key);

    const std::size_t streams = spec_.streams;
    std::size_t threads = options_.threads;
    if (threads == 0) {
      threads = std::max<std::size_t>(
          1, std::min<std::size_t>(streams,
                                   std::thread::hardware_concurrency()));
    }
    threads = std::min(threads, streams);

    std::vector<MetricShard> shards(threads);
    std::vector<std::vector<Op>> traces(options_.capture_ops ? streams : 0);

    start_ = Clock::now();
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) {
      workers.emplace_back([this, t, threads, &shards, &traces] {
        worker(t, threads, shards[t], traces);
      });
    }
    for (std::thread& worker : workers) worker.join();
    service_.drain();
    const double wall_seconds =
        std::chrono::duration<double>(Clock::now() - start_).count();

    LoadReport report;
    report.workload = spec_.name;
    report.threads = threads;
    report.streams = streams;
    report.arrival = spec_.arrival;
    report.wall_seconds = wall_seconds;
    for (MetricShard& shard : shards) {
      for (std::size_t k = 0; k < kOpKindCount; ++k) {
        report.per_op[k].issued += shard.per_op[k].issued;
        report.per_op[k].completed += shard.per_op[k].completed;
        report.per_op[k].failed += shard.per_op[k].failed;
        report.per_op[k].latency_us.merge(shard.per_op[k].latency_us);
      }
      report.staleness_arrivals.merge(shard.staleness);
      report.submissions.insert(report.submissions.end(),
                                shard.submissions.begin(),
                                shard.submissions.end());
    }
    report.op_trace = std::move(traces);
    report.offered_ops_per_second = offered_rate();
    report.achieved_ops_per_second =
        wall_seconds > 0.0
            ? static_cast<double>(report.total_completed()) / wall_seconds
            : 0.0;
    judge(report);
    return report;
  }

 private:
  [[nodiscard]] double offered_rate() const {
    if (spec_.arrival == ArrivalMode::kClosed || total_duration_ms_ == 0) {
      return 0.0;
    }
    double weighted = 0.0;
    for (const PhasePlan& p : plan_) {
      weighted += static_cast<double>(p.duration_ms) * p.rate_scale;
    }
    return spec_.rate * weighted / static_cast<double>(total_duration_ms_);
  }

  /// The fleet bound for the next op of `state` — op-index fraction in
  /// fixed-ops mode (deterministic), wall-clock fraction in timed mode.
  [[nodiscard]] double fleet_bound(const StreamState& state,
                                   double elapsed_ms) const {
    const PhasePlan& p = plan_[state.phase];
    double frac = 1.0;
    if (spec_.ops_per_stream > 0) {
      frac = p.ops_per_stream == 0
                 ? 1.0
                 : static_cast<double>(state.phase_ops + 1) /
                       static_cast<double>(p.ops_per_stream);
    } else if (p.duration_ms > 0) {
      double start_ms = 0.0;
      for (std::size_t i = 0; i < state.phase; ++i) {
        start_ms += static_cast<double>(plan_[i].duration_ms);
      }
      frac = (elapsed_ms - start_ms) / static_cast<double>(p.duration_ms);
    }
    return lerp(p.fleet_from, p.fleet_to, std::clamp(frac, 0.0, 1.0));
  }

  /// Executes one op for `state` and records it into `shard`.
  /// `latency_from` is the op's measurement origin (intended start in
  /// open loop, call start in closed loop).
  void execute(StreamState& state, MetricShard& shard,
               std::vector<std::vector<Op>>& traces, double fleet,
               Clock::time_point latency_from) {
    const Op op = state.ops.next(fleet);
    if (options_.capture_ops) traces[state.ops.stream()].push_back(op);
    const std::string& key = keys_[op.app];
    OpMetrics& metrics = shard.per_op[static_cast<std::size_t>(op.kind)];
    ++metrics.issued;
    try {
      switch (op.kind) {
        case OpKind::kIngest:
        case OpKind::kReupload: {
          const std::uint64_t id = service_.submit(
              key, synthetic_bundle(spec_, op.app, op.user, op.ordinal));
          if (options_.capture_submissions) {
            shard.submissions.push_back(
                {id, op.app, op.user, op.ordinal});
          }
          break;
        }
        case OpKind::kSnapshot: {
          const auto snapshot = service_.snapshot(key);
          const service::AppServiceStats row = service_.app_stats(key);
          // The two counters are sampled independently; skip the
          // transient where a publication lands between the loads.
          if (row.submitted >= row.published_arrivals) {
            shard.staleness.record(row.submitted - row.published_arrivals);
          }
          break;
        }
        case OpKind::kReport: {
          const std::string text = service_.report(key);
          require(!text.empty(), "loadgen: empty report");
          break;
        }
      }
      ++metrics.completed;
    } catch (const Error&) {
      // Expected early in a run: report() before the first publication
      // raises AnalysisError.  The op still consumed its latency.
      ++metrics.failed;
    }
    const auto elapsed = Clock::now() - latency_from;
    metrics.latency_us.record(static_cast<std::uint64_t>(std::max<long long>(
        0, std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
               .count())));
  }

  /// Advances the stream's phase/budget bookkeeping after one op;
  /// fixed-ops mode only.
  void advance_fixed(StreamState& state) {
    ++state.phase_ops;
    while (state.phase < plan_.size() &&
           state.phase_ops >= plan_[state.phase].ops_per_stream) {
      ++state.phase;
      state.phase_ops = 0;
    }
    if (state.phase >= plan_.size()) state.done = true;
  }

  /// Draws the next inter-arrival gap in microseconds for the stream's
  /// current phase; infinity for a rate-0 phase.
  [[nodiscard]] double arrival_gap_us(StreamState& state) const {
    const PhasePlan& p = plan_[state.phase];
    const double stream_rate =
        spec_.rate * p.rate_scale / static_cast<double>(spec_.streams);
    if (stream_rate <= 0.0) return -1.0;
    const double mean_us = 1e6 / stream_rate;
    return spec_.arrival == ArrivalMode::kOpenPoisson
               ? state.pace.exponential(mean_us)
               : mean_us;
  }

  void worker(std::size_t thread, std::size_t threads, MetricShard& shard,
              std::vector<std::vector<Op>>& traces) {
    std::vector<StreamState> mine;
    for (std::size_t s = thread; s < spec_.streams; s += threads) {
      mine.emplace_back(spec_, s);
    }
    if (mine.empty()) return;
    if (spec_.ops_per_stream > 0) {
      // Fixed-ops mode: start each stream in its first phase that owns
      // any budget (a rate-0 warmup gets none).
      for (StreamState& state : mine) {
        while (state.phase < plan_.size() &&
               plan_[state.phase].ops_per_stream == 0) {
          ++state.phase;
        }
        if (state.phase >= plan_.size()) state.done = true;
      }
    }
    if (spec_.arrival == ArrivalMode::kClosed) {
      worker_closed(mine, shard, traces);
    } else {
      worker_open(mine, shard, traces);
    }
  }

  void worker_closed(std::vector<StreamState>& mine, MetricShard& shard,
                     std::vector<std::vector<Op>>& traces) {
    const bool fixed = spec_.ops_per_stream > 0;
    std::size_t live = mine.size();
    while (live > 0) {
      live = 0;
      for (StreamState& state : mine) {
        if (state.done) continue;
        const auto now = Clock::now();
        const double elapsed_ms =
            std::chrono::duration<double, std::milli>(now - start_).count();
        if (!fixed) {
          // Timed: advance phases on the clock; a rate-0 phase (drain)
          // issues nothing in closed mode too.
          double end_ms = 0.0;
          for (std::size_t i = 0; i <= state.phase; ++i) {
            end_ms += static_cast<double>(plan_[i].duration_ms);
          }
          if (elapsed_ms >= end_ms) {
            ++state.phase;
            if (state.phase >= plan_.size()) {
              state.done = true;
              continue;
            }
          }
          if (plan_[state.phase].rate_scale == 0.0) {
            ++live;
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
            continue;
          }
        }
        execute(state, shard, traces, fleet_bound(state, elapsed_ms), now);
        if (fixed) {
          advance_fixed(state);
        }
        if (!state.done) ++live;
      }
    }
  }

  void worker_open(std::vector<StreamState>& mine, MetricShard& shard,
                   std::vector<std::vector<Op>>& traces) {
    const bool fixed = spec_.ops_per_stream > 0;
    const double total_ms = static_cast<double>(total_duration_ms_);
    // Prime every stream's first intended arrival.
    for (StreamState& state : mine) {
      if (state.done) continue;
      const double gap = arrival_gap_us(state);
      if (gap < 0.0) {
        skip_rate0(state);
        continue;
      }
      state.intended_us = gap;
      clip_timed(state, total_ms, fixed);
    }
    while (true) {
      StreamState* next = nullptr;
      for (StreamState& state : mine) {
        if (state.done) continue;
        if (next == nullptr || state.intended_us < next->intended_us) {
          next = &state;
        }
      }
      if (next == nullptr) break;
      const auto intended =
          start_ + std::chrono::microseconds(
                       static_cast<std::int64_t>(next->intended_us));
      std::this_thread::sleep_until(intended);
      // Coordinated-omission correction: measure from the intended
      // start, so backlog behind a stall shows up in every sample.
      execute(*next, shard, traces,
              fleet_bound(*next, next->intended_us / 1000.0), intended);
      if (fixed) {
        advance_fixed(*next);
        if (next->done) continue;
      }
      const double gap = arrival_gap_us(*next);
      if (gap < 0.0) {
        skip_rate0(*next);
        continue;
      }
      next->intended_us += gap;
      clip_timed(*next, total_ms, fixed);
    }
  }

  /// Jumps a stream past rate-0 phases (open loop): intended time moves
  /// to the next phase boundary; the stream finishes when none remain.
  void skip_rate0(StreamState& state) {
    while (state.phase < plan_.size() &&
           plan_[state.phase].rate_scale == 0.0 &&
           // Fixed-ops streams may still owe ops to a later phase.
           (spec_.ops_per_stream == 0 ||
            plan_[state.phase].ops_per_stream == 0)) {
      double end_ms = 0.0;
      for (std::size_t i = 0; i <= state.phase; ++i) {
        end_ms += static_cast<double>(plan_[i].duration_ms);
      }
      state.intended_us = std::max(state.intended_us, end_ms * 1000.0);
      ++state.phase;
      state.phase_ops = 0;
    }
    if (state.phase >= plan_.size()) {
      state.done = true;
      return;
    }
    const double gap = arrival_gap_us(state);
    if (gap < 0.0) {
      state.done = true;  // only rate-0 phases remain
      return;
    }
    state.intended_us += gap;
  }

  /// Timed mode: a stream whose next intended arrival falls past the
  /// run end is finished; phase switches follow the intended clock.
  void clip_timed(StreamState& state, double total_ms, bool fixed) {
    if (fixed) return;
    double end_ms = 0.0;
    for (std::size_t i = 0; i <= state.phase && i < plan_.size(); ++i) {
      end_ms += static_cast<double>(plan_[i].duration_ms);
    }
    while (state.phase < plan_.size() &&
           state.intended_us >= end_ms * 1000.0 &&
           end_ms < total_ms) {
      ++state.phase;
      if (state.phase < plan_.size()) {
        end_ms += static_cast<double>(plan_[state.phase].duration_ms);
      }
    }
    if (state.intended_us >= total_ms * 1000.0 ||
        state.phase >= plan_.size()) {
      state.done = true;
    } else if (plan_[state.phase].rate_scale == 0.0) {
      skip_rate0(state);
    }
  }

  void judge(LoadReport& report) const {
    if (spec_.slo_throughput.has_value()) {
      SloVerdict verdict;
      verdict.name = "throughput_ops_per_second";
      verdict.target = *spec_.slo_throughput;
      verdict.actual = report.achieved_ops_per_second;
      verdict.pass = verdict.actual >= verdict.target;
      report.slo_pass = report.slo_pass && verdict.pass;
      report.slos.push_back(std::move(verdict));
    }
    for (std::size_t k = 0; k < kOpKindCount; ++k) {
      if (!spec_.slo_p99_ms[k].has_value()) continue;
      SloVerdict verdict;
      verdict.name =
          "p99_" + std::string(op_kind_name(static_cast<OpKind>(k))) + "_ms";
      verdict.target = *spec_.slo_p99_ms[k];
      verdict.actual = static_cast<double>(
                           report.per_op[k].latency_us.value_at_percentile(
                               99.0)) /
                       1000.0;
      verdict.pass = verdict.actual <= verdict.target;
      report.slo_pass = report.slo_pass && verdict.pass;
      report.slos.push_back(std::move(verdict));
    }
  }

  const WorkloadSpec& spec_;
  service::FleetService& service_;
  RunOptions options_;
  std::vector<PhasePlan> plan_;
  std::vector<std::string> keys_;
  std::uint64_t total_duration_ms_{0};
  Clock::time_point start_;
};

std::string json_double(double value) {
  if (!std::isfinite(value)) return "0";
  std::string out = strings::format_double(value, 3);
  return out;
}

void append_histogram_json(std::string& out,
                           const common::LatencyHistogram& h) {
  out += "{\"count\": " + std::to_string(h.count());
  out += ", \"mean\": " + json_double(h.mean());
  out += ", \"min\": " + std::to_string(h.min());
  for (const auto& [label, p] :
       {std::pair{"p50", 50.0}, {"p90", 90.0}, {"p95", 95.0},
        {"p99", 99.0}, {"p999", 99.9}}) {
    out += std::string(", \"") + label +
           "\": " + std::to_string(h.value_at_percentile(p));
  }
  out += ", \"max\": " + std::to_string(h.max()) + "}";
}

}  // namespace

std::uint64_t LoadReport::total_completed() const {
  std::uint64_t total = 0;
  for (const OpMetrics& metrics : per_op) total += metrics.completed;
  return total;
}

std::string LoadReport::to_json() const {
  std::string out = "{\n";
  out += "  \"energydx_loadgen\": 1,\n";
  out += "  \"workload\": \"" + workload + "\",\n";
  out += "  \"threads\": " + std::to_string(threads) + ",\n";
  out += "  \"streams\": " + std::to_string(streams) + ",\n";
  out += std::string("  \"arrival\": \"") +
         (arrival == ArrivalMode::kClosed
              ? "closed"
              : arrival == ArrivalMode::kOpenPoisson ? "open-poisson"
                                                     : "open-uniform") +
         "\",\n";
  out += "  \"wall_seconds\": " + json_double(wall_seconds) + ",\n";
  out += "  \"offered_ops_per_second\": " +
         json_double(offered_ops_per_second) + ",\n";
  out += "  \"achieved_ops_per_second\": " +
         json_double(achieved_ops_per_second) + ",\n";
  out += "  \"ops\": {\n";
  for (std::size_t k = 0; k < kOpKindCount; ++k) {
    out += "    \"" + std::string(op_kind_name(static_cast<OpKind>(k))) +
           "\": {\"issued\": " + std::to_string(per_op[k].issued) +
           ", \"completed\": " + std::to_string(per_op[k].completed) +
           ", \"failed\": " + std::to_string(per_op[k].failed) +
           ", \"latency_us\": ";
    append_histogram_json(out, per_op[k].latency_us);
    out += k + 1 < kOpKindCount ? "},\n" : "}\n";
  }
  out += "  },\n";
  out += "  \"staleness_arrivals\": ";
  append_histogram_json(out, staleness_arrivals);
  out += ",\n";
  out += "  \"slo\": [";
  for (std::size_t i = 0; i < slos.size(); ++i) {
    if (i > 0) out += ", ";
    out += "{\"name\": \"" + slos[i].name +
           "\", \"target\": " + json_double(slos[i].target) +
           ", \"actual\": " + json_double(slos[i].actual) +
           ", \"pass\": " + (slos[i].pass ? "true" : "false") + "}";
  }
  out += "],\n";
  out += std::string("  \"slo_pass\": ") + (slo_pass ? "true" : "false") +
         "\n";
  out += "}\n";
  return out;
}

std::string LoadReport::to_text() const {
  std::string out;
  out += "loadgen: " + workload + " (" + std::to_string(streams) +
         " stream(s) on " + std::to_string(threads) + " thread(s), " +
         (arrival == ArrivalMode::kClosed
              ? std::string("closed loop")
              : std::string(arrival == ArrivalMode::kOpenPoisson
                                ? "open loop, poisson"
                                : "open loop, uniform") +
                    " @ " + json_double(offered_ops_per_second) + " ops/s") +
         ")\n";
  out += "  wall " + json_double(wall_seconds) + " s, achieved " +
         json_double(achieved_ops_per_second) + " ops/s\n";
  for (std::size_t k = 0; k < kOpKindCount; ++k) {
    const OpMetrics& m = per_op[k];
    if (m.issued == 0) continue;
    const auto& h = m.latency_us;
    out += "  " + std::string(op_kind_name(static_cast<OpKind>(k))) + ": " +
           std::to_string(m.completed) + " ok";
    if (m.failed > 0) out += ", " + std::to_string(m.failed) + " failed";
    out += "; p50 " + std::to_string(h.value_at_percentile(50.0)) +
           " us, p99 " + std::to_string(h.value_at_percentile(99.0)) +
           " us, p99.9 " + std::to_string(h.value_at_percentile(99.9)) +
           " us, max " + std::to_string(h.max()) + " us\n";
  }
  if (staleness_arrivals.count() > 0) {
    out += "  staleness: p50 " +
           std::to_string(staleness_arrivals.value_at_percentile(50.0)) +
           ", p99 " +
           std::to_string(staleness_arrivals.value_at_percentile(99.0)) +
           ", max " + std::to_string(staleness_arrivals.max()) +
           " arrivals behind\n";
  }
  for (const SloVerdict& verdict : slos) {
    out += std::string("  slo ") + verdict.name + ": " +
           json_double(verdict.actual) +
           (verdict.name.starts_with("p99") ? " <= " : " >= ") +
           json_double(verdict.target) + " -> " +
           (verdict.pass ? "PASS" : "FAIL") + "\n";
  }
  return out;
}

LoadReport run_load(const WorkloadSpec& spec,
                    service::FleetService& service,
                    const RunOptions& options) {
  spec.validate();
  Driver driver(spec, service, options);
  return driver.run();
}

}  // namespace edx::loadgen
