// Named workload registry (the YCSB-cpp WorkloadFactory idiom).
//
// Built-in mixes cover the service's main traffic shapes; callers (the
// CLI's `loadgen --workload NAME`, tests) look them up by name, and new
// scenarios register a builder without touching this file.  Specs come
// out of a builder freshly built each time, so callers may tweak them
// (seed, streams, rate) without cross-talk.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "loadgen/workload_spec.h"

namespace edx::loadgen {

class WorkloadFactory {
 public:
  using Builder = std::function<WorkloadSpec()>;

  /// The process-wide registry, with the built-ins pre-registered:
  ///   ingest-heavy    first-contact uploads dominate (95/5 writes/reads)
  ///   read-heavy      dashboard traffic: snapshot/report dominate
  ///   reupload-churn  a settled fleet re-uploading, skewed to hot users
  ///   mixed           balanced writes/reads with hot-app skew
  static WorkloadFactory& instance();

  /// Registers (or replaces) a named builder.
  void register_workload(std::string name, Builder builder);

  /// Builds the named spec.  Throws InvalidArgument for unknown names
  /// (message lists the registered ones).
  [[nodiscard]] WorkloadSpec create(std::string_view name) const;

  [[nodiscard]] bool contains(std::string_view name) const;

  /// Registered names, sorted (for --help and error messages).
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  WorkloadFactory();

  std::vector<std::pair<std::string, Builder>> builders_;
};

}  // namespace edx::loadgen
