#include "loadgen/workload_factory.h"

#include <algorithm>

#include "common/error.h"
#include "common/strings.h"

namespace edx::loadgen {

namespace {

/// Shared skeleton for the built-ins: a few tenants, modest fleets, and
/// a fixed-ops budget small enough for CI yet large enough that every
/// stream ingests past its slice and exercises re-uploads.
WorkloadSpec base_spec(std::string name) {
  WorkloadSpec spec;
  spec.name = std::move(name);
  spec.apps = 3;
  spec.users = 96;
  spec.streams = 4;
  spec.seed = 42;
  spec.ops_per_stream = 200;
  spec.events_per_bundle = 24;
  return spec;
}

}  // namespace

WorkloadFactory& WorkloadFactory::instance() {
  static WorkloadFactory factory;
  return factory;
}

WorkloadFactory::WorkloadFactory() {
  register_workload("ingest-heavy", [] {
    WorkloadSpec spec = base_spec("ingest-heavy");
    spec.mix = {0.80, 0.15, 0.04, 0.01};
    return spec;
  });
  register_workload("read-heavy", [] {
    WorkloadSpec spec = base_spec("read-heavy");
    spec.mix = {0.05, 0.05, 0.60, 0.30};
    spec.user_skew = 0.5;
    return spec;
  });
  register_workload("reupload-churn", [] {
    WorkloadSpec spec = base_spec("reupload-churn");
    spec.mix = {0.10, 0.80, 0.08, 0.02};
    spec.user_skew = 1.5;
    return spec;
  });
  register_workload("mixed", [] {
    WorkloadSpec spec = base_spec("mixed");
    spec.mix = {0.40, 0.25, 0.25, 0.10};
    spec.hot_apps = 1;
    spec.hot_fraction = 0.5;
    spec.user_skew = 0.5;
    return spec;
  });
}

void WorkloadFactory::register_workload(std::string name, Builder builder) {
  require(!name.empty(), "workload name must be non-empty");
  require(builder != nullptr, "workload builder must be callable");
  for (auto& [existing, slot] : builders_) {
    if (existing == name) {
      slot = std::move(builder);
      return;
    }
  }
  builders_.emplace_back(std::move(name), std::move(builder));
}

WorkloadSpec WorkloadFactory::create(std::string_view name) const {
  for (const auto& [existing, builder] : builders_) {
    if (existing == name) {
      WorkloadSpec spec = builder();
      spec.validate();
      return spec;
    }
  }
  throw InvalidArgument("unknown workload '" + std::string(name) +
                        "' (registered: " + strings::join(names(), ", ") +
                        ")");
}

bool WorkloadFactory::contains(std::string_view name) const {
  return std::any_of(
      builders_.begin(), builders_.end(),
      [name](const auto& entry) { return entry.first == name; });
}

std::vector<std::string> WorkloadFactory::names() const {
  std::vector<std::string> out;
  out.reserve(builders_.size());
  for (const auto& [name, builder] : builders_) out.push_back(name);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace edx::loadgen
