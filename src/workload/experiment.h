// End-to-end experiment driver.
//
// evaluate_app() reproduces the whole per-app evaluation of §IV for one
// catalog entry: collect instrumented traces from a simulated population,
// run the EnergyDx pipeline, compute the code-reduction metric, run all
// three baselines (CheckAll, No-sleep Detection, eDelta), measure the
// event distance against the injected ground truth, and compare average
// app power before/after the fix.  The bench binaries are thin printers
// over this.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "workload/catalog.h"
#include "workload/session.h"

namespace edx::workload {

/// Everything §IV reports about one app.
struct AppEvaluation {
  int id{0};
  std::string name;
  AbdKind kind{AbdKind::kNoSleep};
  long long downloads{-1};
  double paper_code_reduction{0.0};

  // EnergyDx.
  int total_lines{0};
  int energydx_lines{0};
  double energydx_reduction{0.0};
  std::vector<core::ReportedEvent> top_events;  ///< ranked, up to 6
  bool root_cause_reported{false};  ///< root-cause event in the diagnosis set
  /// Weaker success: some diagnosis event belongs to the buggy component —
  /// reading that component's callbacks still leads straight to the defect.
  bool component_reported{false};
  std::optional<int> event_distance;

  // Baselines.
  int checkall_lines{0};
  double checkall_reduction{0.0};
  bool nosleep_detected{false};
  double nosleep_reduction{0.0};  ///< 1.0 when detected (paper's accounting)
  bool edelta_detected{false};
  double edelta_reduction{0.0};

  // Power before/after the fix (Fig. 17), averaged over triggering users
  // on the reference device.
  double avg_power_buggy_mw{0.0};
  double avg_power_fixed_mw{0.0};
  [[nodiscard]] double power_reduction() const {
    return avg_power_buggy_mw > 0.0
               ? 1.0 - avg_power_fixed_mw / avg_power_buggy_mw
               : 0.0;
  }
};

/// Flags controlling which (expensive) parts run.
struct EvaluationOptions {
  bool run_checkall{true};
  bool run_nosleep{true};
  bool run_edelta{true};
  bool run_power_comparison{true};
};

/// Runs the full §IV evaluation for one app.
AppEvaluation evaluate_app(const AppCase& app_case,
                           const PopulationConfig& population,
                           const EvaluationOptions& options = {});

/// Collects instrumented buggy-build traces and runs the EnergyDx
/// pipeline; shared by evaluate_app and the per-figure benches.
struct PipelineRun {
  CollectedTraces traces;
  core::AnalysisResult analysis;
  core::AnalysisConfig config_used;
};
PipelineRun run_energydx(const AppCase& app_case,
                         const PopulationConfig& population,
                         const core::AnalysisConfig* override_config = nullptr);

/// Fully self-contained variant: instead of taking the impacted-user
/// fraction from ground truth (the stand-in for forum reports), estimate
/// it from the collected traces with the eDoctor-style app-level detector
/// (baselines/edoctor.h) — the workflow the paper describes for developers
/// without good reports.  `estimated_fraction_out` (optional) receives the
/// estimate used.
PipelineRun run_energydx_self_contained(
    const AppCase& app_case, const PopulationConfig& population,
    double* estimated_fraction_out = nullptr);

/// Mean power of the app process across triggering users, on the reference
/// device, over each user's whole session (mW).
double average_app_power(const AppCase& app_case,
                         const android::AppSpec& variant,
                         const PopulationConfig& population);

/// Post-fix validation, the way the paper confirms its 40 fixes: re-run
/// the same population on the patched build and check that (a) the
/// manifestation points are gone from the collected traces and (b) the
/// app's average power dropped.
struct FixVerification {
  std::size_t buggy_traces_with_manifestation{0};
  std::size_t fixed_traces_with_manifestation{0};
  double avg_power_buggy_mw{0.0};
  double avg_power_fixed_mw{0.0};

  [[nodiscard]] double power_reduction() const {
    return avg_power_buggy_mw > 0.0
               ? 1.0 - avg_power_fixed_mw / avg_power_buggy_mw
               : 0.0;
  }
  /// The fix holds when manifestations (nearly) disappear — legitimate
  /// heavy usage can still resemble a drain in the odd trace — and the
  /// app's average power meaningfully drops.
  [[nodiscard]] bool fix_confirmed() const {
    return 4 * fixed_traces_with_manifestation <=
               buggy_traces_with_manifestation &&
           power_reduction() > 0.05;
  }
};

FixVerification verify_fix(const AppCase& app_case,
                           const PopulationConfig& population);

}  // namespace edx::workload
