// K-9 Mail (§II-A and §III-B of the paper).
//
// The ABD: the account-settings screen lets the user raise the number of
// simultaneous IMAP connections without validating it against the server's
// limit.  With the bad value saved, MailService's periodic mail check is
// declined by the server and keeps retrying — a sustained network+CPU
// drain.  The root-cause event is AccountSettings.onResume (the settings
// screen resuming after the value dialog), per Fig. 2 of the paper; the
// manifestation is the first declined connection attempt a few events
// later (paper event distance: 3).
#include "workload/catalog.h"

#include "android/apk_builder.h"
#include "workload/app_factory.h"

namespace edx::workload {

using namespace edx::android;

namespace {

constexpr const char* kPkg = "com.fsck.k9";
constexpr const char* kMaxConnections = "imap_max_connections";
constexpr const char* kTooMany = "50";  // Gmail allows 15

struct K9Names {
  std::string home = make_class_name(kPkg, "activity", "K9Activity");
  std::string list = make_class_name(kPkg, "activity", "MessageList");
  std::string compose = make_class_name(kPkg, "activity", "MessageCompose");
  std::string settings =
      make_class_name(kPkg, "activity/setup", "AccountSettings");
  std::string service = make_class_name(kPkg, "service", "MailService");
};

AppSpec build_k9(bool buggy) {
  const K9Names names;
  AppSpec app;
  app.package_name = kPkg;
  app.display_name = "K-9 Mail";
  app.main_activity = names.home;
  app.default_config[kMaxConnections] = "5";

  ComponentSpec home;
  home.class_name = names.home;
  home.simple_name = "K9Activity";
  home.kind = ClassKind::kActivity;
  home.set_callback({"onCreate", 30, {lift(cpu_work(45, 0.5))}});
  home.set_callback({"onResume", 52, {lift(cpu_work(12, 0.4))}});

  ComponentSpec list;
  list.class_name = names.list;
  list.simple_name = "MessageList";
  list.kind = ClassKind::kActivity;
  list.set_callback({"onCreate", 40, {lift(cpu_work(40, 0.5))}});
  list.set_callback({"onResume", 55, {lift(cpu_work(14, 0.4))}});
  // The heavy-but-normal event of Fig. 7a ("Checkmail").
  list.set_callback({"onClick:btnCheckMail", 34,
                     {lift(network(450, 0.95)), lift(cpu_work(120, 0.7))}});
  list.set_callback({"onItemClick", 22, {lift(cpu_work(45, 0.5))}});

  ComponentSpec compose;
  compose.class_name = names.compose;
  compose.simple_name = "MessageCompose";
  compose.kind = ClassKind::kActivity;
  // Keystrokes while composing: the dashed-box spikes of Fig. 3.
  compose.set_callback({"onKey", 18, {lift(cpu_work(90, 0.85))}});
  compose.set_callback({"onClick:btnSend", 28,
                        {lift(network(900, 0.8)), lift(cpu_work(60, 0.5))}});

  ComponentSpec settings;
  settings.class_name = names.settings;
  settings.simple_name = "AccountSettings";
  settings.kind = ClassKind::kActivity;
  settings.set_callback({"onResume", 54, {lift(cpu_work(10, 0.4))}});
  // Buggy: stores whatever the picker produced (no server-limit check).
  // Fixed: clamps to the server-accepted maximum.
  settings.set_callback(
      {"onClick:btnMaxConnections", 26,
       {lift(set_config(kMaxConnections, buggy ? kTooMany : "15"))}});

  ComponentSpec service;
  service.class_name = names.service;
  service.simple_name = "MailService";
  service.kind = ClassKind::kService;
  // Periodic mail check: a cheap poll normally; with the bad setting the
  // server declines and the service keeps re-connecting (Socket.connect
  // bursts — the un-logged manifestation event of Fig. 2 line 5).
  // The declined connection is retried almost immediately (the K9 issue
  // report: "running CPU and data constantly"), so the drain manifests
  // within an event or two of the misconfiguration.
  service.set_callback(
      {"onCreate", 36,
       {start_periodic_task(
           "mailcheck", 1200,
           {network(150, 0.2),
            guarded(network(1100, 0.9), kMaxConnections, kTooMany),
            guarded(cpu_work(250, 0.6), kMaxConnections, kTooMany)})}});
  service.set_callback({"onDestroy", 16, {cancel_periodic_task("mailcheck")}});

  app.components = {home, list, compose, settings, service};
  app.ensure_lifecycle_callbacks();
  // K-9 is a big app: folder lists, account setup wizards, preference
  // panes... roughly a tenth of its 98k lines sit in event handlers.
  add_filler_screens(app, 98'532 / 10);

  // Table III: the K-9 code base is 98,532 lines; the callbacks above are
  // a sliver of it.
  int callback_loc = 0;
  for (const ComponentSpec& component : app.components) {
    for (const CallbackSpec& callback : component.callbacks) {
      callback_loc += callback.lines_of_code;
    }
  }
  const int total_target = 98'532;
  int remaining = total_target - callback_loc;
  for (ComponentSpec& component : app.components) {
    component.helper_loc = 3'000;
    remaining -= 3'000;
  }
  app.glue_loc = remaining;
  return app;
}

UserScript k9_script(Rng& rng, bool trigger,
                     const std::vector<std::string>& screens) {
  const K9Names names;
  const auto think = [&]() -> DurationMs { return rng.uniform_int(500, 1500); };

  UserScript script;
  script.push_back(launch());
  script.push_back(start_service(names.service, 300));
  if (rng.bernoulli(0.5)) append_screen_visit(script, rng, screens);
  script.push_back(navigate(names.list, think()));

  // Normal usage: read mail, compose (the Fig. 3 spikes), check mail.
  const int reads = static_cast<int>(rng.uniform_int(1, 3));
  for (int i = 0; i < reads; ++i) {
    script.push_back(interact("onItemClick", think()));
  }
  if (rng.bernoulli(0.7)) {
    script.push_back(navigate(names.compose, think()));
    const int keys = static_cast<int>(rng.uniform_int(4, 10));
    for (int i = 0; i < keys; ++i) {
      script.push_back(interact("onKey", rng.uniform_int(180, 500)));
    }
    script.push_back(interact("onClick:btnSend", think()));
    script.push_back(back_press(think()));
  }
  script.push_back(interact("onClick:btnCheckMail", think()));

  if (trigger) {
    // The misconfiguration: open settings, raise the connection count in a
    // dialog (AccountSettings.onResume fires as the dialog closes — the
    // root-cause event), optionally restart the mail service, return to
    // the list and the home screen.  The next periodic mail check is
    // declined and the retry drain begins.
    script.push_back(navigate(names.settings, think()));
    script.push_back(dialog("onClick:btnMaxConnections", think()));
    if (rng.bernoulli(0.5)) {
      script.push_back(stop_service(names.service, 200));
      script.push_back(start_service(names.service, 200));
    }
    // Return to the message list and home quickly; the next declined mail
    // check lands around these events (Fig. 2's event distance of ~3).
    script.push_back(back_press(rng.uniform_int(600, 1000)));
    script.push_back(back_press(rng.uniform_int(600, 1000)));
    script.push_back(idle(rng.uniform_int(8000, 15000)));
    script.push_back(background_app(think()));
    script.push_back(idle(rng.uniform_int(60000, 120000)));
  } else {
    if (rng.bernoulli(0.4)) {
      // Browse settings without changing anything.
      script.push_back(navigate(names.settings, think()));
      script.push_back(back_press(think()));
    }
    if (rng.bernoulli(0.5)) append_screen_visit(script, rng, screens);
    script.push_back(interact("onItemClick", think()));
    script.push_back(background_app(think()));
    script.push_back(idle(rng.uniform_int(30000, 60000)));
  }
  return script;
}

}  // namespace

AppCase k9_mail_case() {
  const K9Names names;
  AppCase app_case;
  app_case.id = 3;
  app_case.display_name = "K-9 Mail";
  app_case.downloads = 5'000'000;
  app_case.kind = AbdKind::kConfiguration;
  app_case.paper_code_reduction = 0.99;
  app_case.trigger_fraction = 1.0 / 6.0;  // the paper's ~15% of users

  app_case.buggy = build_k9(/*buggy=*/true);
  app_case.fixed = build_k9(/*buggy=*/false);

  app_case.bug.kind = AbdKind::kConfiguration;
  app_case.bug.root_cause_event =
      qualified_event_name(names.settings, "onResume");
  app_case.bug.use_last_occurrence = true;
  app_case.bug.component_class = names.settings;
  app_case.bug.drain_power_mw = 253.0;

  const std::vector<std::string> screens = filler_screen_names(app_case.buggy);
  app_case.scenario = [screens](Rng& rng, bool trigger) {
    return k9_script(rng, trigger, screens);
  };
  return app_case;
}

}  // namespace edx::workload
