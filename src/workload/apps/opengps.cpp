// OpenGPS (open-gpstracker, §IV-C of the paper).
//
// The ABD: tracking turns the GPS on, and the LoggerMap activity fails to
// release the location service when it pauses — GPS keeps drawing power
// after the app is backgrounded (Fig. 11: display power 0, GPS power
// high).  Top reported events in the paper: LoggerMap:onPause,
// Idle(No_Display), LoggerMap:onResume, ControlTracking:onPause
// (Table IV); search space 5,060 -> 569 lines.
#include "workload/catalog.h"

#include "workload/app_factory.h"

namespace edx::workload {

using namespace edx::android;

namespace {

constexpr const char* kPkg = "nl.sogeti.android.gpstracker";

struct GpsNames {
  std::string map = make_class_name(kPkg, "ui", "LoggerMap");
  std::string control = make_class_name(kPkg, "ui", "ControlTracking");
  std::string about = make_class_name(kPkg, "ui", "AboutDialog");
};

AppSpec build_opengps(bool buggy) {
  const GpsNames names;
  AppSpec app;
  app.package_name = kPkg;
  app.display_name = "OpenGPS";
  app.main_activity = names.map;

  ComponentSpec map;
  map.class_name = names.map;
  map.simple_name = "LoggerMap";
  map.kind = ClassKind::kActivity;
  map.set_callback({"onCreate", 64, {lift(cpu_work(60, 0.6))}});
  map.set_callback({"onResume", 180, {lift(cpu_work(25, 0.6))}});
  // Map redraw while panning: heavy-but-normal CPU.
  map.set_callback({"onTouch", 36, {lift(cpu_work(140, 0.8))}});
  // THE BUG: onPause must hand the location updates back when the map
  // leaves the foreground; the buggy build forgets.
  Behavior map_pause = {lift(cpu_work(8, 0.4))};
  if (!buggy) map_pause.push_back(lift(gps_stop()));
  map.set_callback({"onPause", 200, std::move(map_pause)});

  ComponentSpec control;
  control.class_name = names.control;
  control.simple_name = "ControlTracking";
  control.kind = ClassKind::kActivity;
  control.set_callback({"onClick:btnStartTracking", 48,
                        {lift(gps_start()), lift(cpu_work(20, 0.4))}});
  control.set_callback({"onClick:btnStopTracking", 30,
                        {lift(gps_stop()), lift(cpu_work(10, 0.4))}});
  control.set_callback({"onPause", 120, {lift(cpu_work(6, 0.3))}});

  ComponentSpec about;
  about.class_name = names.about;
  about.simple_name = "AboutDialog";
  about.kind = ClassKind::kActivity;
  about.set_callback({"onCreate", 20, {lift(cpu_work(15, 0.3))}});

  app.components = {map, control, about};
  app.ensure_lifecycle_callbacks();

  int callback_loc = 0;
  for (const ComponentSpec& component : app.components) {
    for (const CallbackSpec& callback : component.callbacks) {
      callback_loc += callback.lines_of_code;
    }
  }
  const int total_target = 5'060;  // the paper's line count
  int remaining = total_target - callback_loc;
  for (ComponentSpec& component : app.components) {
    component.helper_loc = 900;
    remaining -= 900;
  }
  app.glue_loc = remaining;
  return app;
}

UserScript opengps_script(Rng& rng, bool trigger) {
  const GpsNames names;
  const auto think = [&]() -> DurationMs { return rng.uniform_int(500, 1500); };

  UserScript script;
  script.push_back(launch());
  const int pans = static_cast<int>(rng.uniform_int(2, 5));
  for (int i = 0; i < pans; ++i) {
    script.push_back(interact("onTouch", think()));
  }

  if (trigger) {
    // Start tracking, look at the map, pocket the phone.  LoggerMap's
    // onPause should have released the GPS; it keeps burning instead.
    script.push_back(navigate(names.control, think()));
    script.push_back(interact("onClick:btnStartTracking", think()));
    script.push_back(back_press(think()));  // ControlTracking.onPause -> map
    script.push_back(interact("onTouch", think()));
    script.push_back(idle(rng.uniform_int(4000, 9000)));
    script.push_back(background_app(think()));
    script.push_back(idle(rng.uniform_int(60000, 120000)));
  } else {
    if (rng.bernoulli(0.6)) {
      // A disciplined session: start tracking, stop tracking from the same
      // screen — GPS use is legitimate and bounded.
      script.push_back(navigate(names.control, think()));
      script.push_back(interact("onClick:btnStartTracking", think()));
      script.push_back(idle(rng.uniform_int(5000, 12000)));
      script.push_back(interact("onClick:btnStopTracking", think()));
      script.push_back(back_press(think()));
    } else if (rng.bernoulli(0.4)) {
      script.push_back(navigate(names.about, think()));
      script.push_back(back_press(think()));
    }
    script.push_back(interact("onTouch", think()));
    script.push_back(background_app(think()));
    script.push_back(idle(rng.uniform_int(30000, 60000)));
  }
  return script;
}

}  // namespace

AppCase opengps_case() {
  const GpsNames names;
  AppCase app_case;
  app_case.id = 0;  // §IV-C case study; not a Table III row
  app_case.display_name = "OpenGPS";
  app_case.downloads = 500'000;
  app_case.kind = AbdKind::kNoSleep;
  app_case.paper_code_reduction = 1.0 - 569.0 / 5060.0;
  app_case.trigger_fraction = 0.2;

  app_case.buggy = build_opengps(/*buggy=*/true);
  app_case.fixed = build_opengps(/*buggy=*/false);

  app_case.bug.kind = AbdKind::kNoSleep;
  app_case.bug.root_cause_event = qualified_event_name(names.map, "onPause");
  app_case.bug.use_last_occurrence = true;
  app_case.bug.component_class = names.map;
  app_case.bug.drain_power_mw = 429.0;  // GPS on the reference device

  app_case.scenario = [](Rng& rng, bool trigger) {
    return opengps_script(rng, trigger);
  };
  return app_case;
}

}  // namespace edx::workload
