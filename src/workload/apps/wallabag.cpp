// Wallabag (§IV-C of the paper).
//
// The ABD: deleting an article on the phone that was already deleted on
// the server makes the client retry the sync forever — a sustained
// CPU-heavy drain (Fig. 14 shows CPU dominating).  Top reported events:
// ReadArticle:menuDeleted, ReadArticle:onCreate, ReadArticle:onResume
// (Table V); search space 21,424 -> 306 lines.
#include "workload/catalog.h"

#include "workload/app_factory.h"

namespace edx::workload {

using namespace edx::android;

namespace {

constexpr const char* kPkg = "fr.gaulupeau.apps.wallabag";

struct WallabagNames {
  std::string list = make_class_name(kPkg, "ui", "ArticleList");
  std::string read = make_class_name(kPkg, "ui", "ReadArticle");
  std::string libs = make_class_name(kPkg, "ui", "LibsActivity");
};

AppSpec build_wallabag(bool buggy) {
  const WallabagNames names;
  AppSpec app;
  app.package_name = kPkg;
  app.display_name = "Wallabag";
  app.main_activity = names.list;

  ComponentSpec list;
  list.class_name = names.list;
  list.simple_name = "ArticleList";
  list.kind = ClassKind::kActivity;
  list.set_callback({"onCreate", 36, {lift(cpu_work(45, 0.5))}});
  list.set_callback({"onItemClick", 20, {lift(cpu_work(40, 0.5))}});
  // Pull-to-refresh of the article list: heavy but normal.
  list.set_callback({"onClick:btnSync", 30,
                     {lift(network(450, 0.95)), lift(cpu_work(150, 0.7))}});

  ComponentSpec read;
  read.class_name = names.read;
  read.simple_name = "ReadArticle";
  read.kind = ClassKind::kActivity;
  read.set_callback({"onCreate", 100, {lift(cpu_work(55, 0.6))}});
  read.set_callback({"onResume", 90, {lift(cpu_work(15, 0.4))}});
  read.set_callback({"onScroll", 16, {lift(cpu_work(50, 0.6))}});
  // THE BUG: deleting an article that is already gone server-side starts a
  // sync retry that never succeeds.  The fixed build deletes locally and
  // reconciles once.
  Behavior deleted;
  if (buggy) {
    deleted.push_back(start_periodic_task(
        "deleteRetry", 2000, {cpu_work(1500, 0.9), network(300, 0.3)}));
  } else {
    deleted.push_back(lift(cpu_work(200, 0.6)));
    deleted.push_back(lift(network(400, 0.3)));
  }
  read.set_callback({"menuDeleted", 116, std::move(deleted)});

  ComponentSpec libs;
  libs.class_name = names.libs;
  libs.simple_name = "LibsActivity";
  libs.kind = ClassKind::kActivity;
  libs.set_callback({"onCreate", 24, {lift(cpu_work(20, 0.4))}});
  libs.set_callback({"onResume", 18, {lift(cpu_work(8, 0.3))}});

  app.components = {list, read, libs};
  app.ensure_lifecycle_callbacks();
  add_filler_screens(app, 21'424 / 10);

  int callback_loc = 0;
  for (const ComponentSpec& component : app.components) {
    for (const CallbackSpec& callback : component.callbacks) {
      callback_loc += callback.lines_of_code;
    }
  }
  const int total_target = 21'424;  // the paper's line count
  int remaining = total_target - callback_loc;
  for (ComponentSpec& component : app.components) {
    component.helper_loc = 2'400;
    remaining -= 2'400;
  }
  app.glue_loc = remaining;
  return app;
}

UserScript wallabag_script(Rng& rng, bool trigger,
                           const std::vector<std::string>& screens) {
  const WallabagNames names;
  const auto think = [&]() -> DurationMs { return rng.uniform_int(500, 1500); };

  UserScript script;
  script.push_back(launch());
  if (rng.bernoulli(0.7)) script.push_back(interact("onClick:btnSync", think()));
  if (rng.bernoulli(0.5)) append_screen_visit(script, rng, screens);

  // Read an article or two.
  const int reads = static_cast<int>(rng.uniform_int(1, 2));
  for (int i = 0; i < reads; ++i) {
    script.push_back(interact("onItemClick", think()));
    script.push_back(navigate(names.read, think()));
    const int scrolls = static_cast<int>(rng.uniform_int(1, 4));
    for (int s = 0; s < scrolls; ++s) {
      script.push_back(interact("onScroll", rng.uniform_int(400, 1200)));
    }
    if (trigger && i == reads - 1) {
      // Delete the article that the server no longer has.
      script.push_back(interact("menuDeleted", think()));
    }
    script.push_back(back_press(think()));
  }

  if (trigger) {
    if (rng.bernoulli(0.5)) script.push_back(interact("onItemClick", think()));
    script.push_back(background_app(think()));
    script.push_back(idle(rng.uniform_int(60000, 120000)));
  } else {
    if (rng.bernoulli(0.3)) {
      script.push_back(navigate(names.libs, think()));
      script.push_back(back_press(think()));
    }
    script.push_back(background_app(think()));
    script.push_back(idle(rng.uniform_int(30000, 60000)));
  }
  return script;
}

}  // namespace

AppCase wallabag_case() {
  const WallabagNames names;
  AppCase app_case;
  app_case.id = 28;
  app_case.display_name = "Wallabag";
  app_case.downloads = 1'000'000;
  app_case.kind = AbdKind::kConfiguration;  // Table III's label for row 28
  app_case.paper_code_reduction = 0.9857;
  app_case.trigger_fraction = 0.2;

  app_case.buggy = build_wallabag(/*buggy=*/true);
  app_case.fixed = build_wallabag(/*buggy=*/false);

  app_case.bug.kind = AbdKind::kConfiguration;
  app_case.bug.root_cause_event =
      qualified_event_name(names.read, "menuDeleted");
  app_case.bug.use_last_occurrence = true;
  app_case.bug.component_class = names.read;
  app_case.bug.drain_power_mw = 420.0;  // CPU-dominated retry loop

  const std::vector<std::string> screens = filler_screen_names(app_case.buggy);
  app_case.scenario = [screens](Rng& rng, bool trigger) {
    return wallabag_script(rng, trigger, screens);
  };
  return app_case;
}

}  // namespace edx::workload
