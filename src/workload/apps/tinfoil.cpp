// Tinfoil (§IV-C of the paper).
//
// The ABD: the news-feed screen keeps polling the server to refresh an
// interface that is no longer visible once the app moves to the
// background.  Top reported events: FBWrapper:menu_item_newsfeed and
// Idle(No_Display) (Table VI); search space 4,226 -> 236 lines.
#include "workload/catalog.h"

#include "workload/app_factory.h"

namespace edx::workload {

using namespace edx::android;

namespace {

constexpr const char* kPkg = "com.danvelazco.fbwrapper";

struct TinfoilNames {
  std::string wrapper = make_class_name(kPkg, "activity", "FBWrapper");
  std::string prefs = make_class_name(kPkg, "activity", "Preferences");
};

AppSpec build_tinfoil(bool buggy) {
  const TinfoilNames names;
  AppSpec app;
  app.package_name = kPkg;
  app.display_name = "Tinfoil";
  app.main_activity = names.wrapper;

  ComponentSpec wrapper;
  wrapper.class_name = names.wrapper;
  wrapper.simple_name = "FBWrapper";
  wrapper.kind = ClassKind::kActivity;
  wrapper.set_callback({"onCreate", 42, {lift(cpu_work(55, 0.6))}});
  wrapper.set_callback({"onTouch", 14, {lift(cpu_work(60, 0.6))}});
  // Opening the news feed starts a refresh poll to keep the view current.
  // Legitimate while visible — the bug is that nothing stops it when the
  // app leaves the foreground.
  wrapper.set_callback(
      {"menu_item_newsfeed", 112,
       {start_periodic_task("newsfeedPoll", 6000,
                            {network(1800, 0.85), cpu_work(300, 0.5)})}});
  wrapper.set_callback({"menu_about", 58, {lift(cpu_work(25, 0.4))}});
  Behavior wrapper_pause = {lift(cpu_work(6, 0.3))};
  if (!buggy) wrapper_pause.push_back(cancel_periodic_task("newsfeedPoll"));
  wrapper.set_callback({"onPause", 34, std::move(wrapper_pause)});

  ComponentSpec prefs;
  prefs.class_name = names.prefs;
  prefs.simple_name = "Preferences";
  prefs.kind = ClassKind::kActivity;
  prefs.set_callback({"onCreate", 26, {lift(cpu_work(18, 0.4))}});
  prefs.set_callback({"onResume", 60, {lift(cpu_work(8, 0.3))}});

  app.components = {wrapper, prefs};
  app.ensure_lifecycle_callbacks();

  int callback_loc = 0;
  for (const ComponentSpec& component : app.components) {
    for (const CallbackSpec& callback : component.callbacks) {
      callback_loc += callback.lines_of_code;
    }
  }
  const int total_target = 4'226;  // the paper's line count
  int remaining = total_target - callback_loc;
  for (ComponentSpec& component : app.components) {
    component.helper_loc = 1'200;
    remaining -= 1'200;
  }
  app.glue_loc = remaining;
  return app;
}

UserScript tinfoil_script(Rng& rng, bool trigger) {
  const TinfoilNames names;
  const auto think = [&]() -> DurationMs { return rng.uniform_int(500, 1500); };

  UserScript script;
  script.push_back(launch());
  const int browses = static_cast<int>(rng.uniform_int(2, 4));
  for (int i = 0; i < browses; ++i) {
    script.push_back(interact("onTouch", think()));
  }

  if (trigger) {
    script.push_back(interact("menu_item_newsfeed", think()));
    script.push_back(idle(rng.uniform_int(5000, 12000)));
    if (rng.bernoulli(0.4)) script.push_back(interact("onTouch", think()));
    // Pocket the phone: the poll keeps rendering an invisible feed.
    script.push_back(background_app(think()));
    script.push_back(idle(rng.uniform_int(60000, 120000)));
  } else {
    if (rng.bernoulli(0.4)) {
      script.push_back(interact("menu_about", think()));
    }
    if (rng.bernoulli(0.4)) {
      script.push_back(navigate(names.prefs, think()));
      script.push_back(back_press(think()));
    }
    script.push_back(interact("onTouch", think()));
    script.push_back(background_app(think()));
    script.push_back(idle(rng.uniform_int(30000, 60000)));
  }
  return script;
}

}  // namespace

AppCase tinfoil_case() {
  const TinfoilNames names;
  AppCase app_case;
  app_case.id = 18;
  app_case.display_name = "Tinfoil";
  app_case.downloads = -1;
  app_case.kind = AbdKind::kLoop;
  app_case.paper_code_reduction = 0.924;
  app_case.trigger_fraction = 0.2;

  app_case.buggy = build_tinfoil(/*buggy=*/true);
  app_case.fixed = build_tinfoil(/*buggy=*/false);

  app_case.bug.kind = AbdKind::kLoop;
  app_case.bug.root_cause_event =
      qualified_event_name(names.wrapper, "menu_item_newsfeed");
  app_case.bug.use_last_occurrence = true;
  app_case.bug.component_class = names.wrapper;
  app_case.bug.drain_power_mw = 280.0;

  app_case.scenario = [](Rng& rng, bool trigger) {
    return tinfoil_script(rng, trigger);
  };
  return app_case;
}

}  // namespace edx::workload
