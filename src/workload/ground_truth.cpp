#include "workload/ground_truth.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/event_symbols.h"

namespace edx::workload {

std::optional<std::size_t> root_cause_index(const core::AnalyzedTrace& trace,
                                            const BugSpec& bug) {
  // Resolve the root-cause name to an id once; the per-event check is an
  // integer compare.  A name absent from the table cannot appear in any
  // trace — and must not match default-constructed (kInvalidEventId)
  // events either, hence the explicit guard.
  const EventId root_id = find_event(bug.root_cause_event);
  if (root_id == kInvalidEventId) return std::nullopt;
  std::optional<std::size_t> found;
  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    if (trace.events[i].id == root_id) {
      found = i;
      if (!bug.use_last_occurrence) return found;
    }
  }
  return found;
}

std::optional<int> trace_event_distance(const core::AnalyzedTrace& trace,
                                        const BugSpec& bug) {
  const std::optional<std::size_t> root = root_cause_index(trace, bug);
  if (!root.has_value() || trace.manifestation_indices.empty()) {
    return std::nullopt;
  }

  // Prefer the first detected point at or after the root cause (the ABD
  // manifests after it is triggered); fall back to the nearest point.
  std::optional<std::size_t> manifestation;
  for (std::size_t index : trace.manifestation_indices) {
    if (index >= *root) {
      manifestation = index;
      break;
    }
  }
  if (!manifestation.has_value()) {
    std::size_t best = trace.manifestation_indices.front();
    for (std::size_t index : trace.manifestation_indices) {
      const auto distance_to = [&](std::size_t i) {
        return static_cast<long long>(i > *root ? i - *root : *root - i);
      };
      if (distance_to(index) < distance_to(best)) best = index;
    }
    manifestation = best;
  }

  const long long gap = std::llabs(static_cast<long long>(*manifestation) -
                                   static_cast<long long>(*root));
  return static_cast<int>(gap > 0 ? gap - 1 : 0);
}

std::optional<int> app_event_distance(
    const std::vector<core::AnalyzedTrace>& traces, const BugSpec& bug,
    const std::vector<bool>* triggered) {
  std::vector<int> distances;
  for (std::size_t i = 0; i < traces.size(); ++i) {
    if (triggered != nullptr && !(*triggered)[i]) continue;
    if (const std::optional<int> distance =
            trace_event_distance(traces[i], bug)) {
      distances.push_back(*distance);
    }
  }
  if (distances.empty()) return std::nullopt;
  std::sort(distances.begin(), distances.end());
  return distances[distances.size() / 2];
}

}  // namespace edx::workload
