#include "workload/cli.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <initializer_list>
#include <iostream>
#include <limits>
#include <map>
#include <set>
#include <span>
#include <sstream>
#include <string_view>
#include <thread>

#include "android/apk.h"
#include "android/instrumenter.h"
#include "common/error.h"
#include "common/latency_histogram.h"
#include "common/strings.h"
#include "core/fleet_analyzer.h"
#include "core/pipeline.h"
#include "core/report_io.h"
#include "loadgen/driver.h"
#include "loadgen/workload_factory.h"
#include "loadgen/workload_spec.h"
#include "power/calibration.h"
#include "service/fleet_service.h"
#include "service/shard_router.h"
#include "store/fleet_store.h"
#include "store/shard_store.h"
#include "workload/catalog.h"
#include "workload/experiment.h"
#include "workload/session.h"

namespace edx::workload::cli {

namespace fs = std::filesystem;

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open " + path);
  std::ostringstream content;
  content << in.rdbuf();
  return content.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw Error("cannot write " + path);
  out << content;
}

/// The one flag parser every subcommand shares.  Splits the args after
/// the command word into named flags (`--name value` or `--name=value`)
/// and positional operands; unknown flags are usage errors.  Positional
/// operands past the required ones — the pre-redesign argument forms,
/// deprecated-with-a-warning since PR 3 — are now usage errors (exit 2)
/// carrying the named-flag migration hint.
class FlagSet {
 public:
  FlagSet(std::string command, const std::vector<std::string>& args,
          std::initializer_list<std::string_view> value_flags,
          std::initializer_list<std::string_view> switch_flags)
      : command_(std::move(command)) {
    const auto known = [](std::initializer_list<std::string_view> flags,
                          std::string_view name) {
      return std::find(flags.begin(), flags.end(), name) != flags.end();
    };
    for (std::size_t i = 0; i < args.size(); ++i) {
      const std::string& arg = args[i];
      if (!arg.starts_with("--")) {
        positionals_.push_back(arg);
        continue;
      }
      std::string name = arg;
      std::optional<std::string> inline_value;
      if (const std::size_t eq = arg.find('='); eq != std::string::npos) {
        name = arg.substr(0, eq);
        inline_value = arg.substr(eq + 1);
      }
      if (known(switch_flags, name)) {
        if (inline_value.has_value()) {
          throw InvalidArgument(command_ + ": " + name + " takes no value");
        }
        if (!switches_.insert(name).second) {
          throw InvalidArgument(command_ + ": duplicate flag '" + name +
                                "'");
        }
      } else if (known(value_flags, name)) {
        if (!inline_value.has_value()) {
          if (i + 1 >= args.size()) {
            throw InvalidArgument(command_ + ": " + name + " needs a value");
          }
          inline_value = args[++i];
        }
        if (!values_.emplace(name, *inline_value).second) {
          throw InvalidArgument(command_ + ": duplicate flag '" + name +
                                "' (it was already given)");
        }
      } else {
        throw InvalidArgument(command_ + ": unknown flag '" + name + "'");
      }
    }
  }

  [[nodiscard]] bool has_switch(const std::string& name) const {
    return switches_.contains(name);
  }
  [[nodiscard]] std::optional<std::string> value(
      const std::string& name) const {
    const auto it = values_.find(name);
    if (it == values_.end()) return std::nullopt;
    return it->second;
  }
  [[nodiscard]] std::size_t positional_count() const {
    return positionals_.size();
  }
  /// Operand at `index`, or a usage error mentioning `what`.
  [[nodiscard]] const std::string& required_positional(
      std::size_t index, const std::string& what) const {
    if (index >= positionals_.size()) {
      throw InvalidArgument(command_ + " needs " + what);
    }
    return positionals_[index];
  }
  /// Rejects operands past the `allowed` required ones.  These were the
  /// pre-redesign positional option forms (PR 3 demoted them to a
  /// deprecation warning); a command that still passes one exits 2 with
  /// the named-flag migration `hint`.
  void reject_extra_positionals(std::size_t allowed,
                                const std::string& hint) const {
    if (positionals_.size() > allowed) {
      throw InvalidArgument(command_ +
                            ": positional option arguments were removed; "
                            "use " +
                            hint + " (energydx help)");
    }
  }

 private:
  std::string command_;
  std::vector<std::string> positionals_;
  std::map<std::string, std::string> values_;
  std::set<std::string> switches_;
};

/// Integer flag/operand parsing with range validation; failures are usage
/// errors (exit code 2), not std::invalid_argument aborts.
std::int64_t to_int(const std::string& text, const std::string& what,
                    std::int64_t lo, std::int64_t hi) {
  std::int64_t parsed = 0;
  std::string_view view(text);
  if (!strings::consume_int64(view, parsed) || !view.empty() || parsed < lo ||
      parsed > hi) {
    throw InvalidArgument(what + " needs an integer in [" +
                          std::to_string(lo) + ", " + std::to_string(hi) +
                          "], got '" + text + "'");
  }
  return parsed;
}

double to_double(const std::string& text, const std::string& what) {
  try {
    std::size_t used = 0;
    const double value = std::stod(text, &used);
    if (used != text.size()) throw std::invalid_argument(text);
    return value;
  } catch (const std::exception&) {
    throw InvalidArgument(what + " needs a number, got '" + text + "'");
  }
}

}  // namespace

int exit_code_for(const std::exception& failure) {
  // Ordered by specificity: ParseError / AnalysisError / InvalidArgument
  // are sibling subclasses of edx::Error, anything else is "other".
  if (dynamic_cast<const ParseError*>(&failure) != nullptr) return 3;
  if (dynamic_cast<const AnalysisError*>(&failure) != nullptr) return 4;
  if (dynamic_cast<const InvalidArgument*>(&failure) != nullptr) return 2;
  return 1;
}

int cmd_catalog(std::ostream& out) {
  out << "id  name               root-cause     lines\n";
  for (const AppCase& app : full_catalog()) {
    out << app.id << (app.id < 10 ? "   " : "  ") << app.display_name;
    for (std::size_t i = app.display_name.size(); i < 19; ++i) out << ' ';
    std::string kind(abd_kind_name(app.kind));
    out << kind;
    for (std::size_t i = kind.size(); i < 15; ++i) out << ' ';
    out << app.buggy.total_loc() << "\n";
  }
  return 0;
}

int cmd_instrument(const std::string& in_path, const std::string& out_path,
                   std::ostream& out) {
  const android::Instrumenter instrumenter;
  write_file(out_path, instrumenter.instrument_packed(read_file(in_path)));
  out << "instrumented " << instrumenter.last_report().methods_instrumented
      << "/" << instrumenter.last_report().methods_seen << " methods ("
      << instrumenter.last_report().log_points_injected
      << " log points) -> " << out_path << "\n";
  return 0;
}

int cmd_simulate(int app_id, const std::string& out_dir, int users,
                 std::uint64_t seed, std::ostream& out) {
  const std::vector<AppCase> catalog = full_catalog();
  const AppCase& app = catalog_app(catalog, app_id);

  PopulationConfig population;
  population.num_users = users;
  population.seed = seed;
  const CollectedTraces traces =
      collect_traces(app, app.buggy, /*instrumented=*/true, population);

  fs::create_directories(out_dir);
  for (const trace::TraceBundle& bundle : traces.bundles) {
    write_file(out_dir + "/bundle_" + std::to_string(bundle.user) + ".txt",
               bundle.to_text());
  }
  out << "wrote " << traces.bundles.size() << " trace bundles for '"
      << app.display_name << "' to " << out_dir << " (trigger fraction "
      << traces.trigger_fraction_actual << ")\n";
  return 0;
}

namespace {

/// bundle_*.txt paths in sorted filename order — the fleet's arrival
/// order.  Throws InvalidArgument when there are none.
std::vector<std::string> bundle_paths(const std::string& trace_dir) {
  std::vector<std::string> paths;
  for (const fs::directory_entry& entry : fs::directory_iterator(trace_dir)) {
    const std::string name = entry.path().filename().string();
    if (name.starts_with("bundle_") && name.ends_with(".txt")) {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  if (paths.empty()) {
    throw InvalidArgument("no bundle_*.txt files in " + trace_dir);
  }
  return paths;
}

/// Renders one diagnosis report exactly like the batch path does.
void render_report(const core::DiagnosisReport& report,
                   const AnalyzeOptions& options, double reported_fraction,
                   std::ostream& out) {
  std::optional<core::CodeMap> code_map;
  core::ReportRenderOptions render;
  render.developer_reported_fraction = reported_fraction;
  if (options.app_id.has_value()) {
    const std::vector<AppCase> catalog = full_catalog();
    const AppCase& app = catalog_app(catalog, *options.app_id);
    code_map = core::CodeMap::from_app(app.buggy);
    render.app_name = app.display_name;
  }
  const core::CodeMap* map = code_map ? &*code_map : nullptr;
  out << (options.as_json ? core::report_to_json(report, map, render)
                          : core::report_to_text(report, map, render));
}

double self_estimated_fraction(const core::DiagnosisReport& report) {
  // Self-estimate: the share of traces in which a manifestation was
  // detected approximates the impacted-user fraction.
  return report.total_traces == 0
             ? 0.0
             : static_cast<double>(report.traces_with_manifestation) /
                   static_cast<double>(report.total_traces);
}

/// The analysis config an analyze invocation starts from.
core::AnalysisConfig analysis_config(const AnalyzeOptions& options) {
  core::AnalysisConfig config;
  config.num_threads = options.num_threads;
  if (options.reported_fraction.has_value()) {
    config.reporting.developer_reported_fraction = *options.reported_fraction;
  }
  return config;
}

int analyze_batch_bundles(std::span<const trace::TraceBundle> bundles,
                          const AnalyzeOptions& options, std::ostream& out) {
  core::AnalysisConfig config = analysis_config(options);
  if (!options.reported_fraction.has_value()) {
    const core::ManifestationAnalyzer probe(config);
    const core::AnalysisResult first_pass = probe.run(bundles);
    config.reporting.developer_reported_fraction =
        self_estimated_fraction(first_pass.report);
  }

  const core::ManifestationAnalyzer analyzer(config);
  const core::AnalysisResult result = analyzer.run(bundles);
  render_report(result.report, options,
                config.reporting.developer_reported_fraction, out);
  return 0;
}

/// One fleet report from the analyzer's current state — the shared tail
/// of every incremental path (periodic, final, and store-recovered).
/// Applies the same two-pass fraction rule as the batch path: when no
/// fraction was given, rebuild the (cheap) Step-5 report around the
/// self-estimate.
void render_fleet_report(core::FleetAnalyzer& fleet,
                         const core::AnalysisConfig& config,
                         const AnalyzeOptions& options, std::ostream& out) {
  const core::AnalysisResult& result = fleet.snapshot();
  double fraction = config.reporting.developer_reported_fraction;
  core::DiagnosisReport report = result.report;
  if (!options.reported_fraction.has_value()) {
    fraction = self_estimated_fraction(result.report);
    core::ReportingConfig reporting = config.reporting;
    reporting.developer_reported_fraction = fraction;
    report = core::report_problematic_events(result.traces, reporting);
  }
  render_report(report, options, fraction, out);
}

int analyze_batch(const std::vector<std::string>& paths,
                  const AnalyzeOptions& options, std::ostream& out) {
  std::vector<trace::TraceBundle> bundles;
  bundles.reserve(paths.size());
  for (const std::string& path : paths) {
    bundles.push_back(trace::TraceBundle::from_text(read_file(path)));
  }
  return analyze_batch_bundles(bundles, options, out);
}

int analyze_incremental(const std::vector<std::string>& paths,
                        const AnalyzeOptions& options, std::ostream& out) {
  const core::AnalysisConfig config = analysis_config(options);
  core::FleetAnalyzer fleet(config);
  for (std::size_t i = 0; i < paths.size(); ++i) {
    fleet.add_bundle(trace::TraceBundle::from_text(read_file(paths[i])));
    const std::size_t arrivals = i + 1;
    const bool last = arrivals == paths.size();
    const bool periodic =
        options.report_every > 0 && arrivals % options.report_every == 0;
    if (!last && !periodic) continue;
    if (!last) {
      out << "== fleet report after " << arrivals << " of " << paths.size()
          << " bundles ==\n";
    }
    render_fleet_report(fleet, config, options, out);
  }
  return 0;
}

/// Parses the --fsync-policy spelling shared by ingest and the docs.
store::FsyncPolicy parse_fsync_policy(const std::string& text,
                                      std::uint32_t& group_window_us) {
  if (text == "always") return store::FsyncPolicy::kAlways;
  if (text == "none") return store::FsyncPolicy::kNone;
  if (text == "group") return store::FsyncPolicy::kGroup;
  if (text.starts_with("group:")) {
    group_window_us = static_cast<std::uint32_t>(
        to_int(text.substr(6), "--fsync-policy group:<us>", 0, 10'000'000));
    return store::FsyncPolicy::kGroup;
  }
  throw InvalidArgument(
      "--fsync-policy must be always, group, group:<us>, or none (got '" +
      text + "')");
}

int analyze_store(const std::string& store_dir, const AnalyzeOptions& options,
                  std::ostream& out) {
  store::StoreOptions store_options;
  store_options.recovery_threads = options.num_threads;
  store::FleetStore recovered =
      store::FleetStore::open(store_dir, store_options);
  if (recovered.fleet_size() == 0) {
    throw AnalysisError("store at " + store_dir + " holds no bundles");
  }
  // Warm restart over the zero-copy accessors: the snapshotted slots
  // re-enter the analyzer through their recovered Step-1 state (no power
  // join), the WAL tail through the normal arrival path — the final
  // report is byte-identical to a never-restarted incremental run over
  // the same uploads, and (by the FleetAnalyzer equivalence contract) to
  // a batch run over fleet_refs().  That contract is why the former
  // non-incremental branch, which materialized a full fleet() copy just
  // to re-run Step 1 on it, is gone: --incremental and the default now
  // share this one path and byte-identical output.
  const core::AnalysisConfig config = analysis_config(options);
  core::FleetAnalyzer fleet(config);
  for (core::AnalyzedTrace& analyzed : recovered.snapshot_step1()) {
    fleet.add_analyzed(std::move(analyzed));
  }
  for (const store::BundleRef& bundle : recovered.tail_refs()) {
    fleet.add_bundle(*bundle);
  }
  render_fleet_report(fleet, config, options, out);
  return 0;
}

}  // namespace

int cmd_analyze(const std::string& trace_dir, const AnalyzeOptions& options,
                std::ostream& out) {
  if (options.store_dir.has_value()) {
    require(trace_dir.empty(),
            "analyze takes either <trace-dir> or --store, not both");
    require(options.report_every == 0,
            "analyze: --report-every needs a trace directory (a store "
            "replays the deduplicated fleet, not every original arrival)");
    return analyze_store(*options.store_dir, options, out);
  }
  const std::vector<std::string> paths = bundle_paths(trace_dir);
  return options.incremental ? analyze_incremental(paths, options, out)
                             : analyze_batch(paths, options, out);
}

namespace {

/// Feeds every bundle the ingest flags name — operand files/directories
/// first, then the simulated --app population — to `sink` in order, and
/// returns how many there were.
template <typename Sink>
std::size_t each_ingest_bundle(const IngestOptions& options, Sink&& sink) {
  std::size_t appended = 0;
  for (const std::string& source : options.sources) {
    if (fs::is_directory(source)) {
      for (const std::string& path : bundle_paths(source)) {
        sink(trace::TraceBundle::from_text(read_file(path)));
        ++appended;
      }
    } else {
      sink(trace::TraceBundle::from_text(read_file(source)));
      ++appended;
    }
  }
  if (options.app_id.has_value()) {
    const std::vector<AppCase> catalog = full_catalog();
    const AppCase& app = catalog_app(catalog, *options.app_id);
    PopulationConfig population;
    population.num_users = options.users;
    population.seed = options.seed;
    const CollectedTraces traces =
        collect_traces(app, app.buggy, /*instrumented=*/true, population);
    for (const trace::TraceBundle& bundle : traces.bundles) {
      sink(bundle);
      ++appended;
    }
  }
  require(appended > 0,
          "ingest needs bundle files, directories, or --app to simulate");
  return appended;
}

/// `ingest --tenant`: append into a partitioned service root, routing to
/// the tenant's home shard exactly as a serving FleetService would.
int ingest_partitioned(const IngestOptions& options,
                       const store::StoreOptions& store_options,
                       std::ostream& out) {
  const std::string& root = options.store_dir;
  const std::string& tenant = *options.tenant;
  require(!tenant.empty(), "ingest: --tenant needs a non-empty key");
  std::size_t shard_count = options.shards;
  if (const auto layout = store::read_layout(root)) {
    require(shard_count == 0 || shard_count == layout->shard_count,
            "ingest: store root '" + root + "' is partitioned for " +
                std::to_string(layout->shard_count) +
                " shard(s); omit --shards or pass the stored count");
    shard_count = layout->shard_count;
  } else {
    const store::RootInfo info = store::inspect_root(root);
    require(info.kind == store::RootKind::kMissing ||
                info.kind == store::RootKind::kEmpty,
            "ingest: --tenant needs a fresh or partitioned store root, "
            "but '" + root + "' already holds another store layout");
    if (shard_count == 0) shard_count = 1;
    fs::create_directories(root);
    store::write_layout(root, shard_count);
  }
  // A non-hot tenant's bundles all land on its home shard, so only that
  // one shard store is opened and written.
  const std::size_t home = service::ShardRouter(shard_count, 1)
                               .route(tenant, /*fleet_key=*/0, false);
  store::ShardStore shard_store =
      store::ShardStore::open(store::shard_dir(root, home), store_options);
  const store::TenantId id = shard_store.ensure_tenant(tenant);
  const std::size_t appended = each_ingest_bundle(
      options,
      [&](const trace::TraceBundle& bundle) {
        shard_store.append_async(id, bundle);
      });
  shard_store.flush();
  out << "ingested " << appended << " bundles into " << root << " shard-"
      << home << " as tenant '" << tenant << "' (last seq "
      << shard_store.tenant_last_seq(id) << ", fleet "
      << shard_store.fleet_refs(id).size() << " users, " << shard_count
      << " shard(s))\n";
  if (options.compact) {
    shard_store.compact();
    out << "compacted shard-" << home << " into snapshot-"
        << shard_store.snapshot_seq() << ".edx\n";
  }
  return 0;
}

}  // namespace

int cmd_ingest(const IngestOptions& options, std::ostream& out) {
  store::StoreOptions store_options;
  store_options.fsync_policy = parse_fsync_policy(
      options.fsync_policy, store_options.group_window_us);
  if (options.segment_bytes != 0) {
    store_options.segment_target_bytes = options.segment_bytes;
  }
  store_options.compress = options.compress;
  if (options.tenant.has_value()) {
    return ingest_partitioned(options, store_options, out);
  }
  require(options.shards == 0, "ingest: --shards needs --tenant KEY");
  store::FleetStore fleet_store =
      store::FleetStore::open(options.store_dir, store_options);
  // Queue asynchronously and make the whole batch durable with one
  // flush(): the group-commit writer packs everything into large writes
  // instead of paying one sync wait per bundle.
  const std::size_t appended = each_ingest_bundle(
      options,
      [&](const trace::TraceBundle& bundle) {
        fleet_store.append_async(bundle);
      });
  fleet_store.flush();
  out << "ingested " << appended << " bundles into " << options.store_dir
      << " (last seq " << fleet_store.last_seq() << ", fleet "
      << fleet_store.fleet_size() << " users)\n";
  if (options.compact) {
    fleet_store.compact_async();
    fleet_store.wait_for_compaction();
    out << "compacted into snapshot-" << fleet_store.snapshot_seq()
        << ".edx (" << fleet_store.fleet_size() << " bundles)\n";
  }
  return 0;
}

namespace {

/// Shared segment-table line ("wal-...edx: seq A..B, N records, ...");
/// the per-tenant counts a tenant-tagged segment carries are appended.
void print_segment_line(const store::SegmentStats& segment,
                        const std::string& indent, std::ostream& out) {
  out << indent << segment.file << ": ";
  if (segment.records == 0) {
    out << "empty";
  } else {
    out << "seq " << segment.base_seq << ".." << segment.last_seq << ", "
        << segment.records << " records";
  }
  out << ", " << segment.bytes << " bytes, "
      << (segment.sealed ? "sealed" : "active");
  if (segment.torn) out << ", torn: " << segment.reason;
  if (!segment.tenant_records.empty()) {
    out << "; tenants:";
    for (const auto& [key, records] : segment.tenant_records) {
      out << " " << key << "=" << records;
    }
  }
  out << "\n";
}

/// store-info for a partitioned service root: one block per shard with
/// its tenant table and tenant-tagged segment table.
int store_info_partitioned(const std::string& root,
                           const store::RootInfo& info, std::ostream& out) {
  out << "store root: " << root << " (partitioned, " << info.shard_count
      << " shard(s))\n";
  if (!store::read_layout(root).has_value()) {
    out << "  layout.edx: missing — shard count inferred from the "
           "shard-<i> directories\n";
  }
  for (std::size_t s = 0; s < info.shard_count; ++s) {
    const std::string dir = store::shard_dir(root, s);
    out << "shard-" << s << ":";
    if (!fs::is_directory(dir)) {
      out << " no directory yet (nothing routed here)\n";
      continue;
    }
    const store::ShardStore shard_store = store::ShardStore::open(dir);
    const store::RecoveryStats& stats = shard_store.recovery();
    out << " " << shard_store.tenant_count() << " tenant(s), last seq "
        << shard_store.last_seq() << ", snapshot seq "
        << shard_store.snapshot_seq() << "\n";
    for (const store::TenantInfo& tenant : shard_store.tenants()) {
      out << "  tenant " << tenant.id << " '" << tenant.key << "': fleet "
          << tenant.fleet_size << " users, tail " << tenant.tail_size
          << ", last seq " << tenant.last_seq << "\n";
    }
    for (const store::SegmentStats& segment : stats.segments) {
      print_segment_line(segment, "  ", out);
    }
    if (stats.wal_tail_torn) {
      out << "  tail: torn — " << stats.wal_tail_reason << " ("
          << stats.wal_bytes_dropped << " bytes dropped, repaired on open)\n";
    } else {
      out << "  tail: clean\n";
    }
  }
  if (!info.tenant_dirs.empty()) {
    out << "verdict: partitioned, but " << info.tenant_dirs.size()
        << " unmigrated legacy tenant dir(s) remain";
    for (const std::string& key : info.tenant_dirs) out << " " << key;
    out << " — serve --store-root finishes the migration in place\n";
  } else {
    out << "verdict: partitioned layout, ready to serve\n";
  }
  return 0;
}

/// store-info for a pre-partition root (one FleetStore per tenant):
/// per-tenant summaries plus the migration verdict.
int store_info_legacy(const std::string& root, const store::RootInfo& info,
                      std::ostream& out) {
  out << "store root: " << root << " (legacy per-tenant layout, "
      << info.tenant_dirs.size() << " tenant store(s))\n";
  for (const std::string& key : info.tenant_dirs) {
    const store::FleetStore fleet_store =
        store::FleetStore::open((fs::path(root) / key).string());
    out << "  " << key << ": fleet " << fleet_store.fleet_size()
        << " users, last seq " << fleet_store.last_seq()
        << ", snapshot seq " << fleet_store.snapshot_seq() << "\n";
  }
  out << "verdict: legacy per-tenant layout — serve --store-root " << root
      << " migrates it to the partitioned (per-shard) layout in place\n";
  return 0;
}

}  // namespace

int cmd_store_info(const std::string& store_dir, std::ostream& out) {
  require(fs::is_directory(store_dir),
          "store-info: no store directory at " + store_dir);
  const store::RootInfo root_info = store::inspect_root(store_dir);
  if (root_info.kind == store::RootKind::kPartitioned) {
    return store_info_partitioned(store_dir, root_info, out);
  }
  if (root_info.kind == store::RootKind::kLegacyPerTenant) {
    return store_info_legacy(store_dir, root_info, out);
  }
  const store::FleetStore fleet_store = store::FleetStore::open(store_dir);
  const store::RecoveryStats& stats = fleet_store.recovery();
  out << "store: " << store_dir << "\n";
  out << "  fleet: " << fleet_store.fleet_size() << " users (last seq "
      << fleet_store.last_seq() << ")\n";
  if (stats.snapshot_seq != 0) {
    out << "  snapshot: seq " << stats.snapshot_seq << " covering "
        << stats.snapshot_bundle_count << " bundles";
  } else {
    out << "  snapshot: none";
  }
  out << " (" << stats.snapshots_found << " on disk, "
      << stats.snapshots_skipped << " skipped as corrupt)\n";
  out << "  wal: " << stats.wal_records_replayed << " records replayed, "
      << stats.wal_records_obsolete << " obsolete, "
      << stats.wal_bytes_salvaged << " bytes salvaged\n";
  out << "  segments: " << stats.segments_scanned << " scanned, "
      << stats.segments_salvaged << " salvaged, decoded in "
      << stats.decode_micros << " us\n";
  for (const store::SegmentStats& segment : stats.segments) {
    out << "    " << segment.file << ": ";
    if (segment.records == 0) {
      out << "empty";
    } else {
      out << "seq " << segment.base_seq << ".." << segment.last_seq << ", "
          << segment.records << " records";
    }
    out << ", " << segment.bytes << " bytes, "
        << (segment.sealed ? "sealed" : "active");
    if (segment.torn) out << ", torn: " << segment.reason;
    out << "\n";
  }
  out << "  manifest: " << (stats.manifest_ok ? "ok" : stats.manifest_note)
      << "\n";
  if (stats.wal_tail_torn) {
    out << "  tail: torn — " << stats.wal_tail_reason << " ("
        << stats.wal_bytes_dropped << " bytes dropped";
    if (stats.tail_bytes_truncated > 0) {
      out << ", " << stats.tail_bytes_truncated << " truncated";
    }
    out << ", repaired on open)\n";
  } else {
    out << "  tail: clean\n";
  }
  const std::uint64_t behind = fleet_store.last_seq() - fleet_store.snapshot_seq();
  out << "  compaction: "
      << (fleet_store.compaction_running()
              ? "running"
              : (behind == 0 ? "idle (snapshot is current)"
                             : "idle (" + std::to_string(behind) +
                                   " records since snapshot)"))
      << "\n";
  return 0;
}

int cmd_gen_training(const std::string& device_name,
                     const std::string& out_path, std::size_t levels,
                     double noise, std::ostream& out) {
  const power::Device* device = nullptr;
  static const std::vector<power::Device> kFleet = power::builtin_devices();
  for (const power::Device& candidate : kFleet) {
    if (candidate.name() == device_name) device = &candidate;
  }
  if (device == nullptr) {
    throw InvalidArgument("unknown built-in device '" + device_name + "'");
  }
  const auto samples =
      power::generate_training_samples(*device, levels, noise, /*seed=*/42);
  std::ostringstream csv;
  csv << "cpu,display,wifi,cellular,gps,audio,sensor,power_mw\n";
  for (const power::CalibrationSample& sample : samples) {
    for (power::Component component : power::kAllComponents) {
      csv << sample.utilization.get(component) << ',';
    }
    csv << sample.measured_phone_power_mw << '\n';
  }
  write_file(out_path, csv.str());
  out << "wrote " << samples.size() << " training samples for '"
      << device_name << "' to " << out_path << "\n";
  return 0;
}

int cmd_calibrate(const std::string& csv_path, const std::string& device_name,
                  std::ostream& out) {
  std::istringstream in(read_file(csv_path));
  std::string line;
  std::getline(in, line);  // header
  std::vector<power::CalibrationSample> samples;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    power::CalibrationSample sample;
    double value = 0.0;
    char comma = 0;
    for (power::Component component : power::kAllComponents) {
      if (!(fields >> value >> comma)) {
        throw ParseError("calibrate: malformed CSV line '" + line + "'");
      }
      sample.utilization.set(component, value);
    }
    if (!(fields >> sample.measured_phone_power_mw)) {
      throw ParseError("calibrate: missing power in '" + line + "'");
    }
    samples.push_back(sample);
  }

  const power::CalibrationResult result =
      power::fit_power_model(device_name, samples);
  out << "fitted power model for '" << device_name << "' ("
      << result.samples_used << " samples, rms error "
      << result.rms_error_mw << " mW, max "
      << result.max_abs_error_mw << " mW)\n";
  out << "  idle: " << result.device.idle_mw() << " mW\n";
  for (power::Component component : power::kAllComponents) {
    out << "  " << power::component_name(component) << ": "
        << result.device.coefficient_mw(component) << " mW at 100%\n";
  }
  return 0;
}

int cmd_verify(int app_id, int users, std::uint64_t seed, std::ostream& out) {
  const std::vector<AppCase> catalog = full_catalog();
  const AppCase& app = catalog_app(catalog, app_id);
  PopulationConfig population;
  population.num_users = users;
  population.seed = seed;
  const FixVerification verification = verify_fix(app, population);
  out << "fix verification for '" << app.display_name << "' (" << users
      << " users):\n";
  out << "  manifestations: buggy "
      << verification.buggy_traces_with_manifestation << " traces -> fixed "
      << verification.fixed_traces_with_manifestation << " traces\n";
  out << "  average app power: "
      << verification.avg_power_buggy_mw << " mW -> "
      << verification.avg_power_fixed_mw << " mW ("
      << 100.0 * verification.power_reduction() << "% reduction)\n";
  out << "  verdict: "
      << (verification.fix_confirmed() ? "FIX CONFIRMED" : "NOT CONFIRMED")
      << "\n";
  return verification.fix_confirmed() ? 0 : 5;
}

namespace {

/// One tenant's simulated workload for serve/bench-serve.
struct AppLoad {
  std::string key;
  std::string display_name;
  std::vector<trace::TraceBundle> bundles;
};

std::vector<AppLoad> build_service_load(const std::vector<int>& app_ids,
                                        int users, std::uint64_t seed) {
  require(!app_ids.empty(), "serve needs --apps ID[,ID,...]");
  const std::vector<AppCase> catalog = full_catalog();
  std::vector<AppLoad> loads;
  loads.reserve(app_ids.size());
  for (const int id : app_ids) {
    const AppCase& app = catalog_app(catalog, id);
    PopulationConfig population;
    population.num_users = users;
    population.seed = seed;
    AppLoad load;
    load.key = "app-" + std::to_string(id);
    load.display_name = app.display_name;
    load.bundles =
        collect_traces(app, app.buggy, /*instrumented=*/true, population)
            .bundles;
    loads.push_back(std::move(load));
  }
  return loads;
}

/// Round-robin interleaving across apps — the mixed-tenant traffic
/// shape a real backend sees (every app uploading at once), and the
/// worst case for per-shard batching locality.
std::vector<std::pair<const AppLoad*, const trace::TraceBundle*>>
interleave_arrivals(const std::vector<AppLoad>& loads) {
  std::vector<std::pair<const AppLoad*, const trace::TraceBundle*>> arrivals;
  for (std::size_t i = 0;; ++i) {
    bool any = false;
    for (const AppLoad& load : loads) {
      if (i < load.bundles.size()) {
        arrivals.emplace_back(&load, &load.bundles[i]);
        any = true;
      }
    }
    if (!any) break;
  }
  return arrivals;
}

/// Splits the arrival stream across `writers` submitting threads
/// (writer w takes arrivals w, w+writers, ...).  Each user appears once
/// per pass, so cross-writer reordering only permutes distinct users —
/// which commutes in the final report by the service's equivalence
/// contract.
void run_writers(
    service::FleetService& fleet_service,
    std::span<const std::pair<const AppLoad*, const trace::TraceBundle*>>
        arrivals,
    std::size_t writers) {
  std::vector<std::thread> threads;
  threads.reserve(writers);
  for (std::size_t w = 0; w < writers; ++w) {
    threads.emplace_back([&fleet_service, arrivals, writers, w] {
      for (std::size_t i = w; i < arrivals.size(); i += writers) {
        fleet_service.submit(arrivals[i].first->key, *arrivals[i].second);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
}

service::ServiceOptions base_service_options(std::size_t shards,
                                             std::size_t step1_threads,
                                             std::size_t hot_fanout,
                                             const std::vector<AppLoad>& loads) {
  service::ServiceOptions options;
  options.num_shards = shards;
  options.step1_threads = step1_threads;
  options.hot_fanout = hot_fanout;
  if (hot_fanout > 1) {
    for (const AppLoad& load : loads) options.hot_apps.push_back(load.key);
  }
  return options;
}

}  // namespace

int cmd_serve(const ServeOptions& options, std::ostream& out) {
  const std::vector<AppLoad> loads =
      build_service_load(options.app_ids, options.users, options.seed);
  service::ServiceOptions service_options = base_service_options(
      options.shards, options.step1_threads, options.hot_fanout, loads);
  service_options.store_root = options.store_root;
  service_options.store.fsync_policy = parse_fsync_policy(
      options.fsync_policy, service_options.store.group_window_us);
  if (options.segment_bytes != 0) {
    service_options.store.segment_target_bytes = options.segment_bytes;
  }
  service_options.store.compress = options.compress;
  if (options.reported_fraction.has_value()) {
    service_options.self_estimate_fraction = false;
    service_options.analysis.reporting.developer_reported_fraction =
        *options.reported_fraction;
  }

  service::FleetService fleet_service(service_options);
  for (const AppLoad& load : loads) fleet_service.open(load.key);

  const auto arrivals = interleave_arrivals(loads);
  const std::size_t writers = std::max<std::size_t>(options.writers, 1);
  run_writers(fleet_service, arrivals, writers);
  fleet_service.drain();

  out << "served " << loads.size() << " app(s) x " << options.users
      << " user(s) on " << fleet_service.options().num_shards
      << " shard(s), " << writers << " writer(s)\n";
  for (const AppLoad& load : loads) {
    const std::shared_ptr<const service::FleetSnapshot> snap =
        fleet_service.snapshot(load.key);
    out << "== " << load.key << " '" << load.display_name << "' (arrivals "
        << snap->image->arrivals << ", fleet " << snap->image->fleet_size
        << ") ==\n";
    service::ReportOptions report;
    report.as_json = options.as_json;
    // No app_name / code map: the body stays byte-identical to `analyze`
    // over the same population (the header line above carries the name).
    out << fleet_service.report(load.key, report);
  }
  const service::ServiceStats stats = fleet_service.stats();
  out << "service: " << stats.submitted << " submitted, " << stats.batches
      << " ingest batch(es), queue peak " << stats.queue_peak;
  if (!options.store_root.empty()) {
    out << ", " << stats.store_fsyncs << " store fsync(s)";
  }
  out << "\n";
  return 0;
}

int cmd_bench_serve(const BenchServeOptions& options, std::ostream& out) {
  const std::vector<AppLoad> loads =
      build_service_load(options.app_ids, options.users, options.seed);
  service::ServiceOptions service_options = base_service_options(
      options.shards, options.step1_threads, options.hot_fanout, loads);
  service_options.queue_capacity = options.queue_capacity;

  service::FleetService fleet_service(service_options);
  for (const AppLoad& load : loads) fleet_service.open(load.key);

  // Readers poll every tenant's snapshot while the writers run and
  // sample staleness: arrivals submitted but not yet covered by the
  // published epoch (bounded by queue capacity + one in-flight batch).
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> snapshot_loads{0};
  // One histogram shard per reader (lock-free on the sampling path),
  // merged after the join — common/latency_histogram.h's model.
  std::vector<common::LatencyHistogram> staleness(
      std::max<std::size_t>(options.readers, 1));
  std::vector<std::thread> readers;
  readers.reserve(options.readers);
  for (std::size_t r = 0; r < options.readers; ++r) {
    readers.emplace_back([&, r] {
      while (!stop.load(std::memory_order_relaxed)) {
        for (const service::AppServiceStats& row :
             fleet_service.stats().per_app) {
          // Counters are sampled independently; skip the transient where
          // a publication lands between the two loads.
          if (row.submitted >= row.published_arrivals) {
            staleness[r].record(row.submitted - row.published_arrivals);
          }
        }
        for (const AppLoad& load : loads) {
          if (fleet_service.snapshot(load.key) != nullptr) {
            snapshot_loads.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }

  const auto arrivals = interleave_arrivals(loads);
  const std::size_t writers = std::max<std::size_t>(options.writers, 1);
  const int passes = std::max(options.repeat, 1);
  const auto start = std::chrono::steady_clock::now();
  for (int pass = 0; pass < passes; ++pass) {
    run_writers(fleet_service, arrivals, writers);
  }
  fleet_service.drain();
  const double seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& reader : readers) reader.join();

  common::LatencyHistogram samples;
  for (const common::LatencyHistogram& lane : staleness) {
    samples.merge(lane);
  }

  const std::size_t total = arrivals.size() * static_cast<std::size_t>(passes);
  out << "bench-serve: " << loads.size() << " app(s) x " << options.users
      << " user(s), " << fleet_service.options().num_shards << " shard(s), "
      << writers << " writer(s), " << options.readers << " reader(s)\n";
  out << "  ingested " << total << " arrivals in " << seconds << " s ("
      << static_cast<std::uint64_t>(static_cast<double>(total) /
                                    std::max(seconds, 1e-9))
      << " arrivals/s)\n";
  out << "  snapshots: " << snapshot_loads.load(std::memory_order_relaxed)
      << " reader loads, staleness p50 " << samples.value_at_percentile(50.0)
      << ", p99 " << samples.value_at_percentile(99.0) << ", max "
      << samples.max() << " arrivals (" << samples.count() << " samples)\n";
  const service::ServiceStats stats = fleet_service.stats();
  out << "  service: " << stats.submitted << " submitted, " << stats.batches
      << " ingest batch(es), queue peak " << stats.queue_peak << "\n";
  return 0;
}

int cmd_loadgen(const LoadgenOptions& options, std::ostream& out) {
  require(options.workload.empty() != options.spec_path.empty(),
          "loadgen needs exactly one of --workload NAME or --spec FILE");
  loadgen::WorkloadSpec spec =
      options.workload.empty()
          ? loadgen::WorkloadSpec::parse(read_file(options.spec_path),
                                         options.spec_path)
          : loadgen::WorkloadFactory::instance().create(options.workload);
  if (options.seed.has_value()) spec.seed = *options.seed;
  if (options.rate.has_value()) {
    if (spec.arrival == loadgen::ArrivalMode::kClosed) {
      spec.arrival = loadgen::ArrivalMode::kOpenPoisson;
    }
    spec.rate = *options.rate;
  }

  loadgen::RunOptions run_options;
  run_options.threads = options.threads;
  if (options.duration_ms.has_value()) {
    spec.ops_per_stream = 0;  // timed run
    run_options.duration_ms = *options.duration_ms;
  }
  spec.validate();

  service::ServiceOptions service_options;
  service_options.num_shards = options.shards;
  service_options.store_root = options.store_root;
  if (spec.hot_apps > 0) {
    // The spec's hot tenants fan out in the service too, matching the
    // skewed traffic they receive.
    service_options.hot_fanout = 2;
    for (std::size_t a = 0; a < spec.hot_apps; ++a) {
      service_options.hot_apps.push_back(loadgen::app_key(a));
    }
  }
  service::FleetService fleet_service(service_options);

  const loadgen::LoadReport report =
      loadgen::run_load(spec, fleet_service, run_options);
  out << report.to_text();
  const service::ServiceStats stats = fleet_service.stats();
  out << "  service: " << stats.submitted << " submitted, " << stats.batches
      << " ingest batch(es), queue peak " << stats.queue_peak << " on "
      << stats.shards << " shard(s)\n";
  if (!options.out_path.empty()) {
    write_file(options.out_path, report.to_json());
    out << "  results -> " << options.out_path << "\n";
  }
  return report.slo_pass ? 0 : 1;
}

namespace {

/// Parses a comma-separated catalog-id list ("1,3,4"); empty or
/// malformed input is a usage error naming `flag`.
std::vector<int> parse_app_id_list(const std::string& text,
                                   const std::string& flag) {
  std::vector<int> ids;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    const std::size_t comma = std::min(text.find(',', begin), text.size());
    const std::string piece = text.substr(begin, comma - begin);
    if (piece.empty()) {
      throw InvalidArgument(flag + " needs ID[,ID,...]");
    }
    ids.push_back(static_cast<int>(
        to_int(piece, flag, 0, std::numeric_limits<std::int64_t>::max())));
    if (comma == text.size()) break;
    begin = comma + 1;
  }
  return ids;
}

int dispatch(const std::vector<std::string>& args, std::ostream& out,
             std::ostream& err) {
  constexpr std::int64_t kMaxInt = std::numeric_limits<std::int64_t>::max();
  if (args.empty() || args[0] == "help" || args[0] == "--help") {
    err << "usage: energydx <catalog | instrument <in> <out> | "
           "simulate <app-id> <dir> [--users N] [--seed S] | "
           "analyze (<dir> | --store DIR) [--app ID] "
           "[--reported-fraction F] [--json] "
           "[--threads N] [--incremental] [--report-every K] | "
           "ingest --store DIR [<bundle-or-dir> ...] "
           "[--app ID --users N --seed S] [--compact] "
           "[--tenant KEY [--shards N]] "
           "[--fsync-policy always|group|group:<us>|none] "
           "[--segment-bytes N] [--compress] | "
           "store-info --store DIR | "
           "verify <app-id> [--users N] [--seed S] | "
           "gen-training <device> <out.csv> [--levels N] [--noise F] | "
           "calibrate <samples.csv> <name> | "
           "serve --apps ID[,ID,...] [--users N] [--seed S] [--shards N] "
           "[--writers N] [--threads N] [--hot-fanout N] [--store-root DIR] "
           "[--fsync-policy always|group|group:<us>|none] "
           "[--segment-bytes N] [--compress] "
           "[--reported-fraction F] [--json] | "
           "bench-serve --apps ID[,ID,...] [--users N] [--seed S] "
           "[--shards N] [--writers N] [--readers N] [--threads N] "
           "[--queue-capacity N] [--hot-fanout N] [--repeat K] | "
           "loadgen (--workload NAME | --spec FILE) [--rate R] "
           "[--duration MS] [--threads N] [--seed S] [--shards N] "
           "[--store-root DIR] [--out FILE]>\n";
    return args.empty() ? 2 : 0;
  }
  const std::string& command = args[0];
  const std::vector<std::string> rest(args.begin() + 1, args.end());
  if (command == "catalog") return cmd_catalog(out);
  if (command == "instrument") {
    const FlagSet flags("instrument", rest, {}, {});
    if (flags.positional_count() != 2) {
      throw InvalidArgument("instrument needs <in> <out>");
    }
    return cmd_instrument(flags.required_positional(0, "<in>"),
                          flags.required_positional(1, "<out>"), out);
  }
  if (command == "simulate") {
    FlagSet flags("simulate", rest, {"--users", "--seed"}, {});
    const int app_id = static_cast<int>(
        to_int(flags.required_positional(0, "<app-id> <out-dir>"), "<app-id>",
               0, kMaxInt));
    const std::string& out_dir =
        flags.required_positional(1, "<app-id> <out-dir>");
    flags.reject_extra_positionals(2, "--users N --seed S");
    const int users = static_cast<int>(to_int(
        flags.value("--users").value_or("30"), "--users", 1, 1'000'000));
    const std::uint64_t seed = static_cast<std::uint64_t>(
        to_int(flags.value("--seed").value_or("42"), "--seed", 0, kMaxInt));
    return cmd_simulate(app_id, out_dir, users, seed, out);
  }
  if (command == "verify") {
    FlagSet flags("verify", rest, {"--users", "--seed"}, {});
    const int app_id = static_cast<int>(to_int(
        flags.required_positional(0, "<app-id>"), "<app-id>", 0, kMaxInt));
    flags.reject_extra_positionals(1, "--users N --seed S");
    const int users = static_cast<int>(to_int(
        flags.value("--users").value_or("30"), "--users", 1, 1'000'000));
    const std::uint64_t seed = static_cast<std::uint64_t>(
        to_int(flags.value("--seed").value_or("42"), "--seed", 0, kMaxInt));
    return cmd_verify(app_id, users, seed, out);
  }
  if (command == "gen-training") {
    FlagSet flags("gen-training", rest, {"--levels", "--noise"}, {});
    const std::string& device =
        flags.required_positional(0, "<device> <out.csv>");
    const std::string& out_path =
        flags.required_positional(1, "<device> <out.csv>");
    flags.reject_extra_positionals(2, "--levels N --noise F");
    const std::size_t levels = static_cast<std::size_t>(to_int(
        flags.value("--levels").value_or("8"), "--levels", 1, 1'000'000));
    const double noise =
        to_double(flags.value("--noise").value_or("0"), "--noise");
    return cmd_gen_training(device, out_path, levels, noise, out);
  }
  if (command == "calibrate") {
    const FlagSet flags("calibrate", rest, {}, {});
    if (flags.positional_count() != 2) {
      throw InvalidArgument("calibrate needs <samples.csv> <device-name>");
    }
    return cmd_calibrate(flags.required_positional(0, "<samples.csv>"),
                         flags.required_positional(1, "<device-name>"), out);
  }
  if (command == "ingest") {
    FlagSet flags("ingest", rest,
                  {"--store", "--app", "--users", "--seed", "--fsync-policy",
                   "--segment-bytes", "--tenant", "--shards"},
                  {"--compact", "--compress"});
    IngestOptions options;
    const auto store_flag = flags.value("--store");
    if (!store_flag.has_value()) {
      throw InvalidArgument("ingest needs --store DIR");
    }
    options.store_dir = *store_flag;
    for (std::size_t i = 0; i < flags.positional_count(); ++i) {
      options.sources.push_back(flags.required_positional(i, ""));
    }
    if (const auto app = flags.value("--app")) {
      options.app_id = static_cast<int>(to_int(*app, "--app", 0, kMaxInt));
    }
    options.users = static_cast<int>(to_int(
        flags.value("--users").value_or("30"), "--users", 1, 1'000'000));
    options.seed = static_cast<std::uint64_t>(
        to_int(flags.value("--seed").value_or("42"), "--seed", 0, kMaxInt));
    options.compact = flags.has_switch("--compact");
    if (const auto policy = flags.value("--fsync-policy")) {
      options.fsync_policy = *policy;
    }
    options.segment_bytes = static_cast<std::size_t>(
        to_int(flags.value("--segment-bytes").value_or("0"),
               "--segment-bytes", 0, std::int64_t{1} << 40));
    options.compress = flags.has_switch("--compress");
    if (const auto tenant = flags.value("--tenant")) {
      options.tenant = *tenant;
    }
    options.shards = static_cast<std::size_t>(
        to_int(flags.value("--shards").value_or("0"), "--shards", 0, 4096));
    return cmd_ingest(options, out);
  }
  if (command == "store-info") {
    const FlagSet flags("store-info", rest, {"--store"}, {});
    const auto store_flag = flags.value("--store");
    if (!store_flag.has_value()) {
      throw InvalidArgument("store-info needs --store DIR");
    }
    if (flags.positional_count() != 0) {
      throw InvalidArgument("store-info takes no operands");
    }
    return cmd_store_info(*store_flag, out);
  }
  if (command == "analyze") {
    FlagSet flags("analyze", rest,
                  {"--app", "--reported-fraction", "--threads",
                   "--report-every", "--store"},
                  {"--json", "--incremental"});
    AnalyzeOptions options;
    options.as_json = flags.has_switch("--json");
    options.incremental = flags.has_switch("--incremental");
    if (const auto store = flags.value("--store")) {
      options.store_dir = *store;
    }
    std::string trace_dir;
    if (options.store_dir.has_value()) {
      if (flags.positional_count() > 0) {
        throw InvalidArgument(
            "analyze takes either <trace-dir> or --store, not both");
      }
    } else {
      trace_dir = flags.required_positional(0, "<trace-dir> (or --store)");
    }
    if (const auto app = flags.value("--app")) {
      options.app_id = static_cast<int>(to_int(*app, "--app", 0, kMaxInt));
    }
    if (const auto fraction = flags.value("--reported-fraction")) {
      options.reported_fraction = to_double(fraction.value(),
                                            "--reported-fraction");
    }
    options.num_threads = static_cast<std::size_t>(
        to_int(flags.value("--threads").value_or("0"), "--threads", 0, 4096));
    options.report_every = static_cast<std::size_t>(to_int(
        flags.value("--report-every").value_or("0"), "--report-every", 0,
        kMaxInt));
    flags.reject_extra_positionals(
        options.store_dir.has_value() ? 0 : 1,
        "--app ID --reported-fraction F");
    return cmd_analyze(trace_dir, options, out);
  }
  if (command == "serve") {
    FlagSet flags("serve", rest,
                  {"--apps", "--users", "--seed", "--shards", "--writers",
                   "--threads", "--hot-fanout", "--store-root",
                   "--fsync-policy", "--segment-bytes",
                   "--reported-fraction"},
                  {"--json", "--compress"});
    flags.reject_extra_positionals(0, "--apps ID[,ID,...]");
    ServeOptions options;
    options.app_ids =
        parse_app_id_list(flags.value("--apps").value_or(""), "--apps");
    options.users = static_cast<int>(to_int(
        flags.value("--users").value_or("30"), "--users", 1, 1'000'000));
    options.seed = static_cast<std::uint64_t>(
        to_int(flags.value("--seed").value_or("42"), "--seed", 0, kMaxInt));
    options.shards = static_cast<std::size_t>(
        to_int(flags.value("--shards").value_or("0"), "--shards", 0, 4096));
    options.writers = static_cast<std::size_t>(to_int(
        flags.value("--writers").value_or("1"), "--writers", 1, 4096));
    options.step1_threads = static_cast<std::size_t>(
        to_int(flags.value("--threads").value_or("1"), "--threads", 0, 4096));
    options.hot_fanout = static_cast<std::size_t>(to_int(
        flags.value("--hot-fanout").value_or("1"), "--hot-fanout", 1, 4096));
    if (const auto fraction = flags.value("--reported-fraction")) {
      options.reported_fraction =
          to_double(*fraction, "--reported-fraction");
    }
    options.as_json = flags.has_switch("--json");
    options.store_root = flags.value("--store-root").value_or("");
    if (const auto policy = flags.value("--fsync-policy")) {
      options.fsync_policy = *policy;
    }
    options.segment_bytes = static_cast<std::size_t>(
        to_int(flags.value("--segment-bytes").value_or("0"),
               "--segment-bytes", 0, std::int64_t{1} << 40));
    options.compress = flags.has_switch("--compress");
    return cmd_serve(options, out);
  }
  if (command == "bench-serve") {
    FlagSet flags("bench-serve", rest,
                  {"--apps", "--users", "--seed", "--shards", "--writers",
                   "--readers", "--threads", "--queue-capacity",
                   "--hot-fanout", "--repeat"},
                  {});
    flags.reject_extra_positionals(0, "--apps ID[,ID,...]");
    BenchServeOptions options;
    options.app_ids =
        parse_app_id_list(flags.value("--apps").value_or(""), "--apps");
    options.users = static_cast<int>(to_int(
        flags.value("--users").value_or("400"), "--users", 1, 1'000'000));
    options.seed = static_cast<std::uint64_t>(
        to_int(flags.value("--seed").value_or("42"), "--seed", 0, kMaxInt));
    options.shards = static_cast<std::size_t>(
        to_int(flags.value("--shards").value_or("0"), "--shards", 0, 4096));
    options.writers = static_cast<std::size_t>(to_int(
        flags.value("--writers").value_or("2"), "--writers", 1, 4096));
    options.readers = static_cast<std::size_t>(to_int(
        flags.value("--readers").value_or("2"), "--readers", 0, 4096));
    options.step1_threads = static_cast<std::size_t>(
        to_int(flags.value("--threads").value_or("1"), "--threads", 0, 4096));
    options.queue_capacity = static_cast<std::size_t>(
        to_int(flags.value("--queue-capacity").value_or("1024"),
               "--queue-capacity", 1, std::int64_t{1} << 30));
    options.hot_fanout = static_cast<std::size_t>(to_int(
        flags.value("--hot-fanout").value_or("1"), "--hot-fanout", 1, 4096));
    options.repeat = static_cast<int>(
        to_int(flags.value("--repeat").value_or("1"), "--repeat", 1, 10'000));
    return cmd_bench_serve(options, out);
  }
  if (command == "loadgen") {
    FlagSet flags("loadgen", rest,
                  {"--workload", "--spec", "--rate", "--duration",
                   "--threads", "--seed", "--shards", "--store-root",
                   "--out"},
                  {});
    flags.reject_extra_positionals(0, "--workload NAME or --spec FILE");
    LoadgenOptions options;
    options.workload = flags.value("--workload").value_or("");
    options.spec_path = flags.value("--spec").value_or("");
    if (const auto rate = flags.value("--rate")) {
      options.rate = to_double(*rate, "--rate");
      if (*options.rate <= 0.0) {
        throw InvalidArgument("--rate must be > 0");
      }
    }
    if (const auto duration = flags.value("--duration")) {
      options.duration_ms = static_cast<std::uint64_t>(
          to_int(*duration, "--duration", 1, 86'400'000));
    }
    options.threads = static_cast<std::size_t>(
        to_int(flags.value("--threads").value_or("0"), "--threads", 0, 4096));
    if (const auto seed = flags.value("--seed")) {
      options.seed =
          static_cast<std::uint64_t>(to_int(*seed, "--seed", 0, kMaxInt));
    }
    options.shards = static_cast<std::size_t>(
        to_int(flags.value("--shards").value_or("0"), "--shards", 0, 4096));
    options.store_root = flags.value("--store-root").value_or("");
    options.out_path = flags.value("--out").value_or("");
    return cmd_loadgen(options, out);
  }
  throw InvalidArgument("unknown command '" + command + "'");
}

}  // namespace

int run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err) {
  try {
    return dispatch(args, out, err);
  } catch (const std::exception& failure) {
    err << "energydx: " << failure.what() << "\n";
    return exit_code_for(failure);
  }
}

}  // namespace edx::workload::cli
