#include "workload/cli.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "android/apk.h"
#include "android/instrumenter.h"
#include "common/error.h"
#include "common/strings.h"
#include "core/pipeline.h"
#include "core/report_io.h"
#include "power/calibration.h"
#include "workload/catalog.h"
#include "workload/experiment.h"
#include "workload/session.h"

namespace edx::workload::cli {

namespace fs = std::filesystem;

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open " + path);
  std::ostringstream content;
  content << in.rdbuf();
  return content.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw Error("cannot write " + path);
  out << content;
}

}  // namespace

int cmd_catalog(std::ostream& out) {
  out << "id  name               root-cause     lines\n";
  for (const AppCase& app : full_catalog()) {
    out << app.id << (app.id < 10 ? "   " : "  ") << app.display_name;
    for (std::size_t i = app.display_name.size(); i < 19; ++i) out << ' ';
    std::string kind(abd_kind_name(app.kind));
    out << kind;
    for (std::size_t i = kind.size(); i < 15; ++i) out << ' ';
    out << app.buggy.total_loc() << "\n";
  }
  return 0;
}

int cmd_instrument(const std::string& in_path, const std::string& out_path,
                   std::ostream& out) {
  const android::Instrumenter instrumenter;
  write_file(out_path, instrumenter.instrument_packed(read_file(in_path)));
  out << "instrumented " << instrumenter.last_report().methods_instrumented
      << "/" << instrumenter.last_report().methods_seen << " methods ("
      << instrumenter.last_report().log_points_injected
      << " log points) -> " << out_path << "\n";
  return 0;
}

int cmd_simulate(int app_id, const std::string& out_dir, int users,
                 std::uint64_t seed, std::ostream& out) {
  const std::vector<AppCase> catalog = full_catalog();
  const AppCase& app = catalog_app(catalog, app_id);

  PopulationConfig population;
  population.num_users = users;
  population.seed = seed;
  const CollectedTraces traces =
      collect_traces(app, app.buggy, /*instrumented=*/true, population);

  fs::create_directories(out_dir);
  for (const trace::TraceBundle& bundle : traces.bundles) {
    write_file(out_dir + "/bundle_" + std::to_string(bundle.user) + ".txt",
               bundle.to_text());
  }
  out << "wrote " << traces.bundles.size() << " trace bundles for '"
      << app.display_name << "' to " << out_dir << " (trigger fraction "
      << traces.trigger_fraction_actual << ")\n";
  return 0;
}

int cmd_analyze(const std::string& trace_dir, std::optional<int> app_id,
                std::optional<double> reported_fraction, bool as_json,
                std::size_t num_threads, std::ostream& out) {
  std::vector<std::string> paths;
  for (const fs::directory_entry& entry : fs::directory_iterator(trace_dir)) {
    const std::string name = entry.path().filename().string();
    if (name.starts_with("bundle_") && name.ends_with(".txt")) {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  if (paths.empty()) {
    throw InvalidArgument("no bundle_*.txt files in " + trace_dir);
  }
  std::vector<trace::TraceBundle> bundles;
  bundles.reserve(paths.size());
  for (const std::string& path : paths) {
    bundles.push_back(trace::TraceBundle::from_text(read_file(path)));
  }

  core::AnalysisConfig config;
  config.num_threads = num_threads;
  if (reported_fraction.has_value()) {
    config.reporting.developer_reported_fraction = *reported_fraction;
  } else {
    // Self-estimate: the share of traces in which a manifestation was
    // detected approximates the impacted-user fraction.
    const core::ManifestationAnalyzer probe(config);
    const core::AnalysisResult first_pass = probe.run(bundles);
    config.reporting.developer_reported_fraction =
        first_pass.report.total_traces == 0
            ? 0.0
            : static_cast<double>(
                  first_pass.report.traces_with_manifestation) /
                  static_cast<double>(first_pass.report.total_traces);
  }

  const core::ManifestationAnalyzer analyzer(config);
  const core::AnalysisResult result = analyzer.run(bundles);

  std::optional<core::CodeMap> code_map;
  core::ReportRenderOptions options;
  options.developer_reported_fraction =
      config.reporting.developer_reported_fraction;
  if (app_id.has_value()) {
    const std::vector<AppCase> catalog = full_catalog();
    const AppCase& app = catalog_app(catalog, *app_id);
    code_map = core::CodeMap::from_app(app.buggy);
    options.app_name = app.display_name;
  }

  const core::CodeMap* map = code_map ? &*code_map : nullptr;
  out << (as_json ? core::report_to_json(result.report, map, options)
                  : core::report_to_text(result.report, map, options));
  return 0;
}

int cmd_gen_training(const std::string& device_name,
                     const std::string& out_path, std::size_t levels,
                     double noise, std::ostream& out) {
  const power::Device* device = nullptr;
  static const std::vector<power::Device> kFleet = power::builtin_devices();
  for (const power::Device& candidate : kFleet) {
    if (candidate.name() == device_name) device = &candidate;
  }
  if (device == nullptr) {
    throw InvalidArgument("unknown built-in device '" + device_name + "'");
  }
  const auto samples =
      power::generate_training_samples(*device, levels, noise, /*seed=*/42);
  std::ostringstream csv;
  csv << "cpu,display,wifi,cellular,gps,audio,sensor,power_mw\n";
  for (const power::CalibrationSample& sample : samples) {
    for (power::Component component : power::kAllComponents) {
      csv << sample.utilization.get(component) << ',';
    }
    csv << sample.measured_phone_power_mw << '\n';
  }
  write_file(out_path, csv.str());
  out << "wrote " << samples.size() << " training samples for '"
      << device_name << "' to " << out_path << "\n";
  return 0;
}

int cmd_calibrate(const std::string& csv_path, const std::string& device_name,
                  std::ostream& out) {
  std::istringstream in(read_file(csv_path));
  std::string line;
  std::getline(in, line);  // header
  std::vector<power::CalibrationSample> samples;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    power::CalibrationSample sample;
    double value = 0.0;
    char comma = 0;
    for (power::Component component : power::kAllComponents) {
      if (!(fields >> value >> comma)) {
        throw ParseError("calibrate: malformed CSV line '" + line + "'");
      }
      sample.utilization.set(component, value);
    }
    if (!(fields >> sample.measured_phone_power_mw)) {
      throw ParseError("calibrate: missing power in '" + line + "'");
    }
    samples.push_back(sample);
  }

  const power::CalibrationResult result =
      power::fit_power_model(device_name, samples);
  out << "fitted power model for '" << device_name << "' ("
      << result.samples_used << " samples, rms error "
      << result.rms_error_mw << " mW, max "
      << result.max_abs_error_mw << " mW)\n";
  out << "  idle: " << result.device.idle_mw() << " mW\n";
  for (power::Component component : power::kAllComponents) {
    out << "  " << power::component_name(component) << ": "
        << result.device.coefficient_mw(component) << " mW at 100%\n";
  }
  return 0;
}

int cmd_verify(int app_id, int users, std::uint64_t seed, std::ostream& out) {
  const std::vector<AppCase> catalog = full_catalog();
  const AppCase& app = catalog_app(catalog, app_id);
  PopulationConfig population;
  population.num_users = users;
  population.seed = seed;
  const FixVerification verification = verify_fix(app, population);
  out << "fix verification for '" << app.display_name << "' (" << users
      << " users):\n";
  out << "  manifestations: buggy "
      << verification.buggy_traces_with_manifestation << " traces -> fixed "
      << verification.fixed_traces_with_manifestation << " traces\n";
  out << "  average app power: "
      << verification.avg_power_buggy_mw << " mW -> "
      << verification.avg_power_fixed_mw << " mW ("
      << 100.0 * verification.power_reduction() << "% reduction)\n";
  out << "  verdict: "
      << (verification.fix_confirmed() ? "FIX CONFIRMED" : "NOT CONFIRMED")
      << "\n";
  return verification.fix_confirmed() ? 0 : 3;
}

int run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err) {
  try {
    if (args.empty() || args[0] == "help" || args[0] == "--help") {
      err << "usage: energydx <catalog | instrument <in> <out> | "
             "simulate <app-id> <dir> [users] [seed] | "
             "analyze <dir> [app-id] [reported-fraction] [--json] "
             "[--threads N] | "
             "gen-training <device> <out.csv> [levels] [noise] | "
             "calibrate <samples.csv> <name>>\n";
      return args.empty() ? 2 : 0;
    }
    if (args[0] == "catalog") return cmd_catalog(out);
    if (args[0] == "instrument") {
      if (args.size() != 3) throw InvalidArgument("instrument needs <in> <out>");
      return cmd_instrument(args[1], args[2], out);
    }
    if (args[0] == "simulate") {
      if (args.size() < 3) {
        throw InvalidArgument("simulate needs <app-id> <out-dir>");
      }
      const int users = args.size() > 3 ? std::stoi(args[3]) : 30;
      const std::uint64_t seed =
          args.size() > 4 ? std::stoull(args[4]) : 42ULL;
      return cmd_simulate(std::stoi(args[1]), args[2], users, seed, out);
    }
    if (args[0] == "verify") {
      if (args.size() < 2) throw InvalidArgument("verify needs <app-id>");
      const int users = args.size() > 2 ? std::stoi(args[2]) : 30;
      const std::uint64_t seed =
          args.size() > 3 ? std::stoull(args[3]) : 42ULL;
      return cmd_verify(std::stoi(args[1]), users, seed, out);
    }
    if (args[0] == "gen-training") {
      if (args.size() < 3) {
        throw InvalidArgument("gen-training needs <device> <out.csv>");
      }
      const std::size_t levels =
          args.size() > 3 ? std::stoul(args[3]) : std::size_t{8};
      const double noise = args.size() > 4 ? std::stod(args[4]) : 0.0;
      return cmd_gen_training(args[1], args[2], levels, noise, out);
    }
    if (args[0] == "calibrate") {
      if (args.size() != 3) {
        throw InvalidArgument("calibrate needs <samples.csv> <device-name>");
      }
      return cmd_calibrate(args[1], args[2], out);
    }
    if (args[0] == "analyze") {
      if (args.size() < 2) throw InvalidArgument("analyze needs <trace-dir>");
      std::optional<int> app_id;
      std::optional<double> fraction;
      bool as_json = false;
      std::size_t num_threads = 0;  // default: one worker per hardware thread
      for (std::size_t i = 2; i < args.size(); ++i) {
        if (args[i] == "--json") {
          as_json = true;
        } else if (args[i] == "--threads") {
          if (i + 1 >= args.size()) {
            throw InvalidArgument("--threads needs a count");
          }
          const std::string& count = args[++i];
          std::int64_t parsed = -1;
          std::string_view view(count);
          if (!strings::consume_int64(view, parsed) || !view.empty() ||
              parsed < 0 || parsed > 4096) {
            throw InvalidArgument("--threads needs a count in [0, 4096], got '" +
                                  count + "'");
          }
          num_threads = static_cast<std::size_t>(parsed);
        } else if (!app_id.has_value() &&
                   args[i].find('.') == std::string::npos) {
          app_id = std::stoi(args[i]);
        } else {
          fraction = std::stod(args[i]);
        }
      }
      return cmd_analyze(args[1], app_id, fraction, as_json, num_threads, out);
    }
    throw InvalidArgument("unknown command '" + args[0] + "'");
  } catch (const std::exception& failure) {
    err << "energydx: " << failure.what() << "\n";
    return 1;
  }
}

}  // namespace edx::workload::cli
