#include "workload/cli.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <initializer_list>
#include <iostream>
#include <limits>
#include <map>
#include <set>
#include <span>
#include <sstream>
#include <string_view>

#include "android/apk.h"
#include "android/instrumenter.h"
#include "common/error.h"
#include "common/strings.h"
#include "core/fleet_analyzer.h"
#include "core/pipeline.h"
#include "core/report_io.h"
#include "power/calibration.h"
#include "store/fleet_store.h"
#include "workload/catalog.h"
#include "workload/experiment.h"
#include "workload/session.h"

namespace edx::workload::cli {

namespace fs = std::filesystem;

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open " + path);
  std::ostringstream content;
  content << in.rdbuf();
  return content.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw Error("cannot write " + path);
  out << content;
}

/// The one flag parser every subcommand shares.  Splits the args after
/// the command word into named flags (`--name value` or `--name=value`)
/// and positional operands; unknown flags are usage errors.  Positional
/// operands past the required ones are the pre-redesign argument forms —
/// still honored, but consuming one emits a single deprecation line on
/// stderr per invocation.
class FlagSet {
 public:
  FlagSet(std::string command, const std::vector<std::string>& args,
          std::initializer_list<std::string_view> value_flags,
          std::initializer_list<std::string_view> switch_flags,
          std::ostream& err)
      : command_(std::move(command)), err_(&err) {
    const auto known = [](std::initializer_list<std::string_view> flags,
                          std::string_view name) {
      return std::find(flags.begin(), flags.end(), name) != flags.end();
    };
    for (std::size_t i = 0; i < args.size(); ++i) {
      const std::string& arg = args[i];
      if (!arg.starts_with("--")) {
        positionals_.push_back(arg);
        continue;
      }
      std::string name = arg;
      std::optional<std::string> inline_value;
      if (const std::size_t eq = arg.find('='); eq != std::string::npos) {
        name = arg.substr(0, eq);
        inline_value = arg.substr(eq + 1);
      }
      if (known(switch_flags, name)) {
        if (inline_value.has_value()) {
          throw InvalidArgument(command_ + ": " + name + " takes no value");
        }
        if (!switches_.insert(name).second) {
          throw InvalidArgument(command_ + ": duplicate flag '" + name +
                                "'");
        }
      } else if (known(value_flags, name)) {
        if (!inline_value.has_value()) {
          if (i + 1 >= args.size()) {
            throw InvalidArgument(command_ + ": " + name + " needs a value");
          }
          inline_value = args[++i];
        }
        if (!values_.emplace(name, *inline_value).second) {
          throw InvalidArgument(command_ + ": duplicate flag '" + name +
                                "' (it was already given)");
        }
      } else {
        throw InvalidArgument(command_ + ": unknown flag '" + name + "'");
      }
    }
  }

  [[nodiscard]] bool has_switch(const std::string& name) const {
    return switches_.contains(name);
  }
  [[nodiscard]] std::optional<std::string> value(
      const std::string& name) const {
    const auto it = values_.find(name);
    if (it == values_.end()) return std::nullopt;
    return it->second;
  }
  [[nodiscard]] std::size_t positional_count() const {
    return positionals_.size();
  }
  /// Operand at `index`, or a usage error mentioning `what`.
  [[nodiscard]] const std::string& required_positional(
      std::size_t index, const std::string& what) const {
    if (index >= positionals_.size()) {
      throw InvalidArgument(command_ + " needs " + what);
    }
    return positionals_[index];
  }
  /// The named flag when given, else the deprecated positional at
  /// `fallback_index` (with the one-line warning), else nullopt.
  [[nodiscard]] std::optional<std::string> value_or_positional(
      const std::string& name, std::size_t fallback_index) {
    if (auto named = value(name)) return named;
    if (fallback_index < positionals_.size()) {
      note_deprecated_positionals();
      return positionals_[fallback_index];
    }
    return std::nullopt;
  }
  /// Emits the deprecation line (once per invocation).
  void note_deprecated_positionals() {
    if (warned_) return;
    warned_ = true;
    *err_ << "energydx: warning: '" << command_
          << "' positional option arguments are deprecated; use the named"
             " --flag forms (energydx help)\n";
  }

 private:
  std::string command_;
  std::ostream* err_;
  std::vector<std::string> positionals_;
  std::map<std::string, std::string> values_;
  std::set<std::string> switches_;
  bool warned_{false};
};

/// Integer flag/operand parsing with range validation; failures are usage
/// errors (exit code 2), not std::invalid_argument aborts.
std::int64_t to_int(const std::string& text, const std::string& what,
                    std::int64_t lo, std::int64_t hi) {
  std::int64_t parsed = 0;
  std::string_view view(text);
  if (!strings::consume_int64(view, parsed) || !view.empty() || parsed < lo ||
      parsed > hi) {
    throw InvalidArgument(what + " needs an integer in [" +
                          std::to_string(lo) + ", " + std::to_string(hi) +
                          "], got '" + text + "'");
  }
  return parsed;
}

double to_double(const std::string& text, const std::string& what) {
  try {
    std::size_t used = 0;
    const double value = std::stod(text, &used);
    if (used != text.size()) throw std::invalid_argument(text);
    return value;
  } catch (const std::exception&) {
    throw InvalidArgument(what + " needs a number, got '" + text + "'");
  }
}

}  // namespace

int exit_code_for(const std::exception& failure) {
  // Ordered by specificity: ParseError / AnalysisError / InvalidArgument
  // are sibling subclasses of edx::Error, anything else is "other".
  if (dynamic_cast<const ParseError*>(&failure) != nullptr) return 3;
  if (dynamic_cast<const AnalysisError*>(&failure) != nullptr) return 4;
  if (dynamic_cast<const InvalidArgument*>(&failure) != nullptr) return 2;
  return 1;
}

int cmd_catalog(std::ostream& out) {
  out << "id  name               root-cause     lines\n";
  for (const AppCase& app : full_catalog()) {
    out << app.id << (app.id < 10 ? "   " : "  ") << app.display_name;
    for (std::size_t i = app.display_name.size(); i < 19; ++i) out << ' ';
    std::string kind(abd_kind_name(app.kind));
    out << kind;
    for (std::size_t i = kind.size(); i < 15; ++i) out << ' ';
    out << app.buggy.total_loc() << "\n";
  }
  return 0;
}

int cmd_instrument(const std::string& in_path, const std::string& out_path,
                   std::ostream& out) {
  const android::Instrumenter instrumenter;
  write_file(out_path, instrumenter.instrument_packed(read_file(in_path)));
  out << "instrumented " << instrumenter.last_report().methods_instrumented
      << "/" << instrumenter.last_report().methods_seen << " methods ("
      << instrumenter.last_report().log_points_injected
      << " log points) -> " << out_path << "\n";
  return 0;
}

int cmd_simulate(int app_id, const std::string& out_dir, int users,
                 std::uint64_t seed, std::ostream& out) {
  const std::vector<AppCase> catalog = full_catalog();
  const AppCase& app = catalog_app(catalog, app_id);

  PopulationConfig population;
  population.num_users = users;
  population.seed = seed;
  const CollectedTraces traces =
      collect_traces(app, app.buggy, /*instrumented=*/true, population);

  fs::create_directories(out_dir);
  for (const trace::TraceBundle& bundle : traces.bundles) {
    write_file(out_dir + "/bundle_" + std::to_string(bundle.user) + ".txt",
               bundle.to_text());
  }
  out << "wrote " << traces.bundles.size() << " trace bundles for '"
      << app.display_name << "' to " << out_dir << " (trigger fraction "
      << traces.trigger_fraction_actual << ")\n";
  return 0;
}

namespace {

/// bundle_*.txt paths in sorted filename order — the fleet's arrival
/// order.  Throws InvalidArgument when there are none.
std::vector<std::string> bundle_paths(const std::string& trace_dir) {
  std::vector<std::string> paths;
  for (const fs::directory_entry& entry : fs::directory_iterator(trace_dir)) {
    const std::string name = entry.path().filename().string();
    if (name.starts_with("bundle_") && name.ends_with(".txt")) {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  if (paths.empty()) {
    throw InvalidArgument("no bundle_*.txt files in " + trace_dir);
  }
  return paths;
}

/// Renders one diagnosis report exactly like the batch path does.
void render_report(const core::DiagnosisReport& report,
                   const AnalyzeOptions& options, double reported_fraction,
                   std::ostream& out) {
  std::optional<core::CodeMap> code_map;
  core::ReportRenderOptions render;
  render.developer_reported_fraction = reported_fraction;
  if (options.app_id.has_value()) {
    const std::vector<AppCase> catalog = full_catalog();
    const AppCase& app = catalog_app(catalog, *options.app_id);
    code_map = core::CodeMap::from_app(app.buggy);
    render.app_name = app.display_name;
  }
  const core::CodeMap* map = code_map ? &*code_map : nullptr;
  out << (options.as_json ? core::report_to_json(report, map, render)
                          : core::report_to_text(report, map, render));
}

double self_estimated_fraction(const core::DiagnosisReport& report) {
  // Self-estimate: the share of traces in which a manifestation was
  // detected approximates the impacted-user fraction.
  return report.total_traces == 0
             ? 0.0
             : static_cast<double>(report.traces_with_manifestation) /
                   static_cast<double>(report.total_traces);
}

/// The analysis config an analyze invocation starts from.
core::AnalysisConfig analysis_config(const AnalyzeOptions& options) {
  core::AnalysisConfig config;
  config.num_threads = options.num_threads;
  if (options.reported_fraction.has_value()) {
    config.reporting.developer_reported_fraction = *options.reported_fraction;
  }
  return config;
}

int analyze_batch_bundles(std::span<const trace::TraceBundle> bundles,
                          const AnalyzeOptions& options, std::ostream& out) {
  core::AnalysisConfig config = analysis_config(options);
  if (!options.reported_fraction.has_value()) {
    const core::ManifestationAnalyzer probe(config);
    const core::AnalysisResult first_pass = probe.run(bundles);
    config.reporting.developer_reported_fraction =
        self_estimated_fraction(first_pass.report);
  }

  const core::ManifestationAnalyzer analyzer(config);
  const core::AnalysisResult result = analyzer.run(bundles);
  render_report(result.report, options,
                config.reporting.developer_reported_fraction, out);
  return 0;
}

/// One fleet report from the analyzer's current state — the shared tail
/// of every incremental path (periodic, final, and store-recovered).
/// Applies the same two-pass fraction rule as the batch path: when no
/// fraction was given, rebuild the (cheap) Step-5 report around the
/// self-estimate.
void render_fleet_report(core::FleetAnalyzer& fleet,
                         const core::AnalysisConfig& config,
                         const AnalyzeOptions& options, std::ostream& out) {
  const core::AnalysisResult& result = fleet.snapshot();
  double fraction = config.reporting.developer_reported_fraction;
  core::DiagnosisReport report = result.report;
  if (!options.reported_fraction.has_value()) {
    fraction = self_estimated_fraction(result.report);
    core::ReportingConfig reporting = config.reporting;
    reporting.developer_reported_fraction = fraction;
    report = core::report_problematic_events(result.traces, reporting);
  }
  render_report(report, options, fraction, out);
}

int analyze_batch(const std::vector<std::string>& paths,
                  const AnalyzeOptions& options, std::ostream& out) {
  std::vector<trace::TraceBundle> bundles;
  bundles.reserve(paths.size());
  for (const std::string& path : paths) {
    bundles.push_back(trace::TraceBundle::from_text(read_file(path)));
  }
  return analyze_batch_bundles(bundles, options, out);
}

int analyze_incremental(const std::vector<std::string>& paths,
                        const AnalyzeOptions& options, std::ostream& out) {
  const core::AnalysisConfig config = analysis_config(options);
  core::FleetAnalyzer fleet(config);
  for (std::size_t i = 0; i < paths.size(); ++i) {
    fleet.add_bundle(trace::TraceBundle::from_text(read_file(paths[i])));
    const std::size_t arrivals = i + 1;
    const bool last = arrivals == paths.size();
    const bool periodic =
        options.report_every > 0 && arrivals % options.report_every == 0;
    if (!last && !periodic) continue;
    if (!last) {
      out << "== fleet report after " << arrivals << " of " << paths.size()
          << " bundles ==\n";
    }
    render_fleet_report(fleet, config, options, out);
  }
  return 0;
}

/// Parses the --fsync-policy spelling shared by ingest and the docs.
store::FsyncPolicy parse_fsync_policy(const std::string& text,
                                      std::uint32_t& group_window_us) {
  if (text == "always") return store::FsyncPolicy::kAlways;
  if (text == "none") return store::FsyncPolicy::kNone;
  if (text == "group") return store::FsyncPolicy::kGroup;
  if (text.starts_with("group:")) {
    group_window_us = static_cast<std::uint32_t>(
        to_int(text.substr(6), "--fsync-policy group:<us>", 0, 10'000'000));
    return store::FsyncPolicy::kGroup;
  }
  throw InvalidArgument(
      "--fsync-policy must be always, group, group:<us>, or none (got '" +
      text + "')");
}

int analyze_store(const std::string& store_dir, const AnalyzeOptions& options,
                  std::ostream& out) {
  store::StoreOptions store_options;
  store_options.recovery_threads = options.num_threads;
  store::FleetStore recovered =
      store::FleetStore::open(store_dir, store_options);
  if (recovered.fleet_size() == 0) {
    throw AnalysisError("store at " + store_dir + " holds no bundles");
  }
  if (!options.incremental) {
    return analyze_batch_bundles(recovered.fleet(), options, out);
  }
  // Warm restart: the snapshotted slots re-enter the analyzer through
  // their recovered Step-1 state (no power join), the WAL tail through
  // the normal arrival path — the final report is byte-identical to a
  // never-restarted incremental run over the same uploads.
  const core::AnalysisConfig config = analysis_config(options);
  core::FleetAnalyzer fleet(config);
  for (core::AnalyzedTrace& analyzed : recovered.snapshot_step1()) {
    fleet.add_analyzed(std::move(analyzed));
  }
  for (const store::BundleRef& bundle : recovered.tail_refs()) {
    fleet.add_bundle(*bundle);
  }
  render_fleet_report(fleet, config, options, out);
  return 0;
}

}  // namespace

int cmd_analyze(const std::string& trace_dir, const AnalyzeOptions& options,
                std::ostream& out) {
  if (options.store_dir.has_value()) {
    require(trace_dir.empty(),
            "analyze takes either <trace-dir> or --store, not both");
    require(options.report_every == 0,
            "analyze: --report-every needs a trace directory (a store "
            "replays the deduplicated fleet, not every original arrival)");
    return analyze_store(*options.store_dir, options, out);
  }
  const std::vector<std::string> paths = bundle_paths(trace_dir);
  return options.incremental ? analyze_incremental(paths, options, out)
                             : analyze_batch(paths, options, out);
}

int cmd_ingest(const IngestOptions& options, std::ostream& out) {
  store::StoreOptions store_options;
  store_options.fsync_policy = parse_fsync_policy(
      options.fsync_policy, store_options.group_window_us);
  if (options.segment_bytes != 0) {
    store_options.segment_target_bytes = options.segment_bytes;
  }
  store_options.compress = options.compress;
  store::FleetStore fleet_store =
      store::FleetStore::open(options.store_dir, store_options);
  // Queue asynchronously and make the whole batch durable with one
  // flush(): the group-commit writer packs everything into large writes
  // instead of paying one sync wait per bundle.
  std::size_t appended = 0;
  for (const std::string& source : options.sources) {
    if (fs::is_directory(source)) {
      for (const std::string& path : bundle_paths(source)) {
        fleet_store.append_async(
            trace::TraceBundle::from_text(read_file(path)));
        ++appended;
      }
    } else {
      fleet_store.append_async(
          trace::TraceBundle::from_text(read_file(source)));
      ++appended;
    }
  }
  if (options.app_id.has_value()) {
    const std::vector<AppCase> catalog = full_catalog();
    const AppCase& app = catalog_app(catalog, *options.app_id);
    PopulationConfig population;
    population.num_users = options.users;
    population.seed = options.seed;
    const CollectedTraces traces =
        collect_traces(app, app.buggy, /*instrumented=*/true, population);
    for (const trace::TraceBundle& bundle : traces.bundles) {
      fleet_store.append_async(bundle);
      ++appended;
    }
  }
  require(appended > 0,
          "ingest needs bundle files, directories, or --app to simulate");
  fleet_store.flush();
  out << "ingested " << appended << " bundles into " << options.store_dir
      << " (last seq " << fleet_store.last_seq() << ", fleet "
      << fleet_store.fleet_size() << " users)\n";
  if (options.compact) {
    fleet_store.compact_async();
    fleet_store.wait_for_compaction();
    out << "compacted into snapshot-" << fleet_store.snapshot_seq()
        << ".edx (" << fleet_store.fleet_size() << " bundles)\n";
  }
  return 0;
}

int cmd_store_info(const std::string& store_dir, std::ostream& out) {
  require(fs::is_directory(store_dir),
          "store-info: no store directory at " + store_dir);
  const store::FleetStore fleet_store = store::FleetStore::open(store_dir);
  const store::RecoveryStats& stats = fleet_store.recovery();
  out << "store: " << store_dir << "\n";
  out << "  fleet: " << fleet_store.fleet_size() << " users (last seq "
      << fleet_store.last_seq() << ")\n";
  if (stats.snapshot_seq != 0) {
    out << "  snapshot: seq " << stats.snapshot_seq << " covering "
        << stats.snapshot_bundle_count << " bundles";
  } else {
    out << "  snapshot: none";
  }
  out << " (" << stats.snapshots_found << " on disk, "
      << stats.snapshots_skipped << " skipped as corrupt)\n";
  out << "  wal: " << stats.wal_records_replayed << " records replayed, "
      << stats.wal_records_obsolete << " obsolete, "
      << stats.wal_bytes_salvaged << " bytes salvaged\n";
  out << "  segments: " << stats.segments_scanned << " scanned, "
      << stats.segments_salvaged << " salvaged, decoded in "
      << stats.decode_micros << " us\n";
  for (const store::SegmentStats& segment : stats.segments) {
    out << "    " << segment.file << ": ";
    if (segment.records == 0) {
      out << "empty";
    } else {
      out << "seq " << segment.base_seq << ".." << segment.last_seq << ", "
          << segment.records << " records";
    }
    out << ", " << segment.bytes << " bytes, "
        << (segment.sealed ? "sealed" : "active");
    if (segment.torn) out << ", torn: " << segment.reason;
    out << "\n";
  }
  out << "  manifest: " << (stats.manifest_ok ? "ok" : stats.manifest_note)
      << "\n";
  if (stats.wal_tail_torn) {
    out << "  tail: torn — " << stats.wal_tail_reason << " ("
        << stats.wal_bytes_dropped << " bytes dropped";
    if (stats.tail_bytes_truncated > 0) {
      out << ", " << stats.tail_bytes_truncated << " truncated";
    }
    out << ", repaired on open)\n";
  } else {
    out << "  tail: clean\n";
  }
  const std::uint64_t behind = fleet_store.last_seq() - fleet_store.snapshot_seq();
  out << "  compaction: "
      << (fleet_store.compaction_running()
              ? "running"
              : (behind == 0 ? "idle (snapshot is current)"
                             : "idle (" + std::to_string(behind) +
                                   " records since snapshot)"))
      << "\n";
  return 0;
}

int cmd_gen_training(const std::string& device_name,
                     const std::string& out_path, std::size_t levels,
                     double noise, std::ostream& out) {
  const power::Device* device = nullptr;
  static const std::vector<power::Device> kFleet = power::builtin_devices();
  for (const power::Device& candidate : kFleet) {
    if (candidate.name() == device_name) device = &candidate;
  }
  if (device == nullptr) {
    throw InvalidArgument("unknown built-in device '" + device_name + "'");
  }
  const auto samples =
      power::generate_training_samples(*device, levels, noise, /*seed=*/42);
  std::ostringstream csv;
  csv << "cpu,display,wifi,cellular,gps,audio,sensor,power_mw\n";
  for (const power::CalibrationSample& sample : samples) {
    for (power::Component component : power::kAllComponents) {
      csv << sample.utilization.get(component) << ',';
    }
    csv << sample.measured_phone_power_mw << '\n';
  }
  write_file(out_path, csv.str());
  out << "wrote " << samples.size() << " training samples for '"
      << device_name << "' to " << out_path << "\n";
  return 0;
}

int cmd_calibrate(const std::string& csv_path, const std::string& device_name,
                  std::ostream& out) {
  std::istringstream in(read_file(csv_path));
  std::string line;
  std::getline(in, line);  // header
  std::vector<power::CalibrationSample> samples;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    power::CalibrationSample sample;
    double value = 0.0;
    char comma = 0;
    for (power::Component component : power::kAllComponents) {
      if (!(fields >> value >> comma)) {
        throw ParseError("calibrate: malformed CSV line '" + line + "'");
      }
      sample.utilization.set(component, value);
    }
    if (!(fields >> sample.measured_phone_power_mw)) {
      throw ParseError("calibrate: missing power in '" + line + "'");
    }
    samples.push_back(sample);
  }

  const power::CalibrationResult result =
      power::fit_power_model(device_name, samples);
  out << "fitted power model for '" << device_name << "' ("
      << result.samples_used << " samples, rms error "
      << result.rms_error_mw << " mW, max "
      << result.max_abs_error_mw << " mW)\n";
  out << "  idle: " << result.device.idle_mw() << " mW\n";
  for (power::Component component : power::kAllComponents) {
    out << "  " << power::component_name(component) << ": "
        << result.device.coefficient_mw(component) << " mW at 100%\n";
  }
  return 0;
}

int cmd_verify(int app_id, int users, std::uint64_t seed, std::ostream& out) {
  const std::vector<AppCase> catalog = full_catalog();
  const AppCase& app = catalog_app(catalog, app_id);
  PopulationConfig population;
  population.num_users = users;
  population.seed = seed;
  const FixVerification verification = verify_fix(app, population);
  out << "fix verification for '" << app.display_name << "' (" << users
      << " users):\n";
  out << "  manifestations: buggy "
      << verification.buggy_traces_with_manifestation << " traces -> fixed "
      << verification.fixed_traces_with_manifestation << " traces\n";
  out << "  average app power: "
      << verification.avg_power_buggy_mw << " mW -> "
      << verification.avg_power_fixed_mw << " mW ("
      << 100.0 * verification.power_reduction() << "% reduction)\n";
  out << "  verdict: "
      << (verification.fix_confirmed() ? "FIX CONFIRMED" : "NOT CONFIRMED")
      << "\n";
  return verification.fix_confirmed() ? 0 : 5;
}

namespace {

int dispatch(const std::vector<std::string>& args, std::ostream& out,
             std::ostream& err) {
  constexpr std::int64_t kMaxInt = std::numeric_limits<std::int64_t>::max();
  if (args.empty() || args[0] == "help" || args[0] == "--help") {
    err << "usage: energydx <catalog | instrument <in> <out> | "
           "simulate <app-id> <dir> [--users N] [--seed S] | "
           "analyze (<dir> | --store DIR) [--app ID] "
           "[--reported-fraction F] [--json] "
           "[--threads N] [--incremental] [--report-every K] | "
           "ingest --store DIR [<bundle-or-dir> ...] "
           "[--app ID --users N --seed S] [--compact] "
           "[--fsync-policy always|group|group:<us>|none] "
           "[--segment-bytes N] [--compress] | "
           "store-info --store DIR | "
           "verify <app-id> [--users N] [--seed S] | "
           "gen-training <device> <out.csv> [--levels N] [--noise F] | "
           "calibrate <samples.csv> <name>>\n";
    return args.empty() ? 2 : 0;
  }
  const std::string& command = args[0];
  const std::vector<std::string> rest(args.begin() + 1, args.end());
  if (command == "catalog") return cmd_catalog(out);
  if (command == "instrument") {
    const FlagSet flags("instrument", rest, {}, {}, err);
    if (flags.positional_count() != 2) {
      throw InvalidArgument("instrument needs <in> <out>");
    }
    return cmd_instrument(flags.required_positional(0, "<in>"),
                          flags.required_positional(1, "<out>"), out);
  }
  if (command == "simulate") {
    FlagSet flags("simulate", rest, {"--users", "--seed"}, {}, err);
    const int app_id = static_cast<int>(
        to_int(flags.required_positional(0, "<app-id> <out-dir>"), "<app-id>",
               0, kMaxInt));
    const std::string& out_dir =
        flags.required_positional(1, "<app-id> <out-dir>");
    const int users = static_cast<int>(
        to_int(flags.value_or_positional("--users", 2).value_or("30"),
               "--users", 1, 1'000'000));
    const std::uint64_t seed = static_cast<std::uint64_t>(
        to_int(flags.value_or_positional("--seed", 3).value_or("42"),
               "--seed", 0, kMaxInt));
    return cmd_simulate(app_id, out_dir, users, seed, out);
  }
  if (command == "verify") {
    FlagSet flags("verify", rest, {"--users", "--seed"}, {}, err);
    const int app_id = static_cast<int>(to_int(
        flags.required_positional(0, "<app-id>"), "<app-id>", 0, kMaxInt));
    const int users = static_cast<int>(
        to_int(flags.value_or_positional("--users", 1).value_or("30"),
               "--users", 1, 1'000'000));
    const std::uint64_t seed = static_cast<std::uint64_t>(
        to_int(flags.value_or_positional("--seed", 2).value_or("42"),
               "--seed", 0, kMaxInt));
    return cmd_verify(app_id, users, seed, out);
  }
  if (command == "gen-training") {
    FlagSet flags("gen-training", rest, {"--levels", "--noise"}, {}, err);
    const std::string& device =
        flags.required_positional(0, "<device> <out.csv>");
    const std::string& out_path =
        flags.required_positional(1, "<device> <out.csv>");
    const std::size_t levels = static_cast<std::size_t>(
        to_int(flags.value_or_positional("--levels", 2).value_or("8"),
               "--levels", 1, 1'000'000));
    const double noise = to_double(
        flags.value_or_positional("--noise", 3).value_or("0"), "--noise");
    return cmd_gen_training(device, out_path, levels, noise, out);
  }
  if (command == "calibrate") {
    const FlagSet flags("calibrate", rest, {}, {}, err);
    if (flags.positional_count() != 2) {
      throw InvalidArgument("calibrate needs <samples.csv> <device-name>");
    }
    return cmd_calibrate(flags.required_positional(0, "<samples.csv>"),
                         flags.required_positional(1, "<device-name>"), out);
  }
  if (command == "ingest") {
    FlagSet flags("ingest", rest,
                  {"--store", "--app", "--users", "--seed", "--fsync-policy",
                   "--segment-bytes"},
                  {"--compact", "--compress"}, err);
    IngestOptions options;
    const auto store_flag = flags.value("--store");
    if (!store_flag.has_value()) {
      throw InvalidArgument("ingest needs --store DIR");
    }
    options.store_dir = *store_flag;
    for (std::size_t i = 0; i < flags.positional_count(); ++i) {
      options.sources.push_back(flags.required_positional(i, ""));
    }
    if (const auto app = flags.value("--app")) {
      options.app_id = static_cast<int>(to_int(*app, "--app", 0, kMaxInt));
    }
    options.users = static_cast<int>(to_int(
        flags.value("--users").value_or("30"), "--users", 1, 1'000'000));
    options.seed = static_cast<std::uint64_t>(
        to_int(flags.value("--seed").value_or("42"), "--seed", 0, kMaxInt));
    options.compact = flags.has_switch("--compact");
    if (const auto policy = flags.value("--fsync-policy")) {
      options.fsync_policy = *policy;
    }
    options.segment_bytes = static_cast<std::size_t>(
        to_int(flags.value("--segment-bytes").value_or("0"),
               "--segment-bytes", 0, std::int64_t{1} << 40));
    options.compress = flags.has_switch("--compress");
    return cmd_ingest(options, out);
  }
  if (command == "store-info") {
    const FlagSet flags("store-info", rest, {"--store"}, {}, err);
    const auto store_flag = flags.value("--store");
    if (!store_flag.has_value()) {
      throw InvalidArgument("store-info needs --store DIR");
    }
    if (flags.positional_count() != 0) {
      throw InvalidArgument("store-info takes no operands");
    }
    return cmd_store_info(*store_flag, out);
  }
  if (command == "analyze") {
    FlagSet flags("analyze", rest,
                  {"--app", "--reported-fraction", "--threads",
                   "--report-every", "--store"},
                  {"--json", "--incremental"}, err);
    AnalyzeOptions options;
    options.as_json = flags.has_switch("--json");
    options.incremental = flags.has_switch("--incremental");
    if (const auto store = flags.value("--store")) {
      options.store_dir = *store;
    }
    std::string trace_dir;
    if (options.store_dir.has_value()) {
      if (flags.positional_count() > 0) {
        throw InvalidArgument(
            "analyze takes either <trace-dir> or --store, not both");
      }
    } else {
      trace_dir = flags.required_positional(0, "<trace-dir> (or --store)");
    }
    if (const auto app = flags.value("--app")) {
      options.app_id = static_cast<int>(to_int(*app, "--app", 0, kMaxInt));
    }
    if (const auto fraction = flags.value("--reported-fraction")) {
      options.reported_fraction = to_double(fraction.value(),
                                            "--reported-fraction");
    }
    options.num_threads = static_cast<std::size_t>(
        to_int(flags.value("--threads").value_or("0"), "--threads", 0, 4096));
    options.report_every = static_cast<std::size_t>(to_int(
        flags.value("--report-every").value_or("0"), "--report-every", 0,
        kMaxInt));
    // Deprecated positional forms: a bare integer is the catalog app id,
    // anything with a '.' the reported fraction (same heuristic as the
    // pre-flag CLI).
    for (std::size_t i = 1; i < flags.positional_count(); ++i) {
      const std::string& operand = flags.required_positional(i, "");
      flags.note_deprecated_positionals();
      if (!options.app_id.has_value() &&
          operand.find('.') == std::string::npos) {
        options.app_id =
            static_cast<int>(to_int(operand, "[app-id]", 0, kMaxInt));
      } else {
        options.reported_fraction = to_double(operand, "[reported-fraction]");
      }
    }
    return cmd_analyze(trace_dir, options, out);
  }
  throw InvalidArgument("unknown command '" + command + "'");
}

}  // namespace

int run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err) {
  try {
    return dispatch(args, out, err);
  } catch (const std::exception& failure) {
    err << "energydx: " << failure.what() << "\n";
    return exit_code_for(failure);
  }
}

}  // namespace edx::workload::cli
