#include "workload/catalog.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "workload/app_factory.h"

namespace edx::workload {

namespace {

/// One Table III row for the generic factory.
struct Row {
  int id;
  const char* name;
  long long downloads;  // -1 == "n/a"
  AbdKind kind;
  double code_reduction;  // the paper's "Code" column
  NoSleepResource resource;
  bool light_drain;
  bool aliased_release;
};

constexpr long long kNa = -1;
using enum AbdKind;
using enum NoSleepResource;

// Root causes and download counts follow Table III exactly.  The drain
// profile (resource / light_drain / aliased_release) realizes the blind-
// spot inventory from DESIGN.md: 6 wakelock + 4 sensor no-sleep bugs and
// 2+2 light loop/config bugs sit below eDelta's fixed power-deviation
// threshold (14 misses -> 26/40 = 65%), and 3 of the wakelock bugs release
// an aliased lock, which the static no-sleep analysis cannot distinguish
// (21/24 found -> 52.5%).
const Row kRows[] = {
    {1, "Facebook", 1'000'000'000, kNoSleep, 0.985, kWakeLock, true, false},
    {2, "Boston Bus Map", 100'000, kLoop, 0.8604, kGps, true, false},
    // 3: K-9 Mail (detailed case study)
    {4, "CommonsWare", 10'000'000, kNoSleep, 0.852, kGps, false, false},
    {5, "Open Camera", 10'000'000, kNoSleep, 0.983, kAudio, false, false},
    {6, "Droid VNC", 1'000'000, kNoSleep, 0.9446, kAudio, false, false},
    {7, "Binaural-Beats", 5'000'000, kNoSleep, 0.956, kAudio, false, false},
    {8, "Zmanim", 100'000, kNoSleep, 0.965, kSensor, true, false},
    {9, "MonTransit", 500'000, kNoSleep, 0.941, kGps, false, false},
    {10, "Aripuca", 100'000, kNoSleep, 0.962, kGps, false, false},
    {11, "Conversations", 10'000, kConfiguration, 0.966, kGps, false, false},
    {12, "Ushahidi", 50'000, kNoSleep, 0.916, kSensor, true, false},
    {13, "Sofia Navigation", 50'000, kConfiguration, 0.965, kGps, false,
     false},
    {14, "Osmdroid", 5'000, kNoSleep, 0.873, kGps, false, false},
    {15, "Geohashdroid", kNa, kNoSleep, 0.962, kGps, false, false},
    {16, "BabbleSink", 50'000, kNoSleep, 0.824, kWakeLock, true, true},
    {17, "Traccar", 50'000, kNoSleep, 0.962, kGps, false, false},
    // 18: Tinfoil (detailed case study)
    {19, "Pedometer", 100'000, kConfiguration, 0.917, kGps, true, false},
    {20, "FBReader", 500'000, kNoSleep, 0.901, kSensor, true, false},
    {21, "Owncloud", 100'000, kConfiguration, 0.973, kGps, false, false},
    {22, "Sensorium", 50'000'000, kNoSleep, 0.921, kSensor, true, false},
    {23, "Signal", 500'000, kLoop, 0.983, kGps, false, false},
    {24, "Summit APK", 500, kNoSleep, 0.89, kWakeLock, true, true},
    {25, "ValenBisi", 10'000'000, kNoSleep, 0.935, kGps, false, false},
    {26, "Ulogger", kNa, kNoSleep, 0.857, kWakeLock, true, true},
    {27, "AAT", 50'000, kNoSleep, 0.974, kGps, false, false},
    // 28: Wallabag (detailed case study)
    {29, "Tomahawk Player", kNa, kNoSleep, 0.899, kAudio, false, false},
    {30, "Call Meter", kNa, kNoSleep, 0.9669, kWakeLock, true, false},
    {31, "Simple Note", 50'000, kConfiguration, 0.988, kGps, false, false},
    {32, "NextCloud", 50'000, kConfiguration, 0.993, kGps, false, false},
    {33, "ArtWatch", 5'000'000, kLoop, 0.923, kGps, true, false},
    {34, "WADB", 1'000'000, kNoSleep, 0.943, kGps, false, false},
    {35, "MFacebook", 500'000, kLoop, 0.99, kGps, false, false},
    {36, "Kryptonite", 500, kNoSleep, 0.972, kGps, false, false},
    {37, "Flybsca", 10'000, kConfiguration, 0.966, kGps, false, false},
    {38, "Throughput", kNa, kLoop, 0.983, kGps, false, false},
    {39, "Piano", kNa, kNoSleep, 0.983, kWakeLock, true, false},
    {40, "Fitdice", kNa, kConfiguration, 0.937, kGps, true, false},
};

AppCase from_row(const Row& row) {
  GenericAppParams params;
  params.id = row.id;
  params.name = row.name;
  params.downloads = row.downloads;
  params.kind = row.kind;
  params.paper_code_reduction = row.code_reduction;
  // Size the app so the expected diagnosis set (~170 lines) yields the
  // paper's per-app code reduction.
  params.total_loc = std::clamp(
      static_cast<int>(std::lround(170.0 / (1.0 - row.code_reduction))), 900,
      60'000);
  params.resource = row.resource;
  params.light_drain = row.light_drain;
  params.aliased_release = row.aliased_release;
  // Impact varies by app, as it would across forum-reported bugs.
  params.trigger_fraction = 0.15 + 0.02 * static_cast<double>(row.id % 8);
  return make_generic_app(params);
}

}  // namespace

std::vector<AppCase> full_catalog() {
  std::vector<AppCase> catalog;
  catalog.reserve(40);
  for (const Row& row : kRows) catalog.push_back(from_row(row));
  catalog.push_back(k9_mail_case());
  catalog.push_back(tinfoil_case());
  catalog.push_back(wallabag_case());
  std::sort(catalog.begin(), catalog.end(),
            [](const AppCase& a, const AppCase& b) { return a.id < b.id; });
  return catalog;
}

const AppCase& catalog_app(const std::vector<AppCase>& catalog, int id) {
  for (const AppCase& app_case : catalog) {
    if (app_case.id == id) return app_case;
  }
  throw InvalidArgument("catalog_app: no app with id " + std::to_string(id));
}

}  // namespace edx::workload
