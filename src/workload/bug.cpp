#include "workload/bug.h"

#include "common/error.h"

namespace edx::workload {

std::string_view abd_kind_name(AbdKind kind) {
  switch (kind) {
    case AbdKind::kNoSleep: return "no-sleep";
    case AbdKind::kLoop: return "loop";
    case AbdKind::kConfiguration: return "configuration";
  }
  throw InvalidArgument("abd_kind_name: unknown kind");
}

}  // namespace edx::workload
