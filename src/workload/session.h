// User-population simulation.
//
// "Real-world phone usage and power traces are collected from more than 30
// different volunteer users with various smartphones" (§IV-A).  The
// simulator runs one scripted session per user — a deterministic fraction
// of whom performs the bug-triggering interaction — on a rotating device
// fleet, records each phone's traces, and uploads them to a collection
// server under the charging+WiFi policy.
#pragma once

#include <string>
#include <vector>

#include "android/runtime.h"
#include "power/device.h"
#include "power/timeline.h"
#include "power/tracker.h"
#include "trace/collection.h"
#include "workload/catalog.h"

namespace edx::workload {

struct PopulationConfig {
  int num_users{30};
  std::uint64_t seed{42};
  /// Rotate users across the built-in device fleet; when false everyone
  /// carries the reference Nexus 6 (used for the power-comparison figures
  /// so buggy/fixed numbers are directly comparable).
  bool heterogeneous_devices{true};
  power::TrackerConfig tracker{};
  /// OS/runtime behaviour on every simulated phone (e.g. Doze).
  android::RunConfig runtime{};
  /// Sessions per user, chained on one timeline with `session_gap_ms`
  /// between them.  Configuration persists across sessions (like
  /// SharedPreferences), so a misconfiguration set in session 1 still
  /// drains in session 3 — where the trace shows *no* transition, only a
  /// from-the-start elevation.  Each user still uploads one bundle
  /// covering all their sessions.
  int sessions_per_user{1};
  DurationMs session_gap_ms{600'000};
};

/// Everything one collection campaign produced.
struct CollectedTraces {
  /// Bundles accepted by the server: anonymized, power-scaled.
  std::vector<trace::TraceBundle> bundles;
  /// Ground truth per user (aligned with `bundles` by user id).
  std::vector<android::RunResult> runs;
  std::vector<power::UtilizationTimeline> timelines;
  std::vector<std::string> device_names;
  std::vector<bool> triggered;
  double trigger_fraction_actual{0.0};

  /// App process id of user `u`'s run.
  [[nodiscard]] Pid pid_of(std::size_t u) const { return runs[u].pid; }
};

/// Runs the campaign for one app variant.
///
/// `variant` selects the spec to run (usually `app_case.buggy` or
/// `app_case.fixed`); `instrumented` selects whether the EnergyDx
/// instrumenter processed the APK first (original builds log nothing and
/// carry no logging overhead).  Identical (config, app_case) inputs yield
/// byte-identical scripts regardless of `variant`/`instrumented`, so
/// buggy-vs-fixed comparisons are paired.
CollectedTraces collect_traces(const AppCase& app_case,
                               const android::AppSpec& variant,
                               bool instrumented,
                               const PopulationConfig& config);

}  // namespace edx::workload
