#include "workload/experiment.h"

#include <algorithm>

#include "android/apk_builder.h"
#include "android/event.h"
#include "baselines/checkall.h"
#include "baselines/edelta.h"
#include "baselines/edoctor.h"
#include "baselines/nosleep.h"
#include "common/error.h"
#include "core/code_map.h"
#include "power/monsoon.h"
#include "workload/ground_truth.h"

namespace edx::workload {

PipelineRun run_energydx(const AppCase& app_case,
                         const PopulationConfig& population,
                         const core::AnalysisConfig* override_config) {
  PipelineRun run;
  run.traces =
      collect_traces(app_case, app_case.buggy, /*instrumented=*/true,
                     population);

  core::AnalysisConfig config =
      override_config != nullptr ? *override_config : core::AnalysisConfig{};
  // The developer supplies their user-impact estimate (forums / eDoctor);
  // ground truth is the cleanest stand-in.
  config.reporting.developer_reported_fraction =
      run.traces.trigger_fraction_actual;
  run.config_used = config;

  const core::ManifestationAnalyzer analyzer(config);
  run.analysis = analyzer.run(run.traces.bundles);
  return run;
}

PipelineRun run_energydx_self_contained(const AppCase& app_case,
                                        const PopulationConfig& population,
                                        double* estimated_fraction_out) {
  PipelineRun run;
  run.traces = collect_traces(app_case, app_case.buggy, /*instrumented=*/true,
                              population);

  const baselines::EDoctor edoctor;
  const baselines::EDoctorReport estimate = edoctor.run(run.traces.bundles);
  if (estimated_fraction_out != nullptr) {
    *estimated_fraction_out = estimate.impacted_fraction;
  }

  core::AnalysisConfig config;
  config.reporting.developer_reported_fraction = estimate.impacted_fraction;
  run.config_used = config;
  const core::ManifestationAnalyzer analyzer(config);
  run.analysis = analyzer.run(run.traces.bundles);
  return run;
}

double average_app_power(const AppCase& app_case,
                         const android::AppSpec& variant,
                         const PopulationConfig& population) {
  PopulationConfig homogeneous = population;
  homogeneous.heterogeneous_devices = false;  // paired comparison
  const CollectedTraces traces =
      collect_traces(app_case, variant, /*instrumented=*/false, homogeneous);

  const power::MonsoonMonitor monsoon(power::PowerModel(power::nexus6()),
                                      /*resolution_ms=*/100);
  // Average over the whole population: Fig. 17 reports the app's average
  // power, and only the impacted fraction of users ever pays the drain.
  double total = 0.0;
  int counted = 0;
  for (std::size_t user = 0; user < traces.runs.size(); ++user) {
    const android::RunResult& run = traces.runs[user];
    const power::MonsoonReading reading = monsoon.measure_pid(
        traces.timelines[user], run.pid, run.start_time, run.end_time);
    total += reading.average_power_mw;
    ++counted;
  }
  require(counted > 0, "average_app_power: no users");
  return total / counted;
}

FixVerification verify_fix(const AppCase& app_case,
                           const PopulationConfig& population) {
  FixVerification verification;

  const auto manifestation_count = [&](const android::AppSpec& variant) {
    const CollectedTraces traces =
        collect_traces(app_case, variant, /*instrumented=*/true, population);
    core::AnalysisConfig config;
    config.reporting.developer_reported_fraction =
        traces.trigger_fraction_actual;
    const core::ManifestationAnalyzer analyzer(config);
    const core::AnalysisResult result = analyzer.run(traces.bundles);
    return result.report.traces_with_manifestation;
  };

  verification.buggy_traces_with_manifestation =
      manifestation_count(app_case.buggy);
  verification.fixed_traces_with_manifestation =
      manifestation_count(app_case.fixed);
  verification.avg_power_buggy_mw =
      average_app_power(app_case, app_case.buggy, population);
  verification.avg_power_fixed_mw =
      average_app_power(app_case, app_case.fixed, population);
  return verification;
}

AppEvaluation evaluate_app(const AppCase& app_case,
                           const PopulationConfig& population,
                           const EvaluationOptions& options) {
  AppEvaluation evaluation;
  evaluation.id = app_case.id;
  evaluation.name = app_case.display_name;
  evaluation.kind = app_case.kind;
  evaluation.downloads = app_case.downloads;
  evaluation.paper_code_reduction = app_case.paper_code_reduction;

  // --- EnergyDx ---
  const PipelineRun run = run_energydx(app_case, population);
  const core::CodeMap code_map = core::CodeMap::from_app(app_case.buggy);
  evaluation.total_lines = code_map.total_lines();
  evaluation.energydx_lines =
      core::diagnosis_lines(code_map, run.analysis.report);
  evaluation.energydx_reduction =
      core::code_reduction(code_map, run.analysis.report);

  const auto& ranked = run.analysis.report.ranked_events;
  for (std::size_t i = 0; i < std::min<std::size_t>(6, ranked.size()); ++i) {
    evaluation.top_events.push_back(ranked[i]);
  }
  evaluation.root_cause_reported =
      std::find(run.analysis.report.diagnosis_events.begin(),
                run.analysis.report.diagnosis_events.end(),
                app_case.bug.root_cause_event) !=
      run.analysis.report.diagnosis_events.end();
  for (const EventName& event : run.analysis.report.diagnosis_events) {
    if (android::split_event_name(event).class_name ==
        app_case.bug.component_class) {
      evaluation.component_reported = true;
      break;
    }
  }
  evaluation.event_distance = app_event_distance(
      run.analysis.traces, app_case.bug, &run.traces.triggered);

  // --- CheckAll (§IV-D) ---
  if (options.run_checkall) {
    const baselines::CheckAll checkall;
    const baselines::CheckAllReport checkall_report =
        checkall.run(run.traces.bundles);
    evaluation.checkall_lines =
        code_map.lines_for(checkall_report.reported_events);
    evaluation.checkall_reduction = core::code_reduction(
        code_map.total_lines(), evaluation.checkall_lines);
  }

  // --- No-sleep Detection (§IV-B) ---
  if (options.run_nosleep) {
    const baselines::NoSleepDetector detector;
    const baselines::NoSleepReport nosleep_report =
        detector.analyze(android::build_apk(app_case.buggy));
    evaluation.nosleep_detected = nosleep_report.detected();
    // The paper credits the baseline with a 100% reduction when it finds
    // the root cause (only possible for genuine no-sleep bugs), else 0%.
    evaluation.nosleep_reduction =
        (evaluation.nosleep_detected && app_case.kind == AbdKind::kNoSleep)
            ? 1.0
            : 0.0;
  }

  // --- eDelta (§IV-B) ---
  if (options.run_edelta) {
    const baselines::EDelta edelta;
    const baselines::EDeltaReport edelta_report =
        edelta.run(run.traces.bundles);
    // eDelta counts as detecting the ABD only when a flagged API actually
    // points at the buggy component; a deviation on an unrelated API does
    // not shrink the developer's search for the root cause.
    evaluation.edelta_detected = false;
    for (const baselines::EDeltaFinding& finding : edelta_report.findings) {
      const std::string flagged_class =
          android::split_event_name(finding.api).class_name;
      if (flagged_class == app_case.bug.component_class) {
        evaluation.edelta_detected = true;
        break;
      }
    }
    evaluation.edelta_reduction = evaluation.edelta_detected ? 1.0 : 0.0;
  }

  // --- Power before/after fix (Fig. 17) ---
  if (options.run_power_comparison) {
    evaluation.avg_power_buggy_mw =
        average_app_power(app_case, app_case.buggy, population);
    evaluation.avg_power_fixed_mw =
        average_app_power(app_case, app_case.fixed, population);
  }
  return evaluation;
}

}  // namespace edx::workload
