#include "workload/app_factory.h"

#include <algorithm>
#include <cctype>

#include "common/error.h"

namespace edx::workload {

using namespace edx::android;  // ops DSL + script steps, heavily used here

std::string package_from_name(const std::string& display_name) {
  std::string slug;
  for (char c : display_name) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      slug += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
  }
  require(!slug.empty(), "package_from_name: name has no alphanumerics");
  return "com.example." + slug;
}

namespace {

constexpr const char* kTrackLock = "track_lock";
constexpr const char* kWrongLock = "ui_lock";  // the aliased-release victim
constexpr const char* kSyncMode = "sync_mode";
constexpr const char* kAggressive = "aggressive";

/// The heavy-but-normal refresh every app has; its raw power transition is
/// what CheckAll keeps reporting and Steps 2+3 learn to ignore.
Behavior heavy_refresh_behavior() {
  return {lift(network(450, 0.95)), lift(cpu_work(200, 0.7))};
}

SimpleOp nosleep_start_op(NoSleepResource resource) {
  switch (resource) {
    case NoSleepResource::kGps: return gps_start();
    case NoSleepResource::kAudio: return audio_start();
    case NoSleepResource::kWakeLock: return wakelock_acquire(kTrackLock);
    case NoSleepResource::kSensor: return sensor_start();
  }
  throw InvalidArgument("nosleep_start_op: unknown resource");
}

SimpleOp nosleep_release_op(NoSleepResource resource) {
  switch (resource) {
    case NoSleepResource::kGps: return gps_stop();
    case NoSleepResource::kAudio: return audio_stop();
    case NoSleepResource::kWakeLock: return wakelock_release(kTrackLock);
    case NoSleepResource::kSensor: return sensor_stop();
  }
  throw InvalidArgument("nosleep_release_op: unknown resource");
}

/// Approximate sustained drain (reference-device mW) for ground truth.
PowerMw nosleep_drain_mw(NoSleepResource resource) {
  switch (resource) {
    case NoSleepResource::kGps: return 429.0;
    case NoSleepResource::kAudio: return 198.0;
    case NoSleepResource::kWakeLock: return 86.0;
    case NoSleepResource::kSensor: return 53.0;
  }
  throw InvalidArgument("nosleep_drain_mw: unknown resource");
}

/// Periodic work of a loop bug.  The light variant drains ~40 mW — far too
/// little for eDelta's fixed 150 mW deviation threshold, but an easy
/// ~4x-over-base outlier for the adaptive fence after normalization.
std::vector<SimpleOp> loop_task_work(bool light) {
  if (light) {
    // Low *instantaneous* power (a polling computation, ~110 mW while
    // running): drains the battery over hours yet never deviates past
    // eDelta's fixed threshold.
    return {cpu_work(2500, 0.13)};
  }
  return {network(2000, 0.95), cpu_work(600, 0.8)};
}

DurationMs loop_task_period(bool light) { return light ? 5000 : 2500; }

/// Periodic work of a config-bug sync service: a cheap normal sync plus an
/// expensive retry path that only runs while the bad value is set.
std::vector<SimpleOp> config_task_work(bool light) {
  std::vector<SimpleOp> work = {network(250, 0.15)};  // normal sync
  if (light) {
    work.push_back(guarded(cpu_work(2000, 0.13), kSyncMode, kAggressive));
    work.push_back(guarded(network(400, 0.08), kSyncMode, kAggressive));
  } else {
    work.push_back(guarded(network(2500, 0.9), kSyncMode, kAggressive));
    work.push_back(guarded(cpu_work(500, 0.6), kSyncMode, kAggressive));
  }
  return work;
}

// A declined/misconfigured sync retries quickly, so the drain begins while
// the user is still navigating away from the settings screen.
DurationMs config_task_period(bool light) { return light ? 2500 : 1500; }

PowerMw periodic_drain_mw(AbdKind kind, bool light) {
  if (kind == AbdKind::kLoop) return light ? 56.0 : 630.0;
  return light ? 95.0 : 560.0;
}

/// Total source lines across instrumentable callbacks.
int callback_loc(const AppSpec& app) {
  int total = 0;
  for (const ComponentSpec& component : app.components) {
    for (const CallbackSpec& callback : component.callbacks) {
      total += callback.lines_of_code;
    }
  }
  return total;
}

constexpr const char* kFillerPrefix = "Screen";

struct ClassNames {
  std::string main;
  std::string detail;
  std::string track;
  std::string settings;
  std::string service;
};

ClassNames class_names(const std::string& package, AbdKind kind) {
  ClassNames names;
  names.main = make_class_name(package, "ui", "MainActivity");
  names.detail = make_class_name(package, "ui", "DetailActivity");
  if (kind == AbdKind::kNoSleep) {
    names.track = make_class_name(package, "ui", "TrackActivity");
  }
  if (kind == AbdKind::kConfiguration) {
    names.settings = make_class_name(package, "ui", "SettingsActivity");
    names.service = make_class_name(package, "service", "SyncService");
  }
  return names;
}

/// Builds the app spec for one variant (buggy or fixed).
AppSpec build_variant(const GenericAppParams& params, bool buggy) {
  const std::string package = package_from_name(params.name);
  const ClassNames names = class_names(package, params.kind);

  AppSpec app;
  app.package_name = package;
  app.display_name = params.name;
  app.main_activity = names.main;

  // --- Main/Detail browsing surface, shared by all kinds. ---
  ComponentSpec main;
  main.class_name = names.main;
  main.simple_name = "MainActivity";
  main.kind = ClassKind::kActivity;
  main.set_callback({"onCreate", 34, {lift(cpu_work(40, 0.5))}});
  main.set_callback({"onClick:btnRefresh", 42, heavy_refresh_behavior()});
  main.set_callback({"onItemClick", 28, {lift(cpu_work(60, 0.5))}});

  ComponentSpec detail;
  detail.class_name = names.detail;
  detail.simple_name = "DetailActivity";
  detail.kind = ClassKind::kActivity;
  detail.set_callback({"onCreate", 30, {lift(cpu_work(50, 0.5))}});
  detail.set_callback({"onClick:btnOpen", 26, {lift(cpu_work(80, 0.5))}});

  // Hot-callback line budget: sized so the expected diagnosis set sums to
  // roughly (1 - paper_reduction) * total_loc.
  const int target_diag = std::max(
      60, static_cast<int>((1.0 - params.paper_code_reduction) *
                           params.total_loc));
  const int hot = std::max(12, (target_diag - 100) / 3);

  switch (params.kind) {
    case AbdKind::kNoSleep: {
      ComponentSpec track;
      track.class_name = names.track;
      track.simple_name = "TrackActivity";
      track.kind = ClassKind::kActivity;
      track.set_callback(
          {"onClick:btnStart", hot,
           {lift(nosleep_start_op(params.resource)), lift(cpu_work(30, 0.4))}});
      Behavior on_pause = {lift(cpu_work(5, 0.3))};
      if (buggy) {
        if (params.aliased_release) {
          // Releases a *different* lock object: the code shows a release
          // (fooling syntactic matching) but nothing is freed at runtime.
          on_pause.push_back(lift(wakelock_release(kWrongLock)));
        }
        // Plain buggy variant simply forgets the release.
      } else {
        on_pause.push_back(lift(nosleep_release_op(params.resource)));
      }
      track.set_callback({"onPause", hot, std::move(on_pause)});
      track.set_callback({"onResume", hot, {lift(cpu_work(8, 0.3))}});
      app.components = {main, detail, track};
      break;
    }
    case AbdKind::kLoop: {
      Behavior auto_sync;
      if (buggy) {
        auto_sync.push_back(start_periodic_task(
            "autosync", loop_task_period(params.light_drain),
            loop_task_work(params.light_drain)));
      } else {
        // Fix: one foreground sync instead of an immortal periodic task.
        for (SimpleOp op : loop_task_work(params.light_drain)) {
          auto_sync.push_back(lift(std::move(op)));
        }
      }
      main.set_callback({"onClick:btnAutoSync", hot, std::move(auto_sync)});
      ComponentSpec* hot_main = &main;
      hot_main->set_callback({"onResume", hot, {lift(cpu_work(8, 0.3))}});
      hot_main->set_callback({"onPause", hot, {lift(cpu_work(5, 0.3))}});
      app.components = {main, detail};
      break;
    }
    case AbdKind::kConfiguration: {
      ComponentSpec settings;
      settings.class_name = names.settings;
      settings.simple_name = "SettingsActivity";
      settings.kind = ClassKind::kActivity;
      // Buggy: the save handler stores whatever the dialog produced.
      // Fixed: the handler validates and clamps to a sane value.
      settings.set_callback(
          {"onClick:btnSave", hot,
           {lift(set_config(kSyncMode, buggy ? kAggressive : "normal"))}});
      settings.set_callback({"onClick:btnCancel", 12, {lift(cpu_work(10, 0.3))}});
      settings.set_callback({"onResume", hot, {lift(cpu_work(8, 0.3))}});

      ComponentSpec service;
      service.class_name = names.service;
      service.simple_name = "SyncService";
      service.kind = ClassKind::kService;
      service.set_callback(
          {"onCreate", hot,
           {start_periodic_task("sync", config_task_period(params.light_drain),
                                config_task_work(params.light_drain))}});
      service.set_callback(
          {"onDestroy", 10, {cancel_periodic_task("sync")}});

      app.default_config[kSyncMode] = "normal";
      app.components = {main, detail, settings, service};
      break;
    }
  }

  app.ensure_lifecycle_callbacks();

  // Secondary screens: the bulk of a real app's instrumented surface
  // (~10% of the code base lives in event handlers).
  add_filler_screens(app, std::max(380, params.total_loc / 10));

  // Distribute the remaining line budget over helpers and app glue.
  int remaining = std::max(0, params.total_loc - callback_loc(app));
  const int per_component =
      remaining / (2 * static_cast<int>(app.components.size()));
  for (ComponentSpec& component : app.components) {
    component.helper_loc = per_component;
    remaining -= per_component;
  }
  app.glue_loc = remaining;
  return app;
}

/// Generic interaction script.  Both populations browse and refresh; only
/// triggering users take the kind-specific buggy path.
UserScript make_script(Rng& rng, bool trigger, const GenericAppParams& params,
                       const ClassNames& names,
                       const std::vector<std::string>& screens) {
  const auto think = [&]() -> DurationMs { return rng.uniform_int(500, 1500); };
  UserScript script;
  script.push_back(launch());
  if (params.kind == AbdKind::kConfiguration) {
    script.push_back(start_service(names.service, 300));
  }

  const auto normal_action = [&]() {
    switch (rng.uniform_int(0, 3)) {
      case 0:
        script.push_back(interact("onClick:btnRefresh", think()));
        break;
      case 1:
        script.push_back(navigate(names.detail, think()));
        script.push_back(interact("onClick:btnOpen", think()));
        script.push_back(back_press(think()));
        break;
      case 2:
        append_screen_visit(script, rng, screens);
        break;
      default:
        script.push_back(interact("onItemClick", think()));
        break;
    }
  };

  const int warmup = static_cast<int>(rng.uniform_int(2, 4));
  for (int i = 0; i < warmup; ++i) normal_action();

  if (trigger) {
    switch (params.kind) {
      case AbdKind::kNoSleep:
        script.push_back(navigate(names.track, think()));
        script.push_back(interact("onClick:btnStart", think()));
        script.push_back(idle(rng.uniform_int(3000, 8000)));
        script.push_back(background_app(think()));
        break;
      case AbdKind::kLoop:
        script.push_back(interact("onClick:btnAutoSync", think()));
        if (rng.bernoulli(0.5)) normal_action();
        script.push_back(background_app(think()));
        break;
      case AbdKind::kConfiguration:
        script.push_back(navigate(names.settings, think()));
        script.push_back(dialog("onClick:btnSave", think()));
        script.push_back(back_press(think()));
        if (rng.bernoulli(0.5)) normal_action();
        script.push_back(background_app(think()));
        break;
    }
    script.push_back(idle(rng.uniform_int(60000, 120000)));
  } else {
    // Normal users also wander into the same screens without triggering.
    if (params.kind == AbdKind::kNoSleep && rng.bernoulli(0.5)) {
      script.push_back(navigate(names.track, think()));
      script.push_back(back_press(think()));
    }
    if (params.kind == AbdKind::kConfiguration && rng.bernoulli(0.5)) {
      script.push_back(navigate(names.settings, think()));
      script.push_back(dialog("onClick:btnCancel", think()));
      script.push_back(back_press(think()));
    }
    const int extra = static_cast<int>(rng.uniform_int(1, 3));
    for (int i = 0; i < extra; ++i) normal_action();
    script.push_back(background_app(think()));
    script.push_back(idle(rng.uniform_int(30000, 60000)));
  }
  return script;
}

}  // namespace

std::vector<std::string> add_filler_screens(AppSpec& app,
                                            int target_callback_loc) {
  std::vector<std::string> screens;
  int index = 0;
  while (callback_loc(app) < target_callback_loc && index < 80) {
    ComponentSpec screen;
    screen.simple_name = kFillerPrefix + std::to_string(index);
    screen.class_name =
        make_class_name(app.package_name, "ui", screen.simple_name);
    screen.kind = ClassKind::kActivity;
    screen.set_callback({"onCreate", 38, {lift(cpu_work(35, 0.5))}});
    // A modest refresh: enough radio to cause a legitimate, benign power
    // transition whenever a user pokes the screen.
    screen.set_callback({"onClick:btnAction", 44,
                         {lift(network(300, 0.6)), lift(cpu_work(50, 0.5))}});
    screen.set_callback({"onItemClick", 30, {lift(cpu_work(40, 0.5))}});
    app.components.push_back(std::move(screen));
    screens.push_back(app.components.back().class_name);
    ++index;
  }
  app.ensure_lifecycle_callbacks();
  return screens;
}

std::vector<std::string> filler_screen_names(const AppSpec& app) {
  std::vector<std::string> screens;
  for (const ComponentSpec& component : app.components) {
    if (component.simple_name.starts_with(kFillerPrefix)) {
      screens.push_back(component.class_name);
    }
  }
  return screens;
}

void append_screen_visit(android::UserScript& script, Rng& rng,
                         const std::vector<std::string>& screens) {
  if (screens.empty()) return;
  const auto pick = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(screens.size()) - 1));
  const DurationMs think = rng.uniform_int(500, 1500);
  script.push_back(navigate(screens[pick], think));
  if (rng.bernoulli(0.7)) {
    script.push_back(interact("onClick:btnAction", rng.uniform_int(500, 1500)));
  }
  script.push_back(back_press(rng.uniform_int(500, 1500)));
}

AppCase make_generic_app(const GenericAppParams& params) {
  require(params.total_loc > 200, "make_generic_app: total_loc too small");
  GenericAppParams effective = params;
  if (effective.aliased_release) {
    require(effective.kind == AbdKind::kNoSleep,
            "make_generic_app: aliased_release implies a no-sleep bug");
    effective.resource = NoSleepResource::kWakeLock;
  }

  AppCase app_case;
  app_case.id = effective.id;
  app_case.display_name = effective.name;
  app_case.downloads = effective.downloads;
  app_case.kind = effective.kind;
  app_case.paper_code_reduction = effective.paper_code_reduction;
  app_case.trigger_fraction = effective.trigger_fraction;

  app_case.buggy = build_variant(effective, /*buggy=*/true);
  app_case.fixed = build_variant(effective, /*buggy=*/false);

  const std::string package = package_from_name(effective.name);
  const ClassNames names = class_names(package, effective.kind);

  BugSpec bug;
  bug.kind = effective.kind;
  bug.aliased_release = effective.aliased_release;
  switch (effective.kind) {
    case AbdKind::kNoSleep:
      bug.root_cause_event = qualified_event_name(names.track, "onPause");
      bug.component_class = names.track;
      bug.drain_power_mw = nosleep_drain_mw(effective.resource);
      break;
    case AbdKind::kLoop:
      bug.root_cause_event =
          qualified_event_name(names.main, "onClick:btnAutoSync");
      bug.component_class = names.main;
      bug.drain_power_mw =
          periodic_drain_mw(AbdKind::kLoop, effective.light_drain);
      break;
    case AbdKind::kConfiguration:
      bug.root_cause_event =
          qualified_event_name(names.settings, "onClick:btnSave");
      bug.component_class = names.settings;
      bug.drain_power_mw =
          periodic_drain_mw(AbdKind::kConfiguration, effective.light_drain);
      break;
  }
  app_case.bug = bug;

  const std::vector<std::string> screens = filler_screen_names(app_case.buggy);
  app_case.scenario = [effective, names, screens](Rng& rng, bool trigger) {
    return make_script(rng, trigger, effective, names, screens);
  };
  return app_case;
}

}  // namespace edx::workload
