// ABD bug taxonomy and ground truth.
//
// The paper evaluates the three root-cause classes that an earlier study
// ([2]) found to cover ~89% of energy bugs: no-sleep (a resource is not
// released), loop (periodic work is never stopped), and configuration (a
// bad setting sends the app down an expensive path).  A BugSpec records
// how a bug was injected into an app model and which event is its ground-
// truth root cause — the evaluation measures everything against this.
#pragma once

#include <string>
#include <string_view>

#include "common/types.h"

namespace edx::workload {

enum class AbdKind {
  kNoSleep,
  kLoop,
  kConfiguration,
};

std::string_view abd_kind_name(AbdKind kind);

/// Ground truth about one injected ABD.
struct BugSpec {
  AbdKind kind{AbdKind::kNoSleep};
  /// Qualified name of the root-cause event (the paper's "real triggering
  /// event"), e.g. "Lorg/k9/activity/AccountSettings;.onResume".
  EventName root_cause_event;
  /// Use the last occurrence of the root-cause event in a trace as the
  /// trigger instance (true for settings-style bugs the user re-enters).
  bool use_last_occurrence{true};
  /// Class name of the component carrying the defect.
  std::string component_class;
  /// The sustained extra power the bug drains once triggered, on the
  /// reference device (mW).  Drives which baselines can see it.
  PowerMw drain_power_mw{400.0};
  /// For no-sleep bugs: the buggy code *appears* to release (it releases a
  /// different lock object), which fools syntactic acquire/release
  /// matching — the static baseline's false-negative class.
  bool aliased_release{false};
};

}  // namespace edx::workload
