// Parametrized builder for the generic Table III apps.
//
// Each generated app has a Main/Detail browsing surface with a deliberately
// heavy "refresh" action (the normal-usage power transitions that CheckAll
// drowns in), plus a kind-specific buggy surface:
//   no-sleep      TrackActivity acquires a resource; onPause fails to
//                 release it (or releases the wrong lock when aliased).
//   loop          MainActivity's auto-sync starts a periodic task that is
//                 never cancelled.
//   configuration SettingsActivity's save writes an unvalidated value; a
//                 sync service's periodic work takes the expensive retry
//                 path while that value is set.
// The fixed variant repairs exactly the defect and nothing else.
#pragma once

#include "workload/catalog.h"

namespace edx::workload {

/// Which resource a no-sleep bug leaks; decides the drain's power level
/// (GPS/audio are heavy; wakelock/sensor are the light drains that sit
/// below eDelta's fixed deviation threshold).
enum class NoSleepResource { kGps, kAudio, kWakeLock, kSensor };

struct GenericAppParams {
  int id{0};
  std::string name;
  long long downloads{-1};
  AbdKind kind{AbdKind::kNoSleep};
  double paper_code_reduction{0.9};
  /// Whole-app size target (source lines).
  int total_loc{5000};
  /// No-sleep only: the leaked resource.
  NoSleepResource resource{NoSleepResource::kGps};
  /// Loop/config only: lighter periodic work that stays under eDelta's
  /// threshold while still draining the battery over time.
  bool light_drain{false};
  /// No-sleep only: release the wrong lock object (static-analysis false
  /// negative); forces resource == kWakeLock.
  bool aliased_release{false};
  double trigger_fraction{0.2};
};

/// Builds the complete AppCase for one parameter set.
AppCase make_generic_app(const GenericAppParams& params);

/// "Boston Bus Map" -> "com.example.bostonbusmap".
std::string package_from_name(const std::string& display_name);

/// Adds secondary "screen" activities (lists, viewers, settings panes —
/// the bulk of a real app's event-handling surface) until the app's total
/// instrumentable callback code reaches ~`target_callback_loc` lines.
/// Each screen's action button does a small refresh, so normal visits
/// create exactly the benign power transitions that flood CheckAll.
/// Returns the class names of the added screens (for script building).
std::vector<std::string> add_filler_screens(android::AppSpec& app,
                                            int target_callback_loc);

/// Class names of the filler screens already present in `app`.
std::vector<std::string> filler_screen_names(const android::AppSpec& app);

/// Script fragment: visit one of `screens` (chosen by `rng`), poke it,
/// and come back.  No-op when `screens` is empty.
void append_screen_visit(android::UserScript& script, Rng& rng,
                         const std::vector<std::string>& screens);

}  // namespace edx::workload
