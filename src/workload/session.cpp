#include "workload/session.h"

#include <cmath>
#include <map>

#include "android/apk_builder.h"
#include "android/instrumenter.h"
#include "android/runtime.h"
#include "common/error.h"

namespace edx::workload {

CollectedTraces collect_traces(const AppCase& app_case,
                               const android::AppSpec& variant,
                               bool instrumented,
                               const PopulationConfig& config) {
  require(config.num_users > 0, "collect_traces: need at least one user");

  const android::Apk apk = android::build_apk(variant);
  const android::Instrumenter instrumenter;
  const android::Apk instrumented_apk =
      instrumented ? instrumenter.instrument(apk) : apk;

  const std::vector<power::Device> fleet = power::builtin_devices();
  trace::CollectionServer server(power::nexus6(), fleet);

  // Exactly round(fraction * n) users trigger, so the developer-reported
  // fraction the analysis receives is meaningful.
  const int trigger_count = static_cast<int>(
      std::lround(app_case.trigger_fraction * config.num_users));

  CollectedTraces collected;
  collected.timelines.resize(static_cast<std::size_t>(config.num_users));

  for (int user = 0; user < config.num_users; ++user) {
    // Per-user deterministic streams, independent of variant and
    // instrumentation so A/B comparisons are paired.
    std::uint64_t seed_state =
        config.seed ^ (0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(
                                                   user + 1));
    Rng script_rng(splitmix64(seed_state));
    Rng tracker_rng(splitmix64(seed_state));

    const bool triggers = user < trigger_count;

    const power::Device& device =
        config.heterogeneous_devices ? fleet[static_cast<std::size_t>(user) %
                                             fleet.size()]
                                     : fleet.front();

    power::UtilizationTimeline& timeline =
        collected.timelines[static_cast<std::size_t>(user)];
    const Pid app_pid = 100 + user;
    android::AppRuntime runtime(variant,
                                instrumented ? &instrumented_apk : nullptr,
                                timeline, app_pid, config.runtime);

    // One or more sessions, chained: the config store persists across
    // process restarts, and only the first session takes the triggering
    // path (the bad setting keeps draining on its own afterwards).
    android::RunResult run;
    std::map<std::string, std::string> persisted_config;
    for (int session = 0; session < std::max(1, config.sessions_per_user);
         ++session) {
      const android::UserScript script =
          app_case.scenario(script_rng, triggers && session == 0);
      const TimestampMs session_start =
          session == 0 ? 0 : run.end_time + config.session_gap_ms;
      const android::RunResult session_run = runtime.run(
          script, session_start, /*trailing_ms=*/0,
          session == 0 ? nullptr : &persisted_config);
      persisted_config = session_run.final_config;
      if (session == 0) {
        run = session_run;
      } else {
        run.events.insert(run.events.end(), session_run.events.begin(),
                          session_run.events.end());
        run.end_time = session_run.end_time;
        run.final_config = session_run.final_config;
      }
    }

    trace::TraceRecorder recorder(device, config.tracker, tracker_rng);
    const Pid tracker_pid = 10'000 + user;
    trace::TraceBundle bundle =
        recorder.record(run, timeline, /*user=*/user, tracker_pid);

    // Phones upload when charging on WiFi; the campaign waits for that.
    const trace::UploadStatus status =
        server.upload(bundle, {.charging = true, .on_wifi = true});
    require(status == trace::UploadStatus::kAccepted,
            "collect_traces: upload rejected");

    collected.runs.push_back(run);
    collected.device_names.push_back(device.name());
    collected.triggered.push_back(triggers);
  }

  collected.bundles = server.bundles();
  collected.trigger_fraction_actual =
      static_cast<double>(trigger_count) /
      static_cast<double>(config.num_users);
  return collected;
}

}  // namespace edx::workload
