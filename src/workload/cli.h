// The `energydx` command-line tool's commands, as library functions so the
// test suite can drive them against temp directories.
//
//   energydx catalog
//   energydx instrument <in.apk.txt> <out.apk.txt>
//   energydx simulate <app-id> <out-dir> [users] [seed]
//   energydx analyze <trace-dir> [app-id] [reported-fraction] [--json]
//                    [--threads N]
//   energydx gen-training <builtin-device> <out.csv> [levels] [noise]
//   energydx calibrate <samples.csv> <device-name>
//
// APKs are the packed textual artifacts of android/apk.h; trace
// directories hold one `bundle_<user>.txt` per phone (trace/recorder.h
// format).  `analyze` runs the 5-step pipeline over every bundle found.
// Calibration samples are CSV rows
// "cpu,display,wifi,cellular,gps,audio,sensor,power_mw".
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

namespace edx::workload::cli {

/// Prints the Table III catalog (id, name, root cause, size).
int cmd_catalog(std::ostream& out);

/// Instruments a packed APK file.  Returns 0 on success.
int cmd_instrument(const std::string& in_path, const std::string& out_path,
                   std::ostream& out);

/// Simulates a population for catalog app `app_id` and writes one bundle
/// file per user into `out_dir` (created if missing).
int cmd_simulate(int app_id, const std::string& out_dir, int users,
                 std::uint64_t seed, std::ostream& out);

/// Analyzes every bundle_*.txt in `trace_dir`.  When `app_id` is given the
/// report includes code lines and reduction for that catalog app.  When
/// `reported_fraction` is absent it defaults to the share of traces with a
/// detected manifestation point (a self-estimate).  `num_threads` shards
/// the analysis across worker threads (0 = hardware concurrency,
/// 1 = sequential); the report is identical either way.
int cmd_analyze(const std::string& trace_dir, std::optional<int> app_id,
                std::optional<double> reported_fraction, bool as_json,
                std::size_t num_threads, std::ostream& out);

/// Writes a component-sweep calibration workload for one built-in device
/// ("Nexus 6", "Moto G", ...) as CSV, with optional measurement noise.
int cmd_gen_training(const std::string& device_name,
                     const std::string& out_path, std::size_t levels,
                     double noise, std::ostream& out);

/// Fits a power model to a calibration CSV and prints the profile.
int cmd_calibrate(const std::string& csv_path, const std::string& device_name,
                  std::ostream& out);

/// Post-fix validation for a catalog app: re-runs the same population on
/// the buggy and fixed builds and reports whether the manifestation is
/// gone and the power dropped (energydx verify <app-id> [users] [seed]).
int cmd_verify(int app_id, int users, std::uint64_t seed, std::ostream& out);

/// Dispatch from argv (excluding the program name).  Returns the exit code.
int run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err);

}  // namespace edx::workload::cli
