// The `energydx` command-line tool's commands, as library functions so the
// test suite can drive them against temp directories.
//
//   energydx catalog
//   energydx instrument <in.apk.txt> <out.apk.txt>
//   energydx simulate <app-id> <out-dir> [--users N] [--seed S]
//   energydx analyze (<trace-dir> | --store DIR) [--app ID]
//                    [--reported-fraction F] [--json] [--threads N]
//                    [--incremental] [--report-every K]
//   energydx ingest --store DIR [<bundle.txt-or-dir> ...]
//                   [--app ID --users N --seed S] [--compact]
//                   [--tenant KEY [--shards N]]
//                   [--fsync-policy always|group|group:<us>|none]
//                   [--segment-bytes N] [--compress]
//   energydx store-info --store DIR
//   energydx verify <app-id> [--users N] [--seed S]
//   energydx gen-training <builtin-device> <out.csv> [--levels N] [--noise F]
//   energydx calibrate <samples.csv> <device-name>
//   energydx serve --apps ID[,ID,...] [--users N] [--seed S] [--shards N]
//                  [--writers N] [--threads N] [--hot-fanout N]
//                  [--store-root DIR]
//                  [--fsync-policy always|group|group:<us>|none]
//                  [--segment-bytes N] [--compress]
//                  [--reported-fraction F] [--json]
//   energydx bench-serve --apps ID[,ID,...] [--users N] [--seed S]
//                        [--shards N] [--writers N] [--readers N]
//                        [--threads N] [--queue-capacity N]
//                        [--hot-fanout N] [--repeat K]
//   energydx loadgen (--workload NAME | --spec FILE) [--rate R]
//                    [--duration MS] [--threads N] [--seed S]
//                    [--shards N] [--store-root DIR] [--out FILE]
//
// Every subcommand shares one flag parser (`--name value` or
// `--name=value`); repeating a named flag is a usage error (exit 2), not
// a silent last-wins.  The pre-redesign positional option forms —
// `simulate <app-id> <dir> [users] [seed]`, `verify <app-id> [users]
// [seed]`, `gen-training <device> <out.csv> [levels] [noise]`, `analyze
// <dir> [app-id] [reported-fraction]` — were deprecated (warning-only)
// in PR 3 and are REMOVED as of PR 8: passing one is now a usage error
// (exit 2) whose message names the --flag spelling to migrate to.
//
// `serve` runs the multi-tenant service/fleet_service.h end to end:
// one simulated population per catalog app in --apps, submitted through
// --writers concurrent threads onto --shards ingest shards, then (after
// a drain barrier) one diagnosis report per app.  The report body is
// byte-identical to `analyze` over the same population — the service's
// equivalence contract.  --hot-fanout > 1 marks every app hot (fleet-key
// range fan-out); --store-root makes the service durable over a
// PARTITIONED store — one tenant-tagged ShardStore per ingest shard at
// <root>/shard-<i> (shard count pinned by <root>/layout.edx), so a
// multi-tenant ingest batch costs one fsync per shard, not one per
// tenant; --fsync-policy/--segment-bytes/--compress tune those stores
// exactly as ingest's flags tune a single store.  A legacy per-tenant
// root (one FleetStore directory per app key) is migrated in place the
// first time serve opens it.  `bench-serve` is the load harness: same
// traffic plus --readers threads polling snapshots while writers run,
// reporting ingest throughput and snapshot-staleness percentiles
// (arrivals submitted but not yet covered by the published epoch).
//
// `loadgen` is the declarative SLO harness (src/loadgen/): a
// WorkloadSpec — a built-in mix from the WorkloadFactory (--workload
// ingest-heavy | read-heavy | reupload-churn | mixed) or a spec file
// (--spec examples/steady_mixed.workload; malformed specs exit 3 with
// the offending line) — drives the FleetService through per-stream
// deterministic op sequences and reports per-op latency percentiles,
// achieved vs offered rate, snapshot staleness, and one PASS/FAIL per
// SLO the spec declares.  --rate retargets an open-loop spec (and
// converts a closed-loop one to open-poisson); --duration switches to
// (or rescales) a timed run; --seed and --threads override the spec's
// master seed and the driver thread count; --out additionally writes
// the machine-readable results JSON perf_smoke.py gates.  Exits 1 when
// any SLO fails.
//
// The durable store (store/fleet_store.h, store/shard_store.h):
// `ingest` appends bundles into a segmented-WAL store directory — from
// bundle files / trace directories given as operands, and/or a
// simulated population (--app) — under a chosen group-commit fsync
// policy, optionally with per-frame compression, optionally compacting
// afterwards (the compaction runs on the store's background thread;
// ingest waits for it before reporting).  With --tenant KEY the target
// is a partitioned service root instead: bundles land tenant-tagged in
// KEY's shard store (creating the root with --shards N when missing),
// ready for `serve --store-root` to recover.
// `analyze --store DIR` recovers the fleet (newest valid snapshot + WAL
// segments, --threads segment decoders, tolerating a torn tail) and
// produces a report byte-identical to a never-restarted run over the
// same uploads; with --incremental the snapshotted bundles warm-start
// core::FleetAnalyzer from the stored Step-1 state.  `store-info` first
// classifies what the directory IS — a single FleetStore, a partitioned
// service root, or a legacy per-tenant root — and prints the matching
// view: record counts, snapshot seq, per-segment recovery diagnostics
// and manifest status for a single store; a per-shard segment table
// with per-tenant record counts for a partitioned root; a clear
// "legacy layout" verdict (with per-tenant summaries) for the
// pre-partition layout.  A torn-but-salvaged tail is a diagnostic, not
// an error.
//
// Exit codes — run() maps exceptions to error classes via exit_code_for():
//   0  success
//   1  any other error (I/O failures, internal errors)
//   2  usage error / edx::InvalidArgument (unknown command or flag,
//      missing operand, out-of-range value)
//   3  edx::ParseError (malformed trace bundle, APK blob or CSV input)
//   4  edx::AnalysisError (the traces cannot support the requested
//      analysis, e.g. an empty fleet snapshot)
//   5  `verify` ran cleanly but could not confirm the fix (a domain
//      verdict, not an error)
//
// APKs are the packed textual artifacts of android/apk.h; trace
// directories hold one `bundle_<user>.txt` per phone (trace/recorder.h
// format).  `analyze` runs the 5-step pipeline over every bundle found;
// with `--incremental` it feeds them to core::FleetAnalyzer in filename
// (arrival) order instead, emitting an intermediate report every
// `--report-every K` arrivals and the final report last — byte-identical
// to the batch report over the same bundles.  Calibration samples are CSV
// rows "cpu,display,wifi,cellular,gps,audio,sensor,power_mw".
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace edx::workload::cli {

/// Exit code for a failure `run()` caught: 2 for InvalidArgument, 3 for
/// ParseError, 4 for AnalysisError, 1 for anything else (see the table
/// above).  The single place main's exception-to-exit-code policy lives.
int exit_code_for(const std::exception& failure);

/// Prints the Table III catalog (id, name, root cause, size).
int cmd_catalog(std::ostream& out);

/// Instruments a packed APK file.  Returns 0 on success.
int cmd_instrument(const std::string& in_path, const std::string& out_path,
                   std::ostream& out);

/// Simulates a population for catalog app `app_id` and writes one bundle
/// file per user into `out_dir` (created if missing).
int cmd_simulate(int app_id, const std::string& out_dir, int users,
                 std::uint64_t seed, std::ostream& out);

/// How `cmd_analyze` should run; defaults mirror `energydx analyze <dir>`
/// with no flags.
struct AnalyzeOptions {
  /// Catalog app for code lines + reduction in the report.
  std::optional<int> app_id;
  /// Developer-reported impacted-user fraction.  Absent = self-estimate
  /// (the share of traces with a detected manifestation point).
  std::optional<double> reported_fraction;
  bool as_json{false};
  /// Worker threads (0 = hardware concurrency, 1 = sequential); with
  /// --store, also the parallel segment-decode width during recovery.
  /// The report is identical either way.
  std::size_t num_threads{0};
  /// Feed bundles one at a time to the incremental FleetAnalyzer instead
  /// of one batch ManifestationAnalyzer::run.  The final report is
  /// byte-identical to the batch report.
  bool incremental{false};
  /// With `incremental`: also emit an intermediate fleet report after
  /// every K arrivals (0 = final report only).
  std::size_t report_every{0};
  /// Analyze a durable store directory instead of a directory of
  /// bundle_*.txt files.  Mutually exclusive with a trace-dir operand and
  /// with report_every (the store replays the deduplicated fleet, not the
  /// original arrival sequence).
  std::optional<std::string> store_dir;
};

/// Analyzes every bundle_*.txt in `trace_dir` (sorted filename order ==
/// arrival order), or — when `options.store_dir` is set and `trace_dir`
/// empty — the fleet recovered from that durable store.
int cmd_analyze(const std::string& trace_dir, const AnalyzeOptions& options,
                std::ostream& out);

/// How `cmd_ingest` fills a durable store.
struct IngestOptions {
  /// A single-tenant FleetStore directory — or, with `tenant` set, a
  /// partitioned service root (layout.edx + shard-<i>/ subdirectories).
  std::string store_dir;
  /// Ingest into a partitioned root as this tenant: bundles are routed
  /// to the tenant's shard exactly as a serving FleetService would, so
  /// `serve --store-root` recovers them.
  std::optional<std::string> tenant;
  /// Shard count when `tenant` creates a fresh partitioned root (0 = 1
  /// shard).  An existing layout.edx pins the count; contradicting it
  /// is an error.
  std::size_t shards{0};
  /// Bundle files (trace/recorder.h text format) and/or directories of
  /// bundle_*.txt, appended in the given order (directories in sorted
  /// filename order).
  std::vector<std::string> sources;
  /// When set, additionally simulates a population for this catalog app
  /// and appends its bundles (after `sources`).
  std::optional<int> app_id;
  int users{30};
  std::uint64_t seed{42};
  /// Fold the WAL into a fresh snapshot after ingesting (runs on the
  /// store's background compaction thread; cmd_ingest waits for it).
  bool compact{false};
  /// WAL durability: "always", "group", "group:<microseconds>", "none".
  std::string fsync_policy{"group"};
  /// Segment roll size in bytes (0 = the store default, 8 MiB).
  std::size_t segment_bytes{0};
  /// Write compressed WAL frames when compression actually shrinks them.
  bool compress{false};
};

/// Appends bundles into the store at `options.store_dir` (created if
/// missing), honoring replace-not-duplicate fleet keys.
int cmd_ingest(const IngestOptions& options, std::ostream& out);

/// Prints record counts, snapshot seq, and salvage diagnostics for the
/// store at `store_dir`.
int cmd_store_info(const std::string& store_dir, std::ostream& out);

/// Writes a component-sweep calibration workload for one built-in device
/// ("Nexus 6", "Moto G", ...) as CSV, with optional measurement noise.
int cmd_gen_training(const std::string& device_name,
                     const std::string& out_path, std::size_t levels,
                     double noise, std::ostream& out);

/// Fits a power model to a calibration CSV and prints the profile.
int cmd_calibrate(const std::string& csv_path, const std::string& device_name,
                  std::ostream& out);

/// Post-fix validation for a catalog app: re-runs the same population on
/// the buggy and fixed builds and reports whether the manifestation is
/// gone and the power dropped.  Returns 0 when the fix is confirmed, 5
/// when it is not.
int cmd_verify(int app_id, int users, std::uint64_t seed, std::ostream& out);

/// How `cmd_serve` drives the multi-tenant FleetService.
struct ServeOptions {
  /// Catalog app ids; each becomes one tenant keyed "app-<id>".
  std::vector<int> app_ids;
  int users{30};
  std::uint64_t seed{42};
  /// Ingest shards (0 = auto: one per hardware thread, capped at 4).
  std::size_t shards{0};
  /// Concurrent writer threads splitting the interleaved arrival stream.
  std::size_t writers{1};
  /// > 1 marks every app hot and fans its fleet keys over this many
  /// consecutive shards.
  std::size_t hot_fanout{1};
  /// Per-shard Step-1 pool width (1 = join inline on the worker).
  std::size_t step1_threads{1};
  /// Fixed developer-reported fraction; absent = self-estimate (the
  /// analyze default).
  std::optional<double> reported_fraction;
  bool as_json{false};
  /// Non-empty: a durable partitioned store — one tenant-tagged
  /// ShardStore per ingest shard under <store_root>/shard-<i>, one
  /// group-commit fsync per shard per ingest batch.  A legacy
  /// per-tenant root migrates in place on open.
  std::string store_root;
  /// WAL durability for the shard stores: "always", "group",
  /// "group:<microseconds>", "none".
  std::string fsync_policy{"group"};
  /// Segment roll size in bytes (0 = the store default, 8 MiB).
  std::size_t segment_bytes{0};
  /// Write compressed WAL frames when compression actually shrinks them.
  bool compress{false};
};

/// Simulates one population per app, serves the interleaved arrivals
/// through the FleetService, drains, and prints each tenant's report
/// (byte-identical to `analyze` over the same population) plus service
/// counters.
int cmd_serve(const ServeOptions& options, std::ostream& out);

/// How `cmd_bench_serve` loads the service.
struct BenchServeOptions {
  std::vector<int> app_ids;
  int users{400};
  std::uint64_t seed{42};
  std::size_t shards{0};
  std::size_t writers{2};
  /// Reader threads polling snapshots and sampling staleness while the
  /// writers run.
  std::size_t readers{2};
  std::size_t step1_threads{1};
  std::size_t queue_capacity{1024};
  std::size_t hot_fanout{1};
  /// Extra passes over the population (pass 2+ are re-uploads).
  int repeat{1};
};

/// The serve-mode load harness: concurrent writers + concurrent
/// snapshot readers, reporting arrivals/s and snapshot-staleness
/// percentiles (in arrivals).
int cmd_bench_serve(const BenchServeOptions& options, std::ostream& out);

/// How `cmd_loadgen` resolves and runs a workload (src/loadgen/).
struct LoadgenOptions {
  /// Exactly one of workload (a WorkloadFactory name) or spec_path (an
  /// examples/*.workload file) must be set.
  std::string workload;
  std::string spec_path;
  /// Override the spec's open-loop target rate (ops/s); a closed-loop
  /// spec becomes open-poisson at this rate.
  std::optional<double> rate;
  /// Run timed for this long (ms) instead of the spec's fixed op
  /// budget; with spec phases, rescales their total to this duration.
  std::optional<std::uint64_t> duration_ms;
  /// Driver threads (0 = one per stream, capped at hardware threads).
  std::size_t threads{0};
  /// Override the spec's master seed.
  std::optional<std::uint64_t> seed;
  /// Ingest shards for the FleetService under test (0 = auto).
  std::size_t shards{0};
  /// Non-empty: the service runs store-backed — a partitioned store at
  /// this root, one ShardStore per shard (the durable-ingest variant of
  /// the workload).
  std::string store_root;
  /// Non-empty: also write the results JSON here (the document
  /// tools/perf_smoke.py --loadgen-results gates).
  std::string out_path;
};

/// Runs the workload against a fresh FleetService and prints the
/// summary (per-op percentiles, achieved vs offered rate, SLO
/// verdicts).  Returns 0 when every declared SLO passed, 1 otherwise.
int cmd_loadgen(const LoadgenOptions& options, std::ostream& out);

/// Dispatch from argv (excluding the program name).  Returns the exit code.
int run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err);

}  // namespace edx::workload::cli
