// Ground-truth evaluation helpers: the event-distance metric of Figure 1.
//
// Event distance = the number of events invoked between (exclusive) the
// real triggering event (root cause) and the event closest to the
// manifestation point (§II-A).  We compute it against the injected
// BugSpec: the root-cause instance is located by name in the analyzed
// trace, the manifestation is the detected outlier nearest after it.
#pragma once

#include <optional>
#include <vector>

#include "core/analysis_types.h"
#include "workload/bug.h"

namespace edx::workload {

/// Index of the bug's root-cause instance in `trace` (first or last
/// occurrence per the spec); nullopt when the event never fired.
std::optional<std::size_t> root_cause_index(const core::AnalyzedTrace& trace,
                                            const BugSpec& bug);

/// Event distance for one analyzed trace; nullopt when the root cause is
/// absent or no manifestation point was detected.
std::optional<int> trace_event_distance(const core::AnalyzedTrace& trace,
                                        const BugSpec& bug);

/// Per-app event distance: the median over traces where it is defined;
/// nullopt when no trace yields a distance.  When `triggered` is non-null
/// (aligned with `traces`), only traces whose user actually triggered the
/// ABD participate — the metric is about how close the *manifestation* is
/// to its trigger, so traces without a manifestation are out of scope.
std::optional<int> app_event_distance(
    const std::vector<core::AnalyzedTrace>& traces, const BugSpec& bug,
    const std::vector<bool>* triggered = nullptr);

}  // namespace edx::workload
