// Figures 2, 3 and 5 — the K-9 Mail trace material.
//
// Prints (a) the raw power trace of one triggering user, with the
// compose-email spikes and the ABD manifestation visible (Fig. 3); (b) the
// event-log excerpt in the Fig. 5 "+/-" format; and (c) the events around
// the manifestation point (Fig. 2).
#include <algorithm>
#include <iostream>

#include "bench_util.h"
#include "trace/event_trace.h"

int main(int argc, char** argv) {
  using namespace edx;
  const workload::PopulationConfig population =
      bench::default_population(argc, argv);
  const workload::AppCase app = workload::k9_mail_case();
  const workload::PipelineRun run = workload::run_energydx(app, population);
  const std::size_t user = bench::first_triggering_user(run.traces);
  const trace::TraceBundle& bundle = run.traces.bundles[user];

  std::cout << "FIGURE 3: power trace of the K-9 Mail ABD (user " << user
            << ", " << bundle.device_name << ")\n";
  std::cout << "sample  power(mW)  bar\n";
  const auto& samples = bundle.utilization.samples();
  double full_scale = 1.0;
  for (const auto& sample : samples) {
    full_scale = std::max(full_scale, sample.estimated_app_power_mw);
  }
  for (std::size_t i = 0; i < samples.size(); ++i) {
    // Compress the idle tail: print every 4th sample once past the action.
    if (i > 120 && i % 4 != 0) continue;
    std::cout << strings::format_double(static_cast<double>(i), 0) << "\t"
              << strings::format_double(samples[i].estimated_app_power_mw, 1)
              << "\t|"
              << ascii_bar(samples[i].estimated_app_power_mw, full_scale, 60)
              << "\n";
  }

  std::cout << "\nFIGURE 5: event log excerpt (first 12 records)\n";
  const std::string text = bundle.events.to_text();
  std::size_t pos = 0;
  for (int line = 0; line < 12 && pos != std::string::npos; ++line) {
    const std::size_t next = text.find('\n', pos);
    std::cout << "  " << text.substr(pos, next - pos) << "\n";
    pos = next == std::string::npos ? next : next + 1;
  }

  std::cout << "\nFIGURE 2: events around the manifestation point\n";
  const auto& trace = run.analysis.traces[user];
  if (trace.manifestation_indices.empty()) {
    std::cout << "  (no manifestation point detected in this trace)\n";
    return 0;
  }
  // First detected point at/after the root cause, like the ground truth.
  std::size_t point = trace.manifestation_indices.front();
  if (const auto root = workload::root_cause_index(trace, app.bug)) {
    for (std::size_t index : trace.manifestation_indices) {
      if (index >= *root) {
        point = index;
        break;
      }
    }
  }
  const std::size_t lo = point >= 4 ? point - 4 : 0;
  const std::size_t hi = std::min(trace.events.size(), point + 3);
  int order = 1;
  for (std::size_t i = lo; i < hi; ++i) {
    std::cout << "  " << order++ << ". " << trace.events[i].name()
              << (trace.events[i].name() == app.bug.root_cause_event
                      ? "   <-- root cause event"
                      : "")
              << (i == point ? "   <-- manifestation point" : "") << "\n";
  }
  std::cout << "\n(The connection attempt itself — Ljava/net/Socket;->connect"
            << " — is not in the\ninstrumented pool, so the nearest logged"
            << " event stands in for it, as in the paper.)\n";
  return 0;
}
