// Figure 15 and Table VI — the Tinfoil case study (§IV-C).
//
// The news-feed poll keeps refreshing an invisible interface after the app
// is backgrounded.  Paper results: top events FBWrapper:menu_item_newsfeed
// and Idle(No_Display); search space 4,226 -> 236 lines.
#include <iostream>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace edx;
  const workload::PopulationConfig population =
      bench::default_population(argc, argv);
  const workload::AppCase app = workload::tinfoil_case();
  const workload::PipelineRun run = workload::run_energydx(app, population);
  const std::size_t user = bench::first_triggering_user(run.traces);

  std::cout << "FIGURE 15: Tinfoil manifestation analysis (user " << user
            << ")\n\n";
  bench::print_step_series(run.analysis.traces[user]);

  std::cout << "\nTABLE VI: events reported to developers (Tinfoil)\n";
  bench::print_top_events(run.analysis.report, 4);
  std::cout << "(paper order: FBWrapper:menu_item_newsfeed, Idle(No_Display), "
               "FBWrapper:menu_about, Preferences:onResume)\n\n";

  bench::print_search_space(app, run);
  std::cout << "(paper: 4,226 -> 236 lines)\n";

  const bench::RunQuality quality = bench::assess(app, run);
  std::cout << "Root-cause component reported: "
            << (quality.component_reported ? "yes" : "NO")
            << "; event distance "
            << (quality.event_distance ? std::to_string(*quality.event_distance)
                                       : "-")
            << "\n";
  return 0;
}
