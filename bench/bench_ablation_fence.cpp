// Ablation — the Step-4 outlier fence.
//
// The paper selects manifestation points above the Tukey *upper outer
// fence* Q3 + 3*IQR.  This bench compares the inner fence (1.5*IQR), the
// outer fence, and looser/tighter multipliers, plus the sustained-rise
// filter on/off.
#include <iostream>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace edx;
  const workload::PopulationConfig population =
      bench::default_population(argc, argv);

  std::cout << "ABLATION: Step-4 outlier fence and sustain filter\n\n";

  TextTable table = bench::ablation_table();
  for (double multiplier : {1.5, 3.0, 6.0}) {
    core::AnalysisConfig config;
    config.detection.fence_iqr_multiplier = multiplier;
    const bench::AblationResult result =
        bench::run_ablation(bench::ablation_app_ids(), population, config);
    std::string label =
        "Q3 + " + strings::format_double(multiplier, 1) + "*IQR";
    if (multiplier == 1.5) label += " (inner fence)";
    if (multiplier == 3.0) label += " (paper, outer fence)";
    bench::print_ablation_row(table, label, result);
  }
  {
    core::AnalysisConfig config;
    config.detection.require_sustained = false;
    const bench::AblationResult result =
        bench::run_ablation(bench::ablation_app_ids(), population, config);
    bench::print_ablation_row(table, "outer fence, sustain filter OFF",
                              result);
  }
  {
    core::AnalysisConfig config;
    config.detection.min_peak_level = 0.0;
    const bench::AblationResult result =
        bench::run_ablation(bench::ablation_app_ids(), population, config);
    bench::print_ablation_row(table, "outer fence, min-peak-level OFF",
                              result);
  }
  table.print(std::cout);
  return 0;
}
