// §IV-F — System overheads of EnergyDx.
//
// Performance: event latency of the instrumented build vs the original
// (paper: +8.3% on average, instrumented event latency < 9.38 ms, well
// under the 100 ms perception threshold).  Power: the extra power drawn by
// the in-app event logging plus the utilization-tracking service (paper:
// 32 mW on a Nexus 6, ~4.5% of whole-phone power during usage).
#include <iostream>

#include "bench_util.h"
#include "power/monsoon.h"

int main(int argc, char** argv) {
  using namespace edx;
  workload::PopulationConfig population = bench::default_population(argc, argv);
  population.num_users = std::min(population.num_users, 10);
  population.heterogeneous_devices = false;  // Nexus 6, like the paper

  double latency_original_total = 0.0;
  double latency_instrumented_total = 0.0;
  long long event_count = 0;

  double overhead_power_total = 0.0;
  double phone_power_total = 0.0;
  int power_samples = 0;

  const power::MonsoonMonitor monsoon(power::PowerModel(power::nexus6()),
                                      /*resolution_ms=*/20);

  const std::vector<workload::AppCase> catalog = workload::full_catalog();
  for (const workload::AppCase& app : catalog) {
    const workload::CollectedTraces original = workload::collect_traces(
        app, app.buggy, /*instrumented=*/false, population);
    const workload::CollectedTraces instrumented = workload::collect_traces(
        app, app.buggy, /*instrumented=*/true, population);

    for (std::size_t u = 0; u < original.runs.size(); ++u) {
      const auto& plain_events = original.runs[u].events;
      const auto& inst_events = instrumented.runs[u].events;
      for (std::size_t e = 0; e < plain_events.size(); ++e) {
        if (plain_events[e].kind == android::EventKind::kIdle) continue;
        latency_original_total +=
            static_cast<double>(plain_events[e].interval.length());
        latency_instrumented_total +=
            static_cast<double>(inst_events[e].interval.length());
        ++event_count;
      }

      // Power overhead: the logging cost inside the app process plus the
      // tracker service's own CPU, measured against ground truth over the
      // active usage window (the first 20 s of the session).
      const TimestampMs window_end =
          std::min<TimestampMs>(original.runs[u].end_time, 20'000);
      const double app_plain =
          monsoon
              .measure_pid(original.timelines[u], original.runs[u].pid, 0,
                           window_end)
              .average_power_mw;
      const double app_inst =
          monsoon
              .measure_pid(instrumented.timelines[u],
                           instrumented.runs[u].pid, 0, window_end)
              .average_power_mw;
      const Pid tracker_pid = 10'000 + static_cast<Pid>(u);
      const double tracker_power =
          monsoon
              .measure_pid(instrumented.timelines[u], tracker_pid, 0,
                           window_end)
              .average_power_mw;
      overhead_power_total += (app_inst - app_plain) + tracker_power;
      phone_power_total +=
          monsoon.measure(instrumented.timelines[u], 0, window_end)
              .average_power_mw;
      ++power_samples;
    }
  }

  const double avg_original =
      latency_original_total / static_cast<double>(event_count);
  const double avg_instrumented =
      latency_instrumented_total / static_cast<double>(event_count);
  const double latency_increase = avg_instrumented / avg_original - 1.0;
  const double avg_overhead_mw =
      overhead_power_total / static_cast<double>(power_samples);
  const double avg_phone_mw =
      phone_power_total / static_cast<double>(power_samples);

  std::cout << "SECTION IV-F: system overheads (" << catalog.size()
            << " apps x " << population.num_users << " users)\n\n";

  std::cout << "Performance overhead (event latency):\n";
  std::cout << "  original build:     " << strings::format_double(avg_original, 2)
            << " ms average over " << event_count << " events\n";
  std::cout << "  instrumented build: "
            << strings::format_double(avg_instrumented, 2) << " ms average\n";
  std::cout << "  latency increase:   " << bench::pct(latency_increase)
            << "   (paper: +8.3%, average < 9.38 ms)\n";
  std::cout << "  perception budget:  "
            << (avg_instrumented < 100.0 ? "under" : "OVER")
            << " the 100 ms threshold [27]\n\n";

  std::cout << "Power overhead (EnergyDx logging + utilization tracking):\n";
  std::cout << "  overhead:          " << bench::mw(avg_overhead_mw)
            << "   (paper: 32 mW on a Nexus 6)\n";
  std::cout << "  whole-phone usage: " << bench::mw(avg_phone_mw) << "\n";
  std::cout << "  share:             "
            << bench::pct(avg_overhead_mw / avg_phone_mw)
            << "   (paper: ~4.5% during usage)\n";
  return 0;
}
