// Ablation — the utilization-tracking period (§II-C).
//
// The paper picks 500 ms as "a trade-off between power estimation accuracy
// and runtime logging overhead" and argues it is sufficient because
// anomalies must last long to drain the battery.  This bench sweeps the
// period; the overhead column is the tracker's sampling rate (events the
// phone must record per minute).
#include <iostream>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace edx;
  workload::PopulationConfig population = bench::default_population(argc, argv);

  std::cout << "ABLATION: utilization-tracker sampling period\n\n";

  TextTable table({"Period", "Samples/min", "Avg code reduction",
                   "Component hit", "False normal traces",
                   "Missed trigger traces"});
  for (DurationMs period : {100, 250, 500, 1000, 2000, 5000}) {
    population.tracker.period_ms = period;
    const bench::AblationResult result = bench::run_ablation(
        bench::ablation_app_ids(), population, core::AnalysisConfig{});
    std::string label = std::to_string(period) + " ms";
    if (period == 500) label += " (paper)";
    table.add_row({label, std::to_string(60'000 / period),
                   bench::pct(result.avg_code_reduction),
                   std::to_string(result.component_hits) + "/" +
                       std::to_string(result.apps),
                   std::to_string(result.false_normal_traces),
                   std::to_string(result.missed_triggered_traces)});
  }
  table.print(std::cout);
  std::cout << "\nCoarser sampling blurs short transitions together; finer "
               "sampling costs logging\nvolume and power without improving "
               "detection of long-lived drains.\n";
  return 0;
}
