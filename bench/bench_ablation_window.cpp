// Ablation — the manifestation window size (Step 5).
//
// The window trades context (more events for the developer to associate
// with the ABD) against search-space size.  The paper's example uses 2;
// our default is 3.
#include <iostream>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace edx;
  const workload::PopulationConfig population =
      bench::default_population(argc, argv);

  std::cout << "ABLATION: Step-5 manifestation window size\n\n";

  TextTable table = bench::ablation_table();
  for (std::size_t window : {0u, 1u, 2u, 3u, 4u, 6u}) {
    core::AnalysisConfig config;
    config.reporting.window_size = window;
    std::string label = "+/- " + std::to_string(window) + " events";
    if (window == 3) label += " (default)";
    bench::print_ablation_row(
        table, label,
        bench::run_ablation(bench::ablation_app_ids(), population, config));
  }
  table.print(std::cout);
  std::cout << "\nSmall windows shrink the reported code but risk missing the "
               "root cause when the\nmanifestation lags the trigger; large "
               "windows dilute the report.\n";
  return 0;
}
