// Ablation — how many volunteer users does EnergyDx need?
//
// The paper collects traces "from more than 30 different volunteer users".
// This bench sweeps the population size: with few users the per-event
// power distributions (Step 2/3) and the impacted-percentage statistics
// (Step 5) are too thin; past ~20 users the results plateau.
#include <iostream>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace edx;
  workload::PopulationConfig population = bench::default_population(argc, argv);

  std::cout << "ABLATION: user population size\n\n";

  // The full 40-app catalog: small populations fail on the marginal apps
  // (light drains, low trigger fractions) that a subset would hide.
  std::vector<int> all_ids;
  for (const workload::AppCase& app : workload::full_catalog()) {
    all_ids.push_back(app.id);
  }

  TextTable table = bench::ablation_table();
  for (int users : {5, 10, 15, 20, 30, 50}) {
    population.num_users = users;
    std::string label = std::to_string(users) + " users";
    if (users == 30) label += " (paper)";
    bench::print_ablation_row(
        table, label,
        bench::run_ablation(all_ids, population, core::AnalysisConfig{}));
  }
  table.print(std::cout);
  std::cout << "\nFew users starve the per-event power distributions and make "
               "the impacted-percentage\nstatistics of Step 5 coarse; the "
               "paper's ~30 volunteers sit on the plateau.\n";
  return 0;
}
