// Ablation — the variation-amplitude definition (Step 4).
//
// The paper extends V_i across monotone increasing runs so a gradual
// manifestation credits its starting event with the full rise.  This bench
// compares: plain single-step difference, the strict monotone extension,
// and the dip-tolerant extension (our default, which bridges the staircase
// that 500 ms sampling makes of a ramp).
#include <iostream>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace edx;
  const workload::PopulationConfig population =
      bench::default_population(argc, argv);

  std::cout << "ABLATION: Step-4 variation amplitude definition\n\n";

  TextTable table = bench::ablation_table();
  {
    core::AnalysisConfig config;
    config.detection.extend_monotone_runs = false;
    bench::print_ablation_row(
        table, "single-step difference",
        bench::run_ablation(bench::ablation_app_ids(), population, config));
  }
  {
    core::AnalysisConfig config;
    config.detection.run_dip_tolerance = 0;
    bench::print_ablation_row(
        table, "strict monotone run (paper)",
        bench::run_ablation(bench::ablation_app_ids(), population, config));
  }
  {
    const core::AnalysisConfig config;  // defaults: dip tolerance 2
    bench::print_ablation_row(
        table, "dip-tolerant run (default)",
        bench::run_ablation(bench::ablation_app_ids(), population, config));
  }
  table.print(std::cout);
  return 0;
}
