// Extension experiment (not in the paper): multi-session traces.
//
// Real collection campaigns span days: each user's uploaded trace covers
// several app sessions, and a misconfiguration set on Monday still drains
// on Wednesday — where the trace shows *no* transition, only an elevated
// baseline from launch.  The manifestation point exists only in the first
// session's segment; this bench verifies the analysis still finds it in
// the concatenated trace and that longer traces don't dilute the report.
#include <iostream>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace edx;
  workload::PopulationConfig population = bench::default_population(argc, argv);

  std::cout << "EXTENSION: one vs. several sessions per uploaded trace\n\n";

  TextTable table = bench::ablation_table();
  for (int sessions : {1, 2, 3}) {
    population.sessions_per_user = sessions;
    std::string label = std::to_string(sessions) + " session(s)/user";
    if (sessions == 1) label += " (default)";
    bench::print_ablation_row(
        table, label,
        bench::run_ablation(bench::ablation_app_ids(), population,
                            core::AnalysisConfig{}));
  }
  table.print(std::cout);
  std::cout
      << "\nComponent coverage holds at 7/7 and no triggering trace is "
         "missed.  Two honest\ncosts of longer traces: (a) an impacted app "
         "*restarting* looks like a fresh\nmanifestation (the session-2 "
         "launch of a misconfigured app is a genuine\nlow-to-high "
         "transition), which pulls the measured event distance away from "
         "the\nsession-1 trigger; and (b) a handful of normal traces pick up "
         "windows at session\nboundaries.  Step 5's percentage ranking "
         "absorbs both.\n";
  return 0;
}
