// §IV-B, closing claim — "we have been able to fix the ABDs of all the 40
// apps and got confirmed".
//
// For every catalog app: apply the fix the diagnosis points at (the
// catalog's `fixed` build), re-run the same population, and confirm the
// manifestation points (nearly) disappear while the app's average power
// drops.  The paper's confirmation was by upstream commits and developer
// replies; ours is by re-measurement.
#include <iostream>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace edx;
  const workload::PopulationConfig population =
      bench::default_population(argc, argv);

  std::cout << "FIX VERIFICATION over the 40 apps (" << population.num_users
            << " users/app)\n\n";

  TextTable table({"ID", "App", "Manifesting traces (buggy -> fixed)",
                   "Power (buggy -> fixed)", "Verdict"});
  table.set_align(0, Align::kRight);
  table.set_align(2, Align::kRight);
  table.set_align(3, Align::kRight);

  int confirmed = 0;
  const std::vector<workload::AppCase> catalog = workload::full_catalog();
  for (const workload::AppCase& app : catalog) {
    const workload::FixVerification verification =
        workload::verify_fix(app, population);
    if (verification.fix_confirmed()) ++confirmed;
    table.add_row(
        {std::to_string(app.id), app.display_name,
         std::to_string(verification.buggy_traces_with_manifestation) +
             " -> " +
             std::to_string(verification.fixed_traces_with_manifestation),
         strings::format_double(verification.avg_power_buggy_mw, 0) +
             " -> " +
             strings::format_double(verification.avg_power_fixed_mw, 0) +
             " mW",
         verification.fix_confirmed() ? "confirmed" : "NOT CONFIRMED"});
  }
  table.print(std::cout);

  std::cout << "\nFixes confirmed: " << confirmed << "/" << catalog.size()
            << "   (paper: 40/40)\n";
  return 0;
}
