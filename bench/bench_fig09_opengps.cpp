// Figures 9, 10, 11 and Table IV — the OpenGPS case study (§IV-C).
//
// The no-sleep ABD: LoggerMap fails to release the location service on
// pause; GPS keeps drawing power in the background.  Paper results: top
// events LoggerMap:onPause and Idle(No_Display); search space 5,060 -> 569
// lines; Fig. 11 shows GPS power with the display off.
#include <iostream>

#include "bench_util.h"
#include "power/breakdown.h"

int main(int argc, char** argv) {
  using namespace edx;
  const workload::PopulationConfig population =
      bench::default_population(argc, argv);
  const workload::AppCase app = workload::opengps_case();
  const workload::PipelineRun run = workload::run_energydx(app, population);
  const std::size_t user = bench::first_triggering_user(run.traces);

  std::cout << "FIGURES 9 & 10: OpenGPS manifestation analysis (user " << user
            << ")\n\n";
  bench::print_step_series(run.analysis.traces[user]);

  std::cout << "\nTABLE IV: events reported to developers (OpenGPS)\n";
  bench::print_top_events(run.analysis.report, 4);
  std::cout << "(paper order: LoggerMap:onPause, Idle(No_Display), "
               "LoggerMap:onResume, ControlTracking:onPause)\n\n";

  bench::print_search_space(app, run);
  std::cout << "(paper: 5,060 -> 569 lines)\n";

  // Figure 11: per-component power before vs after the manifestation.
  const android::RunResult& user_run = run.traces.runs[user];
  const power::PowerBreakdown breakdown{
      power::PowerModel(power::nexus6())};
  // Normal usage: the first 10 s (app in the foreground).
  const auto normal = breakdown.average(run.traces.timelines[user],
                                        user_run.pid, 0, 10'000);
  // Manifestation: the last 30 s (backgrounded, GPS leaked).
  const auto abd = breakdown.average(run.traces.timelines[user], user_run.pid,
                                     user_run.end_time - 30'000,
                                     user_run.end_time);

  std::cout << "\nFIGURE 11: power breakdown of OpenGPS\n";
  TextTable table({"Component", "Normal usage (mW)", "ABD manifests (mW)"});
  table.set_align(1, Align::kRight);
  table.set_align(2, Align::kRight);
  for (power::Component component : power::kAllComponents) {
    const auto index = static_cast<std::size_t>(component);
    table.add_row({std::string(power::component_name(component)),
                   strings::format_double(normal.component_power_mw[index], 1),
                   strings::format_double(abd.component_power_mw[index], 1)});
  }
  table.add_row({"TOTAL", strings::format_double(normal.total(), 1),
                 strings::format_double(abd.total(), 1)});
  table.print(std::cout);
  std::cout << "(paper: GPS keeps consuming power in the background while "
               "display power is 0)\n";

  const auto dominant = power::PowerBreakdown::dominant_component(abd);
  std::cout << "Dominant component during the ABD: "
            << power::component_name(dominant) << "\n";
  return 0;
}
