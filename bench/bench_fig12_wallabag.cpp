// Figures 12, 13, 14 and Table V — the Wallabag case study (§IV-C).
//
// Deleting an article that is already gone server-side makes the client
// retry the sync forever: a CPU-dominated drain.  Paper results: top
// events ReadArticle:menuDeleted / onCreate / onResume; 21,424 -> 306
// lines; Fig. 14 shows CPU power dominating after the manifestation.
#include <iostream>

#include "bench_util.h"
#include "power/breakdown.h"

int main(int argc, char** argv) {
  using namespace edx;
  const workload::PopulationConfig population =
      bench::default_population(argc, argv);
  const workload::AppCase app = workload::wallabag_case();
  const workload::PipelineRun run = workload::run_energydx(app, population);
  const std::size_t user = bench::first_triggering_user(run.traces);

  std::cout << "FIGURES 12 & 13: Wallabag manifestation analysis (user "
            << user << ")\n\n";
  bench::print_step_series(run.analysis.traces[user]);

  std::cout << "\nTABLE V: events reported to developers (Wallabag)\n";
  bench::print_top_events(run.analysis.report, 6);
  std::cout << "(paper order: ReadArticle:menuDeleted, ReadArticle:onCreate, "
               "ReadArticle:onResume, ...)\n\n";

  bench::print_search_space(app, run);
  std::cout << "(paper: 21,424 -> 306 lines)\n";

  // Figure 14: the drain is CPU work (retry/sync), not radio.
  const android::RunResult& user_run = run.traces.runs[user];
  const power::PowerBreakdown breakdown{power::PowerModel(power::nexus6())};
  const auto abd = breakdown.average(run.traces.timelines[user], user_run.pid,
                                     user_run.end_time - 30'000,
                                     user_run.end_time);
  std::cout << "\nFIGURE 14: power breakdown when the ABD manifests\n";
  TextTable table({"Component", "Power (mW)"});
  table.set_align(1, Align::kRight);
  for (power::Component component : power::kAllComponents) {
    table.add_row(
        {std::string(power::component_name(component)),
         strings::format_double(
             abd.component_power_mw[static_cast<std::size_t>(component)], 1)});
  }
  table.print(std::cout);
  std::cout << "Dominant component: "
            << power::component_name(
                   power::PowerBreakdown::dominant_component(abd))
            << " (paper: the app consumes high CPU power)\n";
  return 0;
}
