// Ablation — the normalization base percentile (Step 3).
//
// The paper normalizes each instance to the 10th percentile of its event's
// power distribution ("this value can be adjusted for different training
// sets"); our default is the median (50), which is robust to the context
// skew that 500 ms sampling puts on lifecycle events adjacent to
// backgrounding (see DESIGN.md).  This bench sweeps the choice.
#include <iostream>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace edx;
  const workload::PopulationConfig population =
      bench::default_population(argc, argv);

  std::cout << "ABLATION: Step-3 normalization base percentile (apps ";
  for (int id : bench::ablation_app_ids()) std::cout << id << " ";
  std::cout << ")\n\n";

  TextTable table = bench::ablation_table();
  for (double percentile : {5.0, 10.0, 25.0, 50.0, 75.0}) {
    core::AnalysisConfig config;
    config.normalization.base_percentile = percentile;
    const bench::AblationResult result =
        bench::run_ablation(bench::ablation_app_ids(), population, config);
    std::string label = "p" + strings::format_double(percentile, 0);
    if (percentile == 10.0) label += " (paper)";
    if (percentile == 25.0) label += " (default)";
    bench::print_ablation_row(table, label, result);
  }
  table.print(std::cout);
  std::cout << "\nLow percentiles are dragged down by the display-off sample "
               "windows of backgrounding\nlifecycle events, inflating "
               "normalized power and false manifestation points.\n";
  return 0;
}
