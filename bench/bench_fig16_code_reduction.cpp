// Figure 16 — code reduction of EnergyDx vs the CheckAll baseline over the
// 40 apps (§IV-D).
//
// Paper: EnergyDx averages 168 lines to read (93% reduction); CheckAll —
// which reports every event around every raw power transition — averages
// 1,205 lines (67%).  For K-9 Mail specifically: 161 vs 9,845 lines.
#include <iostream>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace edx;
  const workload::PopulationConfig population =
      bench::default_population(argc, argv);

  std::cout << "FIGURE 16: code reduction, EnergyDx vs CheckAll ("
            << population.num_users << " users/app)\n\n";

  TextTable table({"ID", "App", "EnergyDx lines", "EnergyDx %",
                   "CheckAll lines", "CheckAll %"});
  for (std::size_t c = 0; c < 6; ++c) {
    if (c != 1) table.set_align(c, Align::kRight);
  }

  double sum_energydx = 0.0;
  double sum_checkall = 0.0;
  double sum_energydx_lines = 0.0;
  double sum_checkall_lines = 0.0;
  const std::vector<workload::AppCase> catalog = workload::full_catalog();
  for (const workload::AppCase& app : catalog) {
    workload::EvaluationOptions options;
    options.run_nosleep = false;
    options.run_edelta = false;
    options.run_power_comparison = false;
    const workload::AppEvaluation eval =
        workload::evaluate_app(app, population, options);
    sum_energydx += eval.energydx_reduction;
    sum_checkall += eval.checkall_reduction;
    sum_energydx_lines += eval.energydx_lines;
    sum_checkall_lines += eval.checkall_lines;
    table.add_row({std::to_string(eval.id), eval.name,
                   std::to_string(eval.energydx_lines),
                   bench::pct(eval.energydx_reduction),
                   std::to_string(eval.checkall_lines),
                   bench::pct(eval.checkall_reduction)});
  }
  table.print(std::cout);

  const double n = static_cast<double>(catalog.size());
  std::cout << "\nAverages over the 40 apps:\n";
  std::cout << "  EnergyDx: " << strings::format_double(sum_energydx_lines / n, 0)
            << " lines to read, code reduction "
            << bench::pct(sum_energydx / n)
            << "   (paper: 168 lines, 93%)\n";
  std::cout << "  CheckAll: " << strings::format_double(sum_checkall_lines / n, 0)
            << " lines to read, code reduction "
            << bench::pct(sum_checkall / n)
            << "   (paper: 1,205 lines, 67%)\n";
  return 0;
}
