// Ablation — where the "% of users impacted" comes from (Step 5).
//
// The paper assumes developers estimate the impacted-user fraction from
// forum reports or app-level tools like eDoctor.  This bench compares
// Step 5 fed with (a) the ground-truth fraction, (b) the eDoctor-style
// estimate computed from the same traces, and (c) fixed guesses — showing
// how sensitive the percentage-based ranking is to that input.
#include <iostream>

#include "baselines/edoctor.h"
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace edx;
  const workload::PopulationConfig population =
      bench::default_population(argc, argv);

  std::cout << "ABLATION: source of the developer-reported impact fraction\n\n";

  TextTable table = bench::ablation_table();
  const std::vector<int> ids = bench::ablation_app_ids();

  // (a) ground truth — what every other bench uses.
  bench::print_ablation_row(
      table, "ground truth",
      bench::run_ablation(ids, population, core::AnalysisConfig{}));

  // (b) eDoctor estimate: run the self-contained pipeline per app.
  {
    bench::AblationResult result;
    const std::vector<workload::AppCase> catalog = workload::full_catalog();
    double estimate_error = 0.0;
    for (int id : ids) {
      const workload::AppCase& app = workload::catalog_app(catalog, id);
      double estimated = 0.0;
      const workload::PipelineRun run =
          workload::run_energydx_self_contained(app, population, &estimated);
      estimate_error +=
          std::abs(estimated - run.traces.trigger_fraction_actual);
      const bench::RunQuality quality = bench::assess(app, run);
      const core::CodeMap code_map = core::CodeMap::from_app(app.buggy);
      result.avg_code_reduction +=
          core::code_reduction(code_map, run.analysis.report);
      result.component_hits += quality.component_reported ? 1 : 0;
      result.false_normal_traces += quality.normal_traces_with_points;
      result.missed_triggered_traces +=
          quality.triggered_traces - quality.triggered_traces_with_points;
      if (quality.event_distance) {
        result.avg_distance += *quality.event_distance;
        ++result.distance_count;
      }
      ++result.apps;
    }
    result.avg_code_reduction /= result.apps;
    if (result.distance_count > 0) {
      result.avg_distance /= result.distance_count;
    }
    bench::print_ablation_row(table, "eDoctor estimate", result);
    std::cout << "(mean |eDoctor - truth| over the subset: "
              << bench::pct(estimate_error / static_cast<double>(ids.size()))
              << ")\n\n";
  }

  // (c) fixed guesses, right and wrong.
  for (double guess : {0.05, 0.20, 0.60}) {
    core::AnalysisConfig config;
    config.reporting.developer_reported_fraction = guess;
    // run_energydx overrides the fraction with ground truth; go through the
    // ablation helper's override path by freezing it via the config: the
    // helper passes the config as override, and run_energydx replaces only
    // developer_reported_fraction — so emulate with a direct sweep instead.
    bench::AblationResult result;
    const std::vector<workload::AppCase> catalog = workload::full_catalog();
    for (int id : ids) {
      const workload::AppCase& app = workload::catalog_app(catalog, id);
      workload::CollectedTraces traces = workload::collect_traces(
          app, app.buggy, /*instrumented=*/true, population);
      const core::ManifestationAnalyzer analyzer(config);
      workload::PipelineRun run;
      run.analysis = analyzer.run(traces.bundles);
      run.traces = std::move(traces);
      run.config_used = config;
      const bench::RunQuality quality = bench::assess(app, run);
      const core::CodeMap code_map = core::CodeMap::from_app(app.buggy);
      result.avg_code_reduction +=
          core::code_reduction(code_map, run.analysis.report);
      result.component_hits += quality.component_reported ? 1 : 0;
      result.false_normal_traces += quality.normal_traces_with_points;
      result.missed_triggered_traces +=
          quality.triggered_traces - quality.triggered_traces_with_points;
      if (quality.event_distance) {
        result.avg_distance += *quality.event_distance;
        ++result.distance_count;
      }
      ++result.apps;
    }
    result.avg_code_reduction /= result.apps;
    if (result.distance_count > 0) {
      result.avg_distance /= result.distance_count;
    }
    bench::print_ablation_row(
        table, "fixed guess " + bench::pct(guess, 0), result);
  }

  table.print(std::cout);
  std::cout << "\nDetection (steps 1-4) is independent of the fraction; only "
               "the Step-5 ranking shifts.\nBecause the diagnosis set always "
               "includes the closest min_top_k candidates, even a\nbad guess "
               "degrades gracefully — the cost is ordering quality, not "
               "coverage.\n";
  return 0;
}
