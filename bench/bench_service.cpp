// Microbenchmarks (google-benchmark) for the multi-tenant FleetService.
// Not a paper figure — serve-mode harness health:
//
//   BM_ServiceIngest/<apps>/<users>/<shards>
//       end-to-end serve-mode ingest: <apps> tenants x <users> uploads
//       each, submitted round-robin across tenants (the mixed-tenant
//       traffic shape) onto <shards> ingest shards while two reader
//       threads continuously pull snapshots; drain() closes the
//       iteration.  items/s = arrivals/s — what
//       service_ingest_floor_arrivals_per_second gates.  Counters:
//         staleness_p99 / staleness_max — snapshot staleness in
//         arrivals (submitted minus published at the moment a reader
//         sampled), p99/max across all reader samples of the whole run;
//         bounded by queue capacity + one in-flight batch per shard,
//         and what service_p99_staleness_max_arrivals gates.
//         reader_loads — completed snapshot() calls (sanity: readers
//         really ran concurrently).
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/latency_histogram.h"
#include "service/fleet_service.h"
#include "trace/recorder.h"

namespace {

using namespace edx;

std::vector<trace::TraceBundle> synthetic_bundles(int traces, int events,
                                                  std::uint64_t seed = 7) {
  std::vector<trace::TraceBundle> bundles;
  Rng rng(seed);
  for (int user = 0; user < traces; ++user) {
    trace::TraceBundle bundle;
    bundle.user = user;
    bundle.device_name = "Nexus 6";
    std::vector<power::UtilizationSample> samples;
    for (int i = 0; i < events; ++i) {
      const TimestampMs t = static_cast<TimestampMs>(i) * 1000;
      bundle.events.add_instance("E" + std::to_string(i % 12),
                                 {t + 10, t + 40});
      power::UtilizationSample sample;
      sample.timestamp = t + 500;
      sample.estimated_app_power_mw =
          user == 0 && i > events / 2 ? 500.0 : 100.0 + rng.uniform(0, 5.0);
      samples.push_back(sample);
      sample.timestamp = t + 1000;
      samples.push_back(sample);
    }
    bundle.utilization = trace::UtilizationTrace("Nexus 6", samples);
    bundles.push_back(std::move(bundle));
  }
  return bundles;
}

void BM_ServiceIngest(benchmark::State& state) {
  const int apps = static_cast<int>(state.range(0));
  const int users = static_cast<int>(state.range(1));
  const std::size_t shards = static_cast<std::size_t>(state.range(2));
  constexpr int kEvents = 24;
  constexpr std::size_t kReaders = 2;

  // One population per tenant (distinct seeds so tenants differ).
  std::vector<std::string> keys;
  std::vector<std::vector<trace::TraceBundle>> populations;
  for (int a = 0; a < apps; ++a) {
    keys.push_back("app-" + std::to_string(a));
    populations.push_back(
        synthetic_bundles(users, kEvents, /*seed=*/7 + a));
  }

  common::LatencyHistogram staleness;
  std::uint64_t reader_loads = 0;
  for (auto _ : state) {
    state.PauseTiming();
    service::ServiceOptions options;
    options.num_shards = shards;
    options.queue_capacity = 256;
    auto service = std::make_unique<service::FleetService>(options);
    for (const std::string& key : keys) service->open(key);

    std::atomic<bool> stop{false};
    std::vector<common::LatencyHistogram> lanes(kReaders);
    std::vector<std::uint64_t> loads(kReaders, 0);
    std::vector<std::thread> readers;
    for (std::size_t r = 0; r < kReaders; ++r) {
      readers.emplace_back([&, r] {
        while (!stop.load(std::memory_order_relaxed)) {
          for (const service::AppServiceStats& row :
               service->stats().per_app) {
            // The two counters are sampled independently; skip the
            // transient where a publication lands between the loads.
            if (row.submitted >= row.published_arrivals) {
              lanes[r].record(row.submitted - row.published_arrivals);
            }
          }
          for (const std::string& key : keys) {
            benchmark::DoNotOptimize(service->snapshot(key));
            ++loads[r];
          }
        }
      });
    }
    state.ResumeTiming();

    // Round-robin across tenants: every batch a shard drains mixes apps.
    for (int u = 0; u < users; ++u) {
      for (int a = 0; a < apps; ++a) {
        service->submit(keys[a], populations[a][u]);
      }
    }
    service->drain();

    state.PauseTiming();
    stop.store(true, std::memory_order_relaxed);
    for (std::thread& reader : readers) reader.join();
    for (std::size_t r = 0; r < kReaders; ++r) {
      staleness.merge(lanes[r]);
      reader_loads += loads[r];
    }
    service.reset();
    state.ResumeTiming();
  }

  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(apps) * users);
  state.counters["staleness_p99"] =
      static_cast<double>(staleness.value_at_percentile(99.0));
  state.counters["staleness_max"] = static_cast<double>(staleness.max());
  state.counters["reader_loads"] = static_cast<double>(reader_loads);
}
BENCHMARK(BM_ServiceIngest)
    ->Args({3, 400, 1})
    ->Args({3, 400, 2})
    ->Args({3, 400, 4})
    ->Args({8, 100, 4})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// BM_ServiceIngestMultiTenant/<apps>/<shards>
//     the tenant-count sweep through the durable partitioned store
//     under FsyncPolicy::kAlways: a FIXED total of kTotalArrivals
//     uploads per iteration spread round-robin across <apps> tenants,
//     so items/s (= arrivals/s) is directly comparable along the apps
//     axis.  Per-tenant WALs paid one fdatasync per touched tenant per
//     drained batch — throughput fell roughly linearly in the tenant
//     count; the shard-shared WAL pays one group commit per shard per
//     batch, so arrivals/s should stay roughly flat from 3 to 64 apps.
//     What service_multitenant_ingest_floor_arrivals_per_second and
//     service_multitenant_flatness_ratio_min gate.  Counters:
//       fsyncs_per_batch — store fdatasyncs over worker drains for the
//       whole run; bounded by ~shards (plus segment seals), NOT by
//       tenants touched.
//       batches — worker drains that did work (amortization sanity).
void BM_ServiceIngestMultiTenant(benchmark::State& state) {
  const int apps = static_cast<int>(state.range(0));
  const std::size_t shards = static_cast<std::size_t>(state.range(1));
  constexpr int kTotalArrivals = 192;
  constexpr int kEvents = 24;
  const int users = kTotalArrivals / apps;

  std::vector<std::string> keys;
  std::vector<std::vector<trace::TraceBundle>> populations;
  for (int a = 0; a < apps; ++a) {
    keys.push_back("app-" + std::to_string(a));
    populations.push_back(synthetic_bundles(users, kEvents, /*seed=*/7 + a));
  }
  const std::string root =
      std::filesystem::temp_directory_path().string() +
      "/edx_bench_multitenant_" + std::to_string(apps) + "_" +
      std::to_string(shards);

  std::uint64_t fsyncs = 0;
  std::uint64_t batches = 0;
  for (auto _ : state) {
    state.PauseTiming();
    std::filesystem::remove_all(root);
    service::ServiceOptions options;
    options.num_shards = shards;
    options.queue_capacity = 256;
    options.store_root = root;
    options.store.fsync_policy = store::FsyncPolicy::kAlways;
    auto service = std::make_unique<service::FleetService>(options);
    for (const std::string& key : keys) service->open(key);
    state.ResumeTiming();

    // Round-robin across tenants: every batch a shard drains mixes as
    // many tenants as the queue absorbed — the group-commit shape.
    for (int u = 0; u < users; ++u) {
      for (int a = 0; a < apps; ++a) {
        service->submit(keys[a], populations[a][u]);
      }
    }
    service->drain();

    state.PauseTiming();
    const service::ServiceStats stats = service->stats();
    fsyncs += stats.store_fsyncs;
    batches += stats.batches;
    service.reset();
    state.ResumeTiming();
  }
  std::filesystem::remove_all(root);

  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(apps) * users);
  state.counters["fsyncs_per_batch"] =
      batches == 0 ? 0.0
                   : static_cast<double>(fsyncs) / static_cast<double>(batches);
  state.counters["batches"] = static_cast<double>(batches);
}
BENCHMARK(BM_ServiceIngestMultiTenant)
    ->Args({3, 1})
    ->Args({16, 1})
    ->Args({64, 1})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
