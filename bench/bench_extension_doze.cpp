// Extension experiment (not in the paper): does modern Android's Doze
// mitigate the ABD classes the paper studies?
//
// The paper evaluates on Android 4.4, before Doze existed.  Replaying the
// same buggy apps with Doze enabled shows the split: periodic drains
// (loop / configuration bugs) are suspended once the device dozes, but
// no-sleep bugs keep burning — leaked hardware is untouched, and a leaked
// *wakelock* actively blocks Doze from engaging.  ABD diagnosis stays
// relevant on modern Android precisely for the class Doze cannot touch.
#include <iostream>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace edx;
  workload::PopulationConfig population = bench::default_population(argc, argv);

  std::cout << "EXTENSION: buggy-app power with and without Doze "
               "(30 s background threshold)\n\n";

  TextTable table({"ID", "App", "Root cause", "No Doze (mW)", "Doze (mW)",
                   "Mitigated"});
  table.set_align(0, Align::kRight);
  for (std::size_t c = 3; c <= 5; ++c) table.set_align(c, Align::kRight);

  const std::vector<workload::AppCase> catalog = workload::full_catalog();
  // Representatives: GPS / wakelock / sensor no-sleep, loop, configuration.
  for (int id : {5, 1, 22, 18, 2, 31, 40}) {
    const workload::AppCase& app = workload::catalog_app(catalog, id);

    workload::PopulationConfig no_doze = population;
    const double base_power =
        workload::average_app_power(app, app.buggy, no_doze);

    workload::PopulationConfig with_doze = population;
    with_doze.runtime.doze_after_background_ms = 30'000;
    const double doze_power =
        workload::average_app_power(app, app.buggy, with_doze);

    const double mitigation = 1.0 - doze_power / base_power;
    table.add_row({std::to_string(app.id), app.display_name,
                   std::string(workload::abd_kind_name(app.kind)),
                   strings::format_double(base_power, 1),
                   strings::format_double(doze_power, 1),
                   bench::pct(mitigation)});
  }
  table.print(std::cout);

  std::cout
      << "\nExpected split: loop/configuration drains collapse once Doze "
         "engages; GPS/sensor/audio\nleaks are untouched; the wakelock leak "
         "(Facebook row) blocks Doze outright.\n";
  return 0;
}
