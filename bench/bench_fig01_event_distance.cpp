// Figure 1 — Statistical analysis of event distance of 40 ABD cases.
//
// For each Table III app: collect instrumented traces, run the analysis,
// and measure the event distance between the injected root-cause event and
// the detected manifestation point.  The paper reports a 90th percentile
// of 3 or shorter; our fully-logged lifecycle clusters allow somewhat
// larger worst cases (see EXPERIMENTS.md).
#include <algorithm>
#include <iostream>

#include "bench_util.h"
#include "common/stats.h"

int main(int argc, char** argv) {
  using namespace edx;
  const workload::PopulationConfig population =
      bench::default_population(argc, argv);

  std::cout << "FIGURE 1: event distance of the 40 ABD cases ("
            << population.num_users << " users/app, seed " << population.seed
            << ")\n\n";

  std::vector<double> per_app;
  std::vector<double> pooled;
  TextTable table({"ID", "App", "Median distance", "Per-trace distances"});
  table.set_align(0, Align::kRight);
  table.set_align(2, Align::kRight);

  for (const workload::AppCase& app : workload::full_catalog()) {
    const workload::PipelineRun run = workload::run_energydx(app, population);
    std::vector<int> distances;
    for (std::size_t u = 0; u < run.analysis.traces.size(); ++u) {
      if (!run.traces.triggered[u]) continue;
      if (const auto d = workload::trace_event_distance(
              run.analysis.traces[u], app.bug)) {
        distances.push_back(*d);
        pooled.push_back(*d);
      }
    }
    const auto median = workload::app_event_distance(
        run.analysis.traces, app.bug, &run.traces.triggered);
    if (median) per_app.push_back(*median);

    std::string detail;
    for (int d : distances) detail += std::to_string(d) + " ";
    table.add_row({std::to_string(app.id), app.display_name,
                   median ? std::to_string(*median) : "-", detail});
  }
  table.print(std::cout);

  std::cout << "\nPer-app distance distribution (" << per_app.size()
            << " cases):\n";
  TextTable cdf({"Distance", "CDF"});
  cdf.set_align(0, Align::kRight);
  cdf.set_align(1, Align::kRight);
  for (const auto& point : stats::empirical_cdf(per_app)) {
    cdf.add_row({strings::format_double(point.value, 0),
                 bench::pct(point.cumulative_probability)});
  }
  cdf.print(std::cout);

  std::cout << "\n50th percentile: " << stats::percentile(per_app, 50)
            << "   90th percentile: " << stats::percentile(per_app, 90)
            << "   (paper: 90th percentile <= 3)\n";
  if (!pooled.empty()) {
    std::cout << "Pooled per-trace distances (" << pooled.size()
              << " traces): median " << stats::percentile(pooled, 50)
              << ", 90th percentile " << stats::percentile(pooled, 90)
              << "\n";
  }
  return 0;
}
