// Microbenchmarks (google-benchmark) for the durable store: ingest
// throughput (codec + WAL append) and restart-to-first-report latency,
// cold (WAL replay + full Step 1) vs warm (snapshot's stored Step-1 state
// via FleetAnalyzer::add_analyzed).  Not a paper figure — harness health.
#include <benchmark/benchmark.h>

#include <filesystem>
#include <string>
#include <vector>

#include "core/fleet_analyzer.h"
#include "store/fleet_store.h"
#include "trace/recorder.h"

namespace {

using namespace edx;
namespace fs = std::filesystem;

std::vector<trace::TraceBundle> synthetic_bundles(int traces, int events,
                                                  std::uint64_t seed = 7) {
  std::vector<trace::TraceBundle> bundles;
  Rng rng(seed);
  for (int user = 0; user < traces; ++user) {
    trace::TraceBundle bundle;
    bundle.user = user;
    bundle.device_name = "Nexus 6";
    std::vector<power::UtilizationSample> samples;
    for (int i = 0; i < events; ++i) {
      const TimestampMs t = static_cast<TimestampMs>(i) * 1000;
      bundle.events.add_instance("E" + std::to_string(i % 12),
                                 {t + 10, t + 40});
      power::UtilizationSample sample;
      sample.timestamp = t + 500;
      sample.estimated_app_power_mw =
          user == 0 && i > events / 2 ? 500.0 : 100.0 + rng.uniform(0, 5.0);
      samples.push_back(sample);
      sample.timestamp = t + 1000;
      samples.push_back(sample);
    }
    bundle.utilization = trace::UtilizationTrace("Nexus 6", samples);
    bundles.push_back(std::move(bundle));
  }
  return bundles;
}

std::string bench_dir(const std::string& leaf) {
  return (fs::temp_directory_path() / ("edx_bench_store_" + leaf)).string();
}

/// Appending a fleet upload by upload: codec encode + CRC + WAL write per
/// bundle.  items/sec = bundles/sec.
void BM_StoreIngest(benchmark::State& state) {
  const auto bundles = synthetic_bundles(static_cast<int>(state.range(0)),
                                         /*events=*/100);
  const std::string dir = bench_dir("ingest");
  for (auto _ : state) {
    state.PauseTiming();
    fs::remove_all(dir);
    state.ResumeTiming();
    store::FleetStore fleet_store = store::FleetStore::open(dir);
    for (const trace::TraceBundle& bundle : bundles) {
      fleet_store.append(bundle);
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  fs::remove_all(dir);
}
BENCHMARK(BM_StoreIngest)->Arg(50)->Arg(200);

/// Restart-to-first-report: open the store, load the analyzer, render the
/// first snapshot.  range(1) == 0: WAL only — replay re-decodes every
/// record and Step 1 re-runs the full power join.  range(1) == 1: the
/// fleet was compacted — snapshot_step1() feeds the analyzer the stored
/// Step-1 results and the power join is skipped entirely.
void BM_StoreRecover(benchmark::State& state) {
  const bool with_snapshot = state.range(1) != 0;
  const auto bundles = synthetic_bundles(static_cast<int>(state.range(0)),
                                         /*events=*/100);
  const std::string dir =
      bench_dir("recover" + std::to_string(state.range(0)) +
                (with_snapshot ? "s" : "w"));
  fs::remove_all(dir);
  {
    store::FleetStore fleet_store = store::FleetStore::open(dir);
    for (const trace::TraceBundle& bundle : bundles) {
      fleet_store.append(bundle);
    }
    if (with_snapshot) fleet_store.compact();
  }

  core::AnalysisConfig config;
  config.num_threads = 1;
  for (auto _ : state) {
    const store::FleetStore recovered = store::FleetStore::open(dir);
    core::FleetAnalyzer fleet(config);
    std::vector<core::AnalyzedTrace> warm = recovered.snapshot_step1();
    for (core::AnalyzedTrace& analyzed : warm) {
      fleet.add_analyzed(std::move(analyzed));
    }
    for (const trace::TraceBundle& bundle : recovered.tail_bundles()) {
      fleet.add_bundle(bundle);
    }
    benchmark::DoNotOptimize(fleet.snapshot());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  fs::remove_all(dir);
}
BENCHMARK(BM_StoreRecover)
    ->ArgsProduct({{50, 200}, {0, 1}});

}  // namespace

BENCHMARK_MAIN();
